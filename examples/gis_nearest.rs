//! GIS nearest-facility search: the paper's 2-d real-data scenario.
//!
//! A map layer of ~62,000 places (the California-Places-like generator)
//! indexed on a 10-disk array; we answer both flavours of similarity
//! query from Section 2.3:
//!
//! * range query  — "every place within radius ε of here", and
//! * k-NN query   — "the 5 closest places to here",
//!
//! and show why k-NN is the harder problem: a well-chosen ε is unknown
//! a priori (too small → not enough answers; too large → wasted I/O).
//!
//! ```text
//! cargo run --release --example gis_nearest
//! ```

use sqda::prelude::*;
use sqda_datasets::california_like;
use std::sync::Arc;

fn main() {
    let dataset = california_like(62_173, 11);
    let store = Arc::new(ArrayStore::new(10, 1449, 12));
    let mut tree = RStarTree::create(store, RStarConfig::new(2), Box::new(ProximityIndex))
        .expect("create tree");
    for (i, p) in dataset.points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).expect("insert");
    }
    println!(
        "indexed {} places (height {}, avg fill {:.2})",
        tree.num_objects(),
        tree.height(),
        tree.stats().expect("stats").avg_fill,
    );

    let here = Point::new(vec![0.42, 0.37]);

    // Range queries with guessed radii: the ε-guessing problem.
    println!("\nrange queries around {here}:");
    for eps in [0.001, 0.005, 0.02, 0.1] {
        let hits = tree.range_query(&here, eps).expect("range query");
        println!("  ε = {eps:<6} → {:>6} places", hits.len());
    }

    // The k-NN query answers directly, no ε needed.
    let k = 5;
    let mut crss = AlgorithmKind::Crss
        .build(&tree, here.clone(), k)
        .expect("build");
    let run = run_query(&tree, crss.as_mut()).expect("query");
    println!(
        "\nthe {k} closest places (CRSS, {} node reads):",
        run.nodes_visited
    );
    for n in &run.results {
        println!(
            "  place #{:<6} at {}  distance {:.5}",
            n.object.0,
            n.point,
            n.dist()
        );
    }

    // Transforming the k-NN into a range query with the (now known)
    // exact radius returns the same set — this is what WOPTSS assumes it
    // knows in advance.
    let dk = run.results.last().expect("k answers").dist();
    let exact = tree.range_query(&here, dk).expect("range query");
    assert!(exact.len() >= k);
    println!(
        "\nrange query with the oracle radius ε = D_k = {dk:.5} → {} places",
        exact.len()
    );
}
