//! Quickstart: build a declustered R*-tree on a simulated 8-disk array,
//! run the same k-NN query through all four algorithms, and compare their
//! I/O behaviour.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sqda::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. A RAID-0 array of 8 disks (HP-C2200A geometry: 1449 cylinders).
    let store = Arc::new(ArrayStore::new(8, 1449, 42));

    // 2. An R*-tree for 2-d points, declustered with the Proximity-Index
    //    heuristic: sibling nodes that are spatially close land on
    //    different disks so one query can fetch them in parallel.
    let mut tree = RStarTree::create(store, RStarConfig::new(2), Box::new(ProximityIndex))
        .expect("create tree");

    // 3. Index a spiral of 20,000 points.
    for i in 0..20_000u64 {
        let t = i as f64 * 0.01;
        let r = 1.0 + t.sqrt() * 3.0;
        let p = Point::new(vec![r * t.cos(), r * t.sin()]);
        tree.insert(p, i).expect("insert");
    }
    println!(
        "indexed {} points; tree height {}, root on page {}",
        tree.num_objects(),
        tree.height(),
        tree.root_page()
    );

    // 4. Ask for the 10 nearest neighbours of the origin with each
    //    algorithm. All four return identical answers; they differ in how
    //    many nodes they touch and how much parallelism they use.
    let query = Point::new(vec![0.0, 0.0]);
    println!(
        "\n{:<8} {:>12} {:>10} {:>10}",
        "algo", "nodes", "batches", "max batch"
    );
    let mut reference: Option<Vec<u64>> = None;
    for kind in AlgorithmKind::ALL {
        let mut algo = kind
            .build(&tree, query.clone(), 10)
            .expect("build algorithm");
        let run = run_query(&tree, algo.as_mut()).expect("run query");
        println!(
            "{:<8} {:>12} {:>10} {:>10}",
            kind.name(),
            run.nodes_visited,
            run.batches,
            run.max_batch
        );
        let ids: Vec<u64> = run.results.iter().map(|n| n.object.0).collect();
        match &reference {
            None => reference = Some(ids),
            Some(want) => assert_eq!(&ids, want, "{kind} disagreed"),
        }
    }

    // 5. The answers themselves.
    let mut crss = AlgorithmKind::Crss
        .build(&tree, query, 10)
        .expect("build CRSS");
    let run = run_query(&tree, crss.as_mut()).expect("run CRSS");
    println!("\n10 nearest neighbours of the origin:");
    for n in &run.results {
        println!("  {}  at {}  (distance {:.3})", n.object, n.point, n.dist());
    }
}
