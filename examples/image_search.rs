//! Content-based image retrieval — the motivating application of the
//! paper's introduction: images represented as colour-histogram feature
//! vectors, similarity = Euclidean distance in feature space.
//!
//! We synthesize a library of "images" in a 16-dimensional reduced
//! histogram space (256-bin histograms are routinely reduced before
//! indexing, exactly because R-tree variants degrade in very high
//! dimensions), index them on a 10-disk array, and serve "find images
//! like this one" queries with CRSS.
//!
//! ```text
//! cargo run --release --example image_search
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqda::prelude::*;
use std::sync::Arc;

const DIM: usize = 16;
const LIBRARY: usize = 30_000;

/// A synthetic "image": its histogram is a noisy mixture of one of a few
/// scene archetypes (sunsets, forests, oceans...), so the library has the
/// cluster structure real photo collections show.
fn synth_histogram(rng: &mut StdRng, archetypes: &[Vec<f64>]) -> Vec<f64> {
    let base = &archetypes[rng.gen_range(0..archetypes.len())];
    let mut h: Vec<f64> = base
        .iter()
        .map(|b| (b + rng.gen_range(-0.05..0.05)).max(0.0))
        .collect();
    // Histograms are normalized to unit mass.
    let sum: f64 = h.iter().sum();
    for v in &mut h {
        *v /= sum;
    }
    h
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let archetypes: Vec<Vec<f64>> = (0..12)
        .map(|_| (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();

    let store = Arc::new(ArrayStore::new(10, 1449, 7));
    let mut tree = RStarTree::create(store, RStarConfig::new(DIM), Box::new(ProximityIndex))
        .expect("create tree");

    println!("indexing {LIBRARY} images as {DIM}-d colour histograms...");
    let mut histograms = Vec::with_capacity(LIBRARY);
    for i in 0..LIBRARY {
        let h = synth_histogram(&mut rng, &archetypes);
        tree.insert(Point::new(h.clone()), i as u64)
            .expect("insert");
        histograms.push(h);
    }
    println!(
        "library indexed: height {}, {} disks",
        tree.height(),
        tree.store().num_disks()
    );

    // "Find the 8 images most similar to image #1234."
    let probe_id = 1234usize;
    let probe = Point::new(histograms[probe_id].clone());
    let mut crss = AlgorithmKind::Crss
        .build(&tree, probe.clone(), 8)
        .expect("build CRSS");
    let run = run_query(&tree, crss.as_mut()).expect("query");
    println!("\nimages most similar to image #{probe_id}:");
    for n in &run.results {
        println!("  image #{:<6} distance {:.4}", n.object.0, n.dist());
    }
    assert_eq!(
        run.results[0].object.0 as usize, probe_id,
        "self-match first"
    );

    // Cross-check against exact brute force.
    let mut brute: Vec<(usize, f64)> = histograms
        .iter()
        .enumerate()
        .map(|(i, h)| (i, probe.dist_sq(&Point::new(h.clone()))))
        .collect();
    brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (got, (want_id, want_d)) in run.results.iter().zip(brute.iter()) {
        assert!((got.dist_sq - want_d).abs() < 1e-9);
        let _ = want_id;
    }
    println!("verified against brute force ✓");

    // How much I/O did the high-dimensional search cost per algorithm?
    println!("\n{:<8} {:>8} {:>10}", "algo", "nodes", "max batch");
    for kind in AlgorithmKind::ALL {
        let mut algo = kind.build(&tree, probe.clone(), 8).expect("algorithm");
        let r = run_query(&tree, algo.as_mut()).expect("query");
        println!(
            "{:<8} {:>8} {:>10}",
            kind.name(),
            r.nodes_visited,
            r.max_batch
        );
    }
}
