//! Multi-user service simulation: what the library is ultimately for.
//!
//! A stream of concurrent k-NN queries arrives at a 10-disk array
//! according to a Poisson process. We run the identical workload under
//! each algorithm through the event-driven simulator and print the
//! response-time distribution and resource utilizations — a miniature of
//! the paper's Figures 10-12.
//!
//! ```text
//! cargo run --release --example multiuser
//! ```

use sqda::prelude::*;
use sqda_datasets::gaussian;
use std::sync::Arc;

fn main() {
    // A 5-d Gaussian dataset of 30,000 feature vectors on 10 disks.
    let dataset = gaussian(30_000, 5, 21);
    let store = Arc::new(ArrayStore::new(10, 1449, 22));
    let mut tree = RStarTree::create(store, RStarConfig::new(5), Box::new(ProximityIndex))
        .expect("create tree");
    for (i, p) in dataset.points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).expect("insert");
    }
    println!(
        "dataset: {} × {}-d, tree height {}, 10 disks\n",
        dataset.len(),
        dataset.dim,
        tree.height()
    );

    // 100 queries for k=20 neighbours arriving at λ = 8 queries/second.
    let queries = dataset.sample_queries(100, 23);
    let workload = Workload::poisson(queries, 20, 8.0, 24);
    let sim = Simulation::new(&tree, SystemParams::with_disks(10)).expect("simulation");

    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "algo", "mean (s)", "p95 (s)", "max (s)", "disks", "bus", "cpu"
    );
    for kind in AlgorithmKind::ALL {
        let r: SimulationReport = sim.run(kind, &workload, 25).expect("simulate");
        println!(
            "{:<8} {:>10.4} {:>10.4} {:>10.4} {:>7.1}% {:>7.1}% {:>7.1}%",
            r.algorithm,
            r.mean_response_s,
            r.p95_response_s,
            r.max_response_s,
            r.mean_disk_utilization * 100.0,
            r.bus_utilization * 100.0,
            r.cpu_utilization * 100.0,
        );
    }
    println!(
        "\nThe same 100 queries, the same disks — only the search strategy\n\
         differs. CRSS balances parallelism against wasted I/O; BBSS leaves\n\
         the array idle; FPSS floods it."
    );
}
