//! Fast subsequence matching in time-series databases — the paper's
//! other motivating application (its reference [8], Faloutsos,
//! Ranganathan & Manolopoulos, SIGMOD'94).
//!
//! Sliding windows of a long time series are mapped to the first few
//! Fourier coefficients and indexed in the declustered R*-tree. By
//! Parseval's theorem the distance between two windows in the truncated
//! frequency domain *lower-bounds* their true Euclidean distance, so a
//! range query in feature space is a filter that never dismisses a true
//! match; candidates are then refined against the raw series.
//!
//! ```text
//! cargo run --release --example timeseries_match
//! ```

use sqda::prelude::*;
use std::sync::Arc;

const WINDOW: usize = 64;
/// Complex Fourier coefficients kept (excluding DC): each contributes a
/// real + imaginary feature.
const COEFFS: usize = 4;
const DIM: usize = 2 * COEFFS;

/// The first `COEFFS` non-DC Fourier coefficients of a window,
/// interleaved (re, im), normalized by window length.
fn fourier_features(window: &[f64]) -> Vec<f64> {
    let n = window.len() as f64;
    let mut out = Vec::with_capacity(DIM);
    for k in 1..=COEFFS {
        let (mut re, mut im) = (0.0, 0.0);
        for (t, x) in window.iter().enumerate() {
            let angle = -std::f64::consts::TAU * k as f64 * t as f64 / n;
            re += x * angle.cos();
            im += x * angle.sin();
        }
        // 1/sqrt(n) normalization keeps Parseval's bound exact.
        out.push(re / n.sqrt());
        out.push(im / n.sqrt());
    }
    out
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

fn main() {
    // A long synthetic sensor trace: drifting mixture of tides, daily
    // cycles, and noise, with a rare "anomaly motif" planted twice.
    let len = 20_000usize;
    let mut series: Vec<f64> = (0..len)
        .map(|t| {
            let tf = t as f64;
            (tf * 0.031).sin() * 2.0
                + (tf * 0.22).sin() * 0.7
                + ((tf * 1291.0).sin() * 43758.5453).fract() * 0.25 // deterministic noise
        })
        .collect();
    let motif: Vec<f64> = (0..WINDOW)
        .map(|t| ((t as f64) * 0.5).sin() * 3.0 * (-((t as f64) - 32.0).powi(2) / 200.0).exp())
        .collect();
    for start in [5_000usize, 14_321] {
        for (i, m) in motif.iter().enumerate() {
            series[start + i] += m;
        }
    }

    // Index every window's Fourier signature.
    let store = Arc::new(ArrayStore::new(8, 1449, 99));
    let mut tree = RStarTree::create(store, RStarConfig::new(DIM), Box::new(ProximityIndex))
        .expect("create tree");
    let windows = len - WINDOW + 1;
    println!("indexing {windows} sliding windows as {DIM}-d Fourier signatures...");
    for start in 0..windows {
        let f = fourier_features(&series[start..start + WINDOW]);
        tree.insert(Point::new(f), start as u64).expect("insert");
    }

    // Query: the window at the first planted anomaly. The second planting
    // must surface among its nearest non-overlapping neighbours.
    let probe_start = 5_000usize;
    let probe = Point::new(fourier_features(&series[probe_start..probe_start + WINDOW]));
    let mut crss = AlgorithmKind::Crss
        .build(&tree, probe.clone(), 200)
        .expect("build");
    let run = run_query(&tree, crss.as_mut()).expect("query");
    println!(
        "\nnearest signatures to the window at t={probe_start} ({} node reads):",
        run.nodes_visited
    );
    let mut shown = 0;
    let mut found_twin = false;
    for n in &run.results {
        let start = n.object.0 as usize;
        // Skip windows overlapping the probe (trivial matches).
        if start.abs_diff(probe_start) < WINDOW {
            continue;
        }
        if shown < 5 {
            let true_dist = euclidean(
                &series[start..start + WINDOW],
                &series[probe_start..probe_start + WINDOW],
            );
            println!(
                "  t={start:<6} feature distance {:.4}   true window distance {:.4}",
                n.dist(),
                true_dist
            );
            shown += 1;
        }
        if start.abs_diff(14_321) < WINDOW / 2 {
            found_twin = true;
        }
    }
    assert!(found_twin, "the planted twin motif must be found");
    println!("\nthe second planted motif (t=14321) was retrieved ✓");

    // Parseval lower-bound check: feature distance never exceeds true
    // distance (the no-false-dismissal guarantee of the filter step).
    for n in run.results.iter().take(50) {
        let start = n.object.0 as usize;
        let true_dist = euclidean(
            &series[start..start + WINDOW],
            &series[probe_start..probe_start + WINDOW],
        );
        assert!(
            n.dist() <= true_dist + 1e-6,
            "lower bound violated at t={start}"
        );
    }
    println!("Parseval lower bound verified on the top 50 candidates ✓");
}
