#!/bin/bash
# Offline test runner: builds every unit- and integration-test target that
# does not depend on `proptest` against the stub externals, and RUNS them.
# Requires tools/offline/check.sh to have been run first (it produces the
# rlibs under target/offline/out). See tools/offline/README.md.
#
# proptest cannot be compiled from stubs (procedural strategy machinery),
# so crates/*/tests/prop_*.rs, crates/core/tests/prop_algorithms.rs and
# crates/rstar/tests/cache.rs are skipped here; they still run under
# `cargo test` wherever the registry is reachable.
set -e
cd "$(dirname "$0")/../.."
OUT=target/offline/out
T=$OUT/tests
mkdir -p "$T"

EXT_SERDE="--extern serde=$OUT/libserde.rlib --extern serde_derive=$OUT/libserde_derive.so"
EXT_BYTES="--extern bytes=$OUT/libbytes.rlib"
EXT_PL="--extern parking_lot=$OUT/libparking_lot.rlib"
EXT_RAND="--extern rand=$OUT/librand.rlib"
EXT_GEOM="--extern sqda_geom=$OUT/libsqda_geom.rlib"
EXT_STORAGE="--extern sqda_storage=$OUT/libsqda_storage.rlib"
EXT_SIM="--extern sqda_simkernel=$OUT/libsqda_simkernel.rlib"
EXT_OBS="--extern sqda_obs=$OUT/libsqda_obs.rlib"
EXT_RSTAR="--extern sqda_rstar=$OUT/libsqda_rstar.rlib"
EXT_CORE="--extern sqda_core=$OUT/libsqda_core.rlib"
EXT_SSTREE="--extern sqda_sstree=$OUT/libsqda_sstree.rlib"
EXT_DATASETS="--extern sqda_datasets=$OUT/libsqda_datasets.rlib"
EXT_ANALYSIS="--extern sqda_analysis=$OUT/libsqda_analysis.rlib"
EXT_BENCH="--extern sqda_bench=$OUT/libsqda_bench.rlib"
ALL_EXT="$EXT_GEOM $EXT_STORAGE $EXT_SIM $EXT_RSTAR $EXT_CORE $EXT_DATASETS
         $EXT_ANALYSIS $EXT_SSTREE $EXT_BENCH $EXT_OBS $EXT_RAND
         --extern sqda=$OUT/libsqda.rlib"

t() { # name src externs...
  local name=$1 src=$2; shift 2
  echo "== $name"
  rustc --edition 2021 --test --crate-name "$name" -L dependency=$OUT "$@" \
    "$src" -o "$T/$name"
  "$T/$name" -q
}

# Unit tests (the #[cfg(test)] modules inside each crate's src tree).
t geom_unit crates/geom/src/lib.rs $EXT_SERDE
t storage_unit crates/storage/src/lib.rs $EXT_BYTES $EXT_RAND $EXT_PL
t simkernel_unit crates/simkernel/src/lib.rs $EXT_RAND $EXT_SERDE
t obs_unit crates/obs/src/lib.rs $EXT_STORAGE
t rstar_unit crates/rstar/src/lib.rs $EXT_GEOM $EXT_STORAGE $EXT_BYTES $EXT_PL $EXT_RAND
t core_unit crates/core/src/lib.rs $EXT_GEOM $EXT_STORAGE $EXT_RSTAR $EXT_SIM $EXT_OBS $EXT_RAND
t sstree_unit crates/sstree/src/lib.rs $EXT_GEOM $EXT_STORAGE $EXT_CORE $EXT_BYTES
t datasets_unit crates/datasets/src/lib.rs $EXT_GEOM $EXT_RAND
t analysis_unit crates/analysis/src/lib.rs $EXT_GEOM $EXT_RSTAR $EXT_STORAGE $EXT_SIM $EXT_OBS $EXT_RAND
t bench_unit crates/bench/src/lib.rs $EXT_GEOM $EXT_STORAGE $EXT_SIM $EXT_RSTAR \
  $EXT_CORE $EXT_DATASETS $EXT_ANALYSIS $EXT_SSTREE $EXT_OBS $EXT_RAND
t cli_unit crates/cli/src/main.rs $EXT_GEOM $EXT_STORAGE $EXT_SIM $EXT_RSTAR \
  $EXT_CORE $EXT_DATASETS $EXT_ANALYSIS $EXT_OBS $EXT_RAND

# Integration tests (crates/*/tests/*.rs without proptest).
t simkernel_queueing crates/simkernel/tests/queueing_theory.rs $EXT_SIM $EXT_RAND
t rstar_tree_ops crates/rstar/tests/tree_ops.rs $ALL_EXT
t rstar_persistence crates/rstar/tests/persistence.rs $ALL_EXT
t rstar_layout_equivalence crates/rstar/tests/layout_equivalence.rs $ALL_EXT
t rstar_external_build crates/rstar/tests/external_build.rs $ALL_EXT
t sstree_ops crates/sstree/tests/sstree_ops.rs $ALL_EXT
t analysis_validation crates/analysis/tests/validation.rs $ALL_EXT
t core_algorithms crates/core/tests/algorithms.rs $ALL_EXT
t core_simulation crates/core/tests/simulation.rs $ALL_EXT
t core_observability crates/core/tests/observability.rs $ALL_EXT
t core_concurrency crates/core/tests/concurrency.rs $ALL_EXT
t core_extensions crates/core/tests/extensions.rs $ALL_EXT
t core_tighter_threshold crates/core/tests/tighter_threshold.rs $ALL_EXT
t core_faults crates/core/tests/faults.rs $ALL_EXT
t core_backend_parity crates/core/tests/backend_parity.rs $ALL_EXT
t end_to_end tests/end_to_end.rs $ALL_EXT

echo "ALL OFFLINE TESTS PASSED"
