//! Offline stand-in for `rand`: the trait surface the workspace uses
//! (`SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`)
//! over a splitmix64 generator. Deterministic but NOT the real StdRng
//! stream — good for typechecking and smoke runs only.

pub mod rngs {
    /// Stand-in for rand's StdRng (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng {
            state: seed ^ 0x9e3779b97f4a7c15,
        }
    }
}

fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// What `Rng::gen` can produce.
pub trait Standard: Sized {
    fn from_u64(v: u64) -> Self;
}
impl Standard for f64 {
    fn from_u64(v: u64) -> f64 {
        (v >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for f32 {
    fn from_u64(v: u64) -> f32 {
        (v >> 40) as f32 / (1u64 << 24) as f32
    }
}
impl Standard for u64 {
    fn from_u64(v: u64) -> u64 {
        v
    }
}
impl Standard for u32 {
    fn from_u64(v: u64) -> u32 {
        v as u32
    }
}
impl Standard for usize {
    fn from_u64(v: u64) -> usize {
        v as usize
    }
}
impl Standard for bool {
    fn from_u64(v: u64) -> bool {
        v & 1 == 1
    }
}

/// Per-type uniform sampling used by the blanket `SampleRange` impls.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_raw(lo: Self, hi: Self, inclusive: bool, raw: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_raw(lo: $t, hi: $t, inclusive: bool, raw: u64) -> $t {
                let span = (hi as $wide - lo as $wide) as u128 + inclusive as u128;
                assert!(span > 0, "empty range");
                (lo as $wide + (raw as u128 % span) as $wide) as $t
            }
        }
    )*};
}
uniform_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u128, usize => u128,
             i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_raw(lo: $t, hi: $t, _inclusive: bool, raw: u64) -> $t {
                assert!(lo <= hi, "empty range");
                let unit = (raw >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range arguments accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample(self, raw: u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, raw: u64) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_raw(self.start, self.end, false, raw)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, raw: u64) -> T {
        T::sample_raw(*self.start(), *self.end(), true, raw)
    }
}

pub trait Rng {
    fn raw_u64(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.raw_u64())
    }
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.raw_u64())
    }
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl Rng for rngs::StdRng {
    fn raw_u64(&mut self) -> u64 {
        next_u64(&mut self.state)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn raw_u64(&mut self) -> u64 {
        (**self).raw_u64()
    }
}
