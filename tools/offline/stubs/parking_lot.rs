//! Offline stand-in for parking_lot: std::sync wrappers with the
//! poison-free API surface the workspace uses.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}
