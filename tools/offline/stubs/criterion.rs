//! Offline stand-in for criterion 0.5: just enough API to typecheck the
//! workspace benches (and smoke-run them with a handful of iterations).
use std::fmt::Display;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Bencher;
impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
    }
}

pub struct BenchmarkId {
    name: String,
}
impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    group: String,
}
impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        eprintln!("bench {}/{}", self.group, id.name);
        f(&mut Bencher, input);
        self
    }
    pub fn bench_function<S: Into<String>, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        eprintln!("bench {}/{}", self.group, name.into());
        f(&mut Bencher);
        self
    }
    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion;
impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            group: name.into(),
        }
    }
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        eprintln!("bench {name}");
        f(&mut Bencher);
        self
    }
    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
