//! Offline typecheck stand-in for serde: blanket traits + no-op derives.
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
