//! Offline stand-in for the `bytes` crate: Vec-backed, functionally
//! equivalent for the little-endian cursor API the workspace codecs use.
use std::ops::Range;

pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Shared immutable byte buffer (here: an `Arc<[u8]>` window).
#[derive(Clone)]
pub struct Bytes {
    data: std::sync::Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
    pub fn len(&self) -> usize {
        self.end - self.start
    }
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
    pub fn slice(&self, r: Range<usize>) -> Bytes {
        assert!(r.start <= r.end && self.start + r.end <= self.end);
        Bytes {
            data: self.data.clone(),
            start: self.start + r.start,
            end: self.start + r.end,
        }
    }
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}
impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Growable byte buffer.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }
    pub fn len(&self) -> usize {
        self.data.len()
    }
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}
