//! Offline stand-in for the serde derive macros: emits nothing, which is
//! fine because the serde stub's traits are blanket-implemented.
extern crate proc_macro;
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
