#!/bin/bash
# Optimized offline build of the workspace libs with stub externals,
# for local perf measurement and running experiment bins without a
# registry (not a substitute for real cargo builds).
# Usage: tools/offline/build_opt.sh, then link a bin by hand, e.g.
#   rustc --edition 2021 -C opt-level=3 --crate-type bin \
#     -L dependency=target/offline/opt <externs...> \
#     crates/bench/src/bin/fault_sweep.rs -o /tmp/fault_sweep
set -e
cd "$(dirname "$0")/../.."
S=tools/offline
OUT=target/offline/opt
mkdir -p "$OUT"
O="-C opt-level=3 -C debuginfo=0"

echo "== stubs"
rustc --edition 2021 --crate-type proc-macro --crate-name serde_derive \
  $S/stubs/serde_derive.rs --out-dir $OUT
rustc --edition 2021 $O --crate-type lib --crate-name serde \
  --extern serde_derive=$OUT/libserde_derive.so \
  $S/stubs/serde.rs --out-dir $OUT
rustc --edition 2021 $O --crate-type lib --crate-name bytes \
  $S/stubs/bytes.rs --out-dir $OUT
rustc --edition 2021 $O --crate-type lib --crate-name parking_lot \
  $S/stubs/parking_lot.rs --out-dir $OUT
rustc --edition 2021 $O --crate-type lib --crate-name rand \
  $S/stubs/rand.rs --out-dir $OUT

EXT_SERDE="--extern serde=$OUT/libserde.rlib --extern serde_derive=$OUT/libserde_derive.so"
EXT_BYTES="--extern bytes=$OUT/libbytes.rlib"
EXT_PL="--extern parking_lot=$OUT/libparking_lot.rlib"
EXT_RAND="--extern rand=$OUT/librand.rlib"

lib() { # name path externs...
  local name=$1 path=$2; shift 2
  echo "== $name"
  rustc --edition 2021 $O --crate-type lib --crate-name $name -L dependency=$OUT "$@" \
    "$path" --out-dir $OUT
}

lib sqda_geom crates/geom/src/lib.rs $EXT_SERDE
lib sqda_storage crates/storage/src/lib.rs $EXT_BYTES $EXT_RAND $EXT_PL
lib sqda_simkernel crates/simkernel/src/lib.rs $EXT_RAND $EXT_SERDE
EXT_GEOM="--extern sqda_geom=$OUT/libsqda_geom.rlib"
EXT_STORAGE="--extern sqda_storage=$OUT/libsqda_storage.rlib"
EXT_SIM="--extern sqda_simkernel=$OUT/libsqda_simkernel.rlib"
lib sqda_obs crates/obs/src/lib.rs $EXT_STORAGE
EXT_OBS="--extern sqda_obs=$OUT/libsqda_obs.rlib"
lib sqda_rstar crates/rstar/src/lib.rs $EXT_GEOM $EXT_STORAGE $EXT_BYTES $EXT_PL $EXT_RAND
EXT_RSTAR="--extern sqda_rstar=$OUT/libsqda_rstar.rlib"
lib sqda_core crates/core/src/lib.rs $EXT_GEOM $EXT_STORAGE $EXT_RSTAR $EXT_SIM $EXT_OBS $EXT_RAND
EXT_CORE="--extern sqda_core=$OUT/libsqda_core.rlib"
lib sqda_sstree crates/sstree/src/lib.rs $EXT_GEOM $EXT_STORAGE $EXT_CORE $EXT_BYTES
EXT_SSTREE="--extern sqda_sstree=$OUT/libsqda_sstree.rlib"
lib sqda_datasets crates/datasets/src/lib.rs $EXT_GEOM $EXT_RAND
EXT_DATASETS="--extern sqda_datasets=$OUT/libsqda_datasets.rlib"
lib sqda_analysis crates/analysis/src/lib.rs $EXT_GEOM $EXT_RSTAR $EXT_STORAGE $EXT_SIM $EXT_OBS
EXT_ANALYSIS="--extern sqda_analysis=$OUT/libsqda_analysis.rlib"
lib sqda_bench crates/bench/src/lib.rs $EXT_GEOM $EXT_STORAGE $EXT_SIM $EXT_RSTAR \
  $EXT_CORE $EXT_DATASETS $EXT_ANALYSIS $EXT_SSTREE $EXT_OBS $EXT_RAND

echo "OPT LIBS BUILT"
