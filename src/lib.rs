//! # SQDA — Similarity Query Processing Using Disk Arrays
//!
//! A production-quality Rust reproduction of **Papadopoulos &
//! Manolopoulos, "Similarity Query Processing Using Disk Arrays",
//! SIGMOD 1998**: k-nearest-neighbour search over an R\*-tree declustered
//! across the disks of a RAID-0 array, evaluated through event-driven
//! simulation.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`geom`] — n-d points, MBRs, the `D_min`/`D_mm`/`D_max` metrics;
//! * [`storage`] — paged storage with disk+cylinder placement;
//! * [`simkernel`] — the event-driven disk-array simulator;
//! * [`rstar`] — the declustered, count-augmented R\*-tree;
//! * [`core`] — the BBSS/FPSS/CRSS/WOPTSS algorithms and executors;
//! * [`obs`] — simulation tracing: recorder seam, JSONL/Perfetto
//!   exports, metrics snapshots and per-query profiles;
//! * [`datasets`] — deterministic experiment data generators;
//! * [`sstree`] — the SS-tree (bounding spheres), running the same
//!   algorithms through the access-method abstraction;
//! * [`analysis`] — analytical selectivity and response-time models.
//!
//! See the `examples/` directory for runnable walkthroughs and
//! `crates/bench` for the binaries that regenerate every figure and table
//! of the paper's evaluation.
//!
//! ```
//! use sqda::prelude::*;
//! use std::sync::Arc;
//!
//! // A 4-disk array holding a 2-d tree.
//! let store = Arc::new(ArrayStore::new(4, 1449, 7));
//! let mut tree = RStarTree::create(
//!     store,
//!     RStarConfig::new(2),
//!     Box::new(ProximityIndex),
//! ).unwrap();
//! for i in 0..500u64 {
//!     tree.insert(Point::new(vec![(i % 31) as f64, (i % 17) as f64]), i).unwrap();
//! }
//! let mut crss = AlgorithmKind::Crss.build(&tree, Point::new(vec![5.0, 5.0]), 4).unwrap();
//! let run = run_query(&tree, crss.as_mut()).unwrap();
//! assert_eq!(run.results.len(), 4);
//! ```

pub use sqda_analysis as analysis;
pub use sqda_core as core;
pub use sqda_datasets as datasets;
pub use sqda_geom as geom;
pub use sqda_obs as obs;
pub use sqda_rstar as rstar;
pub use sqda_simkernel as simkernel;
pub use sqda_sstree as sstree;
pub use sqda_storage as storage;

/// One-stop imports for applications.
pub mod prelude {
    pub use sqda_core::{
        exec::run_query, AlgorithmKind, Crss, Simulation, SimulationReport, Workload,
    };
    pub use sqda_datasets::Dataset;
    pub use sqda_geom::{Point, Rect, Sphere};
    pub use sqda_rstar::decluster::ProximityIndex;
    pub use sqda_rstar::{Neighbor, RStarConfig, RStarTree};
    pub use sqda_simkernel::SystemParams;
    pub use sqda_storage::{ArrayStore, PageStore};
}
