//! The CPU cost model.

use crate::{SimTime, UtilizationTracker};

/// Instruction count for processing a batch of fetched MBR entries,
/// following Section 4.1 of the paper:
///
/// * scanning `n` fetched entries costs `2·n` instructions (fetch the
///   operand, compare),
/// * sorting the `m` surviving entries costs `3·m·log₂m` instructions
///   (heapsort/mergesort comparisons at 3 instructions each).
///
/// ```
/// use sqda_simkernel::cpu_instructions_for_batch;
/// assert_eq!(cpu_instructions_for_batch(10, 0), 20);
/// assert_eq!(cpu_instructions_for_batch(0, 8), 72); // 3 * 8 * 3
/// ```
pub fn cpu_instructions_for_batch(scanned: u64, sorted: u64) -> u64 {
    let scan = 2 * scanned;
    let sort = if sorted > 1 {
        // ceil(log2(m)) keeps the count integral and slightly conservative.
        let log2 = 64 - (sorted - 1).leading_zeros() as u64;
        3 * sorted * log2
    } else {
        0
    };
    scan + sort
}

/// The single processor of the system, modelled as an FCFS server whose
/// service time is `instructions / MIPS`.
pub struct Cpu {
    mips: f64,
    busy_until: SimTime,
    jobs: u64,
    total_instructions: u64,
    util: UtilizationTracker,
}

impl Cpu {
    /// Creates a CPU with the given MIPS rating (Table 1: 100 MIPS).
    ///
    /// # Panics
    ///
    /// Panics if `mips` is not positive.
    pub fn new(mips: f64) -> Self {
        assert!(mips > 0.0, "MIPS rate must be positive");
        Self {
            mips,
            busy_until: SimTime::ZERO,
            jobs: 0,
            total_instructions: 0,
            util: UtilizationTracker::new(),
        }
    }

    /// Time to execute `instructions` in isolation.
    pub fn execution_time(&self, instructions: u64) -> SimTime {
        SimTime::from_secs_f64(instructions as f64 / (self.mips * 1e6))
    }

    /// Submits a job of `instructions` at time `now`; returns completion.
    pub fn submit(&mut self, now: SimTime, instructions: u64) -> SimTime {
        self.submit_detailed(now, instructions).0
    }

    /// Like [`Cpu::submit`], but also returns the queueing delay before
    /// execution started: `(completion, queue)`. Timing is identical.
    pub fn submit_detailed(&mut self, now: SimTime, instructions: u64) -> (SimTime, SimTime) {
        let start = now.max(self.busy_until);
        let completion = start + self.execution_time(instructions);
        self.util.add_busy(start, completion);
        self.jobs += 1;
        self.total_instructions += instructions;
        self.busy_until = completion;
        (completion, start - now)
    }

    /// Submits a job with a fixed duration (e.g. the constant query
    /// startup cost of Table 1); returns completion.
    pub fn submit_duration(&mut self, now: SimTime, duration: SimTime) -> SimTime {
        self.submit_duration_detailed(now, duration).0
    }

    /// Like [`Cpu::submit_duration`], but also returns the queueing
    /// delay: `(completion, queue)`. Timing is identical.
    pub fn submit_duration_detailed(
        &mut self,
        now: SimTime,
        duration: SimTime,
    ) -> (SimTime, SimTime) {
        let start = now.max(self.busy_until);
        let completion = start + duration;
        self.util.add_busy(start, completion);
        self.jobs += 1;
        self.busy_until = completion;
        (completion, start - now)
    }

    /// Jobs executed.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Total instructions executed.
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Fraction of `[0, horizon]` the CPU spent computing.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.util.utilization(horizon)
    }

    /// The time this CPU becomes idle (for least-loaded dispatch in
    /// multiprocessor configurations).
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_cost_model() {
        // Scan only.
        assert_eq!(cpu_instructions_for_batch(100, 0), 200);
        // m = 1: no sorting work.
        assert_eq!(cpu_instructions_for_batch(0, 1), 0);
        // m = 2: 3 * 2 * 1.
        assert_eq!(cpu_instructions_for_batch(0, 2), 6);
        // m = 1024: 3 * 1024 * 10.
        assert_eq!(cpu_instructions_for_batch(0, 1024), 30720);
        // Combined.
        assert_eq!(cpu_instructions_for_batch(10, 2), 26);
    }

    #[test]
    fn hundred_mips_timing() {
        let cpu = Cpu::new(100.0);
        // 1M instructions at 100 MIPS = 10 ms.
        assert_eq!(
            cpu.execution_time(1_000_000),
            SimTime::from_millis_f64(10.0)
        );
    }

    #[test]
    fn fcfs_serialization() {
        let mut cpu = Cpu::new(100.0);
        let d1 = cpu.submit(SimTime::ZERO, 1_000_000);
        let d2 = cpu.submit(SimTime::ZERO, 1_000_000);
        assert_eq!(d1, SimTime::from_millis_f64(10.0));
        assert_eq!(d2, SimTime::from_millis_f64(20.0));
        assert_eq!(cpu.jobs(), 2);
        assert_eq!(cpu.total_instructions(), 2_000_000);
        assert!((cpu.utilization(d2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn detailed_reports_queueing_delay() {
        let mut cpu = Cpu::new(100.0);
        let (_, q1) = cpu.submit_detailed(SimTime::ZERO, 1_000_000);
        assert_eq!(q1, SimTime::ZERO);
        let (d2, q2) = cpu.submit_detailed(SimTime::ZERO, 1_000_000);
        assert_eq!(q2, SimTime::from_millis_f64(10.0));
        assert_eq!(d2, SimTime::from_millis_f64(20.0));
        let (d3, q3) = cpu.submit_duration_detailed(SimTime::ZERO, SimTime::from_millis_f64(5.0));
        assert_eq!(q3, SimTime::from_millis_f64(20.0));
        assert_eq!(d3, SimTime::from_millis_f64(25.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mips_panics() {
        let _ = Cpu::new(0.0);
    }
}
