//! Statistics collection for simulation runs.

use crate::SimTime;

/// Collects scalar samples (e.g. per-query response times) and reports
/// summary statistics.
///
/// Samples are stored, so exact percentiles are available; experiment runs
/// involve at most a few thousand queries, making storage negligible.
/// Moments are maintained online with Welford's algorithm, so the mean and
/// variance stay accurate even for adversarial inputs (large mean, tiny
/// variance) where a naive sum-of-squares pass cancels catastrophically.
#[derive(Debug, Clone, Default)]
pub struct SampleStats {
    samples: Vec<f64>,
    sorted: bool,
    // Welford accumulators: running mean and sum of squared deviations.
    mean: f64,
    m2: f64,
}

impl SampleStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is NaN.
    pub fn push(&mut self, sample: f64) {
        assert!(!sample.is_nan(), "NaN sample");
        self.samples.push(sample);
        self.sorted = false;
        let n = self.samples.len() as f64;
        let delta = sample - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (sample - self.mean);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n−1 denominator); 0 with < 2 samples.
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        // m2 is a sum of non-negative terms analytically; clamp the ulp
        // of negativity rounding can leave behind.
        (self.m2.max(0.0) / (n - 1) as f64).sqrt()
    }

    /// Minimum sample; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Maximum sample; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Exact percentile by nearest-rank (`p` in `[0, 100]`); 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.saturating_sub(1).min(self.samples.len() - 1)]
    }

    /// Half-width of the 95% confidence interval for the mean (normal
    /// approximation); 0 with < 2 samples.
    pub fn ci95_half_width(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        1.96 * self.std_dev() / (n as f64).sqrt()
    }

    /// Absorbs another collector's samples (e.g. merging per-worker
    /// stats after a parallel sweep).
    ///
    /// Moments are combined with Chan's parallel update, which is exact in
    /// the same sense as Welford's single-sample update — no re-summation
    /// over raw samples, no cancellation between large totals.
    pub fn merge(&mut self, other: &SampleStats) {
        let (na, nb) = (self.samples.len() as f64, other.samples.len() as f64);
        if nb > 0.0 {
            if na == 0.0 {
                self.mean = other.mean;
                self.m2 = other.m2;
            } else {
                let n = na + nb;
                let delta = other.mean - self.mean;
                self.mean += delta * nb / n;
                self.m2 += other.m2 + delta * delta * na * nb / n;
            }
        }
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Consumes the collector and produces every report field at once,
    /// sorting the samples a single time (the repeated-`percentile`
    /// pattern re-checks sortedness per call and needs `&mut` borrows
    /// at each use site).
    pub fn summary(mut self) -> StatsSummary {
        if !self.sorted && !self.samples.is_empty() {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
        StatsSummary {
            count: self.len(),
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min(),
            max: self.max(),
            median: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
            ci95_half_width: self.ci95_half_width(),
        }
    }
}

/// All summary fields of a [`SampleStats`], computed in one pass by
/// [`SampleStats::summary`]. Empty collectors yield all-zero summaries.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsSummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Nearest-rank median.
    pub median: f64,
    /// Nearest-rank 95th percentile.
    pub p95: f64,
    /// Nearest-rank 99th percentile.
    pub p99: f64,
    /// Half-width of the 95% CI for the mean.
    pub ci95_half_width: f64,
}

/// Accumulates busy intervals of a single server to report utilization.
///
/// Servers in this kernel are work-conserving FCFS, so busy intervals never
/// overlap and accumulate monotonically; the tracker only needs a running
/// sum.
#[derive(Debug, Clone, Default)]
pub struct UtilizationTracker {
    busy: SimTime,
}

impl UtilizationTracker {
    /// Creates an idle tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a busy interval `[start, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn add_busy(&mut self, start: SimTime, end: SimTime) {
        self.busy += end - start;
    }

    /// Total busy time.
    pub fn total_busy(&self) -> SimTime {
        self.busy
    }

    /// Busy fraction of `[0, horizon]`; 0 for a zero horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            (self.busy.as_secs_f64() / horizon.as_secs_f64()).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let mut s = SampleStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.13809).abs() < 1e-4);
        assert_eq!(s.len(), 8);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let mut s = SampleStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = SampleStats::new();
        for x in 1..=100 {
            s.push(x as f64);
        }
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(95.0), 95.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(0.0), 1.0);
        // Pushing after sorting still works.
        s.push(1000.0);
        assert_eq!(s.percentile(100.0), 1000.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_sample_rejected() {
        SampleStats::new().push(f64::NAN);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = SampleStats::new();
        let mut large = SampleStats::new();
        for i in 0..10 {
            small.push((i % 5) as f64);
        }
        for i in 0..1000 {
            large.push((i % 5) as f64);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = SampleStats::new();
        let mut b = SampleStats::new();
        for x in [1.0, 2.0, 3.0] {
            a.push(x);
        }
        for x in [4.0, 5.0] {
            b.push(x);
        }
        // Sort a first so merge must clear the sorted flag.
        let _ = a.percentile(50.0);
        a.merge(&b);
        assert_eq!(a.len(), 5);
        assert!((a.mean() - 3.0).abs() < 1e-12);
        assert_eq!(a.percentile(100.0), 5.0);
    }

    #[test]
    fn welford_survives_large_mean_small_variance() {
        // Samples around 1e9 with unit-scale spread: the naive
        // E[x²] − E[x]² formulation loses all significant digits here
        // (1e18 − 1e18); Welford keeps ~12.
        let mut s = SampleStats::new();
        let offsets = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
        for o in offsets {
            s.push(1.0e9 + o);
        }
        // The inputs themselves are only representable to ~1.2e-7 at this
        // magnitude, so agreement to 1e-6 is the best any algorithm can do;
        // a cancelling sum-of-squares pass would be off by O(1) or produce
        // a zero/negative variance.
        let true_mean = 1.0e9 + 0.55;
        let true_std = 0.302_765_035_409_749_6; // std of 0.1..=1.0 step 0.1
        assert!((s.mean() - true_mean).abs() < 1e-6, "mean {}", s.mean());
        assert!(
            (s.std_dev() - true_std).abs() < 1e-6,
            "std {} vs {true_std}",
            s.std_dev()
        );
    }

    #[test]
    fn merge_is_numerically_stable_and_matches_sequential() {
        // Two large-mean halves merged must agree with pushing the whole
        // stream into one collector.
        let mut whole = SampleStats::new();
        let mut left = SampleStats::new();
        let mut right = SampleStats::new();
        for i in 0..1000 {
            let x = 5.0e8 + (i % 17) as f64 * 0.25;
            whole.push(x);
            if i < 400 {
                left.push(x);
            } else {
                right.push(x);
            }
        }
        left.merge(&right);
        assert_eq!(left.len(), whole.len());
        assert!((left.mean() - whole.mean()).abs() < 1e-6);
        // Same representability bound as above: 5e8 · ε ≈ 6e-8 per term.
        assert!((left.std_dev() - whole.std_dev()).abs() < 1e-6);
        assert!(left.std_dev() > 1.0, "variance collapsed: {}", left.std_dev());
        // Merging into an empty collector adopts the other's moments.
        let mut empty = SampleStats::new();
        empty.merge(&whole);
        assert_eq!(empty.mean(), whole.mean());
        assert_eq!(empty.std_dev(), whole.std_dev());
        // Merging an empty collector is a no-op on the moments.
        let before = (whole.mean(), whole.std_dev());
        whole.merge(&SampleStats::new());
        assert_eq!((whole.mean(), whole.std_dev()), before);
    }

    #[test]
    fn summary_matches_individual_accessors() {
        let mut s = SampleStats::new();
        for x in 1..=100 {
            s.push(x as f64);
        }
        let mut reference = s.clone();
        let summary = s.summary();
        assert_eq!(summary.count, 100);
        assert_eq!(summary.mean, reference.mean());
        assert_eq!(summary.std_dev, reference.std_dev());
        assert_eq!(summary.min, 1.0);
        assert_eq!(summary.max, 100.0);
        assert_eq!(summary.median, reference.percentile(50.0));
        assert_eq!(summary.p95, reference.percentile(95.0));
        assert_eq!(summary.p99, reference.percentile(99.0));
        assert_eq!(summary.ci95_half_width, reference.ci95_half_width());
        // Empty summary is all zeros.
        let empty = SampleStats::new().summary();
        assert_eq!(empty, StatsSummary::default());
    }

    #[test]
    fn utilization_tracker() {
        let mut u = UtilizationTracker::new();
        u.add_busy(SimTime::from_nanos(0), SimTime::from_nanos(50));
        u.add_busy(SimTime::from_nanos(80), SimTime::from_nanos(100));
        assert_eq!(u.total_busy(), SimTime::from_nanos(70));
        assert!((u.utilization(SimTime::from_nanos(100)) - 0.7).abs() < 1e-12);
        assert_eq!(u.utilization(SimTime::ZERO), 0.0);
    }
}
