//! Poisson query arrivals.

use crate::SimTime;
use rand::rngs::StdRng;
use rand::Rng;

/// Generates query arrival times following a Poisson process with mean
/// rate λ arrivals per second (Section 4.1: "Query arrivals follow a
/// Poisson distribution with mean λ arrivals per second. Therefore, the
/// query interarrival time interval is a random variable following an
/// exponential distribution.").
pub struct PoissonArrivals {
    lambda: f64,
    next: SimTime,
}

impl PoissonArrivals {
    /// Creates a process with rate `lambda` (> 0) arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not positive and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "arrival rate must be positive, got {lambda}"
        );
        Self {
            lambda,
            next: SimTime::ZERO,
        }
    }

    /// The configured rate λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draws the next arrival time (inverse-CDF exponential sampling).
    pub fn next_arrival(&mut self, rng: &mut StdRng) -> SimTime {
        // U in (0,1]: avoid ln(0).
        let u: f64 = 1.0 - rng.gen::<f64>();
        let gap = -u.ln() / self.lambda;
        self.next += SimTime::from_secs_f64(gap);
        self.next
    }

    /// Generates the first `n` arrival times.
    pub fn take(&mut self, n: usize, rng: &mut StdRng) -> Vec<SimTime> {
        (0..n).map(|_| self.next_arrival(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn arrivals_are_increasing() {
        let mut p = PoissonArrivals::new(5.0);
        let mut rng = StdRng::seed_from_u64(3);
        let times = p.take(1000, &mut rng);
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn mean_interarrival_matches_rate() {
        let lambda = 8.0;
        let mut p = PoissonArrivals::new(lambda);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let times = p.take(n, &mut rng);
        let total = times.last().unwrap().as_secs_f64();
        let observed_rate = n as f64 / total;
        assert!(
            (observed_rate - lambda).abs() / lambda < 0.05,
            "observed rate {observed_rate} vs λ {lambda}"
        );
    }

    #[test]
    fn deterministic_with_seed() {
        let gen = |seed| {
            let mut p = PoissonArrivals::new(2.0);
            let mut rng = StdRng::seed_from_u64(seed);
            p.take(10, &mut rng)
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = PoissonArrivals::new(0.0);
    }
}
