//! Whole-system simulation parameters.

use crate::{DiskParams, SimTime};
use serde::{Deserialize, Serialize};

/// Parameters of the simulated system (Tables 1–2 of the paper).
///
/// Two extensions beyond the paper's RAID-0 baseline implement its
/// "future research" directions: [`SystemParams::mirrored_reads`]
/// (shadowed disks, RAID-1 read balancing) and
/// [`SystemParams::num_cpus`] (a shared-memory multiprocessor front
/// end).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemParams {
    /// Number of disks in the RAID-0 array.
    pub num_disks: u32,
    /// CPU execution speed in MIPS (Table 1: 100).
    pub cpu_mips: f64,
    /// Number of processors. 1 reproduces the paper; more implements the
    /// paper's shared-memory-multiprocessor future-work scenario: each
    /// batch is handled by the least-loaded CPU.
    pub num_cpus: u32,
    /// Fixed query startup cost in seconds (Table 1: 0.001 s).
    pub query_startup_s: f64,
    /// Time to move one page across the shared I/O bus, in ms.
    pub bus_transfer_ms: f64,
    /// Per-drive characteristics (Table 2, HP-C2200A).
    pub disk: DiskParams,
    /// Shadowed (mirrored) disks: disks are paired `(d, d + num_disks/2)`
    /// for `d < num_disks/2` and every page has a replica on its disk's
    /// partner; each read is served by whichever disk of the pair frees
    /// up first (with an odd array the last disk is unpaired). `false`
    /// reproduces the paper's RAID-0 system.
    pub mirrored_reads: bool,
}

impl Default for SystemParams {
    fn default() -> Self {
        Self {
            num_disks: 10,
            cpu_mips: 100.0,
            num_cpus: 1,
            query_startup_s: 0.001,
            bus_transfer_ms: 0.4,
            disk: DiskParams::default(),
            mirrored_reads: false,
        }
    }
}

impl SystemParams {
    /// Convenience constructor varying only the number of disks.
    pub fn with_disks(num_disks: u32) -> Self {
        Self {
            num_disks,
            ..Self::default()
        }
    }

    /// The query startup cost as simulated time.
    pub fn query_startup(&self) -> SimTime {
        SimTime::from_secs_f64(self.query_startup_s)
    }

    /// The bus transfer time as simulated time.
    pub fn bus_transfer(&self) -> SimTime {
        SimTime::from_millis_f64(self.bus_transfer_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_tables() {
        let p = SystemParams::default();
        assert_eq!(p.cpu_mips, 100.0);
        assert_eq!(p.query_startup_s, 0.001);
        assert_eq!(p.disk.num_cylinders, 1449);
        assert_eq!(p.disk.revolution_time_s, 0.0149);
    }

    #[test]
    fn with_disks_overrides_count_only() {
        let p = SystemParams::with_disks(40);
        assert_eq!(p.num_disks, 40);
        assert_eq!(p.cpu_mips, 100.0);
    }

    #[test]
    fn time_conversions() {
        let p = SystemParams::default();
        assert_eq!(p.query_startup(), SimTime::from_millis_f64(1.0));
        assert_eq!(p.bus_transfer(), SimTime::from_nanos(400_000));
    }
}
