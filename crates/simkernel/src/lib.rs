//! Discrete event-driven simulation kernel for a RAID level-0 disk array.
//!
//! This crate reproduces the simulation model of Section 4.1 of the paper
//! (Figure 7): each disk has its own FCFS queue; a shared I/O bus with
//! constant per-page service time connects the disks to the processor;
//! queries arrive according to a Poisson process; the CPU cost of
//! processing a batch of MBRs is `2·N + 3·M·log₂M` instructions at a fixed
//! MIPS rate.
//!
//! Disk service times use the two-phase non-linear seek model of
//! Ruemmler & Wilkes / Manolopoulos:
//!
//! ```text
//!            ⎧ 0                        d = 0
//! T_seek(d) = ⎨ c1 + c2·√d               0 < d ≤ sdt   (acceleration phase)
//!            ⎩ c3 + c4·d                d > sdt       (steady phase)
//! ```
//!
//! plus uniformly distributed rotational latency, a constant transfer
//! time, and constant controller overhead. The default constants are the
//! published HP-C2200A figures (1449 cylinders, 14.9 ms revolution), the
//! drive the paper simulates.
//!
//! The kernel is deliberately generic: it knows nothing about R\*-trees or
//! similarity queries. `sqda-core` drives it by scheduling events for each
//! query's state machine.

mod arrivals;
mod bus;
mod cpu;
mod disk;
mod events;
pub mod fault;
mod params;
mod rng;
mod stats;
mod time;

pub use arrivals::PoissonArrivals;
pub use bus::Bus;
pub use cpu::{cpu_instructions_for_batch, Cpu};
pub use disk::{Disk, DiskParams, DiskServiceDetail};
pub use fault::{DiskFault, DiskFaultProfile, FaultPlan, RetryPolicy};
pub use events::EventQueue;
pub use params::SystemParams;
pub use rng::{splitmix64, SeedSequence};
pub use stats::{SampleStats, StatsSummary, UtilizationTracker};
pub use time::SimTime;
