//! A generic time-ordered event queue.

use crate::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A discrete-event queue delivering events in non-decreasing time order.
///
/// Events carrying equal timestamps are delivered in insertion order
/// (FIFO), which makes simulation runs deterministic — a requirement for
/// reproducible experiments and for meaningful A/B comparisons between
/// algorithms.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at time zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `capacity` pending events
    /// before the heap reallocates. Callers that know the initial event
    /// population (e.g. one arrival per workload query) pre-size the heap
    /// so the scheduling burst at simulation start does not grow it
    /// repeatedly.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The timestamp of the most recently popped event (simulation "now").
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current simulation time:
    /// scheduling into the past indicates a logic error in the caller and
    /// would silently corrupt FCFS queue ordering.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past ({time} < now {})",
            self.now
        );
        let entry = Entry {
            time,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.heap.push(Reverse(entry));
    }

    /// Pops the earliest event, advancing simulation time to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Peeks at the timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_broken_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(16);
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_nanos(2), "b");
        q.schedule(SimTime::from_nanos(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        // Schedule relative to now.
        q.schedule(t + SimTime::from_nanos(5), 2);
        q.schedule(t, 3); // same time as now is allowed
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }
}
