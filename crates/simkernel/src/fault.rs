//! Deterministic fault injection for the simulated disk array.
//!
//! A [`FaultPlan`] is a declarative, seed-reproducible description of
//! everything that goes wrong with the array during a run: fail-stop
//! outages (with optional recovery), transient slow-disk windows
//! (latency multipliers) and hot-spot contention windows (additive
//! per-request delay). The plan is resolved per disk into a
//! [`DiskFaultProfile`] that the [`Disk`](crate::Disk) timing model and
//! the executor's routing layer consult.
//!
//! Determinism contract: a plan is pure data — evaluating it draws no
//! randomness, so two runs with the same plan, workload and seed are
//! bit-identical. The only randomness is in *constructing* seed-driven
//! plans ([`FaultPlan::fail_disks`]), which uses its own `StdRng` stream
//! and therefore never perturbs the simulation's RNG. An empty plan
//! ([`FaultPlan::none`]) is guaranteed to leave every code path of the
//! kernel and executor untouched (pinned by parity tests).

use crate::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injected fault, scoped to a single disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiskFault {
    /// The disk stops serving at `at` (fail-stop). If `recovers_at` is
    /// set the outage is transient and the disk serves again from that
    /// instant; otherwise it stays down for the rest of the run.
    FailStop {
        /// Index of the failing disk.
        disk: u32,
        /// When the disk stops serving.
        at: SimTime,
        /// When (if ever) it comes back.
        recovers_at: Option<SimTime>,
    },
    /// Every request whose service starts in `[from, until)` takes
    /// `multiplier`× its nominal service time (thermal throttling, media
    /// retries, a degraded head).
    SlowWindow {
        /// Index of the slowed disk.
        disk: u32,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Service-time multiplier (≥ 1 for a slowdown).
        multiplier: f64,
    },
    /// Every request whose service starts in `[from, until)` pays an
    /// extra constant delay (contention from a co-located workload).
    HotSpot {
        /// Index of the contended disk.
        disk: u32,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Additional service time per request.
        extra: SimTime,
    },
}

impl DiskFault {
    /// The disk this fault applies to.
    pub fn disk(&self) -> u32 {
        match *self {
            DiskFault::FailStop { disk, .. }
            | DiskFault::SlowWindow { disk, .. }
            | DiskFault::HotSpot { disk, .. } => disk,
        }
    }
}

/// How the executor retries a read whose every replica is unavailable.
///
/// A query that finds no live replica for a page does not fail
/// immediately: it re-probes after `backoff`, up to `max_attempts`
/// probes in total, and only then surfaces a typed unavailability
/// error. This bounds degraded-mode response time (no hangs) while
/// letting queries ride out transient outages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total probes before giving up (≥ 1; the first probe counts).
    pub max_attempts: u32,
    /// Delay between probes.
    pub backoff: SimTime,
}

impl Default for RetryPolicy {
    /// Three probes, 5 ms apart — two retries on top of the initial
    /// attempt, bounding the added latency at ~10 ms.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff: SimTime::from_millis_f64(5.0),
        }
    }
}

/// A deterministic schedule of disk faults for one simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    faults: Vec<DiskFault>,
    retry: RetryPolicy,
}

impl FaultPlan {
    /// The empty plan: nothing fails. Runs under the empty plan are
    /// byte-identical to runs without any plan at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The injected faults, in insertion order.
    pub fn faults(&self) -> &[DiskFault] {
        &self.faults
    }

    /// The retry policy queries use when no replica is available.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Adds a permanent fail-stop of `disk` at `at`.
    pub fn fail_stop(mut self, disk: u32, at: SimTime) -> Self {
        self.faults.push(DiskFault::FailStop {
            disk,
            at,
            recovers_at: None,
        });
        self
    }

    /// Adds a transient outage of `disk` over `[at, recovers_at)`.
    ///
    /// # Panics
    ///
    /// Panics if `recovers_at <= at` (an empty outage is a plan bug).
    pub fn transient_outage(mut self, disk: u32, at: SimTime, recovers_at: SimTime) -> Self {
        assert!(recovers_at > at, "outage must end after it starts");
        self.faults.push(DiskFault::FailStop {
            disk,
            at,
            recovers_at: Some(recovers_at),
        });
        self
    }

    /// Adds a slow window on `disk`: requests starting in `[from,
    /// until)` take `multiplier`× their nominal service time.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or the multiplier is not a
    /// positive finite number.
    pub fn slow_window(mut self, disk: u32, from: SimTime, until: SimTime, multiplier: f64) -> Self {
        assert!(until > from, "slow window must end after it starts");
        assert!(
            multiplier.is_finite() && multiplier > 0.0,
            "multiplier must be positive and finite, got {multiplier}"
        );
        self.faults.push(DiskFault::SlowWindow {
            disk,
            from,
            until,
            multiplier,
        });
        self
    }

    /// Adds a hot-spot window on `disk`: requests starting in `[from,
    /// until)` pay `extra` additional service time.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn hot_spot(mut self, disk: u32, from: SimTime, until: SimTime, extra: SimTime) -> Self {
        assert!(until > from, "hot-spot window must end after it starts");
        self.faults.push(DiskFault::HotSpot {
            disk,
            from,
            until,
            extra,
        });
        self
    }

    /// Builds a plan failing `count` distinct disks (chosen uniformly
    /// without replacement from `0..num_disks`, driven only by `seed`)
    /// permanently at time `at`. The selection RNG is private to this
    /// constructor, so building a plan never disturbs the simulation's
    /// own random stream.
    ///
    /// # Panics
    ///
    /// Panics if `count > num_disks`.
    pub fn fail_disks(count: usize, at: SimTime, num_disks: u32, seed: u64) -> Self {
        assert!(
            count <= num_disks as usize,
            "cannot fail {count} of {num_disks} disks"
        );
        // Partial Fisher–Yates: the first `count` slots are a uniform
        // sample without replacement.
        let mut pool: Vec<u32> = (0..num_disks).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..count {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        let mut plan = Self::none();
        for &disk in &pool[..count] {
            plan = plan.fail_stop(disk, at);
        }
        plan
    }

    /// Disks with at least one fail-stop fault, deduplicated, ascending.
    pub fn failed_disks(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .faults
            .iter()
            .filter_map(|f| match *f {
                DiskFault::FailStop { disk, .. } => Some(disk),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The largest disk index any fault references (`None` for the
    /// empty plan) — lets executors validate a plan against the array.
    pub fn max_disk(&self) -> Option<u32> {
        self.faults.iter().map(|f| f.disk()).max()
    }

    /// Resolves the plan into the profile governing one disk.
    pub fn profile_for(&self, disk: u32) -> DiskFaultProfile {
        let mut p = DiskFaultProfile::clean();
        for f in &self.faults {
            match *f {
                DiskFault::FailStop {
                    disk: d,
                    at,
                    recovers_at,
                } if d == disk => p.fail.push((at, recovers_at)),
                DiskFault::SlowWindow {
                    disk: d,
                    from,
                    until,
                    multiplier,
                } if d == disk => p.slow.push((from, until, multiplier)),
                DiskFault::HotSpot {
                    disk: d,
                    from,
                    until,
                    extra,
                } if d == disk => p.hot.push((from, until, extra)),
                _ => {}
            }
        }
        p
    }
}

/// The fault schedule of a single disk, resolved from a [`FaultPlan`].
///
/// A clean profile ([`DiskFaultProfile::is_clean`]) is guaranteed not to
/// alter a single bit of the disk's timing arithmetic — the degraded
/// branch is gated on it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiskFaultProfile {
    /// Fail-stop windows `(at, recovers_at)`.
    fail: Vec<(SimTime, Option<SimTime>)>,
    /// Slow windows `(from, until, multiplier)`.
    slow: Vec<(SimTime, SimTime, f64)>,
    /// Hot-spot windows `(from, until, extra)`.
    hot: Vec<(SimTime, SimTime, SimTime)>,
}

impl DiskFaultProfile {
    /// The profile of a healthy disk.
    pub fn clean() -> Self {
        Self::default()
    }

    /// Whether no fault ever touches this disk.
    pub fn is_clean(&self) -> bool {
        self.fail.is_empty() && self.slow.is_empty() && self.hot.is_empty()
    }

    /// Whether the disk is failed (down) at instant `at`.
    pub fn is_failed(&self, at: SimTime) -> bool {
        self.fail
            .iter()
            .any(|&(start, end)| at >= start && end.is_none_or(|e| at < e))
    }

    /// Combined service-time multiplier for a request whose service
    /// starts at `at` (product of all active slow windows; 1.0 when
    /// none are active).
    pub fn multiplier(&self, at: SimTime) -> f64 {
        self.slow
            .iter()
            .filter(|&&(from, until, _)| at >= from && at < until)
            .map(|&(_, _, m)| m)
            .product()
    }

    /// Extra service time for a request whose service starts at `at`
    /// (sum of all active hot-spot windows).
    pub fn extra(&self, at: SimTime) -> SimTime {
        self.hot
            .iter()
            .filter(|&&(from, until, _)| at >= from && at < until)
            .fold(SimTime::ZERO, |acc, &(_, _, e)| acc + e)
    }

    /// Fail-stop windows `(at, recovers_at)`, in plan order.
    pub fn fail_windows(&self) -> &[(SimTime, Option<SimTime>)] {
        &self.fail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: f64) -> SimTime {
        SimTime::from_millis_f64(x)
    }

    #[test]
    fn empty_plan_is_clean_everywhere() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.max_disk(), None);
        for d in 0..8 {
            let p = plan.profile_for(d);
            assert!(p.is_clean());
            assert!(!p.is_failed(SimTime::ZERO));
            assert_eq!(p.multiplier(ms(1.0)), 1.0);
            assert_eq!(p.extra(ms(1.0)), SimTime::ZERO);
        }
    }

    #[test]
    fn fail_stop_windows() {
        let plan = FaultPlan::none()
            .fail_stop(2, ms(10.0))
            .transient_outage(3, ms(0.0), ms(5.0));
        let p2 = plan.profile_for(2);
        assert!(!p2.is_failed(ms(9.0)));
        assert!(p2.is_failed(ms(10.0)));
        assert!(p2.is_failed(ms(1e6))); // permanent
        let p3 = plan.profile_for(3);
        assert!(p3.is_failed(SimTime::ZERO));
        assert!(p3.is_failed(ms(4.9)));
        assert!(!p3.is_failed(ms(5.0))); // recovery instant serves again
        assert_eq!(plan.failed_disks(), vec![2, 3]);
        assert_eq!(plan.max_disk(), Some(3));
        // Untouched disk stays clean.
        assert!(plan.profile_for(0).is_clean());
    }

    #[test]
    fn slow_and_hot_windows_compose() {
        let plan = FaultPlan::none()
            .slow_window(1, ms(0.0), ms(10.0), 2.0)
            .slow_window(1, ms(5.0), ms(15.0), 3.0)
            .hot_spot(1, ms(0.0), ms(10.0), ms(1.0))
            .hot_spot(1, ms(5.0), ms(15.0), ms(2.0));
        let p = plan.profile_for(1);
        assert!(!p.is_clean());
        assert!(!p.is_failed(ms(1.0)));
        assert_eq!(p.multiplier(ms(1.0)), 2.0);
        assert_eq!(p.multiplier(ms(7.0)), 6.0); // overlap: product
        assert_eq!(p.multiplier(ms(12.0)), 3.0);
        assert_eq!(p.multiplier(ms(15.0)), 1.0); // until is exclusive
        assert_eq!(p.extra(ms(7.0)), ms(3.0)); // overlap: sum
        assert_eq!(p.extra(ms(12.0)), ms(2.0));
    }

    #[test]
    fn seeded_fail_disks_is_deterministic_and_distinct() {
        let a = FaultPlan::fail_disks(3, ms(2.0), 10, 42);
        let b = FaultPlan::fail_disks(3, ms(2.0), 10, 42);
        assert_eq!(a, b);
        let disks = a.failed_disks();
        assert_eq!(disks.len(), 3, "distinct disks: {disks:?}");
        assert!(disks.iter().all(|&d| d < 10));
        // A different seed (usually) picks a different set; at minimum
        // the construction must stay in range and distinct.
        let c = FaultPlan::fail_disks(10, ms(2.0), 10, 7);
        assert_eq!(c.failed_disks(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn retry_policy_roundtrip() {
        let plan = FaultPlan::none().with_retry(RetryPolicy {
            max_attempts: 5,
            backoff: ms(1.0),
        });
        assert_eq!(plan.retry().max_attempts, 5);
        assert_eq!(plan.retry().backoff, ms(1.0));
        let d = RetryPolicy::default();
        assert!(d.max_attempts >= 1);
        assert!(d.backoff > SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "must end after it starts")]
    fn empty_slow_window_panics() {
        let _ = FaultPlan::none().slow_window(0, ms(5.0), ms(5.0), 2.0);
    }
}
