//! Simulated time.

use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in integer nanoseconds since simulation
/// start.
///
/// Integer nanoseconds keep event ordering exact and runs bit-reproducible
/// across platforms; `f64` seconds appear only at the presentation layer
/// ([`SimTime::as_secs_f64`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or overflows the nanosecond range.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs >= 0.0 && secs.is_finite(),
            "time must be finite and non-negative, got {secs}"
        );
        let ns = secs * 1e9;
        assert!(ns <= u64::MAX as f64, "time overflow: {secs} s");
        SimTime(ns.round() as u64)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time in seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Saturating difference: `self - other`, or zero if `other` is later.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("simulated time overflowed u64 nanoseconds"),
        )
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_sub`] when that can happen.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("negative simulated duration"),
        )
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimTime::from_millis_f64(2.0).as_nanos(), 2_000_000);
        assert!((SimTime::from_nanos(500).as_secs_f64() - 5e-7).abs() < 1e-18);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!(a + b, SimTime::from_nanos(140));
        assert_eq!(a - b, SimTime::from_nanos(60));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_nanos(140));
    }

    #[test]
    #[should_panic(expected = "negative simulated duration")]
    fn negative_duration_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_panics() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis_f64(1.0).to_string(), "0.001000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
    }
}
