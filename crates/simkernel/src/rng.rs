//! Seed-stream splitting for replicated experiment runs.
//!
//! Replicated benchmarks need one independent RNG stream per replication
//! while keeping the first replication byte-identical to the historical
//! single-run path. [`SeedSequence`] provides that: `stream(0)` is the
//! master seed itself (legacy compatibility), and `stream(i)` for `i > 0`
//! derives a statistically independent seed through SplitMix64 mixing.

/// One round of the SplitMix64 output function over `x`.
///
/// SplitMix64 is a full-period bijective mixer (Steele, Lea & Flood,
/// "Fast splittable pseudorandom number generators", OOPSLA 2014); it is
/// the standard tool for turning correlated integers (here: seed ⊕
/// stream-index products) into decorrelated seeds.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives per-replication seeds from one master seed.
///
/// Stream 0 **is** the master seed, so a single-replication run draws
/// exactly the numbers the pre-replication code drew; streams `1..` are
/// SplitMix64-derived and independent of each other and of stream 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `master`.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The master seed this sequence was built from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Seed for stream `i`. `stream(0) == master` by contract.
    pub fn stream(&self, i: u64) -> u64 {
        if i == 0 {
            self.master
        } else {
            // The Weyl increment keeps distinct indices far apart in the
            // mixer's input space even for adjacent small integers.
            splitmix64(self.master ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_zero_is_master() {
        for master in [0u64, 1, 42, u64::MAX, 0x5eed] {
            assert_eq!(SeedSequence::new(master).stream(0), master);
        }
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let seq = SeedSequence::new(4242);
        let a: Vec<u64> = (0..64).map(|i| seq.stream(i)).collect();
        let b: Vec<u64> = (0..64).map(|i| seq.stream(i)).collect();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len(), "seed streams collided: {a:?}");
    }

    #[test]
    fn different_masters_diverge() {
        let a = SeedSequence::new(1);
        let b = SeedSequence::new(2);
        let overlap = (1..64).filter(|&i| a.stream(i) == b.stream(i)).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn splitmix_mixes_adjacent_inputs() {
        // Adjacent inputs must differ in roughly half their output bits.
        let d = (splitmix64(7) ^ splitmix64(8)).count_ones();
        assert!((16..=48).contains(&d), "poor avalanche: {d} bits");
    }
}
