//! Disk drive model: two-phase non-linear seek, rotational latency,
//! transfer and controller overhead, behind an FCFS queue.

use crate::{DiskFaultProfile, SimTime, UtilizationTracker};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Physical parameters of one disk drive.
///
/// Defaults model the HP-C2200A drive used in the paper's simulation
/// (Table 2; constants from Ruemmler & Wilkes, *An Introduction to Disk
/// Drive Modeling*, IEEE Computer 1994).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskParams {
    /// Number of cylinders (`Cyl` in Table 2).
    pub num_cylinders: u32,
    /// Constant term of the short-seek (acceleration) phase, in ms.
    pub c1_ms: f64,
    /// √-coefficient of the short-seek phase, in ms per √cylinder.
    pub c2_ms: f64,
    /// Constant term of the long-seek (steady) phase, in ms.
    pub c3_ms: f64,
    /// Linear coefficient of the long-seek phase, in ms per cylinder.
    pub c4_ms: f64,
    /// Seek distance threshold `sdt` separating the two phases.
    pub seek_distance_threshold: u32,
    /// Full revolution time in seconds (`T_rev` = 0.0149 s in Table 2).
    pub revolution_time_s: f64,
    /// Time to transfer one page off the platters, in ms.
    pub transfer_ms: f64,
    /// Constant controller overhead per request, in ms.
    pub controller_overhead_ms: f64,
}

impl Default for DiskParams {
    fn default() -> Self {
        Self {
            num_cylinders: 1449,
            c1_ms: 3.24,
            c2_ms: 0.400,
            c3_ms: 8.00,
            c4_ms: 0.008,
            seek_distance_threshold: 383,
            revolution_time_s: 0.0149,
            transfer_ms: 1.0,
            controller_overhead_ms: 1.0,
        }
    }
}

impl DiskParams {
    /// Seek time for a head movement of `distance` cylinders.
    ///
    /// ```
    /// use sqda_simkernel::DiskParams;
    /// let p = DiskParams::default();
    /// assert_eq!(p.seek_time_s(0), 0.0);
    /// assert!(p.seek_time_s(100) < p.seek_time_s(1000));
    /// ```
    pub fn seek_time_s(&self, distance: u32) -> f64 {
        if distance == 0 {
            0.0
        } else if distance <= self.seek_distance_threshold {
            (self.c1_ms + self.c2_ms * (distance as f64).sqrt()) / 1e3
        } else {
            (self.c3_ms + self.c4_ms * distance as f64) / 1e3
        }
    }

    /// Average rotational latency (half a revolution).
    pub fn avg_rotational_latency_s(&self) -> f64 {
        self.revolution_time_s / 2.0
    }

    /// A worst-case bound on one request's service time (full-stroke seek,
    /// full revolution, transfer, overhead).
    pub fn max_service_time_s(&self) -> f64 {
        self.seek_time_s(self.num_cylinders.saturating_sub(1))
            + self.revolution_time_s
            + (self.transfer_ms + self.controller_overhead_ms) / 1e3
    }
}

/// One simulated disk: an FCFS queue in front of a single head assembly.
///
/// Requests are submitted in simulation-time order; each request's service
/// time is determined by the seek distance from the head position left by
/// the previous request, a uniformly random rotational latency, and the
/// constant transfer/overhead terms. Because the queue is FCFS and
/// submissions arrive in time order, service order equals submission order
/// and completion times can be computed at submission.
pub struct Disk {
    params: DiskParams,
    busy_until: SimTime,
    head_cylinder: u32,
    requests: u64,
    util: UtilizationTracker,
    total_wait: SimTime,
    total_service: SimTime,
    /// Completion times of outstanding requests, oldest first; entries
    /// at or before the current submission time are drained so the
    /// remaining length is the queue depth the new request sees.
    outstanding: VecDeque<SimTime>,
    /// Latest submission time seen, enforcing the FCFS contract.
    last_submit: SimTime,
    /// Injected fault schedule ([`DiskFaultProfile::clean`] by default).
    fault: DiskFaultProfile,
}

/// The full timing of one disk request, as computed at submission.
/// The phase components are reported individually for observability;
/// the authoritative completion time is `completion` (computed from the
/// summed service like [`Disk::submit`] always has).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskServiceDetail {
    /// When the page is ready to go on the bus.
    pub completion: SimTime,
    /// FCFS queueing delay before service started.
    pub queue: SimTime,
    /// Head-movement time.
    pub seek: SimTime,
    /// Rotational latency (uniformly drawn).
    pub rotation: SimTime,
    /// Platter transfer plus controller overhead.
    pub transfer: SimTime,
    /// Requests waiting or in service when this one was submitted
    /// (this request excluded).
    pub queue_depth: u32,
}

impl Disk {
    /// Creates an idle disk with its head parked at cylinder 0 (the paper
    /// initializes all arms at cylinder zero).
    pub fn new(params: DiskParams) -> Self {
        Self {
            params,
            busy_until: SimTime::ZERO,
            head_cylinder: 0,
            requests: 0,
            util: UtilizationTracker::new(),
            total_wait: SimTime::ZERO,
            total_service: SimTime::ZERO,
            outstanding: VecDeque::new(),
            last_submit: SimTime::ZERO,
            fault: DiskFaultProfile::clean(),
        }
    }

    /// Installs the disk's fault schedule (see
    /// [`FaultPlan`](crate::FaultPlan)). A clean profile leaves every
    /// timing computation bit-identical to an un-faulted disk.
    pub fn set_fault_profile(&mut self, fault: DiskFaultProfile) {
        self.fault = fault;
    }

    /// The disk's fault schedule.
    pub fn fault_profile(&self) -> &DiskFaultProfile {
        &self.fault
    }

    /// Whether the disk is failed (fail-stop) at instant `at`. Routing
    /// around failed disks is the executor's job; the timing model keeps
    /// serving so a submission that slipped through still completes.
    pub fn is_failed(&self, at: SimTime) -> bool {
        self.fault.is_failed(at)
    }

    /// The drive parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Submits a page-read request at time `now` targeting `cylinder`.
    /// Returns the completion time (when the page is ready to go on the
    /// bus).
    ///
    /// # Panics
    ///
    /// Panics if `cylinder` is outside the drive or if `now` precedes an
    /// earlier submission (FCFS requires time-ordered submission).
    pub fn submit(&mut self, now: SimTime, cylinder: u32, rng: &mut StdRng) -> SimTime {
        self.submit_detailed(now, cylinder, rng).completion
    }

    /// Like [`Disk::submit`], but also returns the phase breakdown
    /// (queue / seek / rotation / transfer) and the queue depth the
    /// request found — the raw material of the observability layer.
    /// Timing is identical to `submit`; the extra bookkeeping draws no
    /// randomness.
    pub fn submit_detailed(
        &mut self,
        now: SimTime,
        cylinder: u32,
        rng: &mut StdRng,
    ) -> DiskServiceDetail {
        assert!(
            cylinder < self.params.num_cylinders,
            "cylinder {cylinder} out of range"
        );
        assert!(
            now >= self.last_submit,
            "FCFS contract violated: submission at {now} precedes earlier submission at {}",
            self.last_submit
        );
        self.last_submit = now;
        while self.outstanding.front().is_some_and(|&done| done <= now) {
            self.outstanding.pop_front();
        }
        let queue_depth = self.outstanding.len() as u32;
        let start = now.max(self.busy_until);
        let distance = self.head_cylinder.abs_diff(cylinder);
        // A zero-revolution drive (used by deterministic tests) has no
        // latency to draw — and rand panics on an empty range.
        let rot_latency = if self.params.revolution_time_s > 0.0 {
            rng.gen_range(0.0..self.params.revolution_time_s)
        } else {
            0.0
        };
        let mut seek_s = self.params.seek_time_s(distance);
        let mut rot_latency = rot_latency;
        let mut transfer_s = (self.params.transfer_ms + self.params.controller_overhead_ms) / 1e3;
        // Degraded-mode timing, gated so a clean profile leaves the
        // arithmetic (and thus fault-free runs) bit-identical. The
        // multiplier scales every phase; hot-spot delay is folded into
        // the transfer phase so the reported components still sum to
        // the service interval.
        if !self.fault.is_clean() {
            let m = self.fault.multiplier(start);
            let extra_s = self.fault.extra(start).as_secs_f64();
            seek_s *= m;
            rot_latency *= m;
            transfer_s = transfer_s * m + extra_s;
        }
        let service_s = seek_s + rot_latency + transfer_s;
        let service = SimTime::from_secs_f64(service_s);
        let completion = start + service;

        self.util.add_busy(start, completion);
        self.total_wait += start - now;
        self.total_service += service;
        self.requests += 1;
        self.head_cylinder = cylinder;
        self.busy_until = completion;
        self.outstanding.push_back(completion);
        DiskServiceDetail {
            completion,
            queue: start - now,
            seek: SimTime::from_secs_f64(seek_s),
            rotation: SimTime::from_secs_f64(rot_latency),
            transfer: SimTime::from_secs_f64(transfer_s),
            queue_depth,
        }
    }

    /// Number of requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Fraction of `[0, horizon]` the disk spent busy.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.util.utilization(horizon)
    }

    /// Mean queueing delay (time between submission and service start).
    pub fn mean_wait_s(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_wait.as_secs_f64() / self.requests as f64
        }
    }

    /// Mean service time.
    pub fn mean_service_s(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_service.as_secs_f64() / self.requests as f64
        }
    }

    /// The time the disk becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Current head position (cylinder of the last serviced request).
    pub fn head_cylinder(&self) -> u32 {
        self.head_cylinder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn seek_model_phases() {
        let p = DiskParams::default();
        // No seek.
        assert_eq!(p.seek_time_s(0), 0.0);
        // Short seek: c1 + c2*sqrt(d).
        let s100 = p.seek_time_s(100);
        assert!((s100 - (3.24 + 0.4 * 10.0) / 1e3).abs() < 1e-12);
        // Boundary is short phase.
        let sb = p.seek_time_s(383);
        assert!((sb - (3.24 + 0.4 * (383.0f64).sqrt()) / 1e3).abs() < 1e-12);
        // Long seek: c3 + c4*d.
        let s1000 = p.seek_time_s(1000);
        assert!((s1000 - (8.0 + 0.008 * 1000.0) / 1e3).abs() < 1e-12);
        // Monotone increasing overall.
        let mut prev = 0.0;
        for d in 0..1449 {
            let s = p.seek_time_s(d);
            assert!(s >= prev - 1e-9, "seek time decreased at {d}");
            prev = s;
        }
    }

    #[test]
    fn idle_disk_services_immediately() {
        let mut d = Disk::new(DiskParams::default());
        let mut r = rng();
        let done = d.submit(SimTime::from_secs_f64(1.0), 0, &mut r);
        // No seek (head at 0), so service = rotation + transfer + overhead
        // < 1 revolution + 2 ms.
        let service = done - SimTime::from_secs_f64(1.0);
        assert!(service.as_secs_f64() <= 0.0149 + 0.002 + 1e-9);
        assert!(service.as_secs_f64() >= 0.002);
        assert_eq!(d.requests(), 1);
        assert_eq!(d.head_cylinder(), 0);
    }

    #[test]
    fn fcfs_queueing_delays_second_request() {
        let mut d = Disk::new(DiskParams::default());
        let mut r = rng();
        let t0 = SimTime::ZERO;
        let done1 = d.submit(t0, 700, &mut r);
        let done2 = d.submit(t0, 700, &mut r);
        assert!(done2 > done1, "second request must wait");
        assert!(d.mean_wait_s() > 0.0);
    }

    #[test]
    fn head_position_tracks_requests() {
        let mut d = Disk::new(DiskParams::default());
        let mut r = rng();
        d.submit(SimTime::ZERO, 1200, &mut r);
        assert_eq!(d.head_cylinder(), 1200);
        // Seek back is long (distance 1200 > threshold).
        let t = d.busy_until();
        let done = d.submit(t, 0, &mut r);
        let service = (done - t).as_secs_f64();
        assert!(service >= (8.0 + 0.008 * 1200.0) / 1e3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cylinder_panics() {
        let mut d = Disk::new(DiskParams::default());
        d.submit(SimTime::ZERO, 9999, &mut rng());
    }

    #[test]
    fn utilization_between_zero_and_one() {
        let mut d = Disk::new(DiskParams::default());
        let mut r = rng();
        for i in 0..50 {
            d.submit(
                SimTime::from_millis_f64(i as f64 * 5.0),
                (i * 29) % 1449,
                &mut r,
            );
        }
        let horizon = d.busy_until();
        let u = d.utilization(horizon);
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
        assert!(d.mean_service_s() > 0.0);
    }

    #[test]
    fn detailed_breakdown_and_queue_depth() {
        let mut d = Disk::new(DiskParams::default());
        let mut r = rng();
        let t0 = SimTime::ZERO;
        let d1 = d.submit_detailed(t0, 700, &mut r);
        assert_eq!(d1.queue_depth, 0);
        assert_eq!(d1.queue, SimTime::ZERO);
        // Components reconstruct the service interval exactly (each is
        // converted from the same f64 terms; allow 1ns per rounding).
        let service = d1.completion - t0;
        let sum = d1.seek + d1.rotation + d1.transfer;
        assert!(service.as_nanos().abs_diff(sum.as_nanos()) <= 2);
        // Second and third requests at t0 see depths 1 and 2.
        let d2 = d.submit_detailed(t0, 700, &mut r);
        assert_eq!(d2.queue_depth, 1);
        assert_eq!(d2.queue, d1.completion - t0);
        let d3 = d.submit_detailed(t0, 700, &mut r);
        assert_eq!(d3.queue_depth, 2);
        // After everything drains the queue is empty again.
        let d4 = d.submit_detailed(d3.completion, 700, &mut r);
        assert_eq!(d4.queue_depth, 0);
    }

    #[test]
    fn detailed_matches_plain_submit_timing() {
        let mut a = Disk::new(DiskParams::default());
        let mut b = Disk::new(DiskParams::default());
        let mut ra = rng();
        let mut rb = rng();
        for i in 0..100u32 {
            let t = SimTime::from_millis_f64(i as f64 * 3.0);
            let cyl = (i * 131) % 1449;
            let plain = a.submit(t, cyl, &mut ra);
            let detail = b.submit_detailed(t, cyl, &mut rb);
            assert_eq!(plain, detail.completion, "divergence at request {i}");
        }
    }

    #[test]
    fn zero_revolution_disk_is_deterministic() {
        let params = DiskParams {
            revolution_time_s: 0.0,
            ..DiskParams::default()
        };
        let mut d = Disk::new(params);
        let mut r = rng();
        let detail = d.submit_detailed(SimTime::ZERO, 0, &mut r);
        assert_eq!(detail.rotation, SimTime::ZERO);
        // No seek, no rotation: service is exactly transfer + overhead.
        assert_eq!(detail.completion, SimTime::from_millis_f64(2.0));
    }

    #[test]
    #[should_panic(expected = "FCFS contract violated")]
    fn out_of_order_submission_panics() {
        // Regression: the doc always promised this panic, but the check
        // was missing — out-of-order submission silently corrupted the
        // outstanding-queue draining and utilization accounting.
        let mut d = Disk::new(DiskParams::default());
        let mut r = rng();
        d.submit(SimTime::from_millis_f64(10.0), 0, &mut r);
        d.submit(SimTime::from_millis_f64(5.0), 0, &mut r);
    }

    #[test]
    fn equal_time_submissions_are_allowed() {
        let mut d = Disk::new(DiskParams::default());
        let mut r = rng();
        let t = SimTime::from_millis_f64(3.0);
        d.submit(t, 0, &mut r);
        d.submit(t, 0, &mut r); // FIFO tie: not a contract violation
        assert_eq!(d.requests(), 2);
    }

    #[test]
    fn clean_profile_timing_is_bit_identical() {
        let mut plain = Disk::new(DiskParams::default());
        let mut profiled = Disk::new(DiskParams::default());
        profiled.set_fault_profile(DiskFaultProfile::clean());
        let (mut ra, mut rb) = (rng(), rng());
        for i in 0..50u32 {
            let t = SimTime::from_millis_f64(i as f64 * 2.0);
            let cyl = (i * 211) % 1449;
            assert_eq!(
                plain.submit(t, cyl, &mut ra),
                profiled.submit(t, cyl, &mut rb),
                "divergence at request {i}"
            );
        }
    }

    #[test]
    fn slow_window_scales_service_time() {
        let params = DiskParams {
            revolution_time_s: 0.0, // deterministic: no rotation draw
            ..DiskParams::default()
        };
        let mut d = Disk::new(params.clone());
        let mut r = rng();
        let plan = crate::FaultPlan::none().slow_window(
            0,
            SimTime::from_millis_f64(10.0),
            SimTime::from_millis_f64(20.0),
            3.0,
        );
        d.set_fault_profile(plan.profile_for(0));
        // Outside the window: nominal transfer + overhead = 2 ms.
        let d1 = d.submit_detailed(SimTime::ZERO, 0, &mut r);
        assert_eq!(d1.completion, SimTime::from_millis_f64(2.0));
        // Inside the window: 3× slower.
        let d2 = d.submit_detailed(SimTime::from_millis_f64(10.0), 0, &mut r);
        assert_eq!(
            d2.completion - SimTime::from_millis_f64(10.0),
            SimTime::from_millis_f64(6.0)
        );
        // Components still reconstruct the service interval.
        let sum = d2.seek + d2.rotation + d2.transfer;
        assert!(sum.as_nanos().abs_diff(SimTime::from_millis_f64(6.0).as_nanos()) <= 2);
        // After the window closes: nominal again.
        let d3 = d.submit_detailed(SimTime::from_millis_f64(20.0), 0, &mut r);
        assert_eq!(d3.completion - SimTime::from_millis_f64(20.0), SimTime::from_millis_f64(2.0));
    }

    #[test]
    fn hot_spot_adds_constant_delay() {
        let params = DiskParams {
            revolution_time_s: 0.0,
            ..DiskParams::default()
        };
        let mut d = Disk::new(params);
        let mut r = rng();
        let plan = crate::FaultPlan::none().hot_spot(
            0,
            SimTime::ZERO,
            SimTime::from_millis_f64(5.0),
            SimTime::from_millis_f64(4.0),
        );
        d.set_fault_profile(plan.profile_for(0));
        let d1 = d.submit_detailed(SimTime::ZERO, 0, &mut r);
        // 2 ms nominal + 4 ms contention.
        assert_eq!(d1.completion, SimTime::from_millis_f64(6.0));
        assert!(!d.is_failed(SimTime::ZERO));
    }

    #[test]
    fn failed_state_follows_profile() {
        let mut d = Disk::new(DiskParams::default());
        let plan = crate::FaultPlan::none().transient_outage(
            0,
            SimTime::from_millis_f64(1.0),
            SimTime::from_millis_f64(2.0),
        );
        d.set_fault_profile(plan.profile_for(0));
        assert!(!d.is_failed(SimTime::ZERO));
        assert!(d.is_failed(SimTime::from_millis_f64(1.5)));
        assert!(!d.is_failed(SimTime::from_millis_f64(2.0)));
        assert!(!d.fault_profile().is_clean());
    }

    #[test]
    fn max_service_bound_holds() {
        let p = DiskParams::default();
        let bound = p.max_service_time_s();
        let mut d = Disk::new(p);
        let mut r = rng();
        let mut prev_done = SimTime::ZERO;
        for i in 0..200 {
            // Submit exactly at previous completion: no queueing, pure service.
            let done = d.submit(prev_done, (i * 977) % 1449, &mut r);
            assert!((done - prev_done).as_secs_f64() <= bound + 1e-9);
            prev_done = done;
        }
    }
}
