//! The shared I/O bus.

use crate::{SimTime, UtilizationTracker};

/// The common I/O (SCSI) bus connecting the disks to the processor.
///
/// Modelled per the paper as a single FCFS queue with *constant* service
/// time: the time to push one page from a disk controller to main memory.
/// Every page read by any disk crosses the bus, so at high arrival rates
/// the bus can become the bottleneck that punishes algorithms fetching
/// many pages (FPSS).
pub struct Bus {
    transfer_time: SimTime,
    busy_until: SimTime,
    transfers: u64,
    total_wait: SimTime,
    util: UtilizationTracker,
}

impl Bus {
    /// Creates a bus with the given per-page transfer time.
    pub fn new(transfer_time: SimTime) -> Self {
        Self {
            transfer_time,
            busy_until: SimTime::ZERO,
            transfers: 0,
            total_wait: SimTime::ZERO,
            util: UtilizationTracker::new(),
        }
    }

    /// Submits one page for transfer at `now`; returns the time the page
    /// arrives in main memory.
    pub fn submit(&mut self, now: SimTime) -> SimTime {
        self.submit_detailed(now).0
    }

    /// Like [`Bus::submit`], but also returns the queueing delay the
    /// page experienced before its transfer started: `(completion,
    /// queue)`. Timing is identical to `submit`.
    pub fn submit_detailed(&mut self, now: SimTime) -> (SimTime, SimTime) {
        let start = now.max(self.busy_until);
        let completion = start + self.transfer_time;
        self.util.add_busy(start, completion);
        self.total_wait += start - now;
        self.transfers += 1;
        self.busy_until = completion;
        (completion, start - now)
    }

    /// The per-page transfer time.
    pub fn transfer_time(&self) -> SimTime {
        self.transfer_time
    }

    /// Number of pages transferred.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Mean queueing delay before a transfer starts.
    pub fn mean_wait_s(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.total_wait.as_secs_f64() / self.transfers as f64
        }
    }

    /// Fraction of `[0, horizon]` the bus spent transferring.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.util.utilization(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_service_time() {
        let mut bus = Bus::new(SimTime::from_millis_f64(0.4));
        let done = bus.submit(SimTime::from_secs_f64(1.0));
        assert_eq!(
            done,
            SimTime::from_secs_f64(1.0) + SimTime::from_millis_f64(0.4)
        );
    }

    #[test]
    fn back_to_back_transfers_serialize() {
        let mut bus = Bus::new(SimTime::from_millis_f64(1.0));
        let t = SimTime::ZERO;
        let d1 = bus.submit(t);
        let d2 = bus.submit(t);
        let d3 = bus.submit(t);
        assert_eq!(d1, SimTime::from_millis_f64(1.0));
        assert_eq!(d2, SimTime::from_millis_f64(2.0));
        assert_eq!(d3, SimTime::from_millis_f64(3.0));
        assert_eq!(bus.transfers(), 3);
        assert!(bus.mean_wait_s() > 0.0);
        assert!((bus.utilization(d3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn detailed_reports_queueing_delay() {
        let mut bus = Bus::new(SimTime::from_millis_f64(1.0));
        let (d1, q1) = bus.submit_detailed(SimTime::ZERO);
        assert_eq!(q1, SimTime::ZERO);
        let (d2, q2) = bus.submit_detailed(SimTime::ZERO);
        assert_eq!(q2, d1);
        assert_eq!(d2, SimTime::from_millis_f64(2.0));
        assert_eq!(bus.transfer_time(), SimTime::from_millis_f64(1.0));
    }

    #[test]
    fn idle_gaps_lower_utilization() {
        let mut bus = Bus::new(SimTime::from_millis_f64(1.0));
        bus.submit(SimTime::ZERO);
        bus.submit(SimTime::from_millis_f64(9.0));
        let u = bus.utilization(SimTime::from_millis_f64(10.0));
        assert!((u - 0.2).abs() < 1e-9, "utilization {u}");
        assert_eq!(bus.mean_wait_s(), 0.0);
    }
}
