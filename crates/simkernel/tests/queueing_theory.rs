//! Analytic validation of the queueing model against known results.
//!
//! The bus is a single FCFS server with deterministic service time fed by
//! Poisson arrivals — an M/D/1 queue. The Pollaczek–Khinchine formula
//! gives its exact mean waiting time:
//!
//! ```text
//! W_q = ρ·D / (2·(1 − ρ)),   ρ = λ·D
//! ```
//!
//! If the simulator's FCFS bookkeeping were wrong (e.g. work lost or
//! double-counted), these tests would miss the analytic values.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqda_simkernel::{Bus, PoissonArrivals, SimTime};

fn md1_mean_wait(lambda: f64, service_s: f64, n: usize, seed: u64) -> f64 {
    let mut arrivals = PoissonArrivals::new(lambda);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bus = Bus::new(SimTime::from_secs_f64(service_s));
    for _ in 0..n {
        let t = arrivals.next_arrival(&mut rng);
        bus.submit(t);
    }
    bus.mean_wait_s()
}

#[test]
fn md1_wait_matches_pollaczek_khinchine_moderate_load() {
    let lambda = 50.0;
    let service = 0.01; // ρ = 0.5
    let rho: f64 = lambda * service;
    let analytic = rho * service / (2.0 * (1.0 - rho));
    let simulated = md1_mean_wait(lambda, service, 200_000, 1);
    let rel_err = (simulated - analytic).abs() / analytic;
    assert!(
        rel_err < 0.05,
        "M/D/1 wait: simulated {simulated:.6}, analytic {analytic:.6}, err {rel_err:.3}"
    );
}

#[test]
fn md1_wait_matches_at_high_load() {
    let lambda = 85.0;
    let service = 0.01; // ρ = 0.85
    let rho: f64 = lambda * service;
    let analytic = rho * service / (2.0 * (1.0 - rho));
    let simulated = md1_mean_wait(lambda, service, 400_000, 2);
    let rel_err = (simulated - analytic).abs() / analytic;
    assert!(
        rel_err < 0.08,
        "M/D/1 wait at ρ=0.85: simulated {simulated:.6}, analytic {analytic:.6}, err {rel_err:.3}"
    );
}

#[test]
fn md1_wait_negligible_at_low_load() {
    // ρ = 0.05: waits must be close to zero.
    let simulated = md1_mean_wait(5.0, 0.01, 100_000, 3);
    assert!(simulated < 0.0005, "low-load wait {simulated}");
}

#[test]
fn utilization_matches_rho() {
    let lambda = 30.0;
    let service = 0.02; // ρ = 0.6
    let mut arrivals = PoissonArrivals::new(lambda);
    let mut rng = StdRng::seed_from_u64(4);
    let mut bus = Bus::new(SimTime::from_secs_f64(service));
    let mut last = SimTime::ZERO;
    for _ in 0..100_000 {
        let t = arrivals.next_arrival(&mut rng);
        last = bus.submit(t);
    }
    let u = bus.utilization(last);
    assert!((u - 0.6).abs() < 0.02, "utilization {u} vs ρ=0.6");
}
