//! The unified reporting API every experiment bin writes through.
//!
//! Each bin builds one [`BinReport`]: the full parameter set, the master
//! seed and derived replication seeds, and a list of headline metrics as
//! `mean ± 95% CI` over replications. `finish` writes two files next to
//! the CSVs (both suppressed by `--no-manifest`):
//!
//! * `<out>/<bench>.manifest.json` — the [`RunManifest`] provenance
//!   record (git sha, seeds, parameters, wall-clock);
//! * `<out>/bench/<bench>.json` — a schema-v2 summary *fragment* that
//!   `run_all_experiments` merges into `results/BENCH_summary.json`.
//!
//! [`compare_summaries`] implements the noise-aware regression rule used
//! by the `check_regression` bin: a metric only counts as regressed when
//! the 95% confidence bands of baseline and current mean **separate**
//! *and* the relative change exceeds a floor — point-estimate jitter
//! inside overlapping bands never fails CI.

use crate::ExpOptions;
use sqda_obs::json::{parse, u64_array, ObjWriter, Value};
use sqda_obs::{MetricSummary, RunManifest};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Which direction of change counts as a regression for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Smaller is better (response times, node counts): an increase can
    /// regress. The default for every metric in this suite.
    #[default]
    Lower,
    /// Larger is better (speedups): a decrease can regress.
    Higher,
    /// Informational only — never checked for regressions.
    Info,
}

impl Direction {
    fn as_str(self) -> &'static str {
        match self {
            Direction::Lower => "lower",
            Direction::Higher => "higher",
            Direction::Info => "info",
        }
    }

    fn from_str(s: &str) -> Self {
        match s {
            "higher" => Direction::Higher,
            "info" => Direction::Info,
            _ => Direction::Lower,
        }
    }
}

struct MetricPoint {
    name: String,
    labels: Vec<(String, String)>,
    direction: Direction,
    summary: MetricSummary,
}

/// Collects one experiment bin's provenance and headline metrics.
pub struct BinReport {
    bench: String,
    manifest: RunManifest,
    metrics: Vec<MetricPoint>,
    quick: bool,
    reps: usize,
    warmup: f64,
    started: Instant,
}

impl BinReport {
    /// Starts a report for `bench` under the given options.
    pub fn new(bench: &str, opts: &ExpOptions) -> Self {
        let mut manifest = RunManifest::new(bench);
        // option_env: the registry-less rustc path builds without cargo.
        manifest.crate_version = option_env!("CARGO_PKG_VERSION")
            .unwrap_or("offline")
            .to_string();
        manifest.reps = opts.reps as u32;
        manifest.warmup_fraction = opts.warmup;
        Self {
            bench: bench.to_string(),
            manifest,
            metrics: Vec::new(),
            quick: opts.quick,
            reps: opts.reps,
            warmup: opts.warmup,
            started: Instant::now(),
        }
    }

    /// Records one parameter into the manifest (builder-style).
    pub fn param(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.manifest.params.push((key.to_string(), value.to_string()));
        self
    }

    /// Records the master seed replications are split from, deriving and
    /// storing the per-replication seed list.
    pub fn master_seed(&mut self, seed: u64) -> &mut Self {
        self.manifest.master_seed = seed;
        self.manifest.rep_seeds = (0..self.reps.max(1))
            .map(|r| crate::rep_seed(seed, r))
            .collect();
        self
    }

    /// Adds one headline metric (lower-is-better) with its labels, e.g.
    /// `report.metric("mean_response_s", &[("algorithm", "CRSS".into())], s)`.
    pub fn metric(&mut self, name: &str, labels: &[(&str, String)], summary: MetricSummary) {
        self.metric_dir(name, labels, summary, Direction::Lower);
    }

    /// [`Self::metric`] with an explicit regression [`Direction`].
    pub fn metric_dir(
        &mut self,
        name: &str,
        labels: &[(&str, String)],
        summary: MetricSummary,
        direction: Direction,
    ) {
        self.metrics.push(MetricPoint {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            direction,
            summary,
        });
    }

    /// Serializes the schema-v2 summary fragment (deterministic bytes).
    pub fn fragment_json(&self) -> String {
        let mut metrics = String::from("[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                metrics.push(',');
            }
            let mut labels = String::from("{");
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    labels.push(',');
                }
                sqda_obs::json::write_str(&mut labels, k);
                labels.push(':');
                sqda_obs::json::write_str(&mut labels, v);
            }
            labels.push('}');
            let mut w = ObjWriter::new();
            w.field_str("name", &m.name);
            w.field_raw("labels", &labels);
            w.field_str("direction", m.direction.as_str());
            m.summary.write_fields(&mut w);
            metrics.push_str(&w.finish());
        }
        metrics.push(']');
        let mut w = ObjWriter::new();
        w.field_u64("schema", 2);
        w.field_str("bench", &self.bench);
        w.field_bool("quick", self.quick);
        w.field_u64("reps", self.reps as u64);
        w.field_f64("warmup_fraction", self.warmup);
        w.field_u64("master_seed", self.manifest.master_seed);
        w.field_raw("rep_seeds", &u64_array(&self.manifest.rep_seeds));
        w.field_str("rng_fingerprint", &rng_fingerprint());
        w.field_raw("metrics", &metrics);
        w.finish()
    }

    /// Writes the manifest and the summary fragment, honouring
    /// `--no-manifest`. Returns the fragment path when written.
    pub fn finish(&mut self, opts: &ExpOptions) -> Option<PathBuf> {
        if !opts.manifest {
            return None;
        }
        self.manifest.wall_s = self.started.elapsed().as_secs_f64();
        self.manifest
            .write(&opts.out_dir)
            .expect("write run manifest");
        let dir = opts.out_dir.join("bench");
        std::fs::create_dir_all(&dir).expect("create bench fragment dir");
        let path = dir.join(format!("{}.json", self.bench));
        std::fs::write(&path, self.fragment_json() + "\n").expect("write summary fragment");
        eprintln!("  wrote {}", path.display());
        Some(path)
    }
}

/// Fingerprint of the RNG backend the binary was built against, as a
/// 16-hex-digit FNV-1a hash of a canonical `StdRng` draw. Simulated
/// metrics are deterministic given seeds, so two summaries are exactly
/// comparable **iff** their fingerprints match; the registry-less stub
/// build draws a different stream than a cargo build, and
/// [`compare_summaries`] downgrades to a structural check across that
/// boundary instead of reporting phantom regressions.
pub fn rng_fingerprint() -> String {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for _ in 0..8 {
        let v: u64 = rng.gen();
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    format!("{h:016x}")
}

/// One metric's reading from a summary file.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricRead {
    /// Mean over replications.
    pub mean: f64,
    /// 95% CI half-width over replications.
    pub ci95: f64,
}

/// Why a metric was flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// CI bands separate in the bad direction beyond the relative floor.
    Regression,
    /// Metric present in the baseline but absent from the current run.
    Missing,
}

/// One flagged metric from [`compare_summaries`].
#[derive(Debug, Clone)]
pub struct Finding {
    /// Bench the metric belongs to.
    pub bench: String,
    /// Metric identity: `name{label=value,…}`.
    pub metric: String,
    /// What went wrong.
    pub kind: FindingKind,
    /// Baseline reading.
    pub base: MetricRead,
    /// Current reading (zeroed for [`FindingKind::Missing`]).
    pub cur: MetricRead,
    /// Signed relative change in the metric's bad direction.
    pub rel_change: f64,
}

/// Outcome of diffing a current summary against a baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Metrics compared numerically.
    pub compared: usize,
    /// Regressions + missing metrics (CI should fail when non-empty).
    pub findings: Vec<Finding>,
    /// Metrics whose CI bands separated in the *good* direction.
    pub improvements: usize,
    /// Whether both summaries were produced by the same RNG backend.
    /// When `false`, numeric comparison is meaningless (different
    /// pseudo-random universes) and only structure was checked.
    pub fingerprints_match: bool,
}

fn metric_key(bench: &str, name: &str, labels: &[(String, String)]) -> String {
    let mut key = format!("{bench}/{name}{{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let _ = write!(key, "{k}={v}");
    }
    key.push('}');
    key
}

fn collect_metrics(summary: &Value) -> Result<HashMap<String, (MetricRead, Direction)>, String> {
    let benches = summary
        .get("benches")
        .ok_or("summary has no \"benches\" object (schema v2 required)")?;
    let benches = match benches {
        Value::Obj(map) => map,
        _ => return Err("\"benches\" is not an object".into()),
    };
    let mut out = HashMap::new();
    for (bench, frag) in benches {
        let metrics = match frag.get("metrics").and_then(|m| m.as_arr()) {
            Some(m) => m,
            None => continue,
        };
        for m in metrics {
            let name = m
                .get("name")
                .and_then(|n| n.as_str())
                .ok_or_else(|| format!("metric without name in {bench}"))?;
            let mut labels: Vec<(String, String)> = Vec::new();
            if let Some(Value::Obj(lab)) = m.get("labels") {
                for (k, v) in lab {
                    labels.push((k.clone(), v.as_str().unwrap_or_default().to_string()));
                }
            }
            let read = MetricRead {
                mean: m.get("mean").and_then(|v| v.as_f64()).unwrap_or(0.0),
                ci95: m.get("ci95").and_then(|v| v.as_f64()).unwrap_or(0.0),
            };
            let dir = Direction::from_str(
                m.get("direction").and_then(|d| d.as_str()).unwrap_or("lower"),
            );
            out.insert(metric_key(bench, name, &labels), (read, dir));
        }
    }
    Ok(out)
}

fn fingerprint_of(summary: &Value) -> Option<String> {
    summary
        .get("rng_fingerprint")
        .and_then(|f| f.as_str())
        .map(str::to_string)
}

/// Diffs `current` against `baseline` (both parsed schema-v2 summaries).
///
/// A metric regresses only when **both** hold in its bad direction:
/// `|Δmean| > ci95(current) + ci95(baseline)` (confidence bands
/// separate — the difference is signal, not replication noise) and
/// `|Δmean| / baseline_mean > rel_threshold` (the floor keeps
/// micro-regressions on near-zero metrics from tripping CI). Metrics in
/// the baseline that vanished from the current summary are reported as
/// [`FindingKind::Missing`]. When the RNG fingerprints differ the
/// numeric rules are skipped (`fingerprints_match = false`) and only
/// missing metrics are reported.
pub fn compare_summaries(
    current: &Value,
    baseline: &Value,
    rel_threshold: f64,
) -> Result<Comparison, String> {
    let cur = collect_metrics(current)?;
    let base = collect_metrics(baseline)?;
    let fingerprints_match = match (fingerprint_of(current), fingerprint_of(baseline)) {
        (Some(a), Some(b)) => a == b,
        // A summary without a fingerprint predates the stub/cargo split;
        // assume comparable rather than silently skipping every check.
        _ => true,
    };
    let mut out = Comparison {
        fingerprints_match,
        ..Comparison::default()
    };
    let mut keys: Vec<&String> = base.keys().collect();
    keys.sort();
    for key in keys {
        let (b, dir) = base[key];
        let (bench, metric) = key.split_once('/').unwrap_or(("", key));
        let Some(&(c, _)) = cur.get(key) else {
            out.findings.push(Finding {
                bench: bench.to_string(),
                metric: metric.to_string(),
                kind: FindingKind::Missing,
                base: b,
                cur: MetricRead::default(),
                rel_change: 0.0,
            });
            continue;
        };
        if dir == Direction::Info || !fingerprints_match {
            continue;
        }
        out.compared += 1;
        // Positive `bad` means the metric moved in its bad direction.
        let bad = match dir {
            Direction::Lower => c.mean - b.mean,
            Direction::Higher => b.mean - c.mean,
            Direction::Info => unreachable!(),
        };
        let bands_separate = bad.abs() > c.ci95 + b.ci95;
        let rel = if b.mean.abs() > f64::EPSILON {
            bad / b.mean.abs()
        } else if bad.abs() > f64::EPSILON {
            f64::INFINITY
        } else {
            0.0
        };
        if bands_separate && bad > 0.0 && rel > rel_threshold {
            out.findings.push(Finding {
                bench: bench.to_string(),
                metric: metric.to_string(),
                kind: FindingKind::Regression,
                base: b,
                cur: c,
                rel_change: rel,
            });
        } else if bands_separate && bad < 0.0 && -rel > rel_threshold {
            out.improvements += 1;
        }
    }
    Ok(out)
}

/// Convenience: parse two summary files' text and compare.
pub fn compare_summary_text(
    current: &str,
    baseline: &str,
    rel_threshold: f64,
) -> Result<Comparison, String> {
    let cur = parse(current.trim()).map_err(|e| format!("current summary: {e}"))?;
    let base = parse(baseline.trim()).map_err(|e| format!("baseline summary: {e}"))?;
    compare_summaries(&cur, &base, rel_threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary_with(mean: f64, ci: f64) -> String {
        format!(
            "{{\"schema\":2,\"rng_fingerprint\":\"abc\",\"benches\":{{\
             \"fig10\":{{\"bench\":\"fig10\",\"metrics\":[\
             {{\"name\":\"mean_response_s\",\
             \"labels\":{{\"algorithm\":\"CRSS\",\"lambda\":\"5\"}},\
             \"direction\":\"lower\",\"count\":5,\"mean\":{mean},\
             \"std_dev\":0.01,\"ci95\":{ci},\"min\":0,\"max\":1}}]}}}}}}"
        )
    }

    #[test]
    fn identical_summaries_have_no_findings() {
        let s = summary_with(0.1, 0.005);
        let c = compare_summary_text(&s, &s, 0.02).expect("compare");
        assert_eq!(c.compared, 1);
        assert!(c.findings.is_empty(), "{:?}", c.findings);
        assert!(c.fingerprints_match);
    }

    #[test]
    fn synthetic_2x_slowdown_is_flagged() {
        let base = summary_with(0.1, 0.005);
        let slow = summary_with(0.2, 0.005);
        let c = compare_summary_text(&slow, &base, 0.02).expect("compare");
        assert_eq!(c.findings.len(), 1, "{:?}", c.findings);
        let f = &c.findings[0];
        assert_eq!(f.kind, FindingKind::Regression);
        assert_eq!(f.bench, "fig10");
        assert!(f.metric.contains("mean_response_s"), "{}", f.metric);
        assert!((f.rel_change - 1.0).abs() < 1e-9, "{}", f.rel_change);
    }

    #[test]
    fn jitter_inside_overlapping_ci_bands_passes() {
        // +8% shift, but the bands (±0.006) overlap: |Δ|=0.008 < 0.012.
        let base = summary_with(0.100, 0.006);
        let cur = summary_with(0.108, 0.006);
        let c = compare_summary_text(&cur, &base, 0.02).expect("compare");
        assert!(c.findings.is_empty(), "{:?}", c.findings);
    }

    #[test]
    fn relative_floor_suppresses_tiny_but_significant_shifts() {
        // Bands separate (|Δ|=0.001 > 0.0004) but the change is only 1%.
        let base = summary_with(0.100, 0.0002);
        let cur = summary_with(0.101, 0.0002);
        let c = compare_summary_text(&cur, &base, 0.02).expect("compare");
        assert!(c.findings.is_empty(), "{:?}", c.findings);
    }

    #[test]
    fn improvements_are_counted_not_flagged() {
        let base = summary_with(0.2, 0.005);
        let fast = summary_with(0.1, 0.005);
        let c = compare_summary_text(&fast, &base, 0.02).expect("compare");
        assert!(c.findings.is_empty(), "{:?}", c.findings);
        assert_eq!(c.improvements, 1);
    }

    #[test]
    fn missing_metric_is_flagged() {
        let base = summary_with(0.1, 0.005);
        let empty = "{\"schema\":2,\"rng_fingerprint\":\"abc\",\"benches\":{}}";
        let c = compare_summary_text(empty, &base, 0.02).expect("compare");
        assert_eq!(c.findings.len(), 1);
        assert_eq!(c.findings[0].kind, FindingKind::Missing);
    }

    #[test]
    fn fingerprint_mismatch_downgrades_to_structural() {
        let base = summary_with(0.1, 0.005);
        let slow = summary_with(0.5, 0.005).replace("\"abc\"", "\"def\"");
        let c = compare_summary_text(&slow, &base, 0.02).expect("compare");
        assert!(!c.fingerprints_match);
        assert!(c.findings.is_empty(), "{:?}", c.findings);
        assert_eq!(c.compared, 0);
    }

    #[test]
    fn higher_is_better_direction_flips_the_rule() {
        let mk = |mean: f64| {
            format!(
                "{{\"schema\":2,\"benches\":{{\"t5\":{{\"metrics\":[\
                 {{\"name\":\"speedup\",\"labels\":{{}},\"direction\":\"higher\",\
                 \"count\":5,\"mean\":{mean},\"std_dev\":0.1,\"ci95\":0.1,\
                 \"min\":0,\"max\":9}}]}}}}}}"
            )
        };
        let dropped = compare_summary_text(&mk(2.0), &mk(3.4), 0.02).expect("compare");
        assert_eq!(dropped.findings.len(), 1, "{:?}", dropped.findings);
        let raised = compare_summary_text(&mk(3.4), &mk(2.0), 0.02).expect("compare");
        assert!(raised.findings.is_empty());
        assert_eq!(raised.improvements, 1);
    }

    #[test]
    fn bin_report_writes_fragment_and_manifest() {
        let dir = std::env::temp_dir().join("sqda_bin_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ExpOptions {
            quick: true,
            out_dir: dir.clone(),
            jobs: 1,
            trace: None,
            metrics: None,
            reps: 3,
            manifest: true,
            warmup: 0.1,
        };
        let mut report = BinReport::new("unit_fragment", &opts);
        report.param("disks", 10).master_seed(4242);
        report.metric(
            "mean_response_s",
            &[("algorithm", "CRSS".to_string())],
            MetricSummary::from_samples(&[0.1, 0.11, 0.12]),
        );
        let frag = report.finish(&opts).expect("fragment written");
        let text = std::fs::read_to_string(&frag).expect("fragment readable");
        let v = parse(text.trim()).expect("fragment parses");
        assert_eq!(v.get("schema").and_then(|s| s.as_u64()), Some(2));
        assert_eq!(v.get("reps").and_then(|s| s.as_u64()), Some(3));
        let seeds = v.get("rep_seeds").and_then(|s| s.as_arr()).expect("seeds");
        assert_eq!(seeds.len(), 3);
        assert_eq!(seeds[0].as_u64(), Some(4242), "rep 0 must be the legacy seed");
        let metrics = v.get("metrics").and_then(|m| m.as_arr()).expect("metrics");
        assert_eq!(metrics.len(), 1);
        assert!(dir.join("unit_fragment.manifest.json").exists());
        // Legacy mode writes nothing.
        let legacy = ExpOptions {
            manifest: false,
            ..opts
        };
        let mut quiet = BinReport::new("unit_fragment_legacy", &legacy);
        assert!(quiet.finish(&legacy).is_none());
        assert!(!dir.join("unit_fragment_legacy.manifest.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rng_fingerprint_is_stable_within_a_build() {
        let a = rng_fingerprint();
        assert_eq!(a, rng_fingerprint());
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
