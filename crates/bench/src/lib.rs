//! Shared harness for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the
//! paper. They share this harness: dataset → declustered tree → query
//! batch → (logical node counts | simulated response times) → printed
//! table + CSV under `results/`.
//!
//! All binaries accept `--quick` to run a scaled-down configuration
//! (smaller populations, fewer queries) with the same code paths — used
//! by CI and the smoke tests; the default configuration is paper scale.

use sqda_core::{
    exec::run_query_with, AlgorithmKind, QueryScratch, Simulation, SimulationReport, Workload,
};
use sqda_datasets::Dataset;
use sqda_geom::Point;
use sqda_obs::{truncate_warmup, MetricSummary};
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{Declusterer, RStarConfig, RStarTree};
use sqda_simkernel::{FaultPlan, SeedSequence, SystemParams};
use sqda_storage::{ArrayStore, PageStore};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

pub mod report;

/// Number of queries per measurement point (the paper executes 100
/// queries and averages).
pub const QUERIES_PER_POINT: usize = 100;

/// Default independent replications per data point. Five replications
/// give a meaningful 95% CI while keeping the full sweep tractable;
/// override with `--reps`.
pub const DEFAULT_REPS: usize = 5;

/// Parses the common command-line flags of the experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Scale down populations/queries for a fast smoke run.
    pub quick: bool,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Worker threads for [`parallel_map`] sweeps (1 = serial).
    pub jobs: usize,
    /// Trace sink for the first simulated configuration (see
    /// [`simulate_observed`]): Chrome/Perfetto `trace_event` JSON, or a
    /// raw JSONL event log if the path ends in `.jsonl`.
    pub trace: Option<PathBuf>,
    /// Metrics sink for the first simulated configuration: JSON
    /// [`sqda_obs::MetricsSnapshot`] + per-query profiles.
    pub metrics: Option<PathBuf>,
    /// Independent replications per data point (default 5). Replication
    /// 0 reuses the historical seed; `--reps 1` therefore reproduces the
    /// pre-replication single-run numbers exactly.
    pub reps: usize,
    /// Whether to emit a `RunManifest` + `bench/<bin>.json` summary
    /// fragment next to the CSVs (`--no-manifest` disables; together
    /// with `--reps 1` that is the byte-identical legacy mode).
    pub manifest: bool,
    /// Fraction of each response-time series (in arrival order) deleted
    /// as warm-up before averaging (default 0 = keep everything).
    pub warmup: f64,
}

impl ExpOptions {
    /// Reads `--quick`, `--out <dir>`, `--jobs <n>`, `--serial`,
    /// `--trace <file>`, `--metrics <file>`, `--reps <n>`,
    /// `--no-manifest` and `--warmup <fraction>` from `std::env::args`.
    /// `--jobs` defaults to the machine's available parallelism;
    /// `--serial` is shorthand for `--jobs 1`. `--reps 1 --no-manifest`
    /// is the legacy mode whose outputs are byte-identical to the
    /// pre-replication harness.
    pub fn from_args() -> Self {
        let mut quick = false;
        let mut out_dir = PathBuf::from("results");
        let mut jobs = default_jobs();
        let mut trace = None;
        let mut metrics = None;
        let mut reps = DEFAULT_REPS;
        let mut manifest = true;
        let mut warmup = 0.0f64;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--out" => {
                    out_dir = PathBuf::from(args.next().expect("--out needs a directory"));
                }
                "--jobs" => {
                    jobs = args
                        .next()
                        .expect("--jobs needs a count")
                        .parse()
                        .expect("--jobs needs a positive integer");
                    assert!(jobs > 0, "--jobs needs a positive integer");
                }
                "--serial" => jobs = 1,
                "--trace" => {
                    trace = Some(PathBuf::from(args.next().expect("--trace needs a file")));
                }
                "--metrics" => {
                    metrics = Some(PathBuf::from(args.next().expect("--metrics needs a file")));
                }
                "--reps" => {
                    reps = args
                        .next()
                        .expect("--reps needs a count")
                        .parse()
                        .expect("--reps needs a positive integer");
                    assert!(reps > 0, "--reps needs a positive integer");
                }
                "--no-manifest" => manifest = false,
                "--warmup" => {
                    warmup = args
                        .next()
                        .expect("--warmup needs a fraction")
                        .parse()
                        .expect("--warmup needs a fraction in [0,1)");
                    assert!(
                        (0.0..1.0).contains(&warmup),
                        "--warmup needs a fraction in [0,1)"
                    );
                }
                other => panic!(
                    "unknown argument {other} \
                     (expected --quick / --out <dir> / --jobs <n> / --serial \
                      / --trace <file> / --metrics <file> / --reps <n> \
                      / --no-manifest / --warmup <fraction>)"
                ),
            }
        }
        Self {
            quick,
            out_dir,
            jobs,
            trace,
            metrics,
            reps,
            manifest,
            warmup,
        }
    }

    /// Scales a population for quick mode.
    pub fn population(&self, full: usize) -> usize {
        if self.quick {
            (full / 20).max(2000)
        } else {
            full
        }
    }

    /// Scales the query count for quick mode.
    pub fn queries(&self) -> usize {
        if self.quick {
            20
        } else {
            QUERIES_PER_POINT
        }
    }
}

/// Default worker count for sweep fan-out: one per available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Fans `f` over `items` across `jobs` scoped worker threads, returning
/// the results **in input order** regardless of completion order.
///
/// Workers claim items through a shared atomic cursor (work stealing at
/// item granularity), so an expensive (algorithm × parameter × seed)
/// point does not stall the whole sweep behind a fixed chunking. With
/// `jobs == 1` (or a single item) the closure runs on the caller's
/// thread — the serial path is byte-identical, which is what the
/// experiment binaries' `--serial` flag relies on.
///
/// Panics in `f` propagate to the caller once all workers have stopped.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, jobs, || (), |_, item| f(item))
}

/// [`parallel_map`] with per-worker state: `make_state` runs once on each
/// worker thread (once total on the serial path) and the state is handed
/// mutably to every item that worker claims. This is how sweeps thread a
/// reusable [`sqda_core::QueryScratch`] through thousands of queries —
/// one heap + batch buffer per worker, zero cross-thread sharing — while
/// keeping the result order and the `jobs == 1` byte-identical serial
/// path of `parallel_map`.
pub fn parallel_map_with<T, St, R, M, F>(items: &[T], jobs: usize, make_state: M, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    M: Fn() -> St + Sync,
    F: Fn(&mut St, &T) -> R + Sync,
{
    assert!(jobs > 0, "parallel_map needs at least one worker");
    if jobs == 1 || items.len() <= 1 {
        let mut state = make_state();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let workers = jobs.min(items.len());
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = make_state();
                    let mut got = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        got.push((i, f(&mut state, &items[i])));
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Page size used by the 2-d experiments: 1 KiB, matching the late-90s
/// hardware the paper models (the striping unit is one disk block; the
/// HP-C2200A era block is far below today's 4 KiB default). This yields
/// 2-d fan-outs of ~21/42 (internal/leaf) — trees of height 4 for the
/// paper's populations, which is where the paper's BBSS-vs-CRSS node
/// crossover (Figure 8) manifests.
pub const EXPERIMENT_PAGE_SIZE: usize = 1024;

/// Page size per dimensionality. Higher-dimensional entries are ~2.5–5×
/// larger, so the same physical block would hold single-digit fan-outs
/// and produce degenerate trees whose every query touches thousands of
/// pages — a regime where λ = 5 queries/s cannot reach steady state on
/// any algorithm. 4 KiB pages restore the fan-outs (5-d: 42/85, 10-d:
/// 23/46) that make the paper's response-time magnitudes (0.1–3 s)
/// attainable.
pub fn experiment_page_size(dim: usize) -> usize {
    if dim <= 2 {
        EXPERIMENT_PAGE_SIZE
    } else {
        4096
    }
}

/// Builds a declustered tree from a dataset with the paper's default
/// Proximity-Index heuristic.
pub fn build_tree(dataset: &Dataset, disks: u32, seed: u64) -> RStarTree<ArrayStore> {
    build_tree_with(dataset, disks, seed, Box::new(ProximityIndex))
}

/// Builds a declustered tree with an explicit heuristic.
pub fn build_tree_with(
    dataset: &Dataset,
    disks: u32,
    seed: u64,
    declusterer: Box<dyn Declusterer>,
) -> RStarTree<ArrayStore> {
    let start = Instant::now();
    let page_size = experiment_page_size(dataset.dim);
    let store = Arc::new(ArrayStore::with_page_size(disks, 1449, page_size, seed));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::with_page_size(dataset.dim, page_size),
        declusterer,
    )
    .expect("tree creation");
    for (i, p) in dataset.points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).expect("insert");
    }
    tree.store().reset_stats();
    eprintln!(
        "  built {}: {} pts, {}-d, {} disks, height {} in {:.1?}",
        dataset.name,
        dataset.len(),
        dataset.dim,
        disks,
        tree.height(),
        start.elapsed()
    );
    tree
}

/// Mean visited nodes per query for one algorithm (logical executor).
pub fn mean_nodes(
    tree: &RStarTree<ArrayStore>,
    queries: &[Point],
    k: usize,
    kind: AlgorithmKind,
) -> f64 {
    let mut scratch = QueryScratch::new();
    mean_nodes_with(tree, queries, k, kind, &mut scratch)
}

/// [`mean_nodes`] over a reusable [`QueryScratch`]: a sweep hands each
/// worker one scratch (via [`parallel_map_with`]) so the best-first heap
/// and batch buffer are allocated once per worker, not once per query.
pub fn mean_nodes_with(
    tree: &RStarTree<ArrayStore>,
    queries: &[Point],
    k: usize,
    kind: AlgorithmKind,
    scratch: &mut QueryScratch,
) -> f64 {
    let mut total = 0u64;
    for q in queries {
        let mut algo = kind
            .build_with(tree, q.clone(), k, scratch)
            .expect("algorithm");
        let run = run_query_with(tree, algo.as_mut(), scratch).expect("query");
        total += run.nodes_visited;
    }
    total as f64 / queries.len() as f64
}

/// Runs the simulated executor for one algorithm over a Poisson workload.
pub fn simulate(
    tree: &RStarTree<ArrayStore>,
    queries: &[Point],
    k: usize,
    lambda: f64,
    kind: AlgorithmKind,
    seed: u64,
) -> SimulationReport {
    let params = SystemParams::with_disks(tree.store().num_disks());
    let sim = Simulation::new(tree, params).expect("simulation");
    let workload = Workload::poisson(queries.to_vec(), k, lambda, seed);
    sim.run(kind, &workload, seed ^ 0x5eed).expect("simulation")
}

/// [`simulate`] on a shadowed (mirrored) array under a fault plan.
///
/// Mirrored reads are what make degraded service possible at all — a
/// failed disk's pages survive on its shadow partner — so this helper
/// turns them on unconditionally; with the empty plan it is exactly
/// [`simulate`] with `mirrored_reads: true`. Per-query `Unavailable`
/// failures land in the report's `failures`/`failed` fields rather
/// than failing the run.
pub fn simulate_faulted(
    tree: &RStarTree<ArrayStore>,
    queries: &[Point],
    k: usize,
    lambda: f64,
    kind: AlgorithmKind,
    seed: u64,
    plan: &FaultPlan,
) -> SimulationReport {
    let mut params = SystemParams::with_disks(tree.store().num_disks());
    params.mirrored_reads = true;
    let sim = Simulation::new(tree, params).expect("simulation");
    let workload = Workload::poisson(queries.to_vec(), k, lambda, seed);
    sim.run_faulted(kind, &workload, seed ^ 0x5eed, plan)
        .expect("simulation")
}

/// Whether [`simulate_observed`] has already written its one trace this
/// process (sweeps call it once per configuration; only the first is
/// recorded so the sink files are not silently overwritten).
static OBSERVED: AtomicBool = AtomicBool::new(false);

/// [`simulate`], wired to the `--trace` / `--metrics` sinks: the first
/// call in the process with either path set records the run through a
/// [`sqda_obs::CollectingRecorder`] and writes the requested files;
/// every other call (and every call without sink paths) is byte-for-byte
/// [`simulate`]. Recording does not perturb the simulated timing, so a
/// sweep's numbers are identical with and without the flags.
pub fn simulate_observed(
    tree: &RStarTree<ArrayStore>,
    queries: &[Point],
    k: usize,
    lambda: f64,
    kind: AlgorithmKind,
    seed: u64,
    opts: &ExpOptions,
) -> SimulationReport {
    let wants_sinks = opts.trace.is_some() || opts.metrics.is_some();
    if !wants_sinks || OBSERVED.swap(true, Ordering::SeqCst) {
        return simulate(tree, queries, k, lambda, kind, seed);
    }
    let params = SystemParams::with_disks(tree.store().num_disks());
    let (num_disks, num_cpus) = (params.num_disks, params.num_cpus);
    let sim = Simulation::new(tree, params).expect("simulation");
    let workload = Workload::poisson(queries.to_vec(), k, lambda, seed);
    let mut recorder = sqda_obs::CollectingRecorder::default();
    let report = sim
        .run_recorded(kind, &workload, seed ^ 0x5eed, &mut recorder)
        .expect("simulation");
    sqda_obs::write_observability(
        recorder.events(),
        num_disks,
        num_cpus,
        Some(&tree.io_stats()),
        opts.trace.as_deref(),
        opts.metrics.as_deref(),
    )
    .expect("write trace/metrics sinks");
    for (label, path) in [("trace", &opts.trace), ("metrics", &opts.metrics)] {
        if let Some(path) = path {
            eprintln!(
                "  wrote {label} of {} λ={lambda} k={k} to {}",
                kind.name(),
                path.display()
            );
        }
    }
    report
}

/// Seed for replication `rep` of a measurement whose historical
/// single-run seed was `legacy`. Replication 0 **is** the legacy seed
/// (so `--reps 1` runs draw exactly the pre-replication numbers);
/// higher replications get independent SplitMix64-derived streams.
pub fn rep_seed(legacy: u64, rep: usize) -> u64 {
    SeedSequence::new(legacy).stream(rep as u64)
}

/// One query set per replication: replication `r` samples with
/// [`rep_seed`]`(legacy_seed, r)`, so set 0 is the historical set and
/// the others are independent draws from the same dataset.
pub fn rep_query_sets(dataset: &Dataset, opts: &ExpOptions, legacy_seed: u64) -> Vec<Vec<Point>> {
    (0..opts.reps.max(1))
        .map(|r| dataset.sample_queries(opts.queries(), rep_seed(legacy_seed, r)))
        .collect()
}

/// Mean response time of a simulation report under the `--warmup`
/// policy: with a zero fraction this is exactly the report's own
/// `mean_response_s` (legacy behaviour); otherwise the first
/// `⌊n·warmup⌋` responses (arrival order) are deleted before averaging.
pub fn mean_response(report: &SimulationReport, opts: &ExpOptions) -> f64 {
    if opts.warmup <= 0.0 {
        return report.mean_response_s;
    }
    let kept = truncate_warmup(&report.responses, opts.warmup);
    if kept.is_empty() {
        0.0
    } else {
        kept.iter().sum::<f64>() / kept.len() as f64
    }
}

/// Per-data-point result of a replicated sweep: the raw value of every
/// replication plus their `mean ± CI` summary.
#[derive(Debug, Clone)]
pub struct RepSummary {
    /// One value per replication, in replication order.
    pub values: Vec<f64>,
    /// Moments over the replications.
    pub summary: MetricSummary,
}

impl RepSummary {
    /// Mean over replications — what the legacy CSV columns carry.
    pub fn mean(&self) -> f64 {
        self.summary.mean
    }
}

/// Replicated sweep: runs `f(item, rep)` for every item and replication
/// `0..opts.reps`, fanned over `opts.jobs` workers at (item × rep)
/// granularity, and folds each item's replications into a [`RepSummary`]
/// (input order preserved).
///
/// With `--reps 1` the call sequence is identical to mapping `f(item,
/// 0)` over the items — the legacy single-run sweep.
pub fn sweep_replicated<T, F>(items: &[T], opts: &ExpOptions, f: F) -> Vec<RepSummary>
where
    T: Sync,
    F: Fn(&T, usize) -> f64 + Sync,
{
    sweep_replicated_with(items, opts, || (), |_, item, rep| f(item, rep))
}

/// [`sweep_replicated`] with per-worker scratch state (the replicated
/// analogue of [`parallel_map_with`]).
pub fn sweep_replicated_with<T, St, M, F>(
    items: &[T],
    opts: &ExpOptions,
    make_state: M,
    f: F,
) -> Vec<RepSummary>
where
    T: Sync,
    M: Fn() -> St + Sync,
    F: Fn(&mut St, &T, usize) -> f64 + Sync,
{
    let reps = opts.reps.max(1);
    let grid: Vec<(usize, usize)> = (0..items.len())
        .flat_map(|i| (0..reps).map(move |r| (i, r)))
        .collect();
    let values = parallel_map_with(&grid, opts.jobs, make_state, |state, &(i, r)| {
        f(state, &items[i], r)
    });
    values
        .chunks(reps)
        .map(|vals| RepSummary {
            values: vals.to_vec(),
            summary: MetricSummary::from_samples(vals),
        })
        .collect()
}

/// A printed + CSV'd results table.
pub struct ResultsTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultsTable {
    /// Creates a table with a title and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (formatted values).
    pub fn row(&mut self, values: Vec<String>) {
        assert_eq!(values.len(), self.header.len(), "row arity mismatch");
        self.rows.push(values);
    }

    /// Prints the table to stdout with aligned columns.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, v) in row.iter().enumerate() {
                widths[i] = widths[i].max(v.len());
            }
        }
        let print_row = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            println!("  {}", line.join("  "));
        };
        print_row(&self.header);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            print_row(row);
        }
    }

    /// Writes the table as CSV into `dir/name.csv`.
    pub fn write_csv(&self, dir: &Path, name: &str) {
        std::fs::create_dir_all(dir).expect("create results dir");
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path).expect("create csv");
        writeln!(f, "{}", self.header.join(",")).expect("write header");
        for row in &self.rows {
            writeln!(f, "{}", row.join(",")).expect("write row");
        }
        eprintln!("  wrote {}", path.display());
    }
}

/// Formats a float with 2 decimals (tables) — helper for row building.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 4 decimals (response times in seconds).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..137).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = parallel_map(&items, jobs, |x| x * x);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_map_matches_serial_for_simulation_like_work() {
        // Uneven per-item cost exercises the work-stealing cursor: late
        // items finish before early ones, yet output order must hold.
        let items: Vec<usize> = (0..24).collect();
        let serial = parallel_map(&items, 1, |&i| {
            let mut acc = 0u64;
            for j in 0..(24 - i) * 10_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(j as u64);
            }
            (i, acc)
        });
        let fanned = parallel_map(&items, 4, |&i| {
            let mut acc = 0u64;
            for j in 0..(24 - i) * 10_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(j as u64);
            }
            (i, acc)
        });
        assert_eq!(serial, fanned);
    }

    #[test]
    fn parallel_map_with_reuses_worker_state() {
        // Each worker's state counts the items it processed; totals must
        // cover every item exactly once and results stay in input order.
        let items: Vec<u64> = (0..61).collect();
        for jobs in [1, 3, 8] {
            let got = parallel_map_with(
                &items,
                jobs,
                || 0u64,
                |seen, &x| {
                    *seen += 1;
                    (x * 2, *seen)
                },
            );
            let values: Vec<u64> = got.iter().map(|(v, _)| *v).collect();
            let expect: Vec<u64> = items.iter().map(|x| x * 2).collect();
            assert_eq!(values, expect, "jobs={jobs}");
            // Per-worker counters are monotone along each worker's claim
            // sequence; in serial mode the counter sweeps 1..=n.
            if jobs == 1 {
                let counters: Vec<u64> = got.iter().map(|(_, c)| *c).collect();
                assert_eq!(counters, (1..=61).collect::<Vec<u64>>());
            }
        }
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, |x| *x).is_empty());
        assert_eq!(parallel_map(&[7u32], 8, |x| x + 1), vec![8]);
    }

    fn opts_with(reps: usize, jobs: usize) -> ExpOptions {
        ExpOptions {
            quick: true,
            out_dir: PathBuf::from("results"),
            jobs,
            trace: None,
            metrics: None,
            reps,
            manifest: false,
            warmup: 0.0,
        }
    }

    #[test]
    fn rep_seed_stream_zero_is_legacy() {
        for legacy in [801u64, 1001, 4242] {
            assert_eq!(rep_seed(legacy, 0), legacy);
            let derived: Vec<u64> = (0..8).map(|r| rep_seed(legacy, r)).collect();
            let mut uniq = derived.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), derived.len(), "seed collision: {derived:?}");
        }
    }

    #[test]
    fn sweep_replicated_folds_reps_in_order() {
        let items = [10.0f64, 20.0, 30.0];
        let got = sweep_replicated(&items, &opts_with(3, 1), |&x, rep| x + rep as f64);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].values, vec![10.0, 11.0, 12.0]);
        assert_eq!(got[2].values, vec![30.0, 31.0, 32.0]);
        assert!((got[1].mean() - 21.0).abs() < 1e-12);
        assert_eq!(got[1].summary.count, 3);
        // Parallel fan-out produces the same per-item replication values.
        let fanned = sweep_replicated(&items, &opts_with(3, 4), |&x, rep| x + rep as f64);
        for (a, b) in got.iter().zip(&fanned) {
            assert_eq!(a.values, b.values);
        }
        // reps == 1 degenerates to the single-run sweep.
        let single = sweep_replicated(&items, &opts_with(1, 1), |&x, rep| {
            assert_eq!(rep, 0);
            x
        });
        assert_eq!(single.iter().map(RepSummary::mean).collect::<Vec<_>>(), items);
    }

    #[test]
    fn replication_is_deterministic_same_master_seed_same_bytes() {
        // The satellite contract: same master seed → identical summary
        // bytes. Simulated metrics are pure functions of seeds, so two
        // fragment serializations of the same sweep must agree exactly.
        let opts = opts_with(4, 2);
        let run = || {
            let sums = sweep_replicated(&[1u64, 2, 3], &opts, |&item, rep| {
                // Seed-dependent deterministic "measurement".
                let s = rep_seed(item * 1000, rep);
                (s % 1_000_003) as f64 / 1_000_003.0
            });
            let mut report = report::BinReport::new("determinism_probe", &opts);
            report.master_seed(1000);
            for (i, s) in sums.iter().enumerate() {
                report.metric(
                    "metric",
                    &[("item", i.to_string())],
                    s.summary,
                );
            }
            report.fragment_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mean_response_warmup_policy() {
        let mut report = SimulationReport {
            algorithm: "CRSS",
            completed: 4,
            mean_response_s: 2.5,
            std_response_s: 0.0,
            max_response_s: 4.0,
            p95_response_s: 4.0,
            mean_nodes_per_query: 0.0,
            mean_disk_utilization: 0.0,
            bus_utilization: 0.0,
            cpu_utilization: 0.0,
            makespan_s: 0.0,
            failed: 0,
            degraded_reads: 0,
            read_retries: 0,
            failures: Vec::new(),
            responses: vec![1.0, 2.0, 3.0, 4.0],
        };
        // warmup 0 returns the report's own (legacy) mean verbatim.
        report.mean_response_s = 2.5000001;
        assert_eq!(mean_response(&report, &opts_with(1, 1)), 2.5000001);
        let mut warm = opts_with(1, 1);
        warm.warmup = 0.5;
        assert_eq!(mean_response(&report, &warm), 3.5);
        report.responses.clear();
        assert_eq!(mean_response(&report, &warm), 0.0);
    }
}
