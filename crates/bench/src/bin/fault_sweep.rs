//! Fault sweep: mean response time vs. number of failed disks for all
//! four algorithms on a shadowed 10-disk array (λ = 5, k = 10).
//!
//! Not a figure from the paper — its Section 2 shadowed-disk
//! organization motivates it. With disks mirrored in pairs, reads
//! aimed at a failed disk are served by the shadow partner, so mean
//! response time should degrade gracefully (roughly the failed disks'
//! load folded onto their partners) rather than collapse. Queries whose
//! every replica is gone abort with a typed `Unavailable` error and are
//! counted in the `aborted` column, not averaged into response times.
//!
//! Emits `fault_sweep.csv` plus a machine-readable
//! `BENCH_fault.json` under `--out` (default `results/`). The
//! legacy-format `BENCH_fault.json` reports replication 0 (the master
//! stream) so its counters stay exact integers; replicated means with
//! confidence intervals go to the schema-v2 fragment.

use sqda_bench::{
    build_tree, f4, parallel_map, rep_query_sets, rep_seed,
    report::{BinReport, Direction},
    simulate_faulted, ExpOptions, ResultsTable,
};
use sqda_core::AlgorithmKind;
use sqda_datasets::gaussian;
use sqda_obs::MetricSummary;
use sqda_simkernel::{FaultPlan, SimTime};

/// Even array so every disk has a shadow partner.
const DISKS: u32 = 10;
const K: usize = 10;
const LAMBDA: f64 = 5.0;

fn main() {
    let opts = ExpOptions::from_args();
    let failed_counts: &[usize] = if opts.quick {
        &[0, 2, 4]
    } else {
        &[0, 1, 2, 3, 4]
    };
    let dataset = gaussian(opts.population(20_000), 2, 1301);
    let tree = build_tree(&dataset, DISKS, 1302);
    let query_sets = rep_query_sets(&dataset, &opts, 1303);
    let mut report = BinReport::new("fault_sweep", &opts);
    report
        .param("dataset", dataset.name.clone())
        .param("disks", DISKS)
        .param("k", K)
        .param("lambda", LAMBDA)
        .param("queries", opts.queries())
        .param("sim_seed", 1305)
        .param("mirrored_reads", true)
        .master_seed(1303);

    let points: Vec<(usize, AlgorithmKind)> = failed_counts
        .iter()
        .flat_map(|&c| AlgorithmKind::ALL.map(|kind| (c, kind)))
        .collect();
    // Each worker folds its point's replications itself: replication 0 is
    // kept whole (the legacy JSON needs its exact counters), the rest
    // contribute response-time samples only.
    let measured = parallel_map(&points, opts.jobs, |&(count, kind)| {
        // A fresh seed per count picks which disks die; count = 0 is
        // the empty plan, i.e. the fault-free mirrored baseline. The
        // plan is configuration, not noise, so it is fixed across reps.
        let plan = FaultPlan::fail_disks(count, SimTime::ZERO, DISKS, 1304 + count as u64);
        let mut responses = Vec::with_capacity(opts.reps);
        let mut rep0 = None;
        for rep in 0..opts.reps {
            let r = simulate_faulted(
                &tree,
                &query_sets[rep],
                K,
                LAMBDA,
                kind,
                rep_seed(1305, rep),
                &plan,
            );
            responses.push(r.mean_response_s);
            if rep == 0 {
                rep0 = Some(r);
            }
        }
        (rep0.expect("at least one replication"), responses)
    });
    for ((count, kind), (r0, responses)) in points.iter().zip(&measured) {
        let labels = [
            ("failed", count.to_string()),
            ("algorithm", kind.name().to_string()),
        ];
        report.metric(
            "mean_response_s",
            &labels,
            MetricSummary::from_samples(responses),
        );
        report.metric_dir(
            "aborted_queries",
            &labels,
            MetricSummary::from_samples(&[r0.failed as f64]),
            Direction::Info,
        );
    }

    let mut table = ResultsTable::new(
        format!(
            "Fault sweep — mean response time vs failed disks \
             (set: {}, n={}, {DISKS} shadowed disks, k={K}, λ={LAMBDA})",
            dataset.name,
            dataset.len(),
        ),
        &[
            "failed",
            "BBSS(s)",
            "FPSS(s)",
            "CRSS(s)",
            "WOPTSS(s)",
            "degraded_reads",
            "aborted",
        ],
    );
    let mut json_points: Vec<String> = Vec::new();
    for (c, &count) in failed_counts.iter().enumerate() {
        let row_measured = &measured[c * 4..(c + 1) * 4];
        let mut row = vec![count.to_string()];
        for (_, responses) in row_measured {
            row.push(f4(MetricSummary::from_samples(responses).mean));
        }
        let degraded: u64 = row_measured.iter().map(|(r, _)| r.degraded_reads).sum();
        let aborted: usize = row_measured.iter().map(|(r, _)| r.failed).sum();
        row.push(degraded.to_string());
        row.push(aborted.to_string());
        table.row(row);
        for (r, _) in row_measured {
            json_points.push(format!(
                "{{\"failed_disks\":{count},\"algorithm\":\"{}\",\
                 \"mean_response_s\":{:.6},\"p95_response_s\":{:.6},\
                 \"completed\":{},\"aborted\":{},\
                 \"degraded_reads\":{},\"read_retries\":{}}}",
                r.algorithm,
                r.mean_response_s,
                r.p95_response_s,
                r.completed,
                r.failed,
                r.degraded_reads,
                r.read_retries
            ));
        }
    }
    table.print();
    table.write_csv(&opts.out_dir, "fault_sweep");

    std::fs::create_dir_all(&opts.out_dir).expect("create results dir");
    let path = opts.out_dir.join("BENCH_fault.json");
    let json = format!(
        "{{\n  \"bench\": \"fault_sweep\",\n  \"config\": {{\n    \
         \"disks\": {DISKS},\n    \"k\": {K},\n    \"lambda\": {LAMBDA},\n    \
         \"population\": {},\n    \"queries\": {},\n    \"mirrored_reads\": true\n  }},\n  \
         \"points\": [\n    {}\n  ]\n}}\n",
        dataset.len(),
        query_sets[0].len(),
        json_points.join(",\n    ")
    );
    std::fs::write(&path, json).expect("write BENCH_fault.json");
    eprintln!("  wrote {}", path.display());
    report.finish(&opts);
}
