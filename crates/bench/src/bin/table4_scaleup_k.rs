//! Table 4: scalability with respect to query size growth — response
//! time (s) as k and disks grow together.
//!
//! Gaussian, 5-d, population 80,000, λ = 5 queries/s.
//!
//! | k  | disks |
//! |---:|------:|
//! | 10 |     5 |
//! | 20 |    10 |
//! | 40 |    20 |
//! | 80 |    40 |
//!
//! Paper shape: CRSS is stable and ~4× faster than BBSS on average.

use sqda_bench::{
    build_tree, f4, mean_response, rep_query_sets, rep_seed, report::BinReport, simulate_observed,
    sweep_replicated, ExpOptions, ResultsTable,
};
use sqda_core::AlgorithmKind;
use sqda_datasets::gaussian;

fn main() {
    let opts = ExpOptions::from_args();
    let steps: &[(usize, u32)] = &[(10, 5), (20, 10), (40, 20), (80, 40)];
    let lambda = 5.0;
    let dataset = gaussian(opts.population(80_000), 5, 1401);
    let mut table = ResultsTable::new(
        format!(
            "Table 4 — scale-up with query size (gaussian, 5-d, n={}, λ={lambda})",
            dataset.len()
        ),
        &["k", "disks", "BBSS", "CRSS", "WOPTSS", "FPSS"],
    );
    const COLUMNS: [AlgorithmKind; 4] = [
        AlgorithmKind::Bbss,
        AlgorithmKind::Crss,
        AlgorithmKind::Woptss,
        AlgorithmKind::Fpss,
    ];
    let mut report = BinReport::new("table4_scaleup_k", &opts);
    report
        .param("dataset", dataset.name.clone())
        .param("population", dataset.len())
        .param("lambda", lambda)
        .param("queries", opts.queries())
        .param("sim_seed", 1412)
        .master_seed(1411);
    // Trees are built up front on the main thread (deterministic build
    // log); the simulation grid fans out over the workers.
    let setups: Vec<_> = steps
        .iter()
        .map(|&(_, disks)| {
            let tree = build_tree(&dataset, disks, 1410 + disks as u64);
            let query_sets = rep_query_sets(&dataset, &opts, 1411);
            (tree, query_sets)
        })
        .collect();
    let points: Vec<(usize, AlgorithmKind)> = (0..setups.len())
        .flat_map(|s| COLUMNS.map(|kind| (s, kind)))
        .collect();
    let sums = sweep_replicated(&points, &opts, |&(s, kind), rep| {
        let (tree, query_sets) = &setups[s];
        let k = steps[s].0;
        let r = simulate_observed(
            tree,
            &query_sets[rep],
            k,
            lambda,
            kind,
            rep_seed(1412, rep),
            &opts,
        );
        mean_response(&r, &opts)
    });
    for (point, sum) in points.iter().zip(&sums) {
        report.metric(
            "mean_response_s",
            &[
                ("k", steps[point.0].0.to_string()),
                ("disks", steps[point.0].1.to_string()),
                ("algorithm", point.1.name().to_string()),
            ],
            sum.summary,
        );
    }
    let cells: Vec<String> = sums.iter().map(|s| f4(s.mean())).collect();
    for (s, &(k, disks)) in steps.iter().enumerate() {
        let mut row = vec![k.to_string(), disks.to_string()];
        row.extend_from_slice(&cells[s * 4..(s + 1) * 4]);
        table.row(row);
    }
    table.print();
    table.write_csv(&opts.out_dir, "table4_scaleup_k");
    report.finish(&opts);
}
