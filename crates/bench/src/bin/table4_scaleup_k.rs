//! Table 4: scalability with respect to query size growth — response
//! time (s) as k and disks grow together.
//!
//! Gaussian, 5-d, population 80,000, λ = 5 queries/s.
//!
//! | k  | disks |
//! |---:|------:|
//! | 10 |     5 |
//! | 20 |    10 |
//! | 40 |    20 |
//! | 80 |    40 |
//!
//! Paper shape: CRSS is stable and ~4× faster than BBSS on average.

use sqda_bench::{build_tree, f4, simulate, ExpOptions, ResultsTable};
use sqda_core::AlgorithmKind;
use sqda_datasets::gaussian;

fn main() {
    let opts = ExpOptions::from_args();
    let steps: &[(usize, u32)] = &[(10, 5), (20, 10), (40, 20), (80, 40)];
    let lambda = 5.0;
    let dataset = gaussian(opts.population(80_000), 5, 1401);
    let mut table = ResultsTable::new(
        format!(
            "Table 4 — scale-up with query size (gaussian, 5-d, n={}, λ={lambda})",
            dataset.len()
        ),
        &["k", "disks", "BBSS", "CRSS", "WOPTSS", "FPSS"],
    );
    for &(k, disks) in steps {
        let tree = build_tree(&dataset, disks, 1410 + disks as u64);
        let queries = dataset.sample_queries(opts.queries(), 1411);
        let mut row = vec![k.to_string(), disks.to_string()];
        for kind in [
            AlgorithmKind::Bbss,
            AlgorithmKind::Crss,
            AlgorithmKind::Woptss,
            AlgorithmKind::Fpss,
        ] {
            let r = simulate(&tree, &queries, k, lambda, kind, 1412);
            row.push(f4(r.mean_response_s));
        }
        table.row(row);
    }
    table.print();
    table.write_csv(&opts.out_dir, "table4_scaleup_k");
}
