//! Table 4: scalability with respect to query size growth — response
//! time (s) as k and disks grow together.
//!
//! Gaussian, 5-d, population 80,000, λ = 5 queries/s.
//!
//! | k  | disks |
//! |---:|------:|
//! | 10 |     5 |
//! | 20 |    10 |
//! | 40 |    20 |
//! | 80 |    40 |
//!
//! Paper shape: CRSS is stable and ~4× faster than BBSS on average.

use sqda_bench::{build_tree, f4, parallel_map, simulate_observed, ExpOptions, ResultsTable};
use sqda_core::AlgorithmKind;
use sqda_datasets::gaussian;

fn main() {
    let opts = ExpOptions::from_args();
    let steps: &[(usize, u32)] = &[(10, 5), (20, 10), (40, 20), (80, 40)];
    let lambda = 5.0;
    let dataset = gaussian(opts.population(80_000), 5, 1401);
    let mut table = ResultsTable::new(
        format!(
            "Table 4 — scale-up with query size (gaussian, 5-d, n={}, λ={lambda})",
            dataset.len()
        ),
        &["k", "disks", "BBSS", "CRSS", "WOPTSS", "FPSS"],
    );
    const COLUMNS: [AlgorithmKind; 4] = [
        AlgorithmKind::Bbss,
        AlgorithmKind::Crss,
        AlgorithmKind::Woptss,
        AlgorithmKind::Fpss,
    ];
    // Trees are built up front on the main thread (deterministic build
    // log); the simulation grid fans out over the workers.
    let setups: Vec<_> = steps
        .iter()
        .map(|&(_, disks)| {
            let tree = build_tree(&dataset, disks, 1410 + disks as u64);
            let queries = dataset.sample_queries(opts.queries(), 1411);
            (tree, queries)
        })
        .collect();
    let points: Vec<(usize, AlgorithmKind)> = (0..setups.len())
        .flat_map(|s| COLUMNS.map(|kind| (s, kind)))
        .collect();
    let cells = parallel_map(&points, opts.jobs, |&(s, kind)| {
        let (tree, queries) = &setups[s];
        let k = steps[s].0;
        f4(simulate_observed(tree, queries, k, lambda, kind, 1412, &opts).mean_response_s)
    });
    for (s, &(k, disks)) in steps.iter().enumerate() {
        let mut row = vec![k.to_string(), disks.to_string()];
        row.extend_from_slice(&cells[s * 4..(s + 1) * 4]);
        table.row(row);
    }
    table.print();
    table.write_csv(&opts.out_dir, "table4_scaleup_k");
}
