//! Figure 10: mean response time (s) vs. query arrival rate λ.
//!
//! Left graph: Long Beach stand-in, 5 disks, k = 10, λ = 1..10.
//! Right graph: California stand-in, 10 disks, k = 100, λ = 1..20.
//!
//! Paper shape: FPSS is the most load-sensitive (no control over fetched
//! pages); for small loads and many disks it can be marginally better
//! than CRSS, but degrades fastest as λ grows; WOPTSS is the floor.

use sqda_bench::{
    build_tree, f4, mean_response, rep_query_sets, rep_seed, report::BinReport, simulate_observed,
    sweep_replicated, ExpOptions, ResultsTable,
};
use sqda_core::AlgorithmKind;
use sqda_datasets::{california_like, long_beach_like, CP_CARDINALITY, LB_CARDINALITY};

fn main() {
    let opts = ExpOptions::from_args();
    struct Config {
        dataset: sqda_datasets::Dataset,
        disks: u32,
        k: usize,
        lambdas: Vec<f64>,
    }
    let configs = [
        Config {
            dataset: long_beach_like(opts.population(LB_CARDINALITY), 1001),
            disks: 5,
            k: 10,
            lambdas: if opts.quick {
                vec![1.0, 5.0, 10.0]
            } else {
                vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
            },
        },
        Config {
            dataset: california_like(opts.population(CP_CARDINALITY), 1002),
            disks: 10,
            k: 100,
            lambdas: if opts.quick {
                vec![1.0, 10.0, 20.0]
            } else {
                vec![1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0]
            },
        },
    ];
    let mut report = BinReport::new("fig10_resp_vs_lambda", &opts);
    report
        .param("queries", opts.queries())
        .param("sim_seed", 1012)
        .master_seed(1011);
    for cfg in configs {
        let tree = build_tree(&cfg.dataset, cfg.disks, 1010);
        let query_sets = rep_query_sets(&cfg.dataset, &opts, 1011);
        let mut table = ResultsTable::new(
            format!(
                "Figure 10 — response time (s) vs λ (set: {}, n={}, disks: {}, k={})",
                cfg.dataset.name,
                cfg.dataset.len(),
                cfg.disks,
                cfg.k
            ),
            &["lambda", "BBSS", "FPSS", "CRSS", "WOPTSS"],
        );
        let points: Vec<(f64, AlgorithmKind)> = cfg
            .lambdas
            .iter()
            .flat_map(|&lambda| AlgorithmKind::ALL.map(|kind| (lambda, kind)))
            .collect();
        let sums = sweep_replicated(&points, &opts, |&(lambda, kind), rep| {
            let r = simulate_observed(
                &tree,
                &query_sets[rep],
                cfg.k,
                lambda,
                kind,
                rep_seed(1012, rep),
                &opts,
            );
            mean_response(&r, &opts)
        });
        for (point, sum) in points.iter().zip(&sums) {
            report.metric(
                "mean_response_s",
                &[
                    ("dataset", cfg.dataset.name.clone()),
                    ("disks", cfg.disks.to_string()),
                    ("k", cfg.k.to_string()),
                    ("lambda", point.0.to_string()),
                    ("algorithm", point.1.name().to_string()),
                ],
                sum.summary,
            );
        }
        let cells: Vec<String> = sums.iter().map(|s| f4(s.mean())).collect();
        for (i, &lambda) in cfg.lambdas.iter().enumerate() {
            let mut row = vec![format!("{lambda}")];
            row.extend_from_slice(&cells[i * 4..(i + 1) * 4]);
            table.row(row);
        }
        table.print();
        table.write_csv(
            &opts.out_dir,
            &format!("fig10_{}_{}disks", cfg.dataset.name, cfg.disks),
        );
    }
    report.finish(&opts);
}
