//! Extension — CRSS over the SS-tree (the paper's future-work item:
//! "the application of the algorithm on other access methods for
//! similarity search, like SS-tree ...").
//!
//! The same data, the same array, the same algorithms — only the access
//! method changes: MBRs (R\*-tree) vs bounding spheres (SS-tree, with
//! nearly double the directory fan-out but no MINMAXDIST guarantee).

use sqda_bench::{build_tree, experiment_page_size, f2, f4, ExpOptions, ResultsTable};
use sqda_core::{exec::run_query, AccessMethod, AlgorithmKind, Simulation, Workload};
use sqda_datasets::{gaussian, Dataset};
use sqda_simkernel::SystemParams;
use sqda_sstree::{SsConfig, SsTree};
use sqda_storage::{ArrayStore, PageStore};
use std::sync::Arc;

fn build_sstree(dataset: &Dataset, disks: u32, seed: u64) -> SsTree<ArrayStore> {
    let page = experiment_page_size(dataset.dim);
    let store = Arc::new(ArrayStore::with_page_size(disks, 1449, page, seed));
    let mut tree =
        SsTree::create(store, SsConfig::with_page_size(dataset.dim, page)).expect("create SS-tree");
    for (i, p) in dataset.points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).expect("insert");
    }
    tree.store().reset_stats();
    tree
}

fn measure(am: &dyn AccessMethod, queries: &[sqda_geom::Point], k: usize) -> (f64, f64, f64) {
    let mut crss_nodes = 0u64;
    let mut bbss_nodes = 0u64;
    for q in queries {
        let mut crss = AlgorithmKind::Crss.build(am, q.clone(), k).expect("algo");
        crss_nodes += run_query(am, crss.as_mut()).expect("query").nodes_visited;
        let mut bbss = AlgorithmKind::Bbss.build(am, q.clone(), k).expect("algo");
        bbss_nodes += run_query(am, bbss.as_mut()).expect("query").nodes_visited;
    }
    let sim = Simulation::new(am, SystemParams::with_disks(am.num_disks())).expect("simulation");
    let w = Workload::poisson(queries.to_vec(), k, 5.0, 2301);
    let resp = sim
        .run(AlgorithmKind::Crss, &w, 2302)
        .expect("simulation")
        .mean_response_s;
    let n = queries.len() as f64;
    (crss_nodes as f64 / n, bbss_nodes as f64 / n, resp)
}

fn main() {
    let opts = ExpOptions::from_args();
    let k = 20;
    let mut table = ResultsTable::new(
        format!("Extension — R*-tree vs SS-tree under CRSS (k={k}, λ=5, 10 disks)"),
        &[
            "dataset",
            "index",
            "CRSS nodes",
            "BBSS nodes",
            "CRSS resp (s)",
        ],
    );
    for dim in [2usize, 5, 10] {
        let dataset = gaussian(opts.population(50_000), dim, 2300 + dim as u64);
        let queries = dataset.sample_queries(opts.queries(), 2310);

        let rstar = build_tree(&dataset, 10, 2311);
        let (cn, bn, resp) = measure(&rstar, &queries, k);
        table.row(vec![
            dataset.name.clone(),
            "R*-tree".into(),
            f2(cn),
            f2(bn),
            f4(resp),
        ]);

        let sstree = build_sstree(&dataset, 10, 2311);
        let (cn, bn, resp) = measure(&sstree, &queries, k);
        table.row(vec![
            dataset.name.clone(),
            "SS-tree".into(),
            f2(cn),
            f2(bn),
            f4(resp),
        ]);
    }
    table.print();
    table.write_csv(&opts.out_dir, "ext_sstree");
}
