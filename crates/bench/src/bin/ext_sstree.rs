//! Extension — CRSS over the SS-tree (the paper's future-work item:
//! "the application of the algorithm on other access methods for
//! similarity search, like SS-tree ...").
//!
//! The same data, the same array, the same algorithms — only the access
//! method changes: MBRs (R\*-tree) vs bounding spheres (SS-tree, with
//! nearly double the directory fan-out but no MINMAXDIST guarantee).

use sqda_bench::{
    build_tree, experiment_page_size, f2, f4, rep_query_sets, rep_seed, report::BinReport,
    ExpOptions, ResultsTable,
};
use sqda_core::{exec::run_query, AccessMethod, AlgorithmKind, Simulation, Workload};
use sqda_datasets::{gaussian, Dataset};
use sqda_obs::MetricSummary;
use sqda_simkernel::SystemParams;
use sqda_sstree::{SsConfig, SsTree};
use sqda_storage::{ArrayStore, PageStore};
use std::sync::Arc;

fn build_sstree(dataset: &Dataset, disks: u32, seed: u64) -> SsTree<ArrayStore> {
    let page = experiment_page_size(dataset.dim);
    let store = Arc::new(ArrayStore::with_page_size(disks, 1449, page, seed));
    let mut tree =
        SsTree::create(store, SsConfig::with_page_size(dataset.dim, page)).expect("create SS-tree");
    for (i, p) in dataset.points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).expect("insert");
    }
    tree.store().reset_stats();
    tree
}

struct Measured {
    crss_nodes: MetricSummary,
    bbss_nodes: MetricSummary,
    resp: MetricSummary,
}

fn measure(
    am: &dyn AccessMethod,
    query_sets: &[Vec<sqda_geom::Point>],
    k: usize,
    opts: &ExpOptions,
) -> Measured {
    let mut crss_means = Vec::with_capacity(opts.reps);
    let mut bbss_means = Vec::with_capacity(opts.reps);
    let mut resps = Vec::with_capacity(opts.reps);
    for rep in 0..opts.reps {
        let queries = &query_sets[rep];
        let mut crss_nodes = 0u64;
        let mut bbss_nodes = 0u64;
        for q in queries {
            let mut crss = AlgorithmKind::Crss.build(am, q.clone(), k).expect("algo");
            crss_nodes += run_query(am, crss.as_mut()).expect("query").nodes_visited;
            let mut bbss = AlgorithmKind::Bbss.build(am, q.clone(), k).expect("algo");
            bbss_nodes += run_query(am, bbss.as_mut()).expect("query").nodes_visited;
        }
        let sim =
            Simulation::new(am, SystemParams::with_disks(am.num_disks())).expect("simulation");
        let w = Workload::poisson(queries.to_vec(), k, 5.0, rep_seed(2301, rep));
        resps.push(
            sim.run(AlgorithmKind::Crss, &w, rep_seed(2302, rep))
                .expect("simulation")
                .mean_response_s,
        );
        let n = queries.len() as f64;
        crss_means.push(crss_nodes as f64 / n);
        bbss_means.push(bbss_nodes as f64 / n);
    }
    Measured {
        crss_nodes: MetricSummary::from_samples(&crss_means),
        bbss_nodes: MetricSummary::from_samples(&bbss_means),
        resp: MetricSummary::from_samples(&resps),
    }
}

fn main() {
    let opts = ExpOptions::from_args();
    let k = 20;
    let mut report = BinReport::new("ext_sstree", &opts);
    report
        .param("disks", 10)
        .param("k", k)
        .param("lambda", 5)
        .param("queries", opts.queries())
        .param("sim_seed", 2302)
        .master_seed(2310);
    let mut table = ResultsTable::new(
        format!("Extension — R*-tree vs SS-tree under CRSS (k={k}, λ=5, 10 disks)"),
        &[
            "dataset",
            "index",
            "CRSS nodes",
            "BBSS nodes",
            "CRSS resp (s)",
        ],
    );
    let record = |report: &mut BinReport,
                      table: &mut ResultsTable,
                      dataset: &Dataset,
                      index: &str,
                      m: Measured| {
        let labels = |metric_algo: &str| {
            [
                ("dataset", dataset.name.clone()),
                ("index", index.to_string()),
                ("algorithm", metric_algo.to_string()),
            ]
        };
        report.metric("mean_nodes", &labels("CRSS"), m.crss_nodes);
        report.metric("mean_nodes", &labels("BBSS"), m.bbss_nodes);
        report.metric("mean_response_s", &labels("CRSS"), m.resp);
        table.row(vec![
            dataset.name.clone(),
            index.into(),
            f2(m.crss_nodes.mean),
            f2(m.bbss_nodes.mean),
            f4(m.resp.mean),
        ]);
    };
    for dim in [2usize, 5, 10] {
        let dataset = gaussian(opts.population(50_000), dim, 2300 + dim as u64);
        let query_sets = rep_query_sets(&dataset, &opts, 2310);

        let rstar = build_tree(&dataset, 10, 2311);
        let m = measure(&rstar, &query_sets, k, &opts);
        record(&mut report, &mut table, &dataset, "R*-tree", m);

        let sstree = build_sstree(&dataset, 10, 2311);
        let m = measure(&sstree, &query_sets, k, &opts);
        record(&mut report, &mut table, &dataset, "SS-tree", m);
    }
    table.print();
    table.write_csv(&opts.out_dir, "ext_sstree");
    report.finish(&opts);
}
