//! Figure 11: response time normalized to WOPTSS vs. number of disks
//! (5–30), Gaussian 50,000 points, 5-d, λ = 5 queries/s, k = 10 and
//! k = 100.
//!
//! Paper shape: CRSS's speed-up with added disks is far better than
//! BBSS's — CRSS lands 2–4× faster than BBSS and about 2× the WOPTSS
//! floor. (FPSS is dropped from this figure in the paper due to its load
//! sensitivity; we keep it in the CSV for completeness.)

use sqda_bench::{
    build_tree, f2, f4, mean_response, rep_query_sets, rep_seed, report::BinReport,
    simulate_observed, sweep_replicated, ExpOptions, ResultsTable,
};
use sqda_core::AlgorithmKind;
use sqda_datasets::gaussian;

fn main() {
    let opts = ExpOptions::from_args();
    let disk_counts: &[u32] = if opts.quick {
        &[5, 15, 30]
    } else {
        &[5, 10, 15, 20, 25, 30]
    };
    let dataset = gaussian(opts.population(50_000), 5, 1101);
    // Trees are built up front on the main thread (deterministic build
    // log) and shared by both k sweeps and all workers.
    let trees: Vec<_> = disk_counts
        .iter()
        .map(|&disks| build_tree(&dataset, disks, 1110 + disks as u64))
        .collect();
    let query_sets = rep_query_sets(&dataset, &opts, 1111);
    let mut report = BinReport::new("fig11_resp_vs_disks", &opts);
    report
        .param("dataset", dataset.name.clone())
        .param("lambda", 5)
        .param("queries", opts.queries())
        .param("sim_seed", 1112)
        .master_seed(1111);
    for k in [10usize, 100] {
        let mut table = ResultsTable::new(
            format!(
                "Figure 11 — response time normalized to WOPTSS vs #disks (set: {}, n={}, 5-d, k={}, λ=5)",
                dataset.name,
                dataset.len(),
                k
            ),
            &[
                "disks",
                "BBSS/WOPTSS",
                "FPSS/WOPTSS",
                "CRSS/WOPTSS",
                "WOPTSS(s)",
            ],
        );
        let points: Vec<(usize, AlgorithmKind)> = (0..trees.len())
            .flat_map(|t| AlgorithmKind::ALL.map(|kind| (t, kind)))
            .collect();
        let sums = sweep_replicated(&points, &opts, |&(t, kind), rep| {
            let r = simulate_observed(
                &trees[t],
                &query_sets[rep],
                k,
                5.0,
                kind,
                rep_seed(1112, rep),
                &opts,
            );
            mean_response(&r, &opts)
        });
        for (point, sum) in points.iter().zip(&sums) {
            report.metric(
                "mean_response_s",
                &[
                    ("disks", disk_counts[point.0].to_string()),
                    ("k", k.to_string()),
                    ("algorithm", point.1.name().to_string()),
                ],
                sum.summary,
            );
        }
        let cells: Vec<f64> = sums.iter().map(|s| s.mean()).collect();
        for (t, &disks) in disk_counts.iter().enumerate() {
            // WOPTSS is ALL's last element: the row's normalizer.
            let wopt = cells[t * 4 + 3];
            let mut row = vec![disks.to_string()];
            for resp in &cells[t * 4..t * 4 + 3] {
                row.push(f2(resp / wopt));
            }
            row.push(f4(wopt));
            table.row(row);
        }
        table.print();
        table.write_csv(&opts.out_dir, &format!("fig11_k{k}"));
    }
    report.finish(&opts);
}
