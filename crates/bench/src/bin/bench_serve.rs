//! `bench_serve`: wall-clock throughput and latency of the real-clock
//! engine — the machinery behind `sqda serve` — against a persisted
//! `FileStore` tree, swept over client concurrency, side by side with
//! the event-driven simulator's prediction for the same tree and
//! queries.
//!
//! Not a figure from the paper: the paper's evaluation is entirely
//! simulated. This run closes the loop on the execution-backend seam by
//! timing the identical session/batch machinery on real files. The two
//! columns measure different hardware — the simulator models the
//! paper's 1998 Seagate-class disks, the real run hits this machine's
//! (page-cached) filesystem — so the absolute numbers are expected to
//! differ by orders of magnitude; what they share, pinned by the
//! backend-parity test, is the *work* (same node fetches, same
//! answers). All metrics are emitted as `Direction::Info`: wall-clock
//! numbers depend on the host and must never trip the regression gate.
//!
//! Emits `bench_serve.csv` plus `BENCH_serve.json` under `--out`
//! (default `results/`).

use sqda_bench::{
    experiment_page_size, f4,
    report::{BinReport, Direction},
    ExpOptions, ResultsTable,
};
use sqda_core::{AlgorithmKind, RealTimeEngine, Simulation, Workload, WorkloadQuery};
use sqda_datasets::gaussian;
use sqda_geom::Point;
use sqda_obs::{trace_document, LiveTelemetry, MetricSummary};
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{Node, RStarConfig, RStarTree};
use sqda_simkernel::{SimTime, SystemParams};
use sqda_storage::{FileStore, NodeCache, ReadObserver, ThreadedFileBackend};
use std::sync::Arc;
use std::time::Instant;

const DISKS: u32 = 8;
const K: usize = 10;
const KIND: AlgorithmKind = AlgorithmKind::Crss;

fn main() {
    let opts = ExpOptions::from_args();
    let concurrencies: &[usize] = if opts.quick {
        &[1, 4]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let dim = 2;
    let page_size = experiment_page_size(dim);
    let dataset = gaussian(opts.population(20_000), dim, 4501);
    let n_queries = opts.queries() * 4;

    // Persist the tree: the whole point is reads from real files.
    let dir = std::env::temp_dir().join(format!("sqda-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store =
        Arc::new(FileStore::create(&dir, DISKS, 1449, page_size, 4502).expect("create store"));
    let mut tree = RStarTree::create(
        store.clone(),
        RStarConfig::with_page_size(dim, page_size),
        Box::new(ProximityIndex),
    )
    .expect("create tree");
    for (i, p) in dataset.points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).expect("insert");
    }
    store.sync().expect("sync store");
    tree.set_node_cache(Arc::new(NodeCache::<Node>::new(4096)));

    // Queries follow the data distribution (stride-sampled points);
    // arrivals are spaced far apart so the simulated run is effectively
    // single-user — its mean response is the per-query latency the
    // paper's array model predicts, and `c / latency` the corresponding
    // throughput ceiling at concurrency c.
    let stride = (dataset.len() / n_queries).max(1);
    let points: Vec<Point> = (0..n_queries)
        .map(|i| dataset.points[(i * stride) % dataset.len()].clone())
        .collect();
    let workload = Workload {
        queries: points
            .iter()
            .enumerate()
            .map(|(i, p)| WorkloadQuery {
                arrival: SimTime::from_secs_f64(i as f64),
                point: p.clone(),
                k: K,
            })
            .collect(),
    };

    let sim_report = Simulation::new(&tree, SystemParams::with_disks(DISKS))
        .expect("simulation")
        .run(KIND, &workload, 4503)
        .expect("simulated run");
    let sim_mean_s = sim_report.mean_response_s;
    // The simulated run walked the whole tree through the node cache;
    // start the real-clock sweep cold so the first concurrency level
    // actually reads files and the per-disk utilization below is real.
    tree.set_node_cache(Arc::new(NodeCache::<Node>::new(4096)));

    let mut report = BinReport::new("bench_serve", &opts);
    report
        .param("dataset", dataset.name.clone())
        .param("disks", DISKS)
        .param("k", K)
        .param("algorithm", KIND.name())
        .param("page_size", page_size)
        .param("queries", n_queries)
        .param("backend", "file")
        .master_seed(4501);
    report.metric_dir(
        "sim_mean_response_s",
        &[],
        MetricSummary::from_samples(&[sim_mean_s]),
        Direction::Info,
    );

    let mut table = ResultsTable::new(
        format!(
            "bench_serve — wall-clock vs simulated prediction \
             (set: {}, n={}, {DISKS} disks, k={K}, {}, {n_queries} queries)",
            dataset.name,
            dataset.len(),
            KIND.name(),
        ),
        &[
            "concurrency",
            "qps",
            "p50(ms)",
            "p95(ms)",
            "p99(ms)",
            "mean(ms)",
            "max_disk_util",
            "sim_single_user(ms)",
            "sim_qps_ceiling",
        ],
    );
    let mut json_points: Vec<String> = Vec::new();
    // The engine runs with live telemetry attached — the same registry
    // `sqda serve` carries — so the bench also reports what the serving
    // stack would expose: per-disk utilization from the backend's
    // ReadObserver seam. Parity with the bare engine is pinned by the
    // backend_parity test.
    let live = Arc::new(
        LiveTelemetry::new(DISKS).with_flight_recorder(if opts.trace.is_some() {
            65_536
        } else {
            0
        }),
    );
    let observer: Arc<dyn ReadObserver> = Arc::clone(&live) as _;
    let backend = Arc::new(ThreadedFileBackend::with_observer(store.clone(), observer));
    let engine = RealTimeEngine::new(&tree, backend)
        .expect("real-clock engine")
        .with_telemetry(Arc::clone(&live))
        .expect("attach telemetry");
    for &c in concurrencies {
        // Per-disk busy time is cumulative in the registry; diff it
        // around the run to get this concurrency's utilization.
        let busy_before: Vec<u64> = live.disks().iter().map(|d| d.busy_ns.get()).collect();
        let wall = Instant::now();
        let r = engine.run(KIND, &workload, c).expect("real-clock run");
        let elapsed_ns = (wall.elapsed().as_nanos() as u64).max(1);
        assert_eq!(r.failed, 0, "real-clock queries failed");
        let utilization: Vec<f64> = live
            .disks()
            .iter()
            .zip(&busy_before)
            .map(|(d, &b)| (d.busy_ns.get() - b) as f64 / elapsed_ns as f64)
            .collect();
        let max_util = utilization.iter().cloned().fold(0.0f64, f64::max);
        let sim_qps_ceiling = c as f64 / sim_mean_s;
        table.row(vec![
            c.to_string(),
            f4(r.qps),
            f4(r.p50_response_s * 1e3),
            f4(r.p95_response_s * 1e3),
            f4(r.p99_response_s * 1e3),
            f4(r.mean_response_s * 1e3),
            f4(max_util),
            f4(sim_mean_s * 1e3),
            f4(sim_qps_ceiling),
        ]);
        let labels = [("concurrency", c.to_string())];
        report.metric_dir(
            "qps",
            &labels,
            MetricSummary::from_samples(&[r.qps]),
            Direction::Info,
        );
        report.metric_dir(
            "p50_response_s",
            &labels,
            MetricSummary::from_samples(&[r.p50_response_s]),
            Direction::Info,
        );
        report.metric_dir(
            "p95_response_s",
            &labels,
            MetricSummary::from_samples(&[r.p95_response_s]),
            Direction::Info,
        );
        report.metric_dir(
            "p99_response_s",
            &labels,
            MetricSummary::from_samples(&[r.p99_response_s]),
            Direction::Info,
        );
        report.metric_dir(
            "max_disk_utilization",
            &labels,
            MetricSummary::from_samples(&[max_util]),
            Direction::Info,
        );
        let util_json: Vec<String> = utilization.iter().map(|u| format!("{u:.6}")).collect();
        json_points.push(format!(
            "{{\"concurrency\":{c},\"completed\":{},\"qps\":{:.4},\
             \"mean_response_s\":{:.6},\"p50_response_s\":{:.6},\
             \"p95_response_s\":{:.6},\"p99_response_s\":{:.6},\
             \"disk_utilization\":[{}],\
             \"sim_mean_response_s\":{:.6},\"sim_qps_ceiling\":{:.4}}}",
            r.completed,
            r.qps,
            r.mean_response_s,
            r.p50_response_s,
            r.p95_response_s,
            r.p99_response_s,
            util_json.join(","),
            sim_mean_s,
            sim_qps_ceiling
        ));
    }
    table.print();
    table.write_csv(&opts.out_dir, "bench_serve");

    // The --trace / --metrics sinks mirror `sqda serve --trace/--metrics`:
    // the flight ring becomes a Perfetto trace, the live registry a
    // metrics snapshot (with the store's cache behaviour folded in).
    if let Some(path) = &opts.trace {
        let events = live.flight().map(|f| f.drain()).unwrap_or_default();
        std::fs::write(path, trace_document(path, &events, DISKS, 1)).expect("write trace");
        eprintln!("  wrote {} ({} events)", path.display(), events.len());
    }
    if let Some(path) = &opts.metrics {
        let mut snap = live.snapshot();
        snap.fold_io_stats(&tree.io_stats());
        std::fs::write(path, format!("{{\"snapshot\":{}}}\n", snap.to_json()))
            .expect("write metrics");
        eprintln!("  wrote {}", path.display());
    }

    std::fs::create_dir_all(&opts.out_dir).expect("create results dir");
    let path = opts.out_dir.join("BENCH_serve.json");
    let json = format!(
        "{{\n  \"bench\": \"bench_serve\",\n  \"config\": {{\n    \
         \"disks\": {DISKS},\n    \"k\": {K},\n    \"algorithm\": \"{}\",\n    \
         \"page_size\": {page_size},\n    \"population\": {},\n    \
         \"queries\": {n_queries},\n    \"backend\": \"file\"\n  }},\n  \
         \"points\": [\n    {}\n  ]\n}}\n",
        KIND.name(),
        dataset.len(),
        json_points.join(",\n    ")
    );
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    eprintln!("  wrote {}", path.display());
    report.finish(&opts);
    std::fs::remove_dir_all(&dir).ok();
}
