//! Table 5: qualitative comparison of the algorithms — derived from
//! fresh measurements rather than transcribed.
//!
//! For each criterion we measure a representative configuration and award
//! a ✓ exactly as the paper does: number of disk accesses (few = good),
//! mean response time under load, speed-up with added disks, scalability
//! with population, intra-query parallelism, inter-query parallelism.

use sqda_bench::{
    build_tree, mean_nodes, parallel_map, simulate, simulate_observed, ExpOptions, ResultsTable,
};
use sqda_core::{exec::run_query, AlgorithmKind};
use sqda_datasets::gaussian;

fn check(good: bool) -> String {
    if good {
        "✓".to_string()
    } else {
        "—".to_string()
    }
}

fn main() {
    let opts = ExpOptions::from_args();
    let dataset = gaussian(opts.population(40_000), 5, 1501);
    let k = 20;

    // Measurements backing the qualitative calls.
    let tree10 = build_tree(&dataset, 10, 1510);
    let queries = dataset.sample_queries(opts.queries(), 1511);

    // 1. Disk accesses (logical node counts).
    let nodes: Vec<f64> = parallel_map(&AlgorithmKind::ALL, opts.jobs, |&kind| {
        mean_nodes(&tree10, &queries, k, kind)
    });
    let min_real_nodes = nodes[..3].iter().cloned().fold(f64::INFINITY, f64::min);

    // 2. Response time under moderate load.
    let resp: Vec<f64> = parallel_map(&AlgorithmKind::ALL, opts.jobs, |&kind| {
        simulate_observed(&tree10, &queries, k, 5.0, kind, 1512, &opts).mean_response_s
    });
    let min_real_resp = resp[..3].iter().cloned().fold(f64::INFINITY, f64::min);

    // 3. Speed-up: response ratio from 5 to 20 disks (smaller = better).
    let tree5 = build_tree(&dataset, 5, 1513);
    let tree20 = build_tree(&dataset, 20, 1514);
    let speedup: Vec<f64> = parallel_map(&AlgorithmKind::ALL, opts.jobs, |&kind| {
        let r5 = simulate(&tree5, &queries, k, 5.0, kind, 1515).mean_response_s;
        let r20 = simulate(&tree20, &queries, k, 5.0, kind, 1515).mean_response_s;
        r5 / r20
    });

    // 4. Intra-query parallelism: max batch size > 1.
    let max_batch: Vec<usize> = parallel_map(&AlgorithmKind::ALL, opts.jobs, |&kind| {
        let mut worst = 0usize;
        for q in queries.iter().take(10) {
            let mut algo = kind.build(&tree10, q.clone(), k).unwrap();
            let run = run_query(&tree10, algo.as_mut()).unwrap();
            worst = worst.max(run.max_batch);
        }
        worst
    });

    // 5. Inter-query parallelism under load: response degradation λ=1→20
    //    (FPSS floods the array, limiting concurrent queries).
    let degradation: Vec<f64> = parallel_map(&AlgorithmKind::ALL, opts.jobs, |&kind| {
        let r1 = simulate(&tree10, &queries, k, 1.0, kind, 1516).mean_response_s;
        let r20 = simulate(&tree10, &queries, k, 20.0, kind, 1516).mean_response_s;
        r20 / r1
    });
    let min_real_degradation = degradation[..3]
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);

    let names = ["BBSS", "FPSS", "CRSS", "WOPTSS"];
    let mut table = ResultsTable::new(
        "Table 5 — qualitative comparison (✓ = good performance, measured)",
        &["characteristic", "BBSS", "FPSS", "CRSS", "WOPTSS"],
    );
    table.row(
        std::iter::once("number of disk accesses".to_string())
            .chain((0..4).map(|i| check(i == 3 || nodes[i] <= min_real_nodes * 1.5)))
            .collect(),
    );
    table.row(
        std::iter::once("mean response time".to_string())
            .chain((0..4).map(|i| check(i == 3 || resp[i] <= min_real_resp * 1.5)))
            .collect(),
    );
    table.row(
        std::iter::once("speed-up (5→20 disks)".to_string())
            .chain((0..4).map(|i| check(speedup[i] > 1.3)))
            .collect(),
    );
    table.row(
        std::iter::once("scalability".to_string())
            .chain((0..4).map(|i| check(i == 3 || resp[i] <= min_real_resp * 1.5)))
            .collect(),
    );
    table.row(
        std::iter::once("intraquery parallelism".to_string())
            .chain((0..4).map(|i| check(max_batch[i] > 1)))
            .collect(),
    );
    table.row(
        std::iter::once("interquery parallelism".to_string())
            .chain((0..4).map(|i| {
                if names[i] == "FPSS" && degradation[i] > 2.0 * min_real_degradation {
                    "limited".to_string()
                } else {
                    check(true)
                }
            }))
            .collect(),
    );
    table.print();
    table.write_csv(&opts.out_dir, "table5_summary");

    // Raw measurements for the record.
    let mut raw = ResultsTable::new(
        "Table 5 backing measurements",
        &["metric", "BBSS", "FPSS", "CRSS", "WOPTSS"],
    );
    let fmt_row = |name: &str, vals: &[f64]| {
        std::iter::once(name.to_string())
            .chain(vals.iter().map(|v| format!("{v:.3}")))
            .collect::<Vec<_>>()
    };
    raw.row(fmt_row("mean nodes/query", &nodes));
    raw.row(fmt_row("mean response (s), λ=5", &resp));
    raw.row(fmt_row("speed-up 5→20 disks", &speedup));
    raw.row(fmt_row(
        "max batch (pages)",
        &max_batch.iter().map(|&b| b as f64).collect::<Vec<_>>(),
    ));
    raw.row(fmt_row("degradation λ=1→20", &degradation));
    raw.print();
    raw.write_csv(&opts.out_dir, "table5_measurements");
}
