//! Table 5: qualitative comparison of the algorithms — derived from
//! fresh measurements rather than transcribed.
//!
//! For each criterion we measure a representative configuration and award
//! a ✓ exactly as the paper does: number of disk accesses (few = good),
//! mean response time under load, speed-up with added disks, scalability
//! with population, intra-query parallelism, inter-query parallelism.

use sqda_bench::{
    build_tree, mean_nodes, mean_response, parallel_map, rep_query_sets, rep_seed,
    report::{BinReport, Direction},
    simulate, simulate_observed, sweep_replicated, ExpOptions, ResultsTable,
};
use sqda_core::{exec::run_query, AlgorithmKind};
use sqda_datasets::gaussian;

fn check(good: bool) -> String {
    if good {
        "✓".to_string()
    } else {
        "—".to_string()
    }
}

fn main() {
    let opts = ExpOptions::from_args();
    let dataset = gaussian(opts.population(40_000), 5, 1501);
    let k = 20;

    // Measurements backing the qualitative calls.
    let tree10 = build_tree(&dataset, 10, 1510);
    let query_sets = rep_query_sets(&dataset, &opts, 1511);
    let queries = &query_sets[0];

    let mut report = BinReport::new("table5_summary", &opts);
    report
        .param("dataset", dataset.name.clone())
        .param("k", k)
        .param("queries", opts.queries())
        .master_seed(1511);

    // 1. Disk accesses (logical node counts).
    let nodes_sums = sweep_replicated(&AlgorithmKind::ALL, &opts, |&kind, rep| {
        mean_nodes(&tree10, &query_sets[rep], k, kind)
    });
    let nodes: Vec<f64> = nodes_sums.iter().map(|s| s.mean()).collect();
    let min_real_nodes = nodes[..3].iter().cloned().fold(f64::INFINITY, f64::min);

    // 2. Response time under moderate load.
    let resp_sums = sweep_replicated(&AlgorithmKind::ALL, &opts, |&kind, rep| {
        let r = simulate_observed(
            &tree10,
            &query_sets[rep],
            k,
            5.0,
            kind,
            rep_seed(1512, rep),
            &opts,
        );
        mean_response(&r, &opts)
    });
    let resp: Vec<f64> = resp_sums.iter().map(|s| s.mean()).collect();
    let min_real_resp = resp[..3].iter().cloned().fold(f64::INFINITY, f64::min);

    // 3. Speed-up: response ratio from 5 to 20 disks (larger = better).
    let tree5 = build_tree(&dataset, 5, 1513);
    let tree20 = build_tree(&dataset, 20, 1514);
    let speedup_sums = sweep_replicated(&AlgorithmKind::ALL, &opts, |&kind, rep| {
        let seed = rep_seed(1515, rep);
        let r5 = simulate(&tree5, &query_sets[rep], k, 5.0, kind, seed).mean_response_s;
        let r20 = simulate(&tree20, &query_sets[rep], k, 5.0, kind, seed).mean_response_s;
        r5 / r20
    });
    let speedup: Vec<f64> = speedup_sums.iter().map(|s| s.mean()).collect();

    // 4. Intra-query parallelism: max batch size > 1 (deterministic on
    //    the replication-0 query set; no variance to summarize).
    let max_batch: Vec<usize> = parallel_map(&AlgorithmKind::ALL, opts.jobs, |&kind| {
        let mut worst = 0usize;
        for q in queries.iter().take(10) {
            let mut algo = kind.build(&tree10, q.clone(), k).unwrap();
            let run = run_query(&tree10, algo.as_mut()).unwrap();
            worst = worst.max(run.max_batch);
        }
        worst
    });

    // 5. Inter-query parallelism under load: response degradation λ=1→20
    //    (FPSS floods the array, limiting concurrent queries).
    let degradation_sums = sweep_replicated(&AlgorithmKind::ALL, &opts, |&kind, rep| {
        let seed = rep_seed(1516, rep);
        let r1 = simulate(&tree10, &query_sets[rep], k, 1.0, kind, seed).mean_response_s;
        let r20 = simulate(&tree10, &query_sets[rep], k, 20.0, kind, seed).mean_response_s;
        r20 / r1
    });
    let degradation: Vec<f64> = degradation_sums.iter().map(|s| s.mean()).collect();
    let min_real_degradation = degradation[..3]
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);

    let names = ["BBSS", "FPSS", "CRSS", "WOPTSS"];
    for (i, kind) in AlgorithmKind::ALL.iter().enumerate() {
        let labels = [("algorithm", kind.name().to_string())];
        report.metric("mean_nodes", &labels, nodes_sums[i].summary);
        report.metric("mean_response_s", &labels, resp_sums[i].summary);
        report.metric_dir(
            "speedup_5_to_20_disks",
            &labels,
            speedup_sums[i].summary,
            Direction::Higher,
        );
        report.metric("degradation_lambda_1_to_20", &labels, degradation_sums[i].summary);
    }

    let mut table = ResultsTable::new(
        "Table 5 — qualitative comparison (✓ = good performance, measured)",
        &["characteristic", "BBSS", "FPSS", "CRSS", "WOPTSS"],
    );
    table.row(
        std::iter::once("number of disk accesses".to_string())
            .chain((0..4).map(|i| check(i == 3 || nodes[i] <= min_real_nodes * 1.5)))
            .collect(),
    );
    table.row(
        std::iter::once("mean response time".to_string())
            .chain((0..4).map(|i| check(i == 3 || resp[i] <= min_real_resp * 1.5)))
            .collect(),
    );
    table.row(
        std::iter::once("speed-up (5→20 disks)".to_string())
            .chain((0..4).map(|i| check(speedup[i] > 1.3)))
            .collect(),
    );
    table.row(
        std::iter::once("scalability".to_string())
            .chain((0..4).map(|i| check(i == 3 || resp[i] <= min_real_resp * 1.5)))
            .collect(),
    );
    table.row(
        std::iter::once("intraquery parallelism".to_string())
            .chain((0..4).map(|i| check(max_batch[i] > 1)))
            .collect(),
    );
    table.row(
        std::iter::once("interquery parallelism".to_string())
            .chain((0..4).map(|i| {
                if names[i] == "FPSS" && degradation[i] > 2.0 * min_real_degradation {
                    "limited".to_string()
                } else {
                    check(true)
                }
            }))
            .collect(),
    );
    table.print();
    table.write_csv(&opts.out_dir, "table5_summary");

    // Raw measurements for the record.
    let mut raw = ResultsTable::new(
        "Table 5 backing measurements",
        &["metric", "BBSS", "FPSS", "CRSS", "WOPTSS"],
    );
    let fmt_row = |name: &str, vals: &[f64]| {
        std::iter::once(name.to_string())
            .chain(vals.iter().map(|v| format!("{v:.3}")))
            .collect::<Vec<_>>()
    };
    raw.row(fmt_row("mean nodes/query", &nodes));
    raw.row(fmt_row("mean response (s), λ=5", &resp));
    raw.row(fmt_row("speed-up 5→20 disks", &speedup));
    raw.row(fmt_row(
        "max batch (pages)",
        &max_batch.iter().map(|&b| b as f64).collect::<Vec<_>>(),
    ));
    raw.row(fmt_row("degradation λ=1→20", &degradation));
    raw.print();
    raw.write_csv(&opts.out_dir, "table5_measurements");
    report.finish(&opts);
}
