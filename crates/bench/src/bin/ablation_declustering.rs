//! Ablation 1 (Section 2.2's claim): the Proximity-Index declustering
//! heuristic beats random, round-robin, data-balance and area-balance
//! placement for similarity queries on the parallel R\*-tree.
//!
//! We build the same tree under each heuristic and compare (a) CRSS
//! response time and (b) the read-imbalance across disks during query
//! processing.

use sqda_bench::{build_tree_with, f4, simulate, ExpOptions, ResultsTable};
use sqda_core::AlgorithmKind;
use sqda_datasets::california_like;
use sqda_rstar::decluster;
use sqda_storage::PageStore;

fn main() {
    let opts = ExpOptions::from_args();
    let dataset = california_like(opts.population(62_173), 1601);
    let queries = dataset.sample_queries(opts.queries(), 1611);
    let k = 20;
    let mut table = ResultsTable::new(
        format!(
            "Ablation — declustering heuristics (set: {}, n={}, disks: 10, k={k}, λ=5)",
            dataset.name,
            dataset.len()
        ),
        &[
            "heuristic",
            "CRSS resp (s)",
            "FPSS resp (s)",
            "read imbalance (cv)",
        ],
    );
    for heuristic in decluster::all_heuristics(1620) {
        let name = heuristic.name();
        let tree = build_tree_with(&dataset, 10, 1610, heuristic);
        let crss = simulate(&tree, &queries, k, 5.0, AlgorithmKind::Crss, 1612);
        let fpss = simulate(&tree, &queries, k, 5.0, AlgorithmKind::Fpss, 1612);
        let imbalance = tree.store().stats().read_imbalance();
        table.row(vec![
            name.to_string(),
            f4(crss.mean_response_s),
            f4(fpss.mean_response_s),
            format!("{imbalance:.3}"),
        ]);
    }
    table.print();
    table.write_csv(&opts.out_dir, "ablation_declustering");
}
