//! Ablation 1 (Section 2.2's claim): the Proximity-Index declustering
//! heuristic beats random, round-robin, data-balance and area-balance
//! placement for similarity queries on the parallel R\*-tree.
//!
//! We build the same tree under each heuristic and compare (a) CRSS
//! response time and (b) the read-imbalance across disks during query
//! processing.

use sqda_bench::{
    build_tree_with, f4, rep_query_sets, rep_seed,
    report::{BinReport, Direction},
    simulate, ExpOptions, ResultsTable,
};
use sqda_core::AlgorithmKind;
use sqda_datasets::california_like;
use sqda_obs::MetricSummary;
use sqda_rstar::decluster;
use sqda_storage::PageStore;

fn main() {
    let opts = ExpOptions::from_args();
    let dataset = california_like(opts.population(62_173), 1601);
    let query_sets = rep_query_sets(&dataset, &opts, 1611);
    let k = 20;
    let mut report = BinReport::new("ablation_declustering", &opts);
    report
        .param("dataset", dataset.name.clone())
        .param("disks", 10)
        .param("k", k)
        .param("lambda", 5)
        .param("queries", opts.queries())
        .param("sim_seed", 1612)
        .master_seed(1611);
    let mut table = ResultsTable::new(
        format!(
            "Ablation — declustering heuristics (set: {}, n={}, disks: 10, k={k}, λ=5)",
            dataset.name,
            dataset.len()
        ),
        &[
            "heuristic",
            "CRSS resp (s)",
            "FPSS resp (s)",
            "read imbalance (cv)",
        ],
    );
    for heuristic in decluster::all_heuristics(1620) {
        let name = heuristic.name();
        let tree = build_tree_with(&dataset, 10, 1610, heuristic);
        let mut crss_resp = Vec::with_capacity(opts.reps);
        let mut fpss_resp = Vec::with_capacity(opts.reps);
        for rep in 0..opts.reps {
            let seed = rep_seed(1612, rep);
            let queries = &query_sets[rep];
            crss_resp.push(simulate(&tree, queries, k, 5.0, AlgorithmKind::Crss, seed).mean_response_s);
            fpss_resp.push(simulate(&tree, queries, k, 5.0, AlgorithmKind::Fpss, seed).mean_response_s);
        }
        // The cv accumulates over every replication's reads: a placement
        // property of the tree, not a per-rep random variable.
        let imbalance = tree.store().stats().read_imbalance();
        let crss = MetricSummary::from_samples(&crss_resp);
        let fpss = MetricSummary::from_samples(&fpss_resp);
        let labels = |algo: &str| {
            [
                ("heuristic", name.to_string()),
                ("algorithm", algo.to_string()),
            ]
        };
        report.metric("mean_response_s", &labels("CRSS"), crss);
        report.metric("mean_response_s", &labels("FPSS"), fpss);
        report.metric_dir(
            "read_imbalance_cv",
            &[("heuristic", name.to_string())],
            MetricSummary::from_samples(&[imbalance]),
            Direction::Info,
        );
        table.row(vec![
            name.to_string(),
            f4(crss.mean),
            f4(fpss.mean),
            format!("{imbalance:.3}"),
        ]);
    }
    table.print();
    table.write_csv(&opts.out_dir, "ablation_declustering");
    report.finish(&opts);
}
