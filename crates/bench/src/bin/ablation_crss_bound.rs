//! Ablation 2: sensitivity of CRSS to the activation upper bound `u`.
//!
//! The paper fixes `u = NumOfDisks`, arguing it balances parallelism and
//! wasted fetches. This experiment sweeps `u` on a 10-disk array:
//! `u = 1` degenerates towards BBSS (serial), large `u` towards FPSS
//! (flooding); the sweet spot should sit near the disk count.

use sqda_bench::{build_tree, f2, f4, ExpOptions, ResultsTable};
use sqda_core::{exec::run_query, Crss, Simulation, Workload};
use sqda_datasets::gaussian;
use sqda_simkernel::SystemParams;

fn main() {
    let opts = ExpOptions::from_args();
    let dataset = gaussian(opts.population(50_000), 5, 1701);
    let tree = build_tree(&dataset, 10, 1710);
    let queries = dataset.sample_queries(opts.queries(), 1711);
    let k = 20;
    let lambda = 5.0;
    let mut table = ResultsTable::new(
        format!(
            "Ablation — CRSS activation bound u (set: {}, n={}, disks: 10, k={k}, λ={lambda})",
            dataset.name,
            dataset.len()
        ),
        &["u", "mean resp (s)", "nodes/query", "max batch"],
    );
    let params = SystemParams::with_disks(10);
    let sim = Simulation::new(&tree, params).expect("simulation");
    for u in [1usize, 2, 5, 10, 20, 40] {
        // Response time under the simulator.
        // The simulator builds its own algorithm instances via
        // AlgorithmKind, so for the u-sweep we run the logical executor
        // for node counts and a custom simulated run via a bespoke
        // workload of identical queries per u.
        let mut nodes = 0u64;
        let mut max_batch = 0usize;
        for q in &queries {
            let mut algo = Crss::with_activation_bound(&tree, q.clone(), k, u);
            let run = run_query(&tree, &mut algo).expect("query");
            nodes += run.nodes_visited;
            max_batch = max_batch.max(run.max_batch);
        }
        let report = sim
            .run_with(
                |point, kk| Box::new(Crss::with_activation_bound(&tree, point, kk, u)),
                "CRSS",
                &Workload::poisson(queries.clone(), k, lambda, 1712),
                1713,
            )
            .expect("simulation");
        table.row(vec![
            u.to_string(),
            f4(report.mean_response_s),
            f2(nodes as f64 / queries.len() as f64),
            max_batch.to_string(),
        ]);
    }
    table.print();
    table.write_csv(&opts.out_dir, "ablation_crss_bound");
}
