//! Ablation 2: sensitivity of CRSS to the activation upper bound `u`.
//!
//! The paper fixes `u = NumOfDisks`, arguing it balances parallelism and
//! wasted fetches. This experiment sweeps `u` on a 10-disk array:
//! `u = 1` degenerates towards BBSS (serial), large `u` towards FPSS
//! (flooding); the sweet spot should sit near the disk count.

use sqda_bench::{
    build_tree, f2, f4, rep_query_sets, rep_seed,
    report::{BinReport, Direction},
    ExpOptions, ResultsTable,
};
use sqda_core::{exec::run_query, Crss, Simulation, Workload};
use sqda_datasets::gaussian;
use sqda_obs::MetricSummary;
use sqda_simkernel::SystemParams;

fn main() {
    let opts = ExpOptions::from_args();
    let dataset = gaussian(opts.population(50_000), 5, 1701);
    let tree = build_tree(&dataset, 10, 1710);
    let query_sets = rep_query_sets(&dataset, &opts, 1711);
    let k = 20;
    let lambda = 5.0;
    let mut report = BinReport::new("ablation_crss_bound", &opts);
    report
        .param("dataset", dataset.name.clone())
        .param("disks", 10)
        .param("k", k)
        .param("lambda", lambda)
        .param("queries", opts.queries())
        .param("sim_seed", 1713)
        .master_seed(1711);
    let mut table = ResultsTable::new(
        format!(
            "Ablation — CRSS activation bound u (set: {}, n={}, disks: 10, k={k}, λ={lambda})",
            dataset.name,
            dataset.len()
        ),
        &["u", "mean resp (s)", "nodes/query", "max batch"],
    );
    let params = SystemParams::with_disks(10);
    let sim = Simulation::new(&tree, params).expect("simulation");
    for u in [1usize, 2, 5, 10, 20, 40] {
        // Response time under the simulator.
        // The simulator builds its own algorithm instances via
        // AlgorithmKind, so for the u-sweep we run the logical executor
        // for node counts and a custom simulated run via a bespoke
        // workload of identical queries per u.
        let mut resp = Vec::with_capacity(opts.reps);
        let mut nodes_per_query = Vec::with_capacity(opts.reps);
        let mut max_batch = 0usize;
        for rep in 0..opts.reps {
            let queries = &query_sets[rep];
            let mut nodes = 0u64;
            for q in queries {
                let mut algo = Crss::with_activation_bound(&tree, q.clone(), k, u);
                let run = run_query(&tree, &mut algo).expect("query");
                nodes += run.nodes_visited;
                if rep == 0 {
                    max_batch = max_batch.max(run.max_batch);
                }
            }
            nodes_per_query.push(nodes as f64 / queries.len() as f64);
            let sim_report = sim
                .run_with(
                    |point, kk| Box::new(Crss::with_activation_bound(&tree, point, kk, u)),
                    "CRSS",
                    &Workload::poisson(queries.clone(), k, lambda, rep_seed(1712, rep)),
                    rep_seed(1713, rep),
                )
                .expect("simulation");
            resp.push(sim_report.mean_response_s);
        }
        let resp_sum = MetricSummary::from_samples(&resp);
        let nodes_sum = MetricSummary::from_samples(&nodes_per_query);
        let labels = [("u", u.to_string())];
        report.metric("mean_response_s", &labels, resp_sum);
        report.metric("mean_nodes", &labels, nodes_sum);
        report.metric_dir(
            "max_batch_pages",
            &labels,
            MetricSummary::from_samples(&[max_batch as f64]),
            Direction::Info,
        );
        table.row(vec![
            u.to_string(),
            f4(resp_sum.mean),
            f2(nodes_sum.mean),
            max_batch.to_string(),
        ]);
    }
    table.print();
    table.write_csv(&opts.out_dir, "ablation_crss_bound");
    report.finish(&opts);
}
