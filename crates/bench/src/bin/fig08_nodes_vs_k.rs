//! Figure 8: number of visited nodes vs. query size (k = 1..700) on the
//! 2-d real-data stand-ins (California Places, Long Beach), 10 disks.
//!
//! Paper shape: BBSS visits fewest nodes for small k but deteriorates as
//! k grows; CRSS overtakes it past a crossover; FPSS visits the most;
//! WOPTSS is the floor.

use sqda_bench::{
    build_tree, f2, mean_nodes_with, report::BinReport, rep_query_sets, sweep_replicated_with,
    ExpOptions, ResultsTable,
};
use sqda_core::{AlgorithmKind, QueryScratch};
use sqda_datasets::{california_like, long_beach_like, CP_CARDINALITY, LB_CARDINALITY};

fn main() {
    let opts = ExpOptions::from_args();
    let ks: &[usize] = if opts.quick {
        &[1, 100, 400, 700]
    } else {
        &[1, 50, 100, 200, 300, 400, 500, 600, 700]
    };
    let mut report = BinReport::new("fig08_nodes_vs_k", &opts);
    report
        .param("disks", 10)
        .param("queries", opts.queries())
        .master_seed(811);
    let datasets = [
        california_like(opts.population(CP_CARDINALITY), 801),
        long_beach_like(opts.population(LB_CARDINALITY), 802),
    ];
    for dataset in datasets {
        let tree = build_tree(&dataset, 10, 810);
        // Replication r samples an independent query set; set 0 is the
        // historical one, so --reps 1 reproduces the single-run numbers.
        let query_sets = rep_query_sets(&dataset, &opts, 811);
        let mut table = ResultsTable::new(
            format!(
                "Figure 8 — visited nodes vs k (set: {}, n={}, disks: 10)",
                dataset.name,
                dataset.len()
            ),
            &["k", "BBSS", "FPSS", "CRSS", "WOPTSS"],
        );
        let points: Vec<(usize, AlgorithmKind)> = ks
            .iter()
            .flat_map(|&k| AlgorithmKind::ALL.map(|kind| (k, kind)))
            .collect();
        // One query scratch per sweep worker: heaps and batch buffers are
        // allocated once per thread, not once per (k, algorithm, query).
        let sums = sweep_replicated_with(
            &points,
            &opts,
            QueryScratch::new,
            |scratch, &(k, kind), rep| mean_nodes_with(&tree, &query_sets[rep], k, kind, scratch),
        );
        for (point, sum) in points.iter().zip(&sums) {
            report.metric(
                "mean_nodes",
                &[
                    ("dataset", dataset.name.clone()),
                    ("k", point.0.to_string()),
                    ("algorithm", point.1.name().to_string()),
                ],
                sum.summary,
            );
        }
        let cells: Vec<String> = sums.iter().map(|s| f2(s.mean())).collect();
        for (i, &k) in ks.iter().enumerate() {
            let mut row = vec![k.to_string()];
            row.extend_from_slice(&cells[i * 4..(i + 1) * 4]);
            table.row(row);
        }
        table.print();
        table.write_csv(&opts.out_dir, &format!("fig08_{}", dataset.name));
    }
    report.finish(&opts);
}
