//! Hot-path measurement bin: quantifies the zero-copy node read path and
//! the batched distance kernels.
//!
//! Medians, written to `results/BENCH_hotpath.json`:
//!
//! * `decode_leaf_ns` / `decode_internal_ns` — one full-page node decode
//!   (the flat layout turns this into two allocations);
//! * `warm_traversal_ns_per_node` — full-tree DFS through `read_node`
//!   with every page resident in the decoded-node cache (an `Arc` clone
//!   per node, no entry copies);
//! * `knn_warm_ns_per_query` — end-to-end k-NN with a reused
//!   [`BestFirstScratch`] over a warm cache;
//! * `kernel` — ns/entry for the batched `dist_sq` and MINDIST kernels
//!   at dim 2 and 10, batch sizes 1/8/64 (one entry, one SIMD lane
//!   width, a large fanout);
//! * `batch_knn_b8_ns_per_query` — shared-traversal batch k-NN, plus its
//!   deterministic fetch-sharing counters.
//!
//! The tree is built deterministically (no RNG), so the byte layout under
//! measurement is identical across runs and machines; only the timings
//! vary. Accepts `--out <dir>` (default `results`), `--no-manifest`
//! (suppress the provenance manifest and schema-v2 fragment; the legacy
//! `BENCH_hotpath.json` is always written), `--reps <n>`, and — so it can
//! run under `run_all_experiments` — ignores `--quick`, `--serial`, and
//! `--warmup <f>`. Timings are reported in the fragment as informational
//! metrics (machine-dependent, never compared across hosts); the batch
//! traversal's fetch counters are exact and Direction-tagged, so the
//! regression gate catches a sharing or pruning regression numerically.

use sqda_bench::{
    report::{BinReport, Direction},
    ExpOptions,
};
use sqda_geom::{kernel, Point};
use sqda_obs::MetricSummary;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{codec, knn_with_scratch, BestFirstScratch, RStarConfig, RStarTree};
use sqda_storage::{ArrayStore, NodeCache, PageId, PageStore};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const OBJECTS: usize = 2000;
const DEFAULT_REPS: usize = 30;
const DECODES_PER_REP: usize = 1000;
const KNN_QUERIES: usize = 20;
const K: usize = 10;
const KERNEL_DIMS: [usize; 2] = [2, 10];
const KERNEL_BATCHES: [usize; 3] = [1, 8, 64];
const BATCH_B: usize = 8;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn build_tree() -> RStarTree<ArrayStore> {
    let store = Arc::new(ArrayStore::with_page_size(10, 1449, 1024, 1));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::with_page_size(2, 1024),
        Box::new(ProximityIndex),
    )
    .expect("tree creation");
    for i in 0..OBJECTS {
        let x = ((i * 7919) % 2003) as f64 * 0.5;
        let y = ((i * 104_729) % 1999) as f64 * 0.25;
        tree.insert(Point::new(vec![x, y]), i as u64)
            .expect("insert");
    }
    tree.set_node_cache(Arc::new(NodeCache::new(8192)));
    tree
}

/// DFS over the whole tree through `read_node`; returns nodes touched.
fn traverse(tree: &RStarTree<ArrayStore>) -> u64 {
    let mut nodes = 0u64;
    let mut stack = vec![tree.root_page()];
    while let Some(page) = stack.pop() {
        let node = tree.read_node(page).expect("read");
        nodes += 1;
        if !node.is_leaf() {
            stack.extend(node.internal_iter().map(|e| e.child));
        }
    }
    nodes
}

/// First leaf page and first internal page (when the tree has one).
fn sample_pages(tree: &RStarTree<ArrayStore>) -> (PageId, Option<PageId>) {
    let mut page = tree.root_page();
    let mut internal = None;
    loop {
        let node = tree.read_node(page).expect("read");
        if node.is_leaf() {
            return (page, internal);
        }
        internal = Some(page);
        page = node.internal_child(0);
    }
}

fn main() {
    let mut out_dir = PathBuf::from("results");
    let mut manifest = true;
    let mut reps = DEFAULT_REPS;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_dir = PathBuf::from(args.next().expect("--out needs a directory")),
            "--no-manifest" => manifest = false,
            "--reps" => {
                reps = args
                    .next()
                    .expect("--reps needs a count")
                    .parse()
                    .expect("--reps needs a positive integer");
                assert!(reps > 0, "--reps needs a positive integer");
            }
            // Accepted so this bin can run as a run_all_experiments
            // child; the measurement set is fixed either way.
            "--quick" | "--serial" => {}
            "--warmup" => {
                args.next().expect("--warmup needs a fraction");
            }
            other => panic!(
                "unknown argument {other} (expected --out <dir> | --no-manifest | \
                 --reps <n> | --quick | --serial | --warmup <f>)"
            ),
        }
    }

    let tree = build_tree();
    let dim = tree.dim();

    // Decode: median ns per decode_node call on a full page.
    let (leaf_page, internal_page) = sample_pages(&tree);
    let time_decode = |page: PageId| -> Vec<f64> {
        let bytes = tree.store().read(page).expect("read page");
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let start = Instant::now();
            for _ in 0..DECODES_PER_REP {
                let node = codec::decode_node(bytes.clone(), dim, page).expect("decode");
                std::hint::black_box(&node);
            }
            samples.push(start.elapsed().as_nanos() as f64 / DECODES_PER_REP as f64);
        }
        samples
    };
    let decode_leaf_reps = time_decode(leaf_page);
    let decode_leaf_ns = median(decode_leaf_reps.clone());
    let decode_internal_reps = internal_page.map(time_decode).unwrap_or_default();
    let decode_internal_ns = median(decode_internal_reps.clone());

    // Warm-cache traversal: ns per node over the whole tree.
    let node_count = traverse(&tree); // warms the cache
    let mut traversal_reps = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        let n = traverse(&tree);
        traversal_reps.push(start.elapsed().as_nanos() as f64 / n as f64);
    }
    let warm_traversal_ns_per_node = median(traversal_reps.clone());

    // Warm end-to-end k-NN with a reused scratch heap.
    let queries: Vec<Point> = (0..KNN_QUERIES)
        .map(|i| {
            Point::new(vec![
                (i * 53 % 101) as f64 * 9.0,
                (i * 31 % 97) as f64 * 4.7,
            ])
        })
        .collect();
    let mut scratch = BestFirstScratch::new();
    for q in &queries {
        knn_with_scratch(&tree, q, K, &mut scratch).expect("knn"); // warm
    }
    let mut knn_reps = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        for q in &queries {
            let (out, _) = knn_with_scratch(&tree, q, K, &mut scratch).expect("knn");
            std::hint::black_box(out.len());
        }
        knn_reps.push(start.elapsed().as_nanos() as f64 / queries.len() as f64);
    }
    let knn_warm_ns_per_query = median(knn_reps.clone());

    // Kernel section: ns/entry for the batched dist_sq and MINDIST
    // kernels, over deterministic synthetic entries. Each sample times
    // enough calls to make one rep ≥ tens of microseconds.
    let mut kernel_medians: Vec<(usize, usize, f64, f64)> = Vec::new(); // (dim, batch, dist, mindist)
    let mut kernel_samples: Vec<(usize, usize, &'static str, Vec<f64>)> = Vec::new();
    for &kdim in &KERNEL_DIMS {
        let q: Vec<f64> = (0..kdim).map(|d| d as f64 * 0.7 + 0.1).collect();
        for &batch in &KERNEL_BATCHES {
            let points: Vec<f64> = (0..batch * kdim).map(|i| (i % 131) as f64 * 0.37).collect();
            let rects: Vec<f64> = (0..batch)
                .flat_map(|e| {
                    let lo: Vec<f64> = (0..kdim).map(|d| ((e * kdim + d) % 97) as f64).collect();
                    let hi: Vec<f64> = lo.iter().map(|l| l + 3.5).collect();
                    lo.into_iter().chain(hi)
                })
                .collect();
            let calls = (20_000 / batch).max(50);
            let mut out = Vec::new();
            let mut time_kernel = |f: &dyn Fn(&mut Vec<f64>)| -> Vec<f64> {
                let mut samples = Vec::with_capacity(reps);
                for _ in 0..reps {
                    let start = Instant::now();
                    for _ in 0..calls {
                        f(&mut out);
                        std::hint::black_box(out.last());
                    }
                    samples.push(start.elapsed().as_nanos() as f64 / (calls * batch) as f64);
                }
                samples
            };
            let dist_samples = time_kernel(&|out| kernel::batch_dist_sq(&q, &points, out));
            let mindist_samples = time_kernel(&|out| kernel::batch_min_dist_sq(&q, &rects, out));
            kernel_medians.push((
                kdim,
                batch,
                median(dist_samples.clone()),
                median(mindist_samples.clone()),
            ));
            kernel_samples.push((kdim, batch, "dist_sq", dist_samples));
            kernel_samples.push((kdim, batch, "min_dist", mindist_samples));
        }
    }

    // Shared-traversal batch k-NN: B clustered-ish queries through one
    // wavefront descent; the fetch counters are exact and deterministic.
    let batch_queries: Vec<Point> = (0..BATCH_B)
        .map(|i| {
            Point::new(vec![
                (i * 53 % 101) as f64 * 9.0,
                (i * 31 % 97) as f64 * 4.7,
            ])
        })
        .collect();
    let mut batch_scratch = sqda_core::BatchScratch::new();
    let batch_report =
        sqda_core::batch_knn_with(&tree, &batch_queries, K, &mut batch_scratch).expect("batch");
    let mut batch_reps = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        let r =
            sqda_core::batch_knn_with(&tree, &batch_queries, K, &mut batch_scratch).expect("batch");
        std::hint::black_box(r.answers.len());
        batch_reps.push(start.elapsed().as_nanos() as f64 / batch_queries.len() as f64);
    }
    let batch_knn_ns_per_query = median(batch_reps.clone());

    println!("hot-path medians over {reps} reps ({node_count} nodes, {OBJECTS} objects):");
    println!("  decode_leaf_ns             {decode_leaf_ns:.1}");
    println!("  decode_internal_ns         {decode_internal_ns:.1}");
    println!("  warm_traversal_ns_per_node {warm_traversal_ns_per_node:.1}");
    println!("  knn_warm_ns_per_query      {knn_warm_ns_per_query:.1}");
    println!(
        "  batch_knn_b{BATCH_B}_ns_per_query  {batch_knn_ns_per_query:.1} \
         (fetches {}/{}, sharing {:.2}x)",
        batch_report.unique_fetches,
        batch_report.total_interest,
        batch_report.sharing_factor()
    );
    for &(kdim, batch, dist, mindist) in &kernel_medians {
        println!(
            "  kernel dim{kdim} b{batch:<2}            dist_sq {dist:.2} ns/entry, \
             min_dist {mindist:.2} ns/entry"
        );
    }

    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let path = out_dir.join("BENCH_hotpath.json");
    // Per-kernel nested block: {"dim2": {"b1": x, "b8": y, "b64": z}, ...}.
    let kernel_block = |select: &dyn Fn(&(usize, usize, f64, f64)) -> f64| -> String {
        let mut s = String::from("{");
        for (di, &kdim) in KERNEL_DIMS.iter().enumerate() {
            if di > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"dim{kdim}\": {{"));
            let mut first = true;
            for m in kernel_medians.iter().filter(|m| m.0 == kdim) {
                if !first {
                    s.push_str(", ");
                }
                first = false;
                s.push_str(&format!("\"b{}\": {:.2}", m.1, select(m)));
            }
            s.push('}');
        }
        s.push('}');
        s
    };
    let kernel_dist = kernel_block(&|m| m.2);
    let kernel_mindist = kernel_block(&|m| m.3);
    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"config\": {{\n    \"dim\": {dim},\n    \
         \"page_size\": 1024,\n    \"objects\": {OBJECTS},\n    \"nodes\": {node_count},\n    \
         \"cache_pages\": 8192,\n    \"reps\": {reps}\n  }},\n  \
         \"decode_leaf_ns\": {decode_leaf_ns:.1},\n  \
         \"decode_internal_ns\": {decode_internal_ns:.1},\n  \
         \"warm_traversal_ns_per_node\": {warm_traversal_ns_per_node:.1},\n  \
         \"knn_warm_ns_per_query\": {knn_warm_ns_per_query:.1},\n  \
         \"kernel_ns_per_entry\": {{\n    \
         \"dist_sq\": {kernel_dist},\n    \
         \"min_dist\": {kernel_mindist}\n  }},\n  \
         \"batch_knn_b{BATCH_B}_ns_per_query\": {batch_knn_ns_per_query:.1},\n  \
         \"batch_knn_unique_fetches\": {},\n  \
         \"batch_knn_total_interest\": {},\n  \
         \"batch_knn_rounds\": {}\n}}\n",
        batch_report.unique_fetches, batch_report.total_interest, batch_report.rounds
    );
    std::fs::write(&path, json).expect("write BENCH_hotpath.json");
    eprintln!("  wrote {}", path.display());

    // Provenance manifest + schema-v2 fragment. Timings are Info-only
    // (nanosecond medians are machine facts, not regression targets);
    // the batch traversal's fetch counters are exact over the
    // deterministic tree and query set, so they carry real directions
    // and the regression gate compares them numerically.
    let opts = ExpOptions {
        quick: false,
        out_dir,
        jobs: 1,
        trace: None,
        metrics: None,
        reps,
        manifest,
        warmup: 0.0,
    };
    let mut report = BinReport::new("bench_hotpath", &opts);
    report
        .param("dim", dim)
        .param("page_size", 1024)
        .param("objects", OBJECTS)
        .param("nodes", node_count)
        .param("cache_pages", 8192)
        .master_seed(0);
    let mut timing = |name: &str, reps: &[f64]| {
        if !reps.is_empty() {
            report.metric_dir(
                name,
                &[],
                MetricSummary::from_samples(reps),
                Direction::Info,
            );
        }
    };
    timing("decode_leaf_ns", &decode_leaf_reps);
    timing("decode_internal_ns", &decode_internal_reps);
    timing("warm_traversal_ns_per_node", &traversal_reps);
    timing("knn_warm_ns_per_query", &knn_reps);
    timing("batch_knn_ns_per_query", &batch_reps);
    for (kdim, batch, name, samples) in &kernel_samples {
        report.metric_dir(
            "kernel_ns_per_entry",
            &[
                ("kernel", name.to_string()),
                ("dim", kdim.to_string()),
                ("batch", batch.to_string()),
            ],
            MetricSummary::from_samples(samples),
            Direction::Info,
        );
    }
    report.metric_dir(
        "batch_knn_unique_fetches",
        &[],
        MetricSummary::from_samples(&[batch_report.unique_fetches as f64]),
        Direction::Lower,
    );
    report.metric_dir(
        "batch_knn_sharing_factor",
        &[],
        MetricSummary::from_samples(&[batch_report.sharing_factor()]),
        Direction::Higher,
    );
    report.metric_dir(
        "batch_knn_rounds",
        &[],
        MetricSummary::from_samples(&[batch_report.rounds as f64]),
        Direction::Lower,
    );
    report.finish(&opts);
}
