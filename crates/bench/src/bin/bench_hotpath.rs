//! Hot-path measurement bin: quantifies the zero-copy node read path.
//!
//! Three medians, written to `results/BENCH_hotpath.json`:
//!
//! * `decode_leaf_ns` / `decode_internal_ns` — one full-page node decode
//!   (the flat layout turns this into two allocations);
//! * `warm_traversal_ns_per_node` — full-tree DFS through `read_node`
//!   with every page resident in the decoded-node cache (an `Arc` clone
//!   per node, no entry copies);
//! * `knn_warm_ns_per_query` — end-to-end k-NN with a reused
//!   [`BestFirstScratch`] over a warm cache.
//!
//! The tree is built deterministically (no RNG), so the byte layout under
//! measurement is identical across runs and machines; only the timings
//! vary. Accepts `--out <dir>` (default `results`) and `--no-manifest`
//! (suppress the provenance manifest and schema-v2 fragment; the legacy
//! `BENCH_hotpath.json` is always written). Timings are reported in the
//! fragment as informational metrics — machine-dependent, so never
//! checked for regressions across hosts.

use sqda_bench::{
    report::{BinReport, Direction},
    ExpOptions,
};
use sqda_geom::Point;
use sqda_obs::MetricSummary;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{codec, knn_with_scratch, BestFirstScratch, RStarConfig, RStarTree};
use sqda_storage::{ArrayStore, NodeCache, PageId, PageStore};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const OBJECTS: usize = 2000;
const REPS: usize = 30;
const DECODES_PER_REP: usize = 1000;
const KNN_QUERIES: usize = 20;
const K: usize = 10;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn build_tree() -> RStarTree<ArrayStore> {
    let store = Arc::new(ArrayStore::with_page_size(10, 1449, 1024, 1));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::with_page_size(2, 1024),
        Box::new(ProximityIndex),
    )
    .expect("tree creation");
    for i in 0..OBJECTS {
        let x = ((i * 7919) % 2003) as f64 * 0.5;
        let y = ((i * 104_729) % 1999) as f64 * 0.25;
        tree.insert(Point::new(vec![x, y]), i as u64)
            .expect("insert");
    }
    tree.set_node_cache(Arc::new(NodeCache::new(8192)));
    tree
}

/// DFS over the whole tree through `read_node`; returns nodes touched.
fn traverse(tree: &RStarTree<ArrayStore>) -> u64 {
    let mut nodes = 0u64;
    let mut stack = vec![tree.root_page()];
    while let Some(page) = stack.pop() {
        let node = tree.read_node(page).expect("read");
        nodes += 1;
        if !node.is_leaf() {
            stack.extend(node.internal_iter().map(|e| e.child));
        }
    }
    nodes
}

/// First leaf page and first internal page (when the tree has one).
fn sample_pages(tree: &RStarTree<ArrayStore>) -> (PageId, Option<PageId>) {
    let mut page = tree.root_page();
    let mut internal = None;
    loop {
        let node = tree.read_node(page).expect("read");
        if node.is_leaf() {
            return (page, internal);
        }
        internal = Some(page);
        page = node.internal_child(0);
    }
}

fn main() {
    let mut out_dir = PathBuf::from("results");
    let mut manifest = true;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_dir = PathBuf::from(args.next().expect("--out needs a directory")),
            "--no-manifest" => manifest = false,
            other => panic!("unknown argument {other} (expected --out <dir> | --no-manifest)"),
        }
    }

    let tree = build_tree();
    let dim = tree.dim();

    // Decode: median ns per decode_node call on a full page.
    let (leaf_page, internal_page) = sample_pages(&tree);
    let time_decode = |page: PageId| -> Vec<f64> {
        let bytes = tree.store().read(page).expect("read page");
        let mut reps = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let start = Instant::now();
            for _ in 0..DECODES_PER_REP {
                let node = codec::decode_node(bytes.clone(), dim, page).expect("decode");
                std::hint::black_box(&node);
            }
            reps.push(start.elapsed().as_nanos() as f64 / DECODES_PER_REP as f64);
        }
        reps
    };
    let decode_leaf_reps = time_decode(leaf_page);
    let decode_leaf_ns = median(decode_leaf_reps.clone());
    let decode_internal_reps = internal_page.map(time_decode).unwrap_or_default();
    let decode_internal_ns = median(decode_internal_reps.clone());

    // Warm-cache traversal: ns per node over the whole tree.
    let node_count = traverse(&tree); // warms the cache
    let mut traversal_reps = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let start = Instant::now();
        let n = traverse(&tree);
        traversal_reps.push(start.elapsed().as_nanos() as f64 / n as f64);
    }
    let warm_traversal_ns_per_node = median(traversal_reps.clone());

    // Warm end-to-end k-NN with a reused scratch heap.
    let queries: Vec<Point> = (0..KNN_QUERIES)
        .map(|i| {
            Point::new(vec![
                (i * 53 % 101) as f64 * 9.0,
                (i * 31 % 97) as f64 * 4.7,
            ])
        })
        .collect();
    let mut scratch = BestFirstScratch::new();
    for q in &queries {
        knn_with_scratch(&tree, q, K, &mut scratch).expect("knn"); // warm
    }
    let mut knn_reps = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let start = Instant::now();
        for q in &queries {
            let (out, _) = knn_with_scratch(&tree, q, K, &mut scratch).expect("knn");
            std::hint::black_box(out.len());
        }
        knn_reps.push(start.elapsed().as_nanos() as f64 / queries.len() as f64);
    }
    let knn_warm_ns_per_query = median(knn_reps.clone());

    println!("hot-path medians over {REPS} reps ({node_count} nodes, {OBJECTS} objects):");
    println!("  decode_leaf_ns             {decode_leaf_ns:.1}");
    println!("  decode_internal_ns         {decode_internal_ns:.1}");
    println!("  warm_traversal_ns_per_node {warm_traversal_ns_per_node:.1}");
    println!("  knn_warm_ns_per_query      {knn_warm_ns_per_query:.1}");

    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let path = out_dir.join("BENCH_hotpath.json");
    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"config\": {{\n    \"dim\": {dim},\n    \
         \"page_size\": 1024,\n    \"objects\": {OBJECTS},\n    \"nodes\": {node_count},\n    \
         \"cache_pages\": 8192,\n    \"reps\": {REPS}\n  }},\n  \
         \"decode_leaf_ns\": {decode_leaf_ns:.1},\n  \
         \"decode_internal_ns\": {decode_internal_ns:.1},\n  \
         \"warm_traversal_ns_per_node\": {warm_traversal_ns_per_node:.1},\n  \
         \"knn_warm_ns_per_query\": {knn_warm_ns_per_query:.1}\n}}\n"
    );
    std::fs::write(&path, json).expect("write BENCH_hotpath.json");
    eprintln!("  wrote {}", path.display());

    // Provenance manifest + schema-v2 fragment (timings are Info-only:
    // nanosecond medians are machine facts, not regression targets).
    let opts = ExpOptions {
        quick: false,
        out_dir,
        jobs: 1,
        trace: None,
        metrics: None,
        reps: REPS,
        manifest,
        warmup: 0.0,
    };
    let mut report = BinReport::new("bench_hotpath", &opts);
    report
        .param("dim", dim)
        .param("page_size", 1024)
        .param("objects", OBJECTS)
        .param("nodes", node_count)
        .param("cache_pages", 8192)
        .master_seed(0);
    let mut timing = |name: &str, reps: &[f64]| {
        if !reps.is_empty() {
            report.metric_dir(
                name,
                &[],
                MetricSummary::from_samples(reps),
                Direction::Info,
            );
        }
    };
    timing("decode_leaf_ns", &decode_leaf_reps);
    timing("decode_internal_ns", &decode_internal_reps);
    timing("warm_traversal_ns_per_node", &traversal_reps);
    timing("knn_warm_ns_per_query", &knn_reps);
    report.finish(&opts);
}
