//! Runs every experiment binary in sequence (same process), producing
//! the full set of tables and CSVs. Pass `--quick` for a fast smoke run.
//!
//! ```text
//! cargo run --release -p sqda-bench --bin run_all_experiments [-- --quick]
//! ```

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig08_nodes_vs_k",
    "fig09_nodes_10d",
    "fig10_resp_vs_lambda",
    "fig11_resp_vs_disks",
    "fig12_resp_vs_k",
    "table3_scaleup_population",
    "table4_scaleup_k",
    "table5_summary",
    "ablation_declustering",
    "ablation_crss_bound",
    "ablation_split_policy",
    "ablation_packing",
    "ext_future_work",
    "ext_tighter_threshold",
    "ext_sstree",
    "analysis_validation",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let mut failed = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n########## {exp} ##########");
        let path = exe_dir.join(exp);
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            eprintln!("experiment {exp} FAILED: {status}");
            failed.push(*exp);
        }
    }
    if failed.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nFAILED experiments: {failed:?}");
        std::process::exit(1);
    }
}
