//! Runs every experiment binary, producing the full set of tables and
//! CSVs. Pass `--quick` for a fast smoke run.
//!
//! ```text
//! cargo run --release -p sqda-bench --bin run_all_experiments [-- --quick]
//! ```
//!
//! Experiments run as child processes fanned across `--jobs <n>` workers
//! (default: one per core; `--serial` forces one at a time). Each child
//! gets `--serial` appended so parallelism lives at exactly one level,
//! and its stdout/stderr are captured and replayed in the fixed
//! experiment order — the bytes this driver emits are identical whether
//! the children ran serially or concurrently.

use sqda_bench::parallel_map;
use std::io::Write;
use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig08_nodes_vs_k",
    "fig09_nodes_10d",
    "fig10_resp_vs_lambda",
    "fig11_resp_vs_disks",
    "fig12_resp_vs_k",
    "table3_scaleup_population",
    "table4_scaleup_k",
    "table5_summary",
    "ablation_declustering",
    "ablation_crss_bound",
    "ablation_split_policy",
    "ablation_packing",
    "ext_future_work",
    "ext_tighter_threshold",
    "ext_sstree",
    "analysis_validation",
];

struct Finished {
    name: &'static str,
    ok: bool,
    status: String,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
}

fn main() {
    // Strip this driver's own fan-out flags; everything else
    // (--quick, --out <dir>) passes through to the children.
    let mut jobs = sqda_bench::default_jobs();
    let mut pass_through: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = args
                    .next()
                    .expect("--jobs needs a count")
                    .parse()
                    .expect("--jobs needs a positive integer");
                assert!(jobs > 0, "--jobs needs a positive integer");
            }
            "--serial" => jobs = 1,
            _ => pass_through.push(a),
        }
    }
    // One level of parallelism: this driver fans processes out, so each
    // child runs its own sweeps serially.
    pass_through.push("--serial".to_string());

    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    let runs = parallel_map(EXPERIMENTS, jobs, |&exp| {
        let path = exe_dir.join(exp);
        let output = Command::new(&path)
            .args(&pass_through)
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        Finished {
            name: exp,
            ok: output.status.success(),
            status: output.status.to_string(),
            stdout: output.stdout,
            stderr: output.stderr,
        }
    });

    let mut failed = Vec::new();
    for run in &runs {
        println!("\n########## {} ##########", run.name);
        std::io::stdout().write_all(&run.stdout).expect("stdout");
        std::io::stderr().write_all(&run.stderr).expect("stderr");
        if !run.ok {
            eprintln!("experiment {} FAILED: {}", run.name, run.status);
            failed.push(run.name);
        }
    }
    if failed.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nFAILED experiments: {failed:?}");
        std::process::exit(1);
    }
}
