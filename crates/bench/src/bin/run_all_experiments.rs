//! Runs every experiment binary, producing the full set of tables and
//! CSVs. Pass `--quick` for a fast smoke run.
//!
//! ```text
//! cargo run --release -p sqda-bench --bin run_all_experiments [-- --quick]
//! ```
//!
//! Experiments run as child processes fanned across `--jobs <n>` workers
//! (default: one per core; `--serial` forces one at a time). Each child
//! gets `--serial` appended so parallelism lives at exactly one level,
//! and its stdout/stderr are captured and replayed in the fixed
//! experiment order — the bytes this driver emits are identical whether
//! the children ran serially or concurrently.
//!
//! After the experiments the driver runs a small canonical simulation
//! (all four algorithms, gaussian 2-d, 10 disks, λ = 5) and writes
//! `<out>/BENCH_summary.json`. By default that file is the schema-v2
//! unified summary: the legacy `experiments` / `headline` keys, plus a
//! `benches` object merging every per-bin fragment the children wrote
//! under `<out>/bench/` (each metric as mean ± 95% CI over `--reps`
//! replications), plus the RNG-backend fingerprint `check_regression`
//! uses to decide whether numeric comparison is meaningful. With
//! `--no-manifest` the file keeps the exact pre-fragment legacy shape.
//! With `--trace <file>` / `--metrics <file>` the canonical run is
//! recorded through the observability layer (see `sqda-obs`): `--trace`
//! emits Chrome/Perfetto `trace_event` JSON (or a raw JSONL event log if
//! the path ends in `.jsonl`), `--metrics` a metrics snapshot +
//! per-query profiles. These two flags are consumed here, not passed to
//! children.

use sqda_bench::{
    build_tree, mean_response, parallel_map, rep_seed, report::BinReport, simulate_observed,
    ExpOptions, DEFAULT_REPS,
};
use sqda_core::AlgorithmKind;
use sqda_obs::json::parse;
use sqda_obs::MetricSummary;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "fig08_nodes_vs_k",
    "fig09_nodes_10d",
    "fig10_resp_vs_lambda",
    "fig11_resp_vs_disks",
    "fig12_resp_vs_k",
    "table3_scaleup_population",
    "table4_scaleup_k",
    "table5_summary",
    "ablation_declustering",
    "ablation_crss_bound",
    "ablation_split_policy",
    "ablation_packing",
    "ext_future_work",
    "ext_tighter_threshold",
    "ext_sstree",
    "analysis_validation",
    "fault_sweep",
    "bench_serve",
    "bench_hotpath",
    "bench_scale",
    "bench_explain",
];

struct Finished {
    name: &'static str,
    ok: bool,
    status: String,
    wall_s: f64,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
}

/// Merges every fragment under `<out>/bench/` into one deterministic
/// `"name":{fragment}` JSON object body, sorted by bench name. Fragments
/// that fail to parse are skipped with a warning rather than corrupting
/// the summary.
fn merge_fragments(out_dir: &Path) -> String {
    let dir = out_dir.join("bench");
    let mut names: Vec<String> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.strip_suffix(".json").map(str::to_string)
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    names.sort();
    let mut body = String::from("{");
    let mut first = true;
    for name in names {
        let path = dir.join(format!("{name}.json"));
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("  skipping unreadable fragment {}: {e}", path.display());
                continue;
            }
        };
        if let Err(e) = parse(text.trim()) {
            eprintln!("  skipping malformed fragment {}: {e}", path.display());
            continue;
        }
        if !first {
            body.push(',');
        }
        first = false;
        sqda_obs::json::write_str(&mut body, &name);
        body.push(':');
        body.push_str(text.trim());
    }
    body.push('}');
    body
}

fn main() {
    // Strip this driver's own flags (fan-out control and the
    // observability sinks, which belong to the canonical run below);
    // everything else (--quick, --out <dir>, --reps <n>, --warmup <f>,
    // --no-manifest) passes through to the children — the replication
    // flags are additionally parsed here because the canonical headline
    // run and the fragment merge honour them too.
    let mut jobs = sqda_bench::default_jobs();
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut trace: Option<PathBuf> = None;
    let mut metrics: Option<PathBuf> = None;
    let mut reps = DEFAULT_REPS;
    let mut manifest = true;
    let mut warmup = 0.0f64;
    let mut pass_through: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = args
                    .next()
                    .expect("--jobs needs a count")
                    .parse()
                    .expect("--jobs needs a positive integer");
                assert!(jobs > 0, "--jobs needs a positive integer");
            }
            "--serial" => jobs = 1,
            "--trace" => {
                trace = Some(PathBuf::from(args.next().expect("--trace needs a file")));
            }
            "--metrics" => {
                metrics = Some(PathBuf::from(args.next().expect("--metrics needs a file")));
            }
            "--quick" => {
                quick = true;
                pass_through.push(a);
            }
            "--reps" => {
                let n = args.next().expect("--reps needs a count");
                reps = n.parse().expect("--reps needs a positive integer");
                assert!(reps > 0, "--reps needs a positive integer");
                pass_through.push(a);
                pass_through.push(n);
            }
            "--no-manifest" => {
                manifest = false;
                pass_through.push(a);
            }
            "--warmup" => {
                let f = args.next().expect("--warmup needs a fraction");
                warmup = f.parse().expect("--warmup needs a fraction in [0, 1)");
                assert!(
                    (0.0..1.0).contains(&warmup),
                    "--warmup needs a fraction in [0, 1)"
                );
                pass_through.push(a);
                pass_through.push(f);
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().expect("--out needs a directory"));
                pass_through.push(a);
                pass_through.push(out_dir.display().to_string());
            }
            _ => pass_through.push(a),
        }
    }
    // One level of parallelism: this driver fans processes out, so each
    // child runs its own sweeps serially.
    pass_through.push("--serial".to_string());

    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    let total_start = Instant::now();
    let runs = parallel_map(EXPERIMENTS, jobs, |&exp| {
        let path = exe_dir.join(exp);
        let start = Instant::now();
        let output = Command::new(&path)
            .args(&pass_through)
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        Finished {
            name: exp,
            ok: output.status.success(),
            status: output.status.to_string(),
            wall_s: start.elapsed().as_secs_f64(),
            stdout: output.stdout,
            stderr: output.stderr,
        }
    });
    let total_wall_s = total_start.elapsed().as_secs_f64();

    let mut failed = Vec::new();
    for run in &runs {
        println!("\n########## {} ##########", run.name);
        std::io::stdout().write_all(&run.stdout).expect("stdout");
        std::io::stderr().write_all(&run.stderr).expect("stderr");
        if !run.ok {
            eprintln!("experiment {} FAILED: {}", run.name, run.status);
            failed.push(run.name);
        }
    }

    // Canonical headline run: small enough to be negligible next to the
    // experiments, stable enough to track response times across commits.
    // With --trace / --metrics its first configuration is recorded.
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let demo_opts = ExpOptions {
        quick: true,
        out_dir: out_dir.clone(),
        jobs: 1,
        trace,
        metrics,
        reps,
        manifest,
        warmup,
    };
    let dataset = sqda_datasets::gaussian(2000, 2, 4242);
    let tree = build_tree(&dataset, 10, 4243);
    let query_sets: Vec<_> = (0..reps)
        .map(|rep| dataset.sample_queries(20, rep_seed(4244, rep)))
        .collect();
    let mut headline_report = BinReport::new("headline", &demo_opts);
    headline_report
        .param("dataset", dataset.name.clone())
        .param("disks", 10)
        .param("k", 10)
        .param("lambda", 5)
        .param("queries", 20)
        .param("sim_seed", 4245)
        .master_seed(4244);
    let headline: Vec<String> = AlgorithmKind::ALL
        .iter()
        .map(|&kind| {
            // Replication 0 is the legacy canonical run (and the one the
            // trace/metrics sinks record); further reps feed the CI only.
            let start = Instant::now();
            let r = simulate_observed(&tree, &query_sets[0], 10, 5.0, kind, 4245, &demo_opts);
            let legacy = format!(
                "{{\"algorithm\":\"{}\",\"mean_response_s\":{:.6},\"p95_response_s\":{:.6},\
                 \"mean_nodes_per_query\":{:.2},\"mean_disk_utilization\":{:.4},\
                 \"sim_wall_s\":{:.4}}}",
                r.algorithm,
                r.mean_response_s,
                r.p95_response_s,
                r.mean_nodes_per_query,
                r.mean_disk_utilization,
                start.elapsed().as_secs_f64()
            );
            let mut responses = vec![mean_response(&r, &demo_opts)];
            for rep in 1..reps {
                let rr = simulate_observed(
                    &tree,
                    &query_sets[rep],
                    10,
                    5.0,
                    kind,
                    rep_seed(4245, rep),
                    &demo_opts,
                );
                responses.push(mean_response(&rr, &demo_opts));
            }
            headline_report.metric(
                "mean_response_s",
                &[("algorithm", kind.name().to_string())],
                MetricSummary::from_samples(&responses),
            );
            legacy
        })
        .collect();
    headline_report.finish(&demo_opts);

    let experiments_json: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"name\":\"{}\",\"ok\":{},\"wall_s\":{:.3}}}",
                r.name, r.ok, r.wall_s
            )
        })
        .collect();
    let summary = if manifest {
        format!(
            "{{\"schema\":2,\"quick\":{quick},\"jobs\":{jobs},\"total_wall_s\":{total_wall_s:.3},\
             \"reps\":{reps},\"warmup_fraction\":{warmup},\
             \"rng_fingerprint\":\"{}\",\
             \"experiments\":[{}],\"headline\":[{}],\"benches\":{}}}\n",
            sqda_bench::report::rng_fingerprint(),
            experiments_json.join(","),
            headline.join(","),
            merge_fragments(&out_dir)
        )
    } else {
        // --no-manifest: the exact legacy summary shape, byte for byte.
        format!(
            "{{\"quick\":{quick},\"jobs\":{jobs},\"total_wall_s\":{total_wall_s:.3},\
             \"experiments\":[{}],\"headline\":[{}]}}\n",
            experiments_json.join(","),
            headline.join(",")
        )
    };
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let summary_path = out_dir.join("BENCH_summary.json");
    std::fs::write(&summary_path, summary).expect("write BENCH_summary.json");
    eprintln!("  wrote {}", summary_path.display());

    if failed.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nFAILED experiments: {failed:?}");
        std::process::exit(1);
    }
}
