//! Runs every experiment binary, producing the full set of tables and
//! CSVs. Pass `--quick` for a fast smoke run.
//!
//! ```text
//! cargo run --release -p sqda-bench --bin run_all_experiments [-- --quick]
//! ```
//!
//! Experiments run as child processes fanned across `--jobs <n>` workers
//! (default: one per core; `--serial` forces one at a time). Each child
//! gets `--serial` appended so parallelism lives at exactly one level,
//! and its stdout/stderr are captured and replayed in the fixed
//! experiment order — the bytes this driver emits are identical whether
//! the children ran serially or concurrently.
//!
//! After the experiments the driver runs a small canonical simulation
//! (all four algorithms, gaussian 2-d, 10 disks, λ = 5) and writes
//! `<out>/BENCH_summary.json`: per-experiment wall-clock and exit
//! status plus the canonical run's headline metrics, so the performance
//! trajectory of the repo is machine-readable from run to run. With
//! `--trace <file>` / `--metrics <file>` the canonical run is recorded
//! through the observability layer (see `sqda-obs`): `--trace` emits
//! Chrome/Perfetto `trace_event` JSON (or a raw JSONL event log if the
//! path ends in `.jsonl`), `--metrics` a metrics snapshot + per-query
//! profiles. These two flags are consumed here, not passed to children.

use sqda_bench::{build_tree, parallel_map, simulate_observed, ExpOptions};
use sqda_core::AlgorithmKind;
use std::io::Write;
use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "fig08_nodes_vs_k",
    "fig09_nodes_10d",
    "fig10_resp_vs_lambda",
    "fig11_resp_vs_disks",
    "fig12_resp_vs_k",
    "table3_scaleup_population",
    "table4_scaleup_k",
    "table5_summary",
    "ablation_declustering",
    "ablation_crss_bound",
    "ablation_split_policy",
    "ablation_packing",
    "ext_future_work",
    "ext_tighter_threshold",
    "ext_sstree",
    "analysis_validation",
    "fault_sweep",
];

struct Finished {
    name: &'static str,
    ok: bool,
    status: String,
    wall_s: f64,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
}

fn main() {
    // Strip this driver's own flags (fan-out control and the
    // observability sinks, which belong to the canonical run below);
    // everything else (--quick, --out <dir>) passes through to the
    // children.
    let mut jobs = sqda_bench::default_jobs();
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut trace: Option<PathBuf> = None;
    let mut metrics: Option<PathBuf> = None;
    let mut pass_through: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = args
                    .next()
                    .expect("--jobs needs a count")
                    .parse()
                    .expect("--jobs needs a positive integer");
                assert!(jobs > 0, "--jobs needs a positive integer");
            }
            "--serial" => jobs = 1,
            "--trace" => {
                trace = Some(PathBuf::from(args.next().expect("--trace needs a file")));
            }
            "--metrics" => {
                metrics = Some(PathBuf::from(args.next().expect("--metrics needs a file")));
            }
            "--quick" => {
                quick = true;
                pass_through.push(a);
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().expect("--out needs a directory"));
                pass_through.push(a);
                pass_through.push(out_dir.display().to_string());
            }
            _ => pass_through.push(a),
        }
    }
    // One level of parallelism: this driver fans processes out, so each
    // child runs its own sweeps serially.
    pass_through.push("--serial".to_string());

    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    let total_start = Instant::now();
    let runs = parallel_map(EXPERIMENTS, jobs, |&exp| {
        let path = exe_dir.join(exp);
        let start = Instant::now();
        let output = Command::new(&path)
            .args(&pass_through)
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        Finished {
            name: exp,
            ok: output.status.success(),
            status: output.status.to_string(),
            wall_s: start.elapsed().as_secs_f64(),
            stdout: output.stdout,
            stderr: output.stderr,
        }
    });
    let total_wall_s = total_start.elapsed().as_secs_f64();

    let mut failed = Vec::new();
    for run in &runs {
        println!("\n########## {} ##########", run.name);
        std::io::stdout().write_all(&run.stdout).expect("stdout");
        std::io::stderr().write_all(&run.stderr).expect("stderr");
        if !run.ok {
            eprintln!("experiment {} FAILED: {}", run.name, run.status);
            failed.push(run.name);
        }
    }

    // Canonical headline run: small enough to be negligible next to the
    // experiments, stable enough to track response times across commits.
    // With --trace / --metrics its first configuration is recorded.
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let demo_opts = ExpOptions {
        quick: true,
        out_dir: out_dir.clone(),
        jobs: 1,
        trace,
        metrics,
    };
    let dataset = sqda_datasets::gaussian(2000, 2, 4242);
    let tree = build_tree(&dataset, 10, 4243);
    let queries = dataset.sample_queries(20, 4244);
    let headline: Vec<String> = AlgorithmKind::ALL
        .iter()
        .map(|&kind| {
            let start = Instant::now();
            let r = simulate_observed(&tree, &queries, 10, 5.0, kind, 4245, &demo_opts);
            format!(
                "{{\"algorithm\":\"{}\",\"mean_response_s\":{:.6},\"p95_response_s\":{:.6},\
                 \"mean_nodes_per_query\":{:.2},\"mean_disk_utilization\":{:.4},\
                 \"sim_wall_s\":{:.4}}}",
                r.algorithm,
                r.mean_response_s,
                r.p95_response_s,
                r.mean_nodes_per_query,
                r.mean_disk_utilization,
                start.elapsed().as_secs_f64()
            )
        })
        .collect();

    let experiments_json: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"name\":\"{}\",\"ok\":{},\"wall_s\":{:.3}}}",
                r.name, r.ok, r.wall_s
            )
        })
        .collect();
    let summary = format!(
        "{{\"quick\":{quick},\"jobs\":{jobs},\"total_wall_s\":{total_wall_s:.3},\
         \"experiments\":[{}],\"headline\":[{}]}}\n",
        experiments_json.join(","),
        headline.join(",")
    );
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let summary_path = out_dir.join("BENCH_summary.json");
    std::fs::write(&summary_path, summary).expect("write BENCH_summary.json");
    eprintln!("  wrote {}", summary_path.display());

    if failed.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nFAILED experiments: {failed:?}");
        std::process::exit(1);
    }
}
