//! Table 3: scalability with respect to population growth — response
//! time (s) as population and disks grow together.
//!
//! Gaussian, 5-d, k = 20, λ = 5 queries/s.
//!
//! | population | disks |
//! |-----------:|------:|
//! |     10,000 |     5 |
//! |     20,000 |    10 |
//! |     40,000 |    20 |
//! |     80,000 |    40 |
//!
//! Paper shape: CRSS stays flat (good scale-up) and is ~4× faster than
//! BBSS on average; BBSS *degrades* as the system grows because it cannot
//! use the added disks within a query.

use sqda_bench::{
    build_tree, f4, mean_response, rep_query_sets, rep_seed, report::BinReport, simulate_observed,
    sweep_replicated, ExpOptions, ResultsTable,
};
use sqda_core::AlgorithmKind;
use sqda_datasets::gaussian;

fn main() {
    let opts = ExpOptions::from_args();
    let steps: &[(usize, u32)] = &[(10_000, 5), (20_000, 10), (40_000, 20), (80_000, 40)];
    let k = 20;
    let lambda = 5.0;
    let mut table = ResultsTable::new(
        format!("Table 3 — scale-up with population (gaussian, 5-d, k={k}, λ={lambda})"),
        &["population", "disks", "BBSS", "CRSS", "WOPTSS", "FPSS"],
    );
    const COLUMNS: [AlgorithmKind; 4] = [
        AlgorithmKind::Bbss,
        AlgorithmKind::Crss,
        AlgorithmKind::Woptss,
        AlgorithmKind::Fpss,
    ];
    let mut report = BinReport::new("table3_scaleup_population", &opts);
    report
        .param("k", k)
        .param("lambda", lambda)
        .param("queries", opts.queries())
        .param("sim_seed", 1312)
        .master_seed(1311);
    // Trees are built up front on the main thread (deterministic build
    // log); the simulation grid fans out over the workers.
    let setups: Vec<_> = steps
        .iter()
        .map(|&(pop, disks)| {
            let dataset = gaussian(opts.population(pop), 5, 1301 + pop as u64);
            let tree = build_tree(&dataset, disks, 1310 + disks as u64);
            let query_sets = rep_query_sets(&dataset, &opts, 1311);
            (dataset, tree, query_sets)
        })
        .collect();
    let points: Vec<(usize, AlgorithmKind)> = (0..setups.len())
        .flat_map(|s| COLUMNS.map(|kind| (s, kind)))
        .collect();
    let sums = sweep_replicated(&points, &opts, |&(s, kind), rep| {
        let (_, tree, query_sets) = &setups[s];
        let r = simulate_observed(
            tree,
            &query_sets[rep],
            k,
            lambda,
            kind,
            rep_seed(1312, rep),
            &opts,
        );
        mean_response(&r, &opts)
    });
    for (point, sum) in points.iter().zip(&sums) {
        report.metric(
            "mean_response_s",
            &[
                ("population", setups[point.0].0.len().to_string()),
                ("disks", steps[point.0].1.to_string()),
                ("algorithm", point.1.name().to_string()),
            ],
            sum.summary,
        );
    }
    let cells: Vec<String> = sums.iter().map(|s| f4(s.mean())).collect();
    for (s, &(_, disks)) in steps.iter().enumerate() {
        let mut row = vec![setups[s].0.len().to_string(), disks.to_string()];
        row.extend_from_slice(&cells[s * 4..(s + 1) * 4]);
        table.row(row);
    }
    table.print();
    table.write_csv(&opts.out_dir, "table3_scaleup_population");
    report.finish(&opts);
}
