//! Table 3: scalability with respect to population growth — response
//! time (s) as population and disks grow together.
//!
//! Gaussian, 5-d, k = 20, λ = 5 queries/s.
//!
//! | population | disks |
//! |-----------:|------:|
//! |     10,000 |     5 |
//! |     20,000 |    10 |
//! |     40,000 |    20 |
//! |     80,000 |    40 |
//!
//! Paper shape: CRSS stays flat (good scale-up) and is ~4× faster than
//! BBSS on average; BBSS *degrades* as the system grows because it cannot
//! use the added disks within a query.

use sqda_bench::{build_tree, f4, parallel_map, simulate_observed, ExpOptions, ResultsTable};
use sqda_core::AlgorithmKind;
use sqda_datasets::gaussian;

fn main() {
    let opts = ExpOptions::from_args();
    let steps: &[(usize, u32)] = &[(10_000, 5), (20_000, 10), (40_000, 20), (80_000, 40)];
    let k = 20;
    let lambda = 5.0;
    let mut table = ResultsTable::new(
        format!("Table 3 — scale-up with population (gaussian, 5-d, k={k}, λ={lambda})"),
        &["population", "disks", "BBSS", "CRSS", "WOPTSS", "FPSS"],
    );
    const COLUMNS: [AlgorithmKind; 4] = [
        AlgorithmKind::Bbss,
        AlgorithmKind::Crss,
        AlgorithmKind::Woptss,
        AlgorithmKind::Fpss,
    ];
    // Trees are built up front on the main thread (deterministic build
    // log); the simulation grid fans out over the workers.
    let setups: Vec<_> = steps
        .iter()
        .map(|&(pop, disks)| {
            let dataset = gaussian(opts.population(pop), 5, 1301 + pop as u64);
            let tree = build_tree(&dataset, disks, 1310 + disks as u64);
            let queries = dataset.sample_queries(opts.queries(), 1311);
            (dataset, tree, queries)
        })
        .collect();
    let points: Vec<(usize, AlgorithmKind)> = (0..setups.len())
        .flat_map(|s| COLUMNS.map(|kind| (s, kind)))
        .collect();
    let cells = parallel_map(&points, opts.jobs, |&(s, kind)| {
        let (_, tree, queries) = &setups[s];
        f4(simulate_observed(tree, queries, k, lambda, kind, 1312, &opts).mean_response_s)
    });
    for (s, &(_, disks)) in steps.iter().enumerate() {
        let mut row = vec![setups[s].0.len().to_string(), disks.to_string()];
        row.extend_from_slice(&cells[s * 4..(s + 1) * 4]);
        table.row(row);
    }
    table.print();
    table.write_csv(&opts.out_dir, "table3_scaleup_population");
}
