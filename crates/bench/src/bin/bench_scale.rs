//! `bench_scale`: the out-of-core external bulk build at scale — build
//! wall time plus cold/warm k-NN latency, swept over population.
//!
//! Not a figure from the paper: the paper bulk-loads its largest set
//! (Table 3, 240k objects) in RAM. This run exercises the regime the
//! external builder exists for — populations whose sort state cannot be
//! resident — by streaming points from a generator (never materializing
//! the dataset), spilling bounded sort runs through a scratch store, and
//! serving k-NN afterwards through a **byte-budgeted** node cache, so
//! both build and query sides run under a fixed memory cap.
//!
//! At the smallest scale the dataset is also built with the in-RAM
//! `bulk_load` and every query's answers are asserted bit-identical —
//! the external path must change how the tree is built, never what it
//! answers.
//!
//! Wall-clock numbers are `Direction::Info` (host-dependent); the
//! deterministic shape of the build and the traversal — spilled pages,
//! cold reads per query, warm-cache hit ratio, average node fill — are
//! gated through `check_regression`.
//!
//! Emits `bench_scale.csv` plus `BENCH_scale.json` under `--out`
//! (default `results/`).

use sqda_bench::{
    experiment_page_size, f2, f4,
    report::{BinReport, Direction},
    ExpOptions, ResultsTable,
};
use sqda_datasets::uniform_stream;
use sqda_geom::Point;
use sqda_obs::MetricSummary;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{ExternalBuildOptions, FnSource, Node, PointSource, RStarConfig, RStarTree};
use sqda_storage::{FileStore, NodeCache};
use std::sync::Arc;
use std::time::Instant;

const DISKS: u32 = 8;
const K: usize = 10;
const DIM: usize = 2;
const SEED: u64 = 7201;
/// Points per sort run: small enough that every scale point actually
/// spills, large enough that the merge tree stays shallow.
const RUN_CAPACITY: usize = 1 << 15;
/// Resident-node budget for the byte-budgeted cache (2 MiB): a few
/// thousand 2-d nodes — far below the 1M+ trees, so the cold/warm gap
/// is real.
const CACHE_BYTES: usize = 2 << 20;

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }
}

/// Times one k-NN pass over `queries`, returning (sorted latencies in
/// seconds, answers).
fn knn_pass(
    tree: &RStarTree<FileStore>,
    queries: &[Point],
) -> (Vec<f64>, Vec<Vec<sqda_rstar::Neighbor>>) {
    let mut lat = Vec::with_capacity(queries.len());
    let mut answers = Vec::with_capacity(queries.len());
    for q in queries {
        let t = Instant::now();
        let a = tree.knn(q, K).expect("knn");
        lat.push(t.elapsed().as_secs_f64());
        answers.push(a);
    }
    let mut sorted = lat;
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (sorted, answers)
}

fn main() {
    let opts = ExpOptions::from_args();
    let scales: &[usize] = if opts.quick {
        &[50_000, 200_000]
    } else {
        &[1_000_000, 10_000_000]
    };
    let page_size = experiment_page_size(DIM);
    let jobs = opts.jobs.clamp(1, 4);
    let n_queries = opts.queries();
    let queries: Vec<Point> = uniform_stream(n_queries, DIM, SEED ^ 0x5eed).collect();

    let root = std::env::temp_dir().join(format!("sqda-bench-scale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let mut report = BinReport::new("bench_scale", &opts);
    report
        .param("dataset", format!("uniform-{DIM}d (streamed)"))
        .param("disks", DISKS)
        .param("k", K)
        .param("page_size", page_size)
        .param("run_capacity", RUN_CAPACITY)
        .param("cache_bytes", CACHE_BYTES)
        .param("queries", n_queries)
        .param("build_jobs", jobs)
        .master_seed(SEED);

    let mut table = ResultsTable::new(
        format!(
            "bench_scale — external build + byte-budget cache \
             ({DISKS} disks, k={K}, run cap {RUN_CAPACITY}, \
             cache {} KiB, {n_queries} queries)",
            CACHE_BYTES / 1024
        ),
        &[
            "n",
            "build(s)",
            "runs",
            "merges",
            "spilled_pages",
            "cold_mean(ms)",
            "cold_p95(ms)",
            "warm_mean(ms)",
            "warm_p95(ms)",
            "warm_hit_ratio",
            "avg_fill",
        ],
    );
    let mut json_points: Vec<String> = Vec::new();

    for (si, &n) in scales.iter().enumerate() {
        let dest_dir = root.join(format!("tree-{n}"));
        let scratch_dir = root.join(format!("scratch-{n}"));
        let store = Arc::new(
            FileStore::create(&dest_dir, DISKS, 1449, page_size, SEED).expect("create store"),
        );
        let scratch = Arc::new(
            FileStore::create(&scratch_dir, DISKS, 1449, page_size, SEED ^ 1)
                .expect("create scratch"),
        );
        let source = FnSource::new(n as u64, DIM, move || {
            uniform_stream(n, DIM, SEED)
                .enumerate()
                .map(|(i, p)| (p, i as u64))
        });
        let build_opts = ExternalBuildOptions {
            run_capacity: RUN_CAPACITY,
            jobs,
            ..ExternalBuildOptions::default()
        };
        let t = Instant::now();
        let (mut tree, build) = RStarTree::bulk_load_external_stats(
            store.clone(),
            RStarConfig::with_page_size(DIM, page_size),
            Box::new(ProximityIndex),
            &source,
            &scratch,
            &build_opts,
        )
        .expect("external build");
        let build_s = t.elapsed().as_secs_f64();
        drop(scratch);
        let _ = std::fs::remove_dir_all(&scratch_dir);
        store.sync().expect("sync store");
        eprintln!(
            "  built n={n} in {build_s:.1}s: {} runs, {} merge passes, \
             {} scratch pages spilled (peak {})",
            build.runs, build.merge_passes, build.spilled_pages, build.peak_scratch_pages
        );

        // Query under a fixed resident-node budget: cold pass (empty
        // cache, every wavefront page read from file), then the same
        // queries warm.
        tree.set_node_cache(Arc::new(NodeCache::<Node>::new_bytes(
            CACHE_BYTES,
            Node::heap_bytes,
        )));
        let io0 = tree.io_stats();
        let (cold, cold_answers) = knn_pass(&tree, &queries);
        let io1 = tree.io_stats();
        let (warm, warm_answers) = knn_pass(&tree, &queries);
        let io2 = tree.io_stats();

        // Warm answers never drift from cold ones (the cache is
        // transparent), and at the smallest scale the external tree
        // answers bit-identically to the in-RAM bulk loader.
        assert_eq!(cold_answers.len(), warm_answers.len());
        for (c, w) in cold_answers.iter().zip(&warm_answers) {
            assert_eq!(c.len(), w.len(), "warm pass changed an answer set");
            for (a, b) in c.iter().zip(w) {
                assert_eq!(a.object, b.object);
                assert_eq!(a.dist_sq.to_bits(), b.dist_sq.to_bits());
            }
        }
        if si == 0 {
            let ram_dir = root.join(format!("tree-ram-{n}"));
            let ram_store = Arc::new(
                FileStore::create(&ram_dir, DISKS, 1449, page_size, SEED)
                    .expect("create reference store"),
            );
            let points: Vec<(Point, u64)> = source.iter().collect();
            let ram_tree = RStarTree::bulk_load(
                ram_store,
                RStarConfig::with_page_size(DIM, page_size),
                Box::new(ProximityIndex),
                points,
            )
            .expect("in-memory build");
            for (q, external) in queries.iter().zip(&cold_answers) {
                let want = ram_tree.knn(q, K).expect("reference knn");
                assert_eq!(external.len(), want.len());
                for (a, b) in external.iter().zip(&want) {
                    assert_eq!(a.object, b.object, "external build changed an answer");
                    assert_eq!(a.dist_sq.to_bits(), b.dist_sq.to_bits());
                }
            }
            let _ = std::fs::remove_dir_all(&ram_dir);
            eprintln!("  n={n}: external answers match the in-memory bulk load");
        }

        let cold_reads = (io1.reads - io0.reads) as f64 / n_queries as f64;
        let warm_lookups =
            (io2.cache_hits - io1.cache_hits) + (io2.cache_misses - io1.cache_misses);
        let warm_hit_ratio = if warm_lookups == 0 {
            0.0
        } else {
            (io2.cache_hits - io1.cache_hits) as f64 / warm_lookups as f64
        };
        let stats = tree.stats().expect("tree stats");
        let cold_mean = cold.iter().sum::<f64>() / cold.len() as f64;
        let warm_mean = warm.iter().sum::<f64>() / warm.len() as f64;

        table.row(vec![
            n.to_string(),
            f2(build_s),
            build.runs.to_string(),
            build.merge_passes.to_string(),
            build.spilled_pages.to_string(),
            f4(cold_mean * 1e3),
            f4(percentile(&cold, 0.95) * 1e3),
            f4(warm_mean * 1e3),
            f4(percentile(&warm, 0.95) * 1e3),
            f4(warm_hit_ratio),
            f2(stats.avg_fill),
        ]);
        let labels = [("n", n.to_string())];
        report.metric_dir(
            "build_wall_s",
            &labels,
            MetricSummary::from_samples(&[build_s]),
            Direction::Info,
        );
        report.metric_dir(
            "cold_knn_mean_s",
            &labels,
            MetricSummary::from_samples(&[cold_mean]),
            Direction::Info,
        );
        report.metric_dir(
            "warm_knn_mean_s",
            &labels,
            MetricSummary::from_samples(&[warm_mean]),
            Direction::Info,
        );
        report.metric_dir(
            "spilled_pages",
            &labels,
            MetricSummary::from_samples(&[build.spilled_pages as f64]),
            Direction::Lower,
        );
        report.metric_dir(
            "cold_reads_per_query",
            &labels,
            MetricSummary::from_samples(&[cold_reads]),
            Direction::Lower,
        );
        report.metric_dir(
            "warm_cache_hit_ratio",
            &labels,
            MetricSummary::from_samples(&[warm_hit_ratio]),
            Direction::Higher,
        );
        report.metric_dir(
            "avg_fill",
            &labels,
            MetricSummary::from_samples(&[stats.avg_fill]),
            Direction::Higher,
        );
        json_points.push(format!(
            "{{\"n\":{n},\"build_s\":{build_s:.3},\"runs\":{},\"merge_passes\":{},\
             \"spilled_pages\":{},\"peak_scratch_pages\":{},\
             \"cold_mean_s\":{cold_mean:.6},\"cold_p95_s\":{:.6},\
             \"warm_mean_s\":{warm_mean:.6},\"warm_p95_s\":{:.6},\
             \"cold_reads_per_query\":{cold_reads:.3},\
             \"warm_cache_hit_ratio\":{warm_hit_ratio:.4},\
             \"avg_fill\":{:.4},\"height\":{},\"nodes\":{}}}",
            build.runs,
            build.merge_passes,
            build.spilled_pages,
            build.peak_scratch_pages,
            percentile(&cold, 0.95),
            percentile(&warm, 0.95),
            stats.avg_fill,
            tree.height(),
            stats.total_nodes(),
        ));
        drop(tree);
        let _ = std::fs::remove_dir_all(&dest_dir);
    }

    table.print();
    table.write_csv(&opts.out_dir, "bench_scale");
    std::fs::create_dir_all(&opts.out_dir).expect("create results dir");
    let path = opts.out_dir.join("BENCH_scale.json");
    let json = format!(
        "{{\n  \"bench\": \"bench_scale\",\n  \"config\": {{\n    \
         \"disks\": {DISKS},\n    \"k\": {K},\n    \"dim\": {DIM},\n    \
         \"page_size\": {page_size},\n    \"run_capacity\": {RUN_CAPACITY},\n    \
         \"cache_bytes\": {CACHE_BYTES},\n    \"queries\": {n_queries}\n  }},\n  \
         \"points\": [\n    {}\n  ]\n}}\n",
        json_points.join(",\n    ")
    );
    std::fs::write(&path, json).expect("write BENCH_scale.json");
    eprintln!("  wrote {}", path.display());
    report.finish(&opts);
    std::fs::remove_dir_all(&root).ok();
}
