//! Diagnostic: batch-size profile of each algorithm (not part of the
//! paper's experiment set; used to understand parallelism exploitation).

use sqda_bench::{build_tree, ExpOptions};
use sqda_core::{exec::run_query, AlgorithmKind};
use sqda_datasets::gaussian;

fn main() {
    let opts = ExpOptions::from_args();
    let dataset = gaussian(opts.population(20_000), 5, 1301 + 20_000);
    let tree = build_tree(&dataset, 10, 1320);
    let queries = dataset.sample_queries(30, 1311);
    for kind in AlgorithmKind::ALL {
        let mut nodes = 0u64;
        let mut batches = 0u64;
        let mut maxb = 0usize;
        for q in &queries {
            let mut algo = kind.build(&tree, q.clone(), 20).unwrap();
            let run = run_query(&tree, algo.as_mut()).unwrap();
            nodes += run.nodes_visited;
            batches += run.batches;
            maxb = maxb.max(run.max_batch);
        }
        println!(
            "{:<8} nodes/query {:6.1}  batches/query {:6.1}  mean batch {:4.2}  max batch {}",
            kind.name(),
            nodes as f64 / queries.len() as f64,
            batches as f64 / queries.len() as f64,
            nodes as f64 / batches as f64,
            maxb
        );
    }
}
