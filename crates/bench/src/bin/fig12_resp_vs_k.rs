//! Figure 12: response time normalized to WOPTSS vs. number of nearest
//! neighbours (1–100), Uniform 80,000 points, 5-d, 10 disks, at λ = 1
//! (left) and λ = 20 (right) queries/s.
//!
//! Paper shape: CRSS is the best real algorithm across the whole k range,
//! outperforming BBSS by 3–4×.

use sqda_bench::{
    build_tree, f2, f4, mean_response, rep_query_sets, rep_seed, report::BinReport,
    simulate_observed, sweep_replicated, ExpOptions, ResultsTable,
};
use sqda_core::AlgorithmKind;
use sqda_datasets::uniform;

fn main() {
    let opts = ExpOptions::from_args();
    let ks: &[usize] = if opts.quick {
        &[1, 40, 100]
    } else {
        &[1, 10, 20, 40, 60, 80, 100]
    };
    let dataset = uniform(opts.population(80_000), 5, 1201);
    let tree = build_tree(&dataset, 10, 1210);
    let query_sets = rep_query_sets(&dataset, &opts, 1211);
    let mut report = BinReport::new("fig12_resp_vs_k", &opts);
    report
        .param("dataset", dataset.name.clone())
        .param("disks", 10)
        .param("queries", opts.queries())
        .param("sim_seed", 1212)
        .master_seed(1211);
    for lambda in [1.0f64, 20.0] {
        let mut table = ResultsTable::new(
            format!(
                "Figure 12 — response time normalized to WOPTSS vs k (set: {}, n={}, 5-d, disks: 10, λ={lambda})",
                dataset.name,
                dataset.len()
            ),
            &[
                "k",
                "BBSS/WOPTSS",
                "FPSS/WOPTSS",
                "CRSS/WOPTSS",
                "WOPTSS(s)",
            ],
        );
        let points: Vec<(usize, AlgorithmKind)> = ks
            .iter()
            .flat_map(|&k| AlgorithmKind::ALL.map(|kind| (k, kind)))
            .collect();
        let sums = sweep_replicated(&points, &opts, |&(k, kind), rep| {
            let r = simulate_observed(
                &tree,
                &query_sets[rep],
                k,
                lambda,
                kind,
                rep_seed(1212, rep),
                &opts,
            );
            mean_response(&r, &opts)
        });
        for (point, sum) in points.iter().zip(&sums) {
            report.metric(
                "mean_response_s",
                &[
                    ("lambda", lambda.to_string()),
                    ("k", point.0.to_string()),
                    ("algorithm", point.1.name().to_string()),
                ],
                sum.summary,
            );
        }
        let cells: Vec<f64> = sums.iter().map(|s| s.mean()).collect();
        for (i, &k) in ks.iter().enumerate() {
            // WOPTSS is ALL's last element: the row's normalizer.
            let wopt = cells[i * 4 + 3];
            let mut row = vec![k.to_string()];
            for resp in &cells[i * 4..i * 4 + 3] {
                row.push(f2(resp / wopt));
            }
            row.push(f4(wopt));
            table.row(row);
        }
        table.print();
        table.write_csv(&opts.out_dir, &format!("fig12_lambda{lambda}"));
    }
    report.finish(&opts);
}
