//! Extension — analytical model validation (the paper's future-work item
//! "estimating the response time of a query" by analysis).
//!
//! Predicted vs. measured, side by side: expected WOPTSS node accesses
//! from the Minkowski-sum selectivity model, and mean CRSS response time
//! from the M/M/1-style queueing model, against the logical executor and
//! the event-driven simulator respectively.

use sqda_analysis::{estimate_response, expected_knn_accesses, QueryIoProfile, TreeProfile};
use sqda_bench::{
    build_tree, f2, f4, mean_nodes, rep_query_sets, rep_seed,
    report::{BinReport, Direction},
    simulate, ExpOptions, ResultsTable,
};
use sqda_core::{exec::run_query, AlgorithmKind};
use sqda_datasets::uniform;
use sqda_obs::MetricSummary;
use sqda_simkernel::SystemParams;
use sqda_storage::PageStore;

fn main() {
    let opts = ExpOptions::from_args();
    let dataset = uniform(opts.population(50_000), 2, 2001);
    let tree = build_tree(&dataset, 10, 2010);
    let query_sets = rep_query_sets(&dataset, &opts, 2011);
    let queries = &query_sets[0];
    let profile = TreeProfile::measure(&tree).expect("profile");
    let mut report = BinReport::new("analysis_validation", &opts);
    report
        .param("dataset", dataset.name.clone())
        .param("disks", 10)
        .param("queries", opts.queries())
        .param("sim_seed", 2012)
        .master_seed(2011);

    // Part 1: node-access prediction vs WOPTSS measurement.
    let mut t1 = ResultsTable::new(
        format!(
            "Analysis — predicted vs measured node accesses (set: {}, n={})",
            dataset.name,
            dataset.len()
        ),
        &["k", "predicted", "measured (WOPTSS)", "ratio"],
    );
    for k in [1usize, 10, 50, 100, 400] {
        let predicted = expected_knn_accesses(&profile, k).expect("non-degenerate");
        let measured_reps: Vec<f64> = (0..opts.reps)
            .map(|rep| mean_nodes(&tree, &query_sets[rep], k, AlgorithmKind::Woptss))
            .collect();
        let measured = MetricSummary::from_samples(&measured_reps);
        let labels = [("k", k.to_string())];
        report.metric("mean_nodes", &labels, measured);
        report.metric_dir(
            "predicted_over_measured",
            &labels,
            MetricSummary::from_samples(&[predicted / measured.mean]),
            Direction::Info,
        );
        t1.row(vec![
            k.to_string(),
            f2(predicted),
            f2(measured.mean),
            f2(predicted / measured.mean),
        ]);
    }
    t1.print();
    t1.write_csv(&opts.out_dir, "analysis_node_accesses");

    // Part 2: response-time prediction vs simulation.
    // The I/O profile feeds the closed-form model; rep 0's query set keeps
    // the profile deterministic and comparable across runs.
    let params = SystemParams::with_disks(tree.store().num_disks());
    let k = 20;
    let mut accesses = 0.0;
    let mut batches = 0.0;
    for q in queries {
        let mut algo = AlgorithmKind::Crss
            .build(&tree, q.clone(), k)
            .expect("algo");
        let run = run_query(&tree, algo.as_mut()).expect("query");
        accesses += run.nodes_visited as f64;
        batches += run.batches as f64;
    }
    let io = QueryIoProfile {
        accesses: accesses / queries.len() as f64,
        batches: batches / queries.len() as f64,
    };
    let mut t2 = ResultsTable::new(
        format!(
            "Analysis — predicted vs simulated CRSS response (k={k}, A={:.1}, B={:.1})",
            io.accesses, io.batches
        ),
        &["lambda", "rho", "predicted (s)", "simulated (s)", "ratio"],
    );
    for lambda in [1.0f64, 2.0, 5.0, 10.0, 20.0] {
        let est = estimate_response(&params, io, lambda);
        let sim_reps: Vec<f64> = (0..opts.reps)
            .map(|rep| {
                simulate(
                    &tree,
                    &query_sets[rep],
                    k,
                    lambda,
                    AlgorithmKind::Crss,
                    rep_seed(2012, rep),
                )
                .mean_response_s
            })
            .collect();
        let simulated = MetricSummary::from_samples(&sim_reps);
        report.metric(
            "mean_response_s",
            &[("lambda", lambda.to_string()), ("k", k.to_string())],
            simulated,
        );
        let (pred_str, ratio_str) = match est.response_s {
            Some(p) => (f4(p), f2(p / simulated.mean)),
            None => ("unstable".into(), "—".into()),
        };
        t2.row(vec![
            format!("{lambda}"),
            f2(est.utilization),
            pred_str,
            f4(simulated.mean),
            ratio_str,
        ]);
    }
    t2.print();
    t2.write_csv(&opts.out_dir, "analysis_response_time");
    report.finish(&opts);
}
