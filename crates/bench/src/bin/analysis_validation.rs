//! Extension — analytical model validation (the paper's future-work item
//! "estimating the response time of a query" by analysis).
//!
//! Predicted vs. measured, side by side: expected WOPTSS node accesses
//! from the Minkowski-sum selectivity model, and mean CRSS response time
//! from the M/M/1-style queueing model, against the logical executor and
//! the event-driven simulator respectively.

use sqda_analysis::{estimate_response, expected_knn_accesses, QueryIoProfile, TreeProfile};
use sqda_bench::{build_tree, f2, f4, mean_nodes, simulate, ExpOptions, ResultsTable};
use sqda_core::{exec::run_query, AlgorithmKind};
use sqda_datasets::uniform;
use sqda_simkernel::SystemParams;
use sqda_storage::PageStore;

fn main() {
    let opts = ExpOptions::from_args();
    let dataset = uniform(opts.population(50_000), 2, 2001);
    let tree = build_tree(&dataset, 10, 2010);
    let queries = dataset.sample_queries(opts.queries(), 2011);
    let profile = TreeProfile::measure(&tree).expect("profile");

    // Part 1: node-access prediction vs WOPTSS measurement.
    let mut t1 = ResultsTable::new(
        format!(
            "Analysis — predicted vs measured node accesses (set: {}, n={})",
            dataset.name,
            dataset.len()
        ),
        &["k", "predicted", "measured (WOPTSS)", "ratio"],
    );
    for k in [1usize, 10, 50, 100, 400] {
        let predicted = expected_knn_accesses(&profile, k).expect("non-degenerate");
        let measured = mean_nodes(&tree, &queries, k, AlgorithmKind::Woptss);
        t1.row(vec![
            k.to_string(),
            f2(predicted),
            f2(measured),
            f2(predicted / measured),
        ]);
    }
    t1.print();
    t1.write_csv(&opts.out_dir, "analysis_node_accesses");

    // Part 2: response-time prediction vs simulation.
    let params = SystemParams::with_disks(tree.store().num_disks());
    let k = 20;
    let mut accesses = 0.0;
    let mut batches = 0.0;
    for q in &queries {
        let mut algo = AlgorithmKind::Crss
            .build(&tree, q.clone(), k)
            .expect("algo");
        let run = run_query(&tree, algo.as_mut()).expect("query");
        accesses += run.nodes_visited as f64;
        batches += run.batches as f64;
    }
    let io = QueryIoProfile {
        accesses: accesses / queries.len() as f64,
        batches: batches / queries.len() as f64,
    };
    let mut t2 = ResultsTable::new(
        format!(
            "Analysis — predicted vs simulated CRSS response (k={k}, A={:.1}, B={:.1})",
            io.accesses, io.batches
        ),
        &["lambda", "rho", "predicted (s)", "simulated (s)", "ratio"],
    );
    for lambda in [1.0f64, 2.0, 5.0, 10.0, 20.0] {
        let est = estimate_response(&params, io, lambda);
        let simulated = simulate(&tree, &queries, k, lambda, AlgorithmKind::Crss, 2012);
        let (pred_str, ratio_str) = match est.response_s {
            Some(p) => (f4(p), f2(p / simulated.mean_response_s)),
            None => ("unstable".into(), "—".into()),
        };
        t2.row(vec![
            format!("{lambda}"),
            f2(est.utilization),
            pred_str,
            f4(simulated.mean_response_s),
            ratio_str,
        ]);
    }
    t2.print();
    t2.write_csv(&opts.out_dir, "analysis_response_time");
}
