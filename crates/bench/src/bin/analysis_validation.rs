//! Extension — analytical model validation (the paper's future-work item
//! "estimating the response time of a query" by analysis).
//!
//! Predicted vs. measured, side by side, through the same
//! [`sqda_analysis::predict_knn`] entry point that powers `sqda
//! estimate`, `sqda explain` and the serve EXPLAIN verb: expected
//! WOPTSS node accesses from the Minkowski-sum selectivity model against
//! the logical executor, and mean CRSS response time from the
//! M/M/1-style queueing model against the event-driven simulator.

use sqda_analysis::{predict_knn, TreeProfile};
use sqda_bench::{
    build_tree, f2, f4, mean_nodes, rep_query_sets, rep_seed,
    report::{BinReport, Direction},
    simulate, ExpOptions, ResultsTable,
};
use sqda_core::AlgorithmKind;
use sqda_datasets::uniform;
use sqda_obs::MetricSummary;
use sqda_simkernel::SystemParams;
use sqda_storage::PageStore;

fn main() {
    let opts = ExpOptions::from_args();
    let dataset = uniform(opts.population(50_000), 2, 2001);
    let tree = build_tree(&dataset, 10, 2010);
    let query_sets = rep_query_sets(&dataset, &opts, 2011);
    let profile = TreeProfile::measure(&tree).expect("profile");
    let params = SystemParams::with_disks(tree.store().num_disks());
    let mut report = BinReport::new("analysis_validation", &opts);
    report
        .param("dataset", dataset.name.clone())
        .param("disks", 10)
        .param("queries", opts.queries())
        .param("sim_seed", 2012)
        .master_seed(2011);

    // Part 1: node-access prediction vs WOPTSS measurement. The λ below
    // only affects the queueing half of the prediction, not accesses.
    let mut t1 = ResultsTable::new(
        format!(
            "Analysis — predicted vs measured node accesses (set: {}, n={})",
            dataset.name,
            dataset.len()
        ),
        &["k", "predicted", "measured (WOPTSS)", "ratio"],
    );
    for k in [1usize, 10, 50, 100, 400] {
        let predicted = predict_knn(&profile, &params, tree.height(), k, 1.0)
            .expect("non-degenerate")
            .accesses;
        let measured_reps: Vec<f64> = (0..opts.reps)
            .map(|rep| mean_nodes(&tree, &query_sets[rep], k, AlgorithmKind::Woptss))
            .collect();
        let measured = MetricSummary::from_samples(&measured_reps);
        let labels = [("k", k.to_string())];
        report.metric("mean_nodes", &labels, measured);
        report.metric_dir(
            "predicted_over_measured",
            &labels,
            MetricSummary::from_samples(&[predicted / measured.mean]),
            Direction::Info,
        );
        t1.row(vec![
            k.to_string(),
            f2(predicted),
            f2(measured.mean),
            f2(predicted / measured.mean),
        ]);
    }
    t1.print();
    t1.write_csv(&opts.out_dir, "analysis_node_accesses");

    // Part 2: response-time prediction vs simulation — fully analytic,
    // the exact numbers a serve EXPLAIN reply would carry as
    // `predicted_*` for this tree at each arrival rate.
    let k = 20;
    let mut t2 = ResultsTable::new(
        format!(
            "Analysis — predicted vs simulated CRSS response (k={k}, analytic model)"
        ),
        &["lambda", "rho", "predicted (s)", "simulated (s)", "ratio"],
    );
    for lambda in [1.0f64, 2.0, 5.0, 10.0, 20.0] {
        let p = predict_knn(&profile, &params, tree.height(), k, lambda)
            .expect("non-degenerate");
        let sim_reps: Vec<f64> = (0..opts.reps)
            .map(|rep| {
                simulate(
                    &tree,
                    &query_sets[rep],
                    k,
                    lambda,
                    AlgorithmKind::Crss,
                    rep_seed(2012, rep),
                )
                .mean_response_s
            })
            .collect();
        let simulated = MetricSummary::from_samples(&sim_reps);
        let labels = [("lambda", lambda.to_string()), ("k", k.to_string())];
        report.metric("mean_response_s", &labels, simulated);
        if let Some(pred) = p.response_s {
            report.metric_dir(
                "residual_response_s",
                &labels,
                MetricSummary::from_samples(&[pred - simulated.mean]),
                Direction::Info,
            );
        }
        let (pred_str, ratio_str) = match p.response_s {
            Some(pred) => (f4(pred), f2(pred / simulated.mean)),
            None => ("unstable".into(), "—".into()),
        };
        t2.row(vec![
            format!("{lambda}"),
            f2(p.utilization),
            pred_str,
            f4(simulated.mean),
            ratio_str,
        ]);
    }
    t2.print();
    t2.write_csv(&opts.out_dir, "analysis_response_time");
    report.finish(&opts);
}
