//! CI gate: diffs the current `BENCH_summary.json` against the committed
//! `results/BASELINE.json` with the noise-aware rule from
//! `sqda_bench::report` — a metric fails only when its 95% confidence
//! band separates from the baseline's in the bad direction *and* the
//! relative change clears `--rel-threshold` (default 5%). Point-estimate
//! jitter inside overlapping bands never fails.
//!
//! When the two summaries come from different RNG backends (the
//! registry-less stub build vs a cargo build — detected via
//! `rng_fingerprint`), their numbers live in different pseudo-random
//! universes, so the numeric rules are skipped and only the structure
//! (every baseline metric still present) is enforced.
//!
//! ```text
//! check_regression [--current results/BENCH_summary.json]
//!                  [--baseline results/BASELINE.json]
//!                  [--rel-threshold 0.05]
//! ```
//!
//! Exit status: 0 clean, 1 findings (regressions or missing metrics),
//! 2 usage/parse errors.

use sqda_bench::report::{compare_summary_text, FindingKind};
use std::path::PathBuf;

fn fail(msg: &str) -> ! {
    eprintln!("check_regression: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut current = PathBuf::from("results/BENCH_summary.json");
    let mut baseline = PathBuf::from("results/BASELINE.json");
    let mut rel_threshold = 0.05f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--current" => {
                current = PathBuf::from(
                    args.next().unwrap_or_else(|| fail("--current needs a path")),
                )
            }
            "--baseline" => {
                baseline = PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| fail("--baseline needs a path")),
                )
            }
            "--rel-threshold" => {
                rel_threshold = args
                    .next()
                    .unwrap_or_else(|| fail("--rel-threshold needs a fraction"))
                    .parse()
                    .unwrap_or_else(|_| fail("--rel-threshold needs a fraction"));
                if !(0.0..=10.0).contains(&rel_threshold) {
                    fail("--rel-threshold out of range");
                }
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    let cur_text = std::fs::read_to_string(&current)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", current.display())));
    let base_text = std::fs::read_to_string(&baseline)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", baseline.display())));
    let cmp = compare_summary_text(&cur_text, &base_text, rel_threshold)
        .unwrap_or_else(|e| fail(&e));

    if !cmp.fingerprints_match {
        eprintln!(
            "check_regression: RNG fingerprints differ between current and baseline \
             (different RNG backend builds); numeric comparison skipped, \
             structural check only"
        );
    }
    println!(
        "check_regression: {} metric(s) compared against {}, \
         {} improvement(s), {} finding(s) [rel-threshold {:.1}%]",
        cmp.compared,
        baseline.display(),
        cmp.improvements,
        cmp.findings.len(),
        rel_threshold * 100.0
    );
    for f in &cmp.findings {
        match f.kind {
            FindingKind::Regression => println!(
                "  REGRESSION {} :: {} — baseline {:.6} ±{:.6}, current {:.6} ±{:.6} \
                 ({:+.1}% in the bad direction)",
                f.bench,
                f.metric,
                f.base.mean,
                f.base.ci95,
                f.cur.mean,
                f.cur.ci95,
                f.rel_change * 100.0
            ),
            FindingKind::Missing => println!(
                "  MISSING    {} :: {} — present in baseline (mean {:.6}), absent now",
                f.bench, f.metric, f.base.mean
            ),
        }
    }
    if cmp.findings.is_empty() {
        println!("check_regression: OK");
    } else {
        std::process::exit(1);
    }
}
