//! `bench_explain`: the introspection loop, measured — per-query
//! `QueryExplain` records from the real-clock engine against the
//! analytical predictions (Minkowski-sum access model + M/M/1 service
//! model), swept over k, plus a replayed device calibration fitted from
//! a recorded simulated run of the same tree.
//!
//! The node-access residuals are deterministic (the engine performs the
//! same logical work as the executor, pinned by the backend-parity
//! test), so `mean_observed_accesses` and `mean_abs_residual_accesses`
//! are regression-gated: a drift between model and implementation fails
//! CI. Wall-clock latencies depend on the host and stay
//! `Direction::Info`.
//!
//! Emits `bench_explain.csv` plus `BENCH_explain.json` under `--out`
//! (default `results/`).

use sqda_analysis::{predict_knn, DeviceCalibration, TreeProfile};
use sqda_bench::{
    experiment_page_size, f2, rep_query_sets,
    report::{BinReport, Direction},
    ExpOptions, ResultsTable,
};
use sqda_core::{AlgorithmKind, RealTimeEngine, Simulation, Workload};
use sqda_datasets::uniform;
use sqda_obs::{MetricSummary, Prediction};
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{Node, RStarConfig, RStarTree};
use sqda_simkernel::SystemParams;
use sqda_storage::{FileStore, NodeCache, ThreadedFileBackend};
use std::sync::Arc;

const DISKS: u32 = 8;
const KIND: AlgorithmKind = AlgorithmKind::Crss;
const LAMBDA: f64 = 1.0;

fn main() {
    let opts = ExpOptions::from_args();
    let dim = 2;
    let page_size = experiment_page_size(dim);
    let dataset = uniform(opts.population(20_000), dim, 4601);
    let ks: &[usize] = if opts.quick {
        &[5, 20]
    } else {
        &[1, 5, 20, 50, 100]
    };

    // Persist the tree: EXPLAIN is a serving-stack feature, so the
    // records come from the same FileStore + threaded-backend engine
    // `sqda serve` runs.
    let dir = std::env::temp_dir().join(format!("sqda-bench-explain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store =
        Arc::new(FileStore::create(&dir, DISKS, 1449, page_size, 4602).expect("create store"));
    let mut tree = RStarTree::create(
        store.clone(),
        RStarConfig::with_page_size(dim, page_size),
        Box::new(ProximityIndex),
    )
    .expect("create tree");
    for (i, p) in dataset.points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).expect("insert");
    }
    store.sync().expect("sync store");
    tree.set_node_cache(Arc::new(NodeCache::<Node>::new(4096)));

    let query_sets = rep_query_sets(&dataset, &opts, 4603);
    let profile = TreeProfile::measure(&tree).expect("profile");
    let params = SystemParams::with_disks(DISKS);

    // Replayed calibration: record a simulated run under known
    // `SystemParams` and fit the device service terms back out of the
    // trace — the offline counterpart of the fit `sqda serve` performs
    // from its live disk counters at shutdown.
    let mut recorder = sqda_obs::CollectingRecorder::default();
    Simulation::new(&tree, params.clone())
        .expect("simulation")
        .run_recorded(
            KIND,
            &Workload::poisson(query_sets[0].clone(), 10, 2.0, 4604),
            4605,
            &mut recorder,
        )
        .expect("simulated run");
    let calibration = DeviceCalibration::fit_from_events(recorder.events());

    let mut report = BinReport::new("bench_explain", &opts);
    report
        .param("dataset", dataset.name.clone())
        .param("disks", DISKS)
        .param("algorithm", KIND.name())
        .param("page_size", page_size)
        .param("lambda", LAMBDA)
        .param("queries", opts.queries())
        .master_seed(4603);
    if let Some(cal) = &calibration {
        report.metric_dir(
            "calibration_mean_service_ms",
            &[],
            MetricSummary::from_samples(&[cal.mean_service_s() * 1e3]),
            Direction::Info,
        );
    }

    let backend = Arc::new(ThreadedFileBackend::new(store.clone()));
    let engine = RealTimeEngine::new(&tree, backend).expect("real-clock engine");

    let mut table = ResultsTable::new(
        format!(
            "bench_explain — predicted vs observed per-query work \
             (set: {}, n={}, {DISKS} disks, {}, λ={LAMBDA})",
            dataset.name,
            dataset.len(),
            KIND.name(),
        ),
        &[
            "k",
            "predicted_A",
            "observed_A",
            "|residual|",
            "resid_%",
            "predicted_ms",
            "observed_ms",
        ],
    );
    let mut json_points: Vec<String> = Vec::new();
    let mut sample: Option<String> = None;
    for &k in ks {
        let p = predict_knn(&profile, &params, tree.height(), k, LAMBDA)
            .expect("non-degenerate data space");
        let pred = Prediction {
            accesses: p.accesses,
            batches: p.batches,
            utilization: p.utilization,
            response_ms: p.response_s.map(|r| r * 1e3).unwrap_or(f64::INFINITY),
        };
        let mut obs_acc_reps = Vec::new();
        let mut abs_resid_reps = Vec::new();
        let mut obs_ms_reps = Vec::new();
        for qs in &query_sets {
            let mut acc = 0.0;
            let mut resid = 0.0;
            let mut ms = 0.0;
            for q in qs {
                let (rec, answers) = engine
                    .explain_query(KIND, q.clone(), k, LAMBDA, false, Some(pred))
                    .expect("explain query");
                assert_eq!(rec.answers, answers.len(), "explain answer count");
                acc += rec.nodes as f64;
                resid += rec.residual_accesses().expect("prediction attached").abs();
                ms += rec.response_ms;
                if sample.is_none() {
                    sample = Some(rec.to_json());
                }
            }
            let n = qs.len() as f64;
            obs_acc_reps.push(acc / n);
            abs_resid_reps.push(resid / n);
            obs_ms_reps.push(ms / n);
        }
        let observed = MetricSummary::from_samples(&obs_acc_reps);
        let residual = MetricSummary::from_samples(&abs_resid_reps);
        let obs_ms = MetricSummary::from_samples(&obs_ms_reps);
        let labels = [("k", k.to_string())];
        report.metric("mean_observed_accesses", &labels, observed);
        report.metric("mean_abs_residual_accesses", &labels, residual);
        report.metric_dir(
            "predicted_accesses",
            &labels,
            MetricSummary::from_samples(&[pred.accesses]),
            Direction::Info,
        );
        report.metric_dir("mean_observed_response_ms", &labels, obs_ms, Direction::Info);
        let pred_ms_str = if pred.response_ms.is_finite() {
            format!("{:.4}", pred.response_ms)
        } else {
            "null".to_string()
        };
        table.row(vec![
            k.to_string(),
            f2(pred.accesses),
            f2(observed.mean),
            f2(residual.mean),
            f2(100.0 * residual.mean / pred.accesses),
            if pred.response_ms.is_finite() {
                f2(pred.response_ms)
            } else {
                "unstable".into()
            },
            format!("{:.4}", obs_ms.mean),
        ]);
        json_points.push(format!(
            "{{\"k\":{k},\"predicted_accesses\":{:.4},\"observed_accesses\":{:.4},\
             \"mean_abs_residual_accesses\":{:.4},\"predicted_batches\":{:.4},\
             \"utilization\":{:.6},\"predicted_response_ms\":{pred_ms_str},\
             \"observed_response_ms\":{:.4}}}",
            pred.accesses, observed.mean, residual.mean, pred.batches, pred.utilization,
            obs_ms.mean
        ));
    }
    table.print();
    table.write_csv(&opts.out_dir, "bench_explain");

    std::fs::create_dir_all(&opts.out_dir).expect("create results dir");
    let path = opts.out_dir.join("BENCH_explain.json");
    let cal_json = calibration
        .as_ref()
        .map(DeviceCalibration::to_json)
        .unwrap_or_else(|| "null".to_string());
    let json = format!(
        "{{\n  \"bench\": \"bench_explain\",\n  \"config\": {{\n    \
         \"disks\": {DISKS},\n    \"algorithm\": \"{}\",\n    \
         \"page_size\": {page_size},\n    \"population\": {},\n    \
         \"queries\": {},\n    \"lambda\": {LAMBDA},\n    \"reps\": {}\n  }},\n  \
         \"calibration\": {cal_json},\n  \"sample\": {},\n  \
         \"points\": [\n    {}\n  ]\n}}\n",
        KIND.name(),
        dataset.len(),
        opts.queries(),
        opts.reps,
        sample.unwrap_or_else(|| "null".into()),
        json_points.join(",\n    ")
    );
    std::fs::write(&path, json).expect("write BENCH_explain.json");
    eprintln!("  wrote {}", path.display());
    report.finish(&opts);
    std::fs::remove_dir_all(&dir).ok();
}
