//! Extensions — the paper's "future research" directions, measured:
//!
//! 1. **Shadowed disks** (RAID-1 read balancing): every page has a
//!    replica half the array away; reads go to whichever copy frees
//!    first.
//! 2. **Shared-memory multiprocessor**: 1 vs 2 vs 4 CPUs with
//!    least-loaded batch dispatch.
//! 3. **Bulk-loaded vs incrementally built tree**: how much query I/O
//!    the dynamic R\*-tree gives up against a full reorganization (which
//!    the paper rules out for operational reasons).

use sqda_bench::{
    build_tree, experiment_page_size, f2, f4, rep_query_sets, rep_seed,
    report::{BinReport, Direction},
    simulate, ExpOptions, ResultsTable,
};
use sqda_core::{AlgorithmKind, Simulation, Workload};
use sqda_datasets::gaussian;
use sqda_obs::MetricSummary;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{RStarConfig, RStarTree};
use sqda_simkernel::SystemParams;
use sqda_storage::{ArrayStore, PageStore};
use std::sync::Arc;

fn main() {
    let opts = ExpOptions::from_args();
    let dataset = gaussian(opts.population(50_000), 5, 1801);
    let tree = build_tree(&dataset, 10, 1810);
    let query_sets = rep_query_sets(&dataset, &opts, 1811);
    let k = 20;
    let mut report = BinReport::new("ext_future_work", &opts);
    report
        .param("dataset", dataset.name.clone())
        .param("disks", 10)
        .param("k", k)
        .param("queries", opts.queries())
        .master_seed(1811);

    // --- Extension 1: shadowed disks ---
    let mut t1 = ResultsTable::new(
        "Extension — shadowed (mirrored) disks, CRSS, 10 disks, k=20",
        &[
            "lambda",
            "RAID-0 resp (s)",
            "mirrored resp (s)",
            "improvement",
        ],
    );
    for lambda in [1.0f64, 5.0, 10.0, 20.0] {
        let mut plain_resp = Vec::with_capacity(opts.reps);
        let mut mirror_resp = Vec::with_capacity(opts.reps);
        let mut improvement = Vec::with_capacity(opts.reps);
        for rep in 0..opts.reps {
            let w = Workload::poisson(query_sets[rep].clone(), k, lambda, rep_seed(1812, rep));
            let sim_seed = rep_seed(1813, rep);
            let plain = Simulation::new(&tree, SystemParams::with_disks(10))
                .expect("simulation")
                .run(AlgorithmKind::Crss, &w, sim_seed)
                .expect("simulation");
            let mirrored = Simulation::new(
                &tree,
                SystemParams {
                    mirrored_reads: true,
                    ..SystemParams::with_disks(10)
                },
            )
            .expect("simulation")
            .run(AlgorithmKind::Crss, &w, sim_seed)
            .expect("simulation");
            plain_resp.push(plain.mean_response_s);
            mirror_resp.push(mirrored.mean_response_s);
            improvement
                .push((1.0 - mirrored.mean_response_s / plain.mean_response_s) * 100.0);
        }
        let plain = MetricSummary::from_samples(&plain_resp);
        let mirrored = MetricSummary::from_samples(&mirror_resp);
        let improvement = MetricSummary::from_samples(&improvement);
        let labels = |layout: &str| {
            [
                ("lambda", lambda.to_string()),
                ("layout", layout.to_string()),
            ]
        };
        report.metric("mean_response_s", &labels("raid0"), plain);
        report.metric("mean_response_s", &labels("mirrored"), mirrored);
        report.metric_dir(
            "mirror_improvement_pct",
            &[("lambda", lambda.to_string())],
            improvement,
            Direction::Higher,
        );
        t1.row(vec![
            format!("{lambda}"),
            f4(plain.mean),
            f4(mirrored.mean),
            format!("{:.1}%", improvement.mean),
        ]);
    }
    t1.print();
    t1.write_csv(&opts.out_dir, "ext_mirrored_disks");

    // --- Extension 2: multiprocessor front end ---
    let mut t2 = ResultsTable::new(
        "Extension — number of processors (CPU-bound regime, FPSS, λ=10)",
        &["cpus", "mean resp (s)", "cpu util"],
    );
    for cpus in [1u32, 2, 4, 8] {
        let mut resp = Vec::with_capacity(opts.reps);
        let mut util = Vec::with_capacity(opts.reps);
        for rep in 0..opts.reps {
            let w = Workload::poisson(query_sets[rep].clone(), k, 10.0, rep_seed(1814, rep));
            let params = SystemParams {
                num_cpus: cpus,
                cpu_mips: 0.05, // scaled down so the CPU is the bottleneck
                ..SystemParams::with_disks(10)
            };
            let r = Simulation::new(&tree, params)
                .expect("simulation")
                .run(AlgorithmKind::Fpss, &w, rep_seed(1815, rep))
                .expect("simulation");
            resp.push(r.mean_response_s);
            util.push(r.cpu_utilization * 100.0);
        }
        let resp = MetricSummary::from_samples(&resp);
        let util = MetricSummary::from_samples(&util);
        let labels = [("cpus", cpus.to_string())];
        report.metric("mean_response_s", &labels, resp);
        report.metric_dir("cpu_utilization_pct", &labels, util, Direction::Info);
        t2.row(vec![
            cpus.to_string(),
            f4(resp.mean),
            format!("{:.1}%", util.mean),
        ]);
    }
    t2.print();
    t2.write_csv(&opts.out_dir, "ext_multiprocessor");

    // --- Extension 3: bulk-loaded baseline ---
    let bulk_store = Arc::new(ArrayStore::with_page_size(
        10,
        1449,
        experiment_page_size(dataset.dim),
        1816,
    ));
    let bulk_tree = RStarTree::bulk_load(
        bulk_store,
        RStarConfig::with_page_size(dataset.dim, experiment_page_size(dataset.dim)),
        Box::new(ProximityIndex),
        dataset
            .points
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect(),
    )
    .expect("bulk load");
    bulk_tree.store().reset_stats();
    let mut t3 = ResultsTable::new(
        "Extension — incremental R*-tree vs STR bulk-loaded tree (CRSS, λ=5, k=20)",
        &["tree", "nodes", "avg fill", "mean resp (s)"],
    );
    for (label, t) in [("incremental", &tree), ("bulk-loaded", &bulk_tree)] {
        let stats = t.stats().expect("stats");
        let resp: Vec<f64> = (0..opts.reps)
            .map(|rep| {
                simulate(
                    t,
                    &query_sets[rep],
                    k,
                    5.0,
                    AlgorithmKind::Crss,
                    rep_seed(1817, rep),
                )
                .mean_response_s
            })
            .collect();
        let resp = MetricSummary::from_samples(&resp);
        report.metric(
            "mean_response_s",
            &[("tree", label.to_string())],
            resp,
        );
        t3.row(vec![
            label.to_string(),
            stats.total_nodes().to_string(),
            f2(stats.avg_fill),
            f4(resp.mean),
        ]);
    }
    t3.print();
    t3.write_csv(&opts.out_dir, "ext_bulk_vs_incremental");
    report.finish(&opts);
}
