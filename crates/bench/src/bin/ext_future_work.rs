//! Extensions — the paper's "future research" directions, measured:
//!
//! 1. **Shadowed disks** (RAID-1 read balancing): every page has a
//!    replica half the array away; reads go to whichever copy frees
//!    first.
//! 2. **Shared-memory multiprocessor**: 1 vs 2 vs 4 CPUs with
//!    least-loaded batch dispatch.
//! 3. **Bulk-loaded vs incrementally built tree**: how much query I/O
//!    the dynamic R\*-tree gives up against a full reorganization (which
//!    the paper rules out for operational reasons).

use sqda_bench::{build_tree, experiment_page_size, f2, f4, simulate, ExpOptions, ResultsTable};
use sqda_core::{AlgorithmKind, Simulation, Workload};
use sqda_datasets::gaussian;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{RStarConfig, RStarTree};
use sqda_simkernel::SystemParams;
use sqda_storage::{ArrayStore, PageStore};
use std::sync::Arc;

fn main() {
    let opts = ExpOptions::from_args();
    let dataset = gaussian(opts.population(50_000), 5, 1801);
    let tree = build_tree(&dataset, 10, 1810);
    let queries = dataset.sample_queries(opts.queries(), 1811);
    let k = 20;

    // --- Extension 1: shadowed disks ---
    let mut t1 = ResultsTable::new(
        "Extension — shadowed (mirrored) disks, CRSS, 10 disks, k=20",
        &[
            "lambda",
            "RAID-0 resp (s)",
            "mirrored resp (s)",
            "improvement",
        ],
    );
    for lambda in [1.0f64, 5.0, 10.0, 20.0] {
        let w = Workload::poisson(queries.clone(), k, lambda, 1812);
        let plain = Simulation::new(&tree, SystemParams::with_disks(10))
            .expect("simulation")
            .run(AlgorithmKind::Crss, &w, 1813)
            .expect("simulation");
        let mirrored = Simulation::new(
            &tree,
            SystemParams {
                mirrored_reads: true,
                ..SystemParams::with_disks(10)
            },
        )
        .expect("simulation")
        .run(AlgorithmKind::Crss, &w, 1813)
        .expect("simulation");
        t1.row(vec![
            format!("{lambda}"),
            f4(plain.mean_response_s),
            f4(mirrored.mean_response_s),
            format!(
                "{:.1}%",
                (1.0 - mirrored.mean_response_s / plain.mean_response_s) * 100.0
            ),
        ]);
    }
    t1.print();
    t1.write_csv(&opts.out_dir, "ext_mirrored_disks");

    // --- Extension 2: multiprocessor front end ---
    let mut t2 = ResultsTable::new(
        "Extension — number of processors (CPU-bound regime, FPSS, λ=10)",
        &["cpus", "mean resp (s)", "cpu util"],
    );
    let w = Workload::poisson(queries.clone(), k, 10.0, 1814);
    for cpus in [1u32, 2, 4, 8] {
        let params = SystemParams {
            num_cpus: cpus,
            cpu_mips: 0.05, // scaled down so the CPU is the bottleneck
            ..SystemParams::with_disks(10)
        };
        let r = Simulation::new(&tree, params)
            .expect("simulation")
            .run(AlgorithmKind::Fpss, &w, 1815)
            .expect("simulation");
        t2.row(vec![
            cpus.to_string(),
            f4(r.mean_response_s),
            format!("{:.1}%", r.cpu_utilization * 100.0),
        ]);
    }
    t2.print();
    t2.write_csv(&opts.out_dir, "ext_multiprocessor");

    // --- Extension 3: bulk-loaded baseline ---
    let bulk_store = Arc::new(ArrayStore::with_page_size(
        10,
        1449,
        experiment_page_size(dataset.dim),
        1816,
    ));
    let bulk_tree = RStarTree::bulk_load(
        bulk_store,
        RStarConfig::with_page_size(dataset.dim, experiment_page_size(dataset.dim)),
        Box::new(ProximityIndex),
        dataset
            .points
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect(),
    )
    .expect("bulk load");
    bulk_tree.store().reset_stats();
    let mut t3 = ResultsTable::new(
        "Extension — incremental R*-tree vs STR bulk-loaded tree (CRSS, λ=5, k=20)",
        &["tree", "nodes", "avg fill", "mean resp (s)"],
    );
    for (label, t) in [("incremental", &tree), ("bulk-loaded", &bulk_tree)] {
        let stats = t.stats().expect("stats");
        let r = simulate(t, &queries, k, 5.0, AlgorithmKind::Crss, 1817);
        t3.row(vec![
            label.to_string(),
            stats.total_nodes().to_string(),
            f2(stats.avg_fill),
            f4(r.mean_response_s),
        ]);
    }
    t3.print();
    t3.write_csv(&opts.out_dir, "ext_bulk_vs_incremental");
}
