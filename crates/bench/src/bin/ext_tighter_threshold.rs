//! Extension — MINMAXDIST threshold tightening for CRSS.
//!
//! Beyond the paper: besides Lemma 1 (the count-weighted `D_max` prefix),
//! the k-th smallest MINMAXDIST over a wavefront's MBRs also provably
//! upper-bounds `D_k` (each sibling MBR guarantees one distinct object
//! within its `D_mm`). Taking the minimum of the two bounds shrinks the
//! initial query sphere; this experiment measures how many node accesses
//! and how much response time that saves across dimensionalities.

use sqda_bench::{
    build_tree, f2, f4, rep_query_sets, rep_seed,
    report::{BinReport, Direction},
    ExpOptions, ResultsTable,
};
use sqda_core::{exec::run_query, Crss, Simulation, Workload};
use sqda_datasets::{gaussian, uniform};
use sqda_obs::MetricSummary;
use sqda_simkernel::SystemParams;
use sqda_storage::PageStore;

fn main() {
    let opts = ExpOptions::from_args();
    let lambda = 5.0;
    let datasets = [
        uniform(opts.population(50_000), 2, 2101),
        gaussian(opts.population(50_000), 5, 2102),
        gaussian(opts.population(50_000), 10, 2103),
    ];
    let mut report = BinReport::new("ext_tighter_threshold", &opts);
    report
        .param("disks", 10)
        .param("lambda", lambda)
        .param("queries", opts.queries())
        .param("sim_seed", 2113)
        .master_seed(2111);
    let mut table = ResultsTable::new(
        format!("Extension — CRSS with MINMAXDIST threshold (λ={lambda}, 10 disks)"),
        &[
            "dataset",
            "k",
            "stock nodes",
            "tight nodes",
            "saved",
            "stock resp (s)",
            "tight resp (s)",
        ],
    );
    for dataset in datasets {
        let tree = build_tree(&dataset, 10, 2110);
        let query_sets = rep_query_sets(&dataset, &opts, 2111);
        for k in [1usize, 2, 5, 20] {
            let mut stock_nodes = Vec::with_capacity(opts.reps);
            let mut tight_nodes = Vec::with_capacity(opts.reps);
            let mut saved_pct = Vec::with_capacity(opts.reps);
            let mut stock_resp = Vec::with_capacity(opts.reps);
            let mut tight_resp = Vec::with_capacity(opts.reps);
            for rep in 0..opts.reps {
                let queries = &query_sets[rep];
                let mut stock_sum = 0u64;
                let mut tight_sum = 0u64;
                for q in queries {
                    let mut stock = Crss::new(&tree, q.clone(), k);
                    let mut tight = Crss::new(&tree, q.clone(), k).with_minmax_threshold();
                    stock_sum += run_query(&tree, &mut stock).expect("query").nodes_visited;
                    tight_sum += run_query(&tree, &mut tight).expect("query").nodes_visited;
                }
                let n = queries.len() as f64;
                stock_nodes.push(stock_sum as f64 / n);
                tight_nodes.push(tight_sum as f64 / n);
                saved_pct.push((1.0 - tight_sum as f64 / stock_sum as f64) * 100.0);
                let params = SystemParams::with_disks(tree.store().num_disks());
                let sim = Simulation::new(&tree, params).expect("simulation");
                let w = Workload::poisson(queries.clone(), k, lambda, rep_seed(2112, rep));
                let sim_seed = rep_seed(2113, rep);
                stock_resp.push(
                    sim.run_with(|p, kk| Box::new(Crss::new(&tree, p, kk)), "CRSS", &w, sim_seed)
                        .expect("simulation")
                        .mean_response_s,
                );
                tight_resp.push(
                    sim.run_with(
                        |p, kk| Box::new(Crss::new(&tree, p, kk).with_minmax_threshold()),
                        "CRSS+mm",
                        &w,
                        sim_seed,
                    )
                    .expect("simulation")
                    .mean_response_s,
                );
            }
            let stock_nodes = MetricSummary::from_samples(&stock_nodes);
            let tight_nodes = MetricSummary::from_samples(&tight_nodes);
            let saved = MetricSummary::from_samples(&saved_pct);
            let stock_resp = MetricSummary::from_samples(&stock_resp);
            let tight_resp = MetricSummary::from_samples(&tight_resp);
            let labels = |variant: &str| {
                [
                    ("dataset", dataset.name.clone()),
                    ("k", k.to_string()),
                    ("variant", variant.to_string()),
                ]
            };
            report.metric("mean_nodes", &labels("stock"), stock_nodes);
            report.metric("mean_nodes", &labels("tight"), tight_nodes);
            report.metric("mean_response_s", &labels("stock"), stock_resp);
            report.metric("mean_response_s", &labels("tight"), tight_resp);
            report.metric_dir(
                "nodes_saved_pct",
                &[("dataset", dataset.name.clone()), ("k", k.to_string())],
                saved,
                Direction::Higher,
            );
            table.row(vec![
                dataset.name.clone(),
                k.to_string(),
                f2(stock_nodes.mean),
                f2(tight_nodes.mean),
                format!("{:.1}%", saved.mean),
                f4(stock_resp.mean),
                f4(tight_resp.mean),
            ]);
        }
    }
    table.print();
    table.write_csv(&opts.out_dir, "ext_tighter_threshold");
    report.finish(&opts);
}
