//! Extension — MINMAXDIST threshold tightening for CRSS.
//!
//! Beyond the paper: besides Lemma 1 (the count-weighted `D_max` prefix),
//! the k-th smallest MINMAXDIST over a wavefront's MBRs also provably
//! upper-bounds `D_k` (each sibling MBR guarantees one distinct object
//! within its `D_mm`). Taking the minimum of the two bounds shrinks the
//! initial query sphere; this experiment measures how many node accesses
//! and how much response time that saves across dimensionalities.

use sqda_bench::{build_tree, f2, f4, ExpOptions, ResultsTable};
use sqda_core::{exec::run_query, Crss, Simulation, Workload};
use sqda_datasets::{gaussian, uniform};
use sqda_simkernel::SystemParams;
use sqda_storage::PageStore;

fn main() {
    let opts = ExpOptions::from_args();
    let lambda = 5.0;
    let datasets = [
        uniform(opts.population(50_000), 2, 2101),
        gaussian(opts.population(50_000), 5, 2102),
        gaussian(opts.population(50_000), 10, 2103),
    ];
    let mut table = ResultsTable::new(
        format!("Extension — CRSS with MINMAXDIST threshold (λ={lambda}, 10 disks)"),
        &[
            "dataset",
            "k",
            "stock nodes",
            "tight nodes",
            "saved",
            "stock resp (s)",
            "tight resp (s)",
        ],
    );
    for dataset in datasets {
        let tree = build_tree(&dataset, 10, 2110);
        let queries = dataset.sample_queries(opts.queries(), 2111);
        for k in [1usize, 2, 5, 20] {
            let mut stock_nodes = 0u64;
            let mut tight_nodes = 0u64;
            for q in &queries {
                let mut stock = Crss::new(&tree, q.clone(), k);
                let mut tight = Crss::new(&tree, q.clone(), k).with_minmax_threshold();
                stock_nodes += run_query(&tree, &mut stock).expect("query").nodes_visited;
                tight_nodes += run_query(&tree, &mut tight).expect("query").nodes_visited;
            }
            let params = SystemParams::with_disks(tree.store().num_disks());
            let sim = Simulation::new(&tree, params).expect("simulation");
            let w = Workload::poisson(queries.clone(), k, lambda, 2112);
            let stock_resp = sim
                .run_with(|p, kk| Box::new(Crss::new(&tree, p, kk)), "CRSS", &w, 2113)
                .expect("simulation")
                .mean_response_s;
            let tight_resp = sim
                .run_with(
                    |p, kk| Box::new(Crss::new(&tree, p, kk).with_minmax_threshold()),
                    "CRSS+mm",
                    &w,
                    2113,
                )
                .expect("simulation")
                .mean_response_s;
            let n = queries.len() as f64;
            table.row(vec![
                dataset.name.clone(),
                k.to_string(),
                f2(stock_nodes as f64 / n),
                f2(tight_nodes as f64 / n),
                format!(
                    "{:.1}%",
                    (1.0 - tight_nodes as f64 / stock_nodes as f64) * 100.0
                ),
                f4(stock_resp),
                f4(tight_resp),
            ]);
        }
    }
    table.print();
    table.write_csv(&opts.out_dir, "ext_tighter_threshold");
}
