//! Figure 9: visited nodes (normalized to WOPTSS) vs. query size for
//! synthetic 10-d data (Gaussian n=60,030 and Uniform n=60,000), 10
//! disks.
//!
//! Paper shape: in high dimensions MBR overlap grows, BBSS's D_min-guided
//! descent degrades with k, and CRSS stays closest to the WOPTSS floor
//! (ratios within a few percent).

use sqda_bench::{
    build_tree, mean_nodes_with, report::BinReport, rep_query_sets, sweep_replicated_with,
    ExpOptions, ResultsTable,
};
use sqda_core::{AlgorithmKind, QueryScratch};
use sqda_datasets::{gaussian, uniform};

fn main() {
    let opts = ExpOptions::from_args();
    let ks: &[usize] = if opts.quick {
        &[1, 200, 700]
    } else {
        &[1, 50, 100, 200, 300, 400, 500, 600, 700]
    };
    let mut report = BinReport::new("fig09_nodes_10d", &opts);
    report
        .param("disks", 10)
        .param("dim", 10)
        .param("queries", opts.queries())
        .master_seed(911);
    let datasets = [
        gaussian(opts.population(60_030), 10, 901),
        uniform(opts.population(60_000), 10, 902),
    ];
    for dataset in datasets {
        let tree = build_tree(&dataset, 10, 910);
        let query_sets = rep_query_sets(&dataset, &opts, 911);
        let mut table = ResultsTable::new(
            format!(
                "Figure 9 — visited nodes normalized to WOPTSS (set: {}, n={}, 10-d, disks: 10)",
                dataset.name,
                dataset.len()
            ),
            &[
                "k",
                "BBSS/WOPTSS",
                "FPSS/WOPTSS",
                "CRSS/WOPTSS",
                "WOPTSS(abs)",
            ],
        );
        // WOPTSS is ALL's last element, so cells[i*4 + 3] is the
        // normalizer for row i.
        let points: Vec<(usize, AlgorithmKind)> = ks
            .iter()
            .flat_map(|&k| AlgorithmKind::ALL.map(|kind| (k, kind)))
            .collect();
        let sums = sweep_replicated_with(
            &points,
            &opts,
            QueryScratch::new,
            |scratch, &(k, kind), rep| mean_nodes_with(&tree, &query_sets[rep], k, kind, scratch),
        );
        for (point, sum) in points.iter().zip(&sums) {
            report.metric(
                "mean_nodes",
                &[
                    ("dataset", dataset.name.clone()),
                    ("k", point.0.to_string()),
                    ("algorithm", point.1.name().to_string()),
                ],
                sum.summary,
            );
        }
        let cells: Vec<f64> = sums.iter().map(|s| s.mean()).collect();
        for (i, &k) in ks.iter().enumerate() {
            let wopt = cells[i * 4 + 3];
            let mut row = vec![k.to_string()];
            for nodes in &cells[i * 4..i * 4 + 3] {
                row.push(format!("{:.4}", nodes / wopt));
            }
            row.push(format!("{wopt:.2}"));
            table.row(row);
        }
        table.print();
        table.write_csv(&opts.out_dir, &format!("fig09_{}", dataset.name));
    }
    report.finish(&opts);
}
