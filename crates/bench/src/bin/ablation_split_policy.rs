//! Ablation 3 — node split policies (paper §2.1): the R\* margin/overlap
//! split vs Guttman's quadratic and linear splits, measured by tree
//! quality and CRSS similarity-search performance on the same data.

use sqda_bench::{experiment_page_size, f2, f4, simulate, ExpOptions, ResultsTable};
use sqda_core::AlgorithmKind;
use sqda_datasets::california_like;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{RStarConfig, RStarTree, SplitPolicy};
use sqda_storage::{ArrayStore, PageStore};
use std::sync::Arc;

fn main() {
    let opts = ExpOptions::from_args();
    let dataset = california_like(opts.population(62_173), 1901);
    let queries = dataset.sample_queries(opts.queries(), 1911);
    let k = 20;
    let page = experiment_page_size(dataset.dim);
    let mut table = ResultsTable::new(
        format!(
            "Ablation — split policies (set: {}, n={}, disks: 10, k={k}, λ=5)",
            dataset.name,
            dataset.len()
        ),
        &[
            "policy",
            "nodes",
            "avg fill",
            "CRSS nodes/query",
            "CRSS resp (s)",
        ],
    );
    for policy in [
        SplitPolicy::RStar,
        SplitPolicy::GuttmanQuadratic,
        SplitPolicy::GuttmanLinear,
    ] {
        let store = Arc::new(ArrayStore::with_page_size(10, 1449, page, 1910));
        let mut tree = RStarTree::create(
            store,
            RStarConfig::with_page_size(dataset.dim, page).with_split_policy(policy),
            Box::new(ProximityIndex),
        )
        .expect("create tree");
        for (i, p) in dataset.points.iter().enumerate() {
            tree.insert(p.clone(), i as u64).expect("insert");
        }
        tree.store().reset_stats();
        let stats = tree.stats().expect("stats");
        let report = simulate(&tree, &queries, k, 5.0, AlgorithmKind::Crss, 1912);
        table.row(vec![
            policy.name().to_string(),
            stats.total_nodes().to_string(),
            f2(stats.avg_fill),
            f2(report.mean_nodes_per_query),
            f4(report.mean_response_s),
        ]);
    }
    table.print();
    table.write_csv(&opts.out_dir, "ablation_split_policy");
}
