//! Ablation 3 — node split policies (paper §2.1): the R\* margin/overlap
//! split vs Guttman's quadratic and linear splits, measured by tree
//! quality and CRSS similarity-search performance on the same data.

use sqda_bench::{
    experiment_page_size, f2, f4, rep_query_sets, rep_seed,
    report::{BinReport, Direction},
    simulate, ExpOptions, ResultsTable,
};
use sqda_core::AlgorithmKind;
use sqda_datasets::california_like;
use sqda_obs::MetricSummary;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{RStarConfig, RStarTree, SplitPolicy};
use sqda_storage::{ArrayStore, PageStore};
use std::sync::Arc;

fn main() {
    let opts = ExpOptions::from_args();
    let dataset = california_like(opts.population(62_173), 1901);
    let query_sets = rep_query_sets(&dataset, &opts, 1911);
    let k = 20;
    let page = experiment_page_size(dataset.dim);
    let mut report = BinReport::new("ablation_split_policy", &opts);
    report
        .param("dataset", dataset.name.clone())
        .param("disks", 10)
        .param("k", k)
        .param("lambda", 5)
        .param("queries", opts.queries())
        .param("sim_seed", 1912)
        .master_seed(1911);
    let mut table = ResultsTable::new(
        format!(
            "Ablation — split policies (set: {}, n={}, disks: 10, k={k}, λ=5)",
            dataset.name,
            dataset.len()
        ),
        &[
            "policy",
            "nodes",
            "avg fill",
            "CRSS nodes/query",
            "CRSS resp (s)",
        ],
    );
    for policy in [
        SplitPolicy::RStar,
        SplitPolicy::GuttmanQuadratic,
        SplitPolicy::GuttmanLinear,
    ] {
        let store = Arc::new(ArrayStore::with_page_size(10, 1449, page, 1910));
        let mut tree = RStarTree::create(
            store,
            RStarConfig::with_page_size(dataset.dim, page).with_split_policy(policy),
            Box::new(ProximityIndex),
        )
        .expect("create tree");
        for (i, p) in dataset.points.iter().enumerate() {
            tree.insert(p.clone(), i as u64).expect("insert");
        }
        tree.store().reset_stats();
        let stats = tree.stats().expect("stats");
        let mut resp = Vec::with_capacity(opts.reps);
        let mut nodes = Vec::with_capacity(opts.reps);
        for rep in 0..opts.reps {
            let r = simulate(
                &tree,
                &query_sets[rep],
                k,
                5.0,
                AlgorithmKind::Crss,
                rep_seed(1912, rep),
            );
            resp.push(r.mean_response_s);
            nodes.push(r.mean_nodes_per_query);
        }
        let resp_sum = MetricSummary::from_samples(&resp);
        let nodes_sum = MetricSummary::from_samples(&nodes);
        let labels = [("policy", policy.name().to_string())];
        report.metric("mean_response_s", &labels, resp_sum);
        report.metric("mean_nodes", &labels, nodes_sum);
        report.metric_dir(
            "avg_fill",
            &labels,
            MetricSummary::from_samples(&[stats.avg_fill]),
            Direction::Info,
        );
        table.row(vec![
            policy.name().to_string(),
            stats.total_nodes().to_string(),
            f2(stats.avg_fill),
            f2(nodes_sum.mean),
            f4(resp_sum.mean),
        ]);
    }
    table.print();
    table.write_csv(&opts.out_dir, "ablation_split_policy");
    report.finish(&opts);
}
