//! Ablation 4 — tree construction strategies: incremental R\* insertion
//! (the paper's dynamic setting) vs STR, Morton-curve, and Hilbert-curve
//! packed bulk loads, compared on tree quality and CRSS performance.

use sqda_bench::{build_tree, experiment_page_size, f2, f4, simulate, ExpOptions, ResultsTable};
use sqda_core::AlgorithmKind;
use sqda_datasets::california_like;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{PackingOrder, RStarConfig, RStarTree};
use sqda_storage::{ArrayStore, PageStore};
use std::sync::Arc;

fn main() {
    let opts = ExpOptions::from_args();
    let dataset = california_like(opts.population(62_173), 2201);
    let queries = dataset.sample_queries(opts.queries(), 2211);
    let k = 20;
    let page = experiment_page_size(dataset.dim);
    let mut table = ResultsTable::new(
        format!(
            "Ablation — construction strategies (set: {}, n={}, disks: 10, k={k}, λ=5)",
            dataset.name,
            dataset.len()
        ),
        &["construction", "nodes", "avg fill", "CRSS resp (s)"],
    );

    // Incremental baseline.
    let inc = build_tree(&dataset, 10, 2210);
    let stats = inc.stats().expect("stats");
    let r = simulate(&inc, &queries, k, 5.0, AlgorithmKind::Crss, 2212);
    table.row(vec![
        "incremental-R*".into(),
        stats.total_nodes().to_string(),
        f2(stats.avg_fill),
        f4(r.mean_response_s),
    ]);

    for (label, order) in [
        ("bulk-STR", PackingOrder::Str),
        ("bulk-Morton", PackingOrder::Morton),
        ("bulk-Hilbert", PackingOrder::Hilbert),
    ] {
        let store = Arc::new(ArrayStore::with_page_size(10, 1449, page, 2213));
        let tree = RStarTree::bulk_load_ordered(
            store,
            RStarConfig::with_page_size(dataset.dim, page),
            Box::new(ProximityIndex),
            dataset
                .points
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, p)| (p, i as u64))
                .collect(),
            order,
        )
        .expect("bulk load");
        tree.store().reset_stats();
        let stats = tree.stats().expect("stats");
        let r = simulate(&tree, &queries, k, 5.0, AlgorithmKind::Crss, 2212);
        table.row(vec![
            label.into(),
            stats.total_nodes().to_string(),
            f2(stats.avg_fill),
            f4(r.mean_response_s),
        ]);
    }
    table.print();
    table.write_csv(&opts.out_dir, "ablation_packing");
}
