//! Ablation 4 — tree construction strategies: incremental R\* insertion
//! (the paper's dynamic setting) vs STR, Morton-curve, and Hilbert-curve
//! packed bulk loads, compared on tree quality and CRSS performance.

use sqda_bench::{
    build_tree, experiment_page_size, f2, f4, rep_query_sets, rep_seed,
    report::{BinReport, Direction},
    simulate, ExpOptions, ResultsTable,
};
use sqda_core::AlgorithmKind;
use sqda_datasets::california_like;
use sqda_obs::MetricSummary;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{PackingOrder, RStarConfig, RStarTree};
use sqda_storage::{ArrayStore, PageStore};
use std::sync::Arc;

fn replicated_resp(
    tree: &RStarTree<ArrayStore>,
    query_sets: &[Vec<sqda_geom::Point>],
    k: usize,
    opts: &ExpOptions,
) -> MetricSummary {
    let resp: Vec<f64> = (0..opts.reps)
        .map(|rep| {
            simulate(
                tree,
                &query_sets[rep],
                k,
                5.0,
                AlgorithmKind::Crss,
                rep_seed(2212, rep),
            )
            .mean_response_s
        })
        .collect();
    MetricSummary::from_samples(&resp)
}

fn main() {
    let opts = ExpOptions::from_args();
    let dataset = california_like(opts.population(62_173), 2201);
    let query_sets = rep_query_sets(&dataset, &opts, 2211);
    let k = 20;
    let page = experiment_page_size(dataset.dim);
    let mut report = BinReport::new("ablation_packing", &opts);
    report
        .param("dataset", dataset.name.clone())
        .param("disks", 10)
        .param("k", k)
        .param("lambda", 5)
        .param("queries", opts.queries())
        .param("sim_seed", 2212)
        .master_seed(2211);
    let mut table = ResultsTable::new(
        format!(
            "Ablation — construction strategies (set: {}, n={}, disks: 10, k={k}, λ=5)",
            dataset.name,
            dataset.len()
        ),
        &["construction", "nodes", "avg fill", "CRSS resp (s)"],
    );

    let record = |report: &mut BinReport,
                      table: &mut ResultsTable,
                      label: &str,
                      stats: &sqda_rstar::TreeStats,
                      resp: MetricSummary| {
        let labels = [("construction", label.to_string())];
        report.metric("mean_response_s", &labels, resp);
        report.metric_dir(
            "avg_fill",
            &labels,
            MetricSummary::from_samples(&[stats.avg_fill]),
            Direction::Info,
        );
        table.row(vec![
            label.into(),
            stats.total_nodes().to_string(),
            f2(stats.avg_fill),
            f4(resp.mean),
        ]);
    };

    // Incremental baseline.
    let inc = build_tree(&dataset, 10, 2210);
    let stats = inc.stats().expect("stats");
    let resp = replicated_resp(&inc, &query_sets, k, &opts);
    record(&mut report, &mut table, "incremental-R*", &stats, resp);

    for (label, order) in [
        ("bulk-STR", PackingOrder::Str),
        ("bulk-Morton", PackingOrder::Morton),
        ("bulk-Hilbert", PackingOrder::Hilbert),
    ] {
        let store = Arc::new(ArrayStore::with_page_size(10, 1449, page, 2213));
        let tree = RStarTree::bulk_load_ordered(
            store,
            RStarConfig::with_page_size(dataset.dim, page),
            Box::new(ProximityIndex),
            dataset
                .points
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, p)| (p, i as u64))
                .collect(),
            order,
        )
        .expect("bulk load");
        tree.store().reset_stats();
        let stats = tree.stats().expect("stats");
        let resp = replicated_resp(&tree, &query_sets, k, &opts);
        record(&mut report, &mut table, label, &stats, resp);
    }
    table.print();
    table.write_csv(&opts.out_dir, "ablation_packing");
    report.finish(&opts);
}
