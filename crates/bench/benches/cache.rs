//! Criterion micro-benchmarks for the decoded-node cache: the same
//! best-first k-NN read path with and without a `NodeCache`, driven by a
//! single thread and by a pool of concurrent readers. The uncached path
//! decodes every visited page on every query; the cached path should
//! amortize decoding away once the working set is resident.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sqda_bench::build_tree;
use sqda_datasets::california_like;
use sqda_rstar::RStarTree;
use sqda_storage::{ArrayStore, NodeCache};
use std::sync::Arc;

const READER_THREADS: usize = 4;

fn make_trees() -> (
    RStarTree<ArrayStore>,
    RStarTree<ArrayStore>,
    Vec<sqda_geom::Point>,
) {
    let dataset = california_like(20_000, 41);
    let plain = build_tree(&dataset, 10, 42);
    let mut cached = build_tree(&dataset, 10, 42);
    cached.set_node_cache(Arc::new(NodeCache::new(4096)));
    let queries = dataset.sample_queries(64, 43);
    // Warm the cache so the benchmark measures the steady state.
    for q in &queries {
        cached.knn(q, 20).unwrap();
    }
    (plain, cached, queries)
}

fn bench_single_thread(c: &mut Criterion) {
    let (plain, cached, queries) = make_trees();
    let mut group = c.benchmark_group("read_path_single_thread");
    for (name, tree) in [("uncached", &plain), ("cached", &cached)] {
        group.bench_with_input(BenchmarkId::new("knn_k20", name), tree, |b, tree| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(tree.knn(q, 20).unwrap().len())
            })
        });
    }
    group.finish();
}

fn bench_multi_thread(c: &mut Criterion) {
    let (plain, cached, queries) = make_trees();
    let mut group = c.benchmark_group("read_path_multi_thread");
    group.sample_size(20);
    for (name, tree) in [("uncached", &plain), ("cached", &cached)] {
        group.bench_with_input(
            BenchmarkId::new(format!("knn_k20_x{READER_THREADS}"), name),
            tree,
            |b, tree| {
                b.iter(|| {
                    // One batch of queries split over the reader pool;
                    // the lock-free stats path and the shared cache are
                    // both under contention here.
                    std::thread::scope(|scope| {
                        for t in 0..READER_THREADS {
                            let queries = &queries;
                            scope.spawn(move || {
                                let mut found = 0usize;
                                for q in queries.iter().skip(t).step_by(READER_THREADS) {
                                    found += tree.knn(q, 20).unwrap().len();
                                }
                                black_box(found)
                            });
                        }
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_single_thread, bench_multi_thread);
criterion_main!(benches);
