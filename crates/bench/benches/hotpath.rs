//! Criterion benchmarks for the zero-copy node hot path: warm-cache
//! traversal (Arc clone per node, no entry copies), full-page node
//! decode (two allocations under the flat layout), and end-to-end k-NN
//! over a warm cache with a reused scratch heap.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sqda_geom::{kernel, Point};
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{codec, knn_with_scratch, BestFirstScratch, RStarConfig, RStarTree};
use sqda_storage::{ArrayStore, NodeCache, PageStore};
use std::sync::Arc;

const OBJECTS: usize = 2000;

fn build_tree() -> RStarTree<ArrayStore> {
    let store = Arc::new(ArrayStore::with_page_size(10, 1449, 1024, 1));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::with_page_size(2, 1024),
        Box::new(ProximityIndex),
    )
    .expect("tree creation");
    for i in 0..OBJECTS {
        let x = ((i * 7919) % 2003) as f64 * 0.5;
        let y = ((i * 104_729) % 1999) as f64 * 0.25;
        tree.insert(Point::new(vec![x, y]), i as u64)
            .expect("insert");
    }
    tree.set_node_cache(Arc::new(NodeCache::new(8192)));
    tree
}

fn traverse(tree: &RStarTree<ArrayStore>) -> u64 {
    let mut nodes = 0u64;
    let mut stack = vec![tree.root_page()];
    while let Some(page) = stack.pop() {
        let node = tree.read_node(page).expect("read");
        nodes += 1;
        if !node.is_leaf() {
            stack.extend(node.internal_iter().map(|e| e.child));
        }
    }
    nodes
}

fn bench_warm_traversal(c: &mut Criterion) {
    let tree = build_tree();
    traverse(&tree); // warm the cache
    c.bench_function("hotpath/warm_traversal", |b| {
        b.iter(|| black_box(traverse(&tree)))
    });
}

fn bench_decode(c: &mut Criterion) {
    let tree = build_tree();
    let dim = tree.dim();
    // First leaf on the leftmost path, and its parent as the internal
    // sample.
    let mut page = tree.root_page();
    let mut internal = None;
    loop {
        let node = tree.read_node(page).expect("read");
        if node.is_leaf() {
            break;
        }
        internal = Some(page);
        page = node.internal_child(0);
    }
    let mut group = c.benchmark_group("hotpath/decode");
    let leaf_bytes = tree.store().read(page).expect("read page");
    group.bench_function("leaf", |b| {
        b.iter(|| black_box(codec::decode_node(black_box(leaf_bytes.clone()), dim, page).unwrap()))
    });
    if let Some(ipage) = internal {
        let internal_bytes = tree.store().read(ipage).expect("read page");
        group.bench_function("internal", |b| {
            b.iter(|| {
                black_box(
                    codec::decode_node(black_box(internal_bytes.clone()), dim, ipage).unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_knn_warm(c: &mut Criterion) {
    let tree = build_tree();
    let queries: Vec<Point> = (0..20)
        .map(|i| {
            Point::new(vec![
                (i * 53 % 101) as f64 * 9.0,
                (i * 31 % 97) as f64 * 4.7,
            ])
        })
        .collect();
    let mut scratch = BestFirstScratch::new();
    for q in &queries {
        knn_with_scratch(&tree, q, 10, &mut scratch).expect("knn"); // warm
    }
    c.bench_function("hotpath/knn_warm_k10", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            let (out, _) = knn_with_scratch(&tree, q, 10, &mut scratch).unwrap();
            black_box(out.len())
        })
    });
}

/// The batched distance kernels in isolation: ns/entry for `dist_sq`
/// (leaf filtering) and MINDIST (internal filtering) at the paper's two
/// dimensionalities, across batch sizes spanning a single entry, one
/// SIMD lane width, and a large fanout.
fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/kernel");
    for &dim in &[2usize, 10] {
        let q: Vec<f64> = (0..dim).map(|d| d as f64 * 0.7 + 0.1).collect();
        for &batch in &[1usize, 8, 64] {
            let points: Vec<f64> = (0..batch * dim).map(|i| (i % 131) as f64 * 0.37).collect();
            let rects: Vec<f64> = (0..batch)
                .flat_map(|e| {
                    let lo: Vec<f64> = (0..dim).map(|d| ((e * dim + d) % 97) as f64).collect();
                    let hi: Vec<f64> = lo.iter().map(|l| l + 3.5).collect();
                    lo.into_iter().chain(hi)
                })
                .collect();
            let mut out = Vec::new();
            group.throughput(Throughput::Elements(batch as u64));
            group.bench_function(format!("dist_sq/dim{dim}/b{batch}"), |b| {
                b.iter(|| {
                    kernel::batch_dist_sq(black_box(&q), black_box(&points), &mut out);
                    black_box(out[batch - 1])
                })
            });
            group.bench_function(format!("min_dist/dim{dim}/b{batch}"), |b| {
                b.iter(|| {
                    kernel::batch_min_dist_sq(black_box(&q), black_box(&rects), &mut out);
                    black_box(out[batch - 1])
                })
            });
        }
    }
    group.finish();
}

/// Shared-traversal batch k-NN versus the same queries run solo: the
/// per-query cost of the wavefront descent when B queries amortize each
/// node decode.
fn bench_batch_knn(c: &mut Criterion) {
    let tree = build_tree();
    let queries: Vec<Point> = (0..8)
        .map(|i| {
            Point::new(vec![
                (i * 53 % 101) as f64 * 9.0,
                (i * 31 % 97) as f64 * 4.7,
            ])
        })
        .collect();
    let mut scratch = sqda_core::BatchScratch::new();
    sqda_core::batch_knn_with(&tree, &queries, 10, &mut scratch).expect("batch knn"); // warm
    let mut group = c.benchmark_group("hotpath/batch_knn");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("b8_k10", |b| {
        b.iter(|| {
            let report = sqda_core::batch_knn_with(&tree, &queries, 10, &mut scratch).unwrap();
            black_box(report.answers.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_warm_traversal,
    bench_decode,
    bench_knn_warm,
    bench_kernels,
    bench_batch_knn
);
criterion_main!(benches);
