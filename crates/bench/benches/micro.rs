//! Criterion micro-benchmarks for the hot paths: distance metrics, node
//! codec, R\*-tree insertion and the four search algorithms.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqda_bench::build_tree;
use sqda_core::{exec::run_query, AlgorithmKind};
use sqda_datasets::{california_like, gaussian};
use sqda_geom::{Point, Rect};
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{codec, Node, RStarConfig, RStarTree};
use sqda_storage::{ArrayStore, PageId};
use std::sync::Arc;

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("distances");
    for dim in [2usize, 10] {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Point::new((0..dim).map(|_| rng.gen::<f64>()).collect());
        let lo: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>()).collect();
        let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen::<f64>()).collect();
        let r = Rect::new(lo, hi).unwrap();
        group.bench_with_input(BenchmarkId::new("min_dist_sq", dim), &dim, |b, _| {
            b.iter(|| black_box(r.min_dist_sq(black_box(&p))))
        });
        group.bench_with_input(BenchmarkId::new("min_max_dist_sq", dim), &dim, |b, _| {
            b.iter(|| black_box(r.min_max_dist_sq(black_box(&p))))
        });
        group.bench_with_input(BenchmarkId::new("max_dist_sq", dim), &dim, |b, _| {
            b.iter(|| black_box(r.max_dist_sq(black_box(&p))))
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let dim = 2;
    let cfg = RStarConfig::new(dim);
    let entries: Vec<sqda_rstar::LeafEntry> = (0..cfg.max_leaf_entries)
        .map(|i| {
            sqda_rstar::LeafEntry::new(
                Point::new(vec![i as f64, -(i as f64)]),
                sqda_rstar::ObjectId(i as u64),
            )
        })
        .collect();
    let node = Node::from_leaf_entries(&entries);
    group.bench_function("encode_full_leaf_2d", |b| {
        b.iter(|| black_box(codec::encode_node(black_box(&node), dim)))
    });
    let bytes = codec::encode_node(&node, dim);
    group.bench_function("decode_full_leaf_2d", |b| {
        b.iter(|| {
            black_box(
                codec::decode_node(black_box(bytes.clone()), dim, PageId::from_raw(0)).unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("rstar_insert");
    group.sample_size(10);
    group.bench_function("insert_10k_2d", |b| {
        let points: Vec<Point> = {
            let mut rng = StdRng::seed_from_u64(2);
            (0..10_000)
                .map(|_| Point::new(vec![rng.gen(), rng.gen()]))
                .collect()
        };
        b.iter(|| {
            let store = Arc::new(ArrayStore::new(10, 1449, 3));
            let mut tree =
                RStarTree::create(store, RStarConfig::new(2), Box::new(ProximityIndex)).unwrap();
            for (i, p) in points.iter().enumerate() {
                tree.insert(p.clone(), i as u64).unwrap();
            }
            black_box(tree.height())
        })
    });
    group.finish();
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_algorithms");
    let dataset = california_like(20_000, 4);
    let tree = build_tree(&dataset, 10, 5);
    let queries = dataset.sample_queries(16, 6);
    for kind in AlgorithmKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("k20_cp20k", kind.name()),
            &kind,
            |b, &kind| {
                let mut i = 0usize;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    let mut algo = kind.build(&tree, q.clone(), 20).unwrap();
                    black_box(run_query(&tree, algo.as_mut()).unwrap().nodes_visited)
                })
            },
        );
    }
    group.finish();
}

fn bench_sequential_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_knn");
    let dataset = gaussian(20_000, 5, 7);
    let tree = build_tree(&dataset, 10, 8);
    let queries = dataset.sample_queries(16, 9);
    for k in [1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::new("best_first", k), &k, |b, &k| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(tree.knn(q, k).unwrap().len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_distances,
    bench_codec,
    bench_insert,
    bench_algorithms,
    bench_sequential_knn
);
criterion_main!(benches);
