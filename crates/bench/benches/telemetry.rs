//! Criterion benchmarks pinning the cost of the live telemetry plane:
//! the per-event primitives the query path pays (`LiveHistogram::observe`
//! under contention-free and multi-thread access, counter increments,
//! flight-ring pushes, the full `observe_query` fold), and the off-path
//! costs (snapshotting, Prometheus rendering). The serving overhead
//! contract is that the per-query cost stays in the tens-of-nanoseconds
//! range — orders of magnitude under a single page read.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sqda_obs::{Event, LiveCounter, LiveHistogram, LiveTelemetry, QueryObservation};
use std::sync::Arc;

/// Bucket bounds matching the registry's response-time histograms.
const TIME_MS_BOUNDS: &[f64] = &[
    0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0,
    5000.0,
];

fn observation(i: u64) -> QueryObservation<'static> {
    QueryObservation {
        query: i as u32,
        algo: "CRSS",
        k: 10,
        answers: 10,
        nodes: 14,
        batches: 3,
        response_ns: 2_000_000 + i * 1000,
        disk_queue_ns: 300_000,
        disk_service_ns: 1_200_000,
        cpu_ns: 80_000,
        failed: false,
    }
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/primitives");
    let counter = LiveCounter::new();
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    let hist = LiveHistogram::new(TIME_MS_BOUNDS);
    group.bench_function("histogram_observe", |b| {
        let mut v = 0.013f64;
        b.iter(|| {
            v = (v * 1.7) % 4000.0;
            hist.observe(black_box(v));
        })
    });
    group.finish();
}

fn bench_histogram_contended(c: &mut Criterion) {
    // Seven writer threads hammer the sharded histogram while the
    // benched thread observes: the sharding keeps the benched cost flat.
    let hist = Arc::new(LiveHistogram::new(TIME_MS_BOUNDS));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..7)
        .map(|t| {
            let hist = Arc::clone(&hist);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 0.1 + t as f64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    v = (v * 1.3) % 4000.0;
                    hist.observe(v);
                }
            })
        })
        .collect();
    c.bench_function("telemetry/histogram_observe_contended", |b| {
        let mut v = 0.013f64;
        b.iter(|| {
            v = (v * 1.7) % 4000.0;
            hist.observe(black_box(v));
        })
    });
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
}

fn bench_query_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/query_path");
    let bare = LiveTelemetry::new(8);
    group.bench_function("observe_query", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            bare.observe_query(black_box(&observation(i)));
        })
    });
    group.bench_function("observe_disk_read", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            bare.observe_disk_read((i % 8) as u32, 300_000, 1_200_000, (i % 5) as u32);
        })
    });
    let flight = LiveTelemetry::new(8).with_flight_recorder(65_536);
    group.bench_function("flight_record", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            flight.record_event(i, black_box(Event::QueryArrive { query: i as u32 }));
        })
    });
    group.finish();
}

fn bench_exposition(c: &mut Criterion) {
    let t = LiveTelemetry::new(8).with_flight_recorder(4096);
    for i in 0..10_000u64 {
        t.begin_query();
        t.observe_disk_read((i % 8) as u32, 300_000, 1_200_000, (i % 5) as u32);
        t.observe_query(&observation(i));
    }
    let mut group = c.benchmark_group("telemetry/exposition");
    group.bench_function("snapshot", |b| b.iter(|| black_box(t.snapshot())));
    group.bench_function("prometheus_render", |b| {
        b.iter(|| black_box(t.prometheus(None)).len())
    });
    group.bench_function("window_stats", |b| b.iter(|| black_box(t.window_stats())));
    group.finish();
}

criterion_group!(
    benches,
    bench_primitives,
    bench_histogram_contended,
    bench_query_path,
    bench_exposition
);
criterion_main!(benches);
