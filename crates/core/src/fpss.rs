//! FPSS — Full-Parallel Similarity Search (Section 3.2).
//!
//! Breadth-first descent that activates **every** candidate region
//! intersecting the current query sphere, maximizing intra-query
//! parallelism. The query sphere radius is the Lemma-1 threshold (from
//! the subtree object counts) until real objects are seen. FPSS is "very
//! optimistic with respect to the usefulness of a node": it has no upper
//! bound on the number of pages fetched per step, which is exactly the
//! weakness the experiments expose under load.

use crate::access::{AccessMethod, IndexNode};
use crate::algo::{BatchResult, KBest, SimilaritySearch, Step};
use crate::threshold::{lemma1_threshold_sq, Candidate};
use sqda_geom::Point;
use sqda_rstar::{Neighbor, ObjectId};
use sqda_simkernel::cpu_instructions_for_batch;
use sqda_storage::PageId;

/// The full-parallel (breadth-first) similarity search.
pub struct Fpss {
    query: Point,
    k: usize,
    kbest: KBest,
    root: PageId,
    /// Smallest threshold seen so far (squared); pruning radius.
    d_th_sq: f64,
    /// Batch-kernel scratch: per-node `D_min²` (and leaf distance)
    /// vector, reused across batches.
    d_min: Vec<f64>,
    /// Batch-kernel scratch: per-node `D_mm²` vector.
    d_mm: Vec<f64>,
    /// Batch-kernel scratch: per-node `D_max²` vector.
    d_max: Vec<f64>,
}

impl Fpss {
    /// Prepares an FPSS run for `k` neighbours of `query`.
    pub fn new(am: &(impl AccessMethod + ?Sized), query: Point, k: usize) -> Self {
        Self {
            query,
            k,
            kbest: KBest::new(k),
            root: am.root_page(),
            d_th_sq: f64::INFINITY,
            d_min: Vec::new(),
            d_mm: Vec::new(),
            d_max: Vec::new(),
        }
    }
}

impl SimilaritySearch for Fpss {
    fn start(&mut self) -> Step {
        Step::Fetch(vec![self.root])
    }

    fn on_fetched(&mut self, nodes: &mut Vec<(PageId, IndexNode)>) -> BatchResult {
        let mut scanned = 0u64;
        // The BFS wavefront is level-uniform: either all leaves or all
        // internal nodes.
        let leaf_level = nodes.first().map(|(_, n)| n.is_leaf()).unwrap_or(true);
        if leaf_level {
            for (_, node) in nodes.drain(..) {
                let IndexNode::Leaf(leaf) = node else {
                    unreachable!("mixed BFS wavefront")
                };
                scanned += leaf.len() as u64;
                // One batch-kernel call per node, then a filtered bulk
                // push: entries already beyond the current k-th best are
                // skipped without materialising a Point (an offer past
                // `dk` is a guaranteed no-op; ties must still be offered
                // for the object-id tie-break).
                leaf.dist_sq_into(self.query.coords(), &mut self.d_min);
                for i in 0..leaf.len() {
                    let d = self.d_min[i];
                    if d <= self.kbest.dk_sq() {
                        self.kbest
                            .offer(ObjectId(leaf.id(i)), Point::from(leaf.point(i)), d);
                    }
                }
            }
            return BatchResult {
                next: Step::Done,
                cpu_instructions: cpu_instructions_for_batch(scanned, 0),
            };
        }

        let mut candidates: Vec<Candidate> = Vec::new();
        for (_, node) in nodes.drain(..) {
            let IndexNode::Internal(block) = node else {
                unreachable!("mixed BFS wavefront")
            };
            scanned += block.len() as u64;
            block.metrics_into(
                self.query.coords(),
                &mut self.d_min,
                &mut self.d_mm,
                &mut self.d_max,
            );
            candidates.extend((0..block.len()).map(|i| {
                Candidate::new(
                    block.child(i),
                    block.count(i),
                    self.d_min[i],
                    self.d_mm[i],
                    self.d_max[i],
                )
            }));
        }
        // Adapt the threshold over the whole wavefront.
        if let Some(th) = lemma1_threshold_sq(&candidates, self.k as u64) {
            if th < self.d_th_sq {
                self.d_th_sq = th;
            }
        }
        // Activate everything intersecting the sphere — no upper bound.
        let mut survivors: Vec<Candidate> = candidates
            .into_iter()
            .filter(|c| c.d_min_sq <= self.d_th_sq)
            .collect();
        survivors.sort_by(|a, b| {
            a.d_min_sq
                .partial_cmp(&b.d_min_sq)
                .expect("distances are finite")
        });
        let sorted = survivors.len() as u64;
        let pages: Vec<PageId> = survivors.into_iter().map(|c| c.page).collect();
        let next = if pages.is_empty() {
            Step::Done
        } else {
            Step::Fetch(pages)
        };
        BatchResult {
            next,
            cpu_instructions: cpu_instructions_for_batch(scanned, sorted),
        }
    }

    fn results(&self) -> Vec<Neighbor> {
        self.kbest.to_sorted()
    }

    fn name(&self) -> &'static str {
        "FPSS"
    }
}
