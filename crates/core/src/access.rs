//! The access-method abstraction.
//!
//! The paper notes (Section 1) that the proposed similarity-search
//! algorithm "supports all variants of the R-tree family as well as
//! TV-trees, SS-trees, X-trees and SR-trees, with some modifications".
//! This module is that claim made concrete: the algorithms only ever see
//! [`IndexNode`]s — leaves of `(point, object-id)` pairs and directories
//! of count-annotated bounding [`Region`]s — so any hierarchical,
//! declustered access method that can serve this view runs BBSS, FPSS,
//! CRSS and WOPTSS unchanged. `sqda-rstar` (rectangles) and
//! `sqda-sstree` (spheres) both implement it.

use crate::error::QueryError;
use sqda_geom::{Point, Region};
use sqda_storage::{PageId, Placement};

/// One directory entry: a bounding region over a child subtree, annotated
/// with the number of data objects below it (the count augmentation every
/// supported access method must provide — Lemma 1 depends on it).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionEntry {
    /// The bounding region.
    pub region: Region,
    /// The child page.
    pub child: PageId,
    /// Data objects in the child subtree.
    pub count: u64,
}

/// A decoded index node, as the search algorithms see it.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexNode {
    /// A leaf: data points with raw object ids.
    Leaf(Vec<(Point, u64)>),
    /// A directory node.
    Internal(Vec<RegionEntry>),
}

impl IndexNode {
    /// `true` for leaves.
    pub fn is_leaf(&self) -> bool {
        matches!(self, IndexNode::Leaf(_))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            IndexNode::Leaf(e) => e.len(),
            IndexNode::Internal(e) => e.len(),
        }
    }

    /// `true` when the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A declustered hierarchical index the similarity-search algorithms can
/// run over.
pub trait AccessMethod: Send + Sync {
    /// The root page.
    fn root_page(&self) -> PageId;

    /// Number of disks in the backing array (CRSS's activation bound).
    fn num_disks(&self) -> u32;

    /// Reads and decodes one node.
    fn read_index_node(&self, page: PageId) -> Result<IndexNode, QueryError>;

    /// Physical placement of a page (the simulator's timing input).
    fn placement(&self, page: PageId) -> Result<Placement, QueryError>;

    /// Probes the access method's decoded-node cache *without* reading
    /// the page on a miss. Engines that submit page reads through an
    /// [`sqda_storage::IoBackend`] probe here first, so cache hit/miss
    /// accounting matches the read-through path of
    /// [`AccessMethod::read_index_node`] exactly. The default (no cache)
    /// reports every probe as a miss.
    fn cached_index_node(&self, page: PageId) -> Result<Option<IndexNode>, QueryError> {
        let _ = page;
        Ok(None)
    }

    /// Decodes page bytes fetched out-of-band (the completion half of a
    /// batched read), populating the cache so a later probe hits. The
    /// default ignores the bytes and re-reads through
    /// [`AccessMethod::read_index_node`] — correct, but paying the page
    /// read twice; access methods with a codec should override.
    fn decode_index_node(
        &self,
        page: PageId,
        bytes: sqda_storage::Bytes,
    ) -> Result<IndexNode, QueryError> {
        let _ = bytes;
        self.read_index_node(page)
    }
}

/// The one place an R\*-tree node becomes the algorithms' view of it.
/// (`sqda-sstree` provides the analogous impl for its sphere nodes.)
/// Borrowing form: the source node usually lives in the shared decoded-node
/// cache, so conversion materialises owned points/rectangles from the
/// node's flat coordinate block without consuming the cached value.
impl From<&sqda_rstar::Node> for IndexNode {
    fn from(node: &sqda_rstar::Node) -> Self {
        if node.is_leaf() {
            IndexNode::Leaf(
                node.leaf_iter()
                    .map(|(coords, object)| (Point::from(coords), object.0))
                    .collect(),
            )
        } else {
            IndexNode::Internal(
                node.internal_iter()
                    .map(|e| RegionEntry {
                        region: Region::Rect(e.mbr.to_rect()),
                        child: e.child,
                        count: e.count,
                    })
                    .collect(),
            )
        }
    }
}

impl From<sqda_rstar::Node> for IndexNode {
    fn from(node: sqda_rstar::Node) -> Self {
        (&node).into()
    }
}

impl<S: sqda_storage::PageStore> AccessMethod for sqda_rstar::RStarTree<S> {
    fn root_page(&self) -> PageId {
        sqda_rstar::RStarTree::root_page(self)
    }

    fn num_disks(&self) -> u32 {
        self.store().num_disks()
    }

    fn read_index_node(&self, page: PageId) -> Result<IndexNode, QueryError> {
        Ok(self.read_node(page)?.as_ref().into())
    }

    fn placement(&self, page: PageId) -> Result<Placement, QueryError> {
        Ok(self.store().placement(page)?)
    }

    fn cached_index_node(&self, page: PageId) -> Result<Option<IndexNode>, QueryError> {
        Ok(self.cached_node(page).map(|node| node.as_ref().into()))
    }

    fn decode_index_node(
        &self,
        page: PageId,
        bytes: sqda_storage::Bytes,
    ) -> Result<IndexNode, QueryError> {
        Ok(self.decode_node_bytes(page, bytes)?.as_ref().into())
    }
}

/// Reusable per-query workspace: the best-first priority heap and the
/// fetched-batch buffer survive between queries, so a steady-state query
/// sweep performs no per-query allocations for either. One scratch per
/// worker thread; any scratch works with any access method (it carries no
/// query state between runs).
#[derive(Default)]
pub struct QueryScratch {
    /// Heap storage for [`best_first_knn_with`] (and the WOPTSS oracle).
    pub best_first: sqda_rstar::BestFirstScratch,
    /// Staging buffer for fetched `(page, node)` batches; executors fill
    /// it, algorithms drain it in place.
    pub batch: Vec<(PageId, IndexNode)>,
}

impl QueryScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Generic best-first k-NN over any access method (Hjaltason–Samet).
/// Used as the WOPTSS oracle and for ground truth; visits nodes in
/// increasing `D_min` order.
///
/// Delegates to the engine in `sqda_rstar::best_first_search` — the same
/// heap and tie-breaking the native R\*-tree search uses, with node
/// expansion routed through [`AccessMethod::read_index_node`].
pub fn best_first_knn(
    am: &(impl AccessMethod + ?Sized),
    center: &Point,
    k: usize,
) -> Result<Vec<sqda_rstar::Neighbor>, QueryError> {
    let mut scratch = QueryScratch::new();
    best_first_knn_with(am, center, k, &mut scratch)
}

/// [`best_first_knn`] over a caller-supplied [`QueryScratch`], reusing its
/// priority heap across queries.
pub fn best_first_knn_with(
    am: &(impl AccessMethod + ?Sized),
    center: &Point,
    k: usize,
    scratch: &mut QueryScratch,
) -> Result<Vec<sqda_rstar::Neighbor>, QueryError> {
    let (out, _nodes_read) = sqda_rstar::best_first_search_with(
        &mut scratch.best_first,
        am.root_page(),
        k,
        |page, frontier| {
            match am.read_index_node(page)? {
                IndexNode::Leaf(entries) => {
                    for (point, id) in entries {
                        let d = center.dist_sq(&point);
                        frontier.push_object(sqda_rstar::ObjectId(id), point, d);
                    }
                }
                IndexNode::Internal(entries) => {
                    for e in entries {
                        frontier.push_node(e.child, e.region.min_dist_sq(center));
                    }
                }
            }
            Ok::<(), QueryError>(())
        },
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqda_rstar::decluster::ProximityIndex;
    use sqda_rstar::{RStarConfig, RStarTree};
    use sqda_storage::ArrayStore;
    use std::sync::Arc;

    #[test]
    fn rstar_tree_serves_index_nodes() {
        let store = Arc::new(ArrayStore::new(4, 100, 1));
        let mut tree = RStarTree::create(
            store,
            RStarConfig::new(2).with_max_entries(4),
            Box::new(ProximityIndex),
        )
        .unwrap();
        for i in 0..40u64 {
            tree.insert(Point::new(vec![i as f64, (i * 3 % 11) as f64]), i)
                .unwrap();
        }
        let root = AccessMethod::read_index_node(&tree, AccessMethod::root_page(&tree)).unwrap();
        assert!(!root.is_leaf());
        assert!(!root.is_empty());
        if let IndexNode::Internal(entries) = &root {
            let total: u64 = entries.iter().map(|e| e.count).sum();
            assert_eq!(total, 40);
        }
        // Generic best-first equals the tree's own knn.
        let q = Point::new(vec![5.0, 5.0]);
        let generic = best_first_knn(&tree, &q, 7).unwrap();
        let native = tree.knn(&q, 7).unwrap();
        assert_eq!(generic.len(), native.len());
        for (g, n) in generic.iter().zip(native.iter()) {
            assert_eq!(g.dist_sq, n.dist_sq);
        }
    }
}
