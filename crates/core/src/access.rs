//! The access-method abstraction.
//!
//! The paper notes (Section 1) that the proposed similarity-search
//! algorithm "supports all variants of the R-tree family as well as
//! TV-trees, SS-trees, X-trees and SR-trees, with some modifications".
//! This module is that claim made concrete: the algorithms only ever see
//! [`IndexNode`]s — leaves of data points and directories of
//! count-annotated bounding regions — so any hierarchical, declustered
//! access method that can serve this view runs BBSS, FPSS, CRSS and
//! WOPTSS unchanged. `sqda-rstar` (rectangles) and `sqda-sstree`
//! (spheres) both implement it.
//!
//! Nodes are stored **flat**: one contiguous coordinate block per node
//! plus parallel id/count arrays, mirroring the on-disk layout of
//! `sqda_rstar::Node`. The batch distance kernels in
//! [`sqda_geom::kernel`] run directly over these blocks, so decoding a
//! node materialises no per-entry `Point`/`Rect` allocations and the hot
//! paths compute whole-node distance vectors in one call.

use crate::error::QueryError;
use sqda_geom::{kernel, Point, Region};
use sqda_storage::{PageId, Placement};

/// A decoded leaf: `len` data points of dimension `dim` stored
/// back-to-back in one coordinate block, with a parallel object-id array.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafBlock {
    dim: usize,
    coords: Box<[f64]>,
    ids: Box<[u64]>,
}

impl LeafBlock {
    /// Builds a leaf block from flat storage. `coords` holds the points
    /// back-to-back (entry `i` at `[i*dim .. (i+1)*dim]`).
    ///
    /// # Panics
    ///
    /// Panics if `coords.len() != dim * ids.len()`, or if `dim == 0`
    /// while entries are present (only an empty node has no
    /// dimensionality to take from its entries).
    pub fn new(dim: usize, coords: Box<[f64]>, ids: Box<[u64]>) -> Self {
        assert!(dim > 0 || ids.is_empty(), "non-empty leaf needs dimensions");
        assert_eq!(coords.len(), dim * ids.len(), "coords/ids length mismatch");
        Self { dim, coords, ids }
    }

    /// Builds a leaf block from `(point, id)` pairs (convenience for
    /// tests and entry-based access methods).
    ///
    /// # Panics
    ///
    /// Panics if the points disagree on dimensionality or `dim == 0`.
    pub fn from_pairs(dim: usize, pairs: &[(Point, u64)]) -> Self {
        let mut coords = Vec::with_capacity(dim * pairs.len());
        let mut ids = Vec::with_capacity(pairs.len());
        for (p, id) in pairs {
            assert_eq!(p.dim(), dim, "point dimensionality mismatch");
            coords.extend_from_slice(p.coords());
            ids.push(*id);
        }
        Self::new(dim, coords.into_boxed_slice(), ids.into_boxed_slice())
    }

    /// Number of data points.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the leaf holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Point dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The whole coordinate block (stride [`LeafBlock::dim`]).
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Coordinates of point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Raw object id of point `i`.
    #[inline]
    pub fn id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// The object-id array.
    #[inline]
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Iterates `(coords, id)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], u64)> + '_ {
        self.coords
            .chunks_exact(self.dim)
            .zip(self.ids.iter().copied())
    }

    /// Squared distance from `q` to **every** point of the leaf in one
    /// batched kernel call; `out` is a reusable scratch buffer. Results
    /// are bit-identical to per-entry [`Point::dist_sq`].
    #[inline]
    pub fn dist_sq_into(&self, q: &[f64], out: &mut Vec<f64>) {
        debug_assert!(self.is_empty() || q.len() == self.dim, "query dim mismatch");
        if self.is_empty() {
            out.clear();
            return;
        }
        kernel::batch_dist_sq(q, &self.coords, out);
    }
}

/// The bounding regions of a directory node, stored flat by shape.
///
/// A node's entries are homogeneous (R\*-trees bound with rectangles,
/// SS-trees with spheres), so one discriminant per node suffices and the
/// coordinate blocks stay contiguous for the batch kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum RegionBlock {
    /// Axis-aligned MBRs: entry `i` occupies `[i*2*dim .. (i+1)*2*dim]`
    /// of `coords` — `dim` low coordinates then `dim` high coordinates.
    Rects {
        /// Rectangle dimensionality.
        dim: usize,
        /// Corner block, stride `2 * dim`.
        coords: Box<[f64]>,
    },
    /// Bounding spheres: entry `i`'s center at `[i*dim .. (i+1)*dim]` of
    /// `centers`, radius in `radii[i]`.
    Spheres {
        /// Sphere dimensionality.
        dim: usize,
        /// Center block, stride `dim`.
        centers: Box<[f64]>,
        /// Per-entry radii.
        radii: Box<[f64]>,
    },
}

/// A decoded directory node: flat region storage plus parallel child-page
/// and subtree-count arrays (the count augmentation every supported
/// access method must provide — Lemma 1 depends on it).
#[derive(Debug, Clone, PartialEq)]
pub struct InternalBlock {
    children: Box<[u64]>,
    counts: Box<[u64]>,
    regions: RegionBlock,
}

impl InternalBlock {
    /// Builds a rectangle-bounded directory from flat storage.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches, or if `dim == 0` while entries are
    /// present.
    pub fn from_rects(
        dim: usize,
        coords: Box<[f64]>,
        children: Box<[u64]>,
        counts: Box<[u64]>,
    ) -> Self {
        assert!(
            dim > 0 || children.is_empty(),
            "non-empty node needs dimensions"
        );
        assert_eq!(
            coords.len(),
            2 * dim * children.len(),
            "corner block length"
        );
        assert_eq!(children.len(), counts.len(), "children/counts mismatch");
        Self {
            children,
            counts,
            regions: RegionBlock::Rects { dim, coords },
        }
    }

    /// Builds a sphere-bounded directory from flat storage.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches, or if `dim == 0` while entries are
    /// present.
    pub fn from_spheres(
        dim: usize,
        centers: Box<[f64]>,
        radii: Box<[f64]>,
        children: Box<[u64]>,
        counts: Box<[u64]>,
    ) -> Self {
        assert!(
            dim > 0 || children.is_empty(),
            "non-empty node needs dimensions"
        );
        assert_eq!(centers.len(), dim * children.len(), "center block length");
        assert_eq!(radii.len(), children.len(), "radius per entry");
        assert_eq!(children.len(), counts.len(), "children/counts mismatch");
        Self {
            children,
            counts,
            regions: RegionBlock::Spheres {
                dim,
                centers,
                radii,
            },
        }
    }

    /// Number of directory entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// `true` when the directory has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Region dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        match &self.regions {
            RegionBlock::Rects { dim, .. } => *dim,
            RegionBlock::Spheres { dim, .. } => *dim,
        }
    }

    /// The flat region storage.
    #[inline]
    pub fn regions(&self) -> &RegionBlock {
        &self.regions
    }

    /// Child page of entry `i`.
    #[inline]
    pub fn child(&self, i: usize) -> PageId {
        PageId::from_raw(self.children[i])
    }

    /// Subtree object count of entry `i`.
    #[inline]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// The subtree-count array.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Iterates the child pages.
    pub fn children(&self) -> impl Iterator<Item = PageId> + '_ {
        self.children.iter().map(|&raw| PageId::from_raw(raw))
    }

    /// Materialises entry `i`'s bounding region (presentation/debug
    /// paths; the hot paths use the batch kernels instead).
    pub fn region(&self, i: usize) -> Region {
        match &self.regions {
            RegionBlock::Rects { dim, coords } => {
                let base = i * 2 * dim;
                Region::Rect(
                    sqda_geom::Rect::new(
                        coords[base..base + dim].to_vec(),
                        coords[base + dim..base + 2 * dim].to_vec(),
                    )
                    .expect("stored corners form a valid rectangle"),
                )
            }
            RegionBlock::Spheres {
                dim,
                centers,
                radii,
            } => Region::sphere(Point::from(&centers[i * dim..(i + 1) * dim]), radii[i]),
        }
    }

    /// `D_min²` from `q` to **every** region in one batched kernel call;
    /// `out` is a reusable scratch buffer. Bit-identical to per-entry
    /// [`Region::min_dist_sq`].
    pub fn min_dist_sq_into(&self, q: &[f64], out: &mut Vec<f64>) {
        debug_assert!(
            self.is_empty() || q.len() == self.dim(),
            "query dim mismatch"
        );
        if self.is_empty() {
            out.clear();
            return;
        }
        match &self.regions {
            RegionBlock::Rects { coords, .. } => kernel::batch_min_dist_sq(q, coords, out),
            RegionBlock::Spheres { centers, radii, .. } => {
                kernel::batch_sphere_min_dist_sq(q, centers, radii, out)
            }
        }
    }

    /// All three metrics (`D_min²`, `D_mm²`, `D_max²`) from `q` to every
    /// region in one sweep — what CRSS/FPSS candidate construction needs.
    /// Bit-identical to the per-entry [`Region`] metrics.
    pub fn metrics_into(
        &self,
        q: &[f64],
        d_min: &mut Vec<f64>,
        d_mm: &mut Vec<f64>,
        d_max: &mut Vec<f64>,
    ) {
        debug_assert!(
            self.is_empty() || q.len() == self.dim(),
            "query dim mismatch"
        );
        if self.is_empty() {
            d_min.clear();
            d_mm.clear();
            d_max.clear();
            return;
        }
        match &self.regions {
            RegionBlock::Rects { coords, .. } => {
                kernel::batch_rect_metrics(q, coords, d_min, d_mm, d_max)
            }
            RegionBlock::Spheres { centers, radii, .. } => {
                kernel::batch_sphere_metrics(q, centers, radii, d_min, d_mm, d_max)
            }
        }
    }
}

/// A decoded index node, as the search algorithms see it.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexNode {
    /// A leaf: a flat block of data points with raw object ids.
    Leaf(LeafBlock),
    /// A directory node: flat regions plus child pages and counts.
    Internal(InternalBlock),
}

impl IndexNode {
    /// `true` for leaves.
    pub fn is_leaf(&self) -> bool {
        matches!(self, IndexNode::Leaf(_))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            IndexNode::Leaf(b) => b.len(),
            IndexNode::Internal(b) => b.len(),
        }
    }

    /// `true` when the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A declustered hierarchical index the similarity-search algorithms can
/// run over.
pub trait AccessMethod: Send + Sync {
    /// The root page.
    fn root_page(&self) -> PageId;

    /// Number of disks in the backing array (CRSS's activation bound).
    fn num_disks(&self) -> u32;

    /// Reads and decodes one node.
    fn read_index_node(&self, page: PageId) -> Result<IndexNode, QueryError>;

    /// Physical placement of a page (the simulator's timing input).
    fn placement(&self, page: PageId) -> Result<Placement, QueryError>;

    /// Probes the access method's decoded-node cache *without* reading
    /// the page on a miss. Engines that submit page reads through an
    /// [`sqda_storage::IoBackend`] probe here first, so cache hit/miss
    /// accounting matches the read-through path of
    /// [`AccessMethod::read_index_node`] exactly. The default (no cache)
    /// reports every probe as a miss.
    fn cached_index_node(&self, page: PageId) -> Result<Option<IndexNode>, QueryError> {
        let _ = page;
        Ok(None)
    }

    /// Decodes page bytes fetched out-of-band (the completion half of a
    /// batched read), populating the cache so a later probe hits. The
    /// default ignores the bytes and re-reads through
    /// [`AccessMethod::read_index_node`] — correct, but paying the page
    /// read twice; access methods with a codec should override.
    fn decode_index_node(
        &self,
        page: PageId,
        bytes: sqda_storage::Bytes,
    ) -> Result<IndexNode, QueryError> {
        let _ = bytes;
        self.read_index_node(page)
    }
}

/// The one place an R\*-tree node becomes the algorithms' view of it.
/// (`sqda-sstree` provides the analogous impl for its sphere nodes.)
/// Borrowing form: the source node usually lives in the shared decoded-node
/// cache, so conversion copies the node's flat blocks without consuming
/// the cached value — straight `memcpy`s of the coordinate/payload
/// buffers, no per-entry materialisation.
impl From<&sqda_rstar::Node> for IndexNode {
    fn from(node: &sqda_rstar::Node) -> Self {
        if node.is_leaf() {
            IndexNode::Leaf(LeafBlock::new(
                node.dim(),
                node.coords().into(),
                node.payload().into(),
            ))
        } else {
            // The node's payload interleaves [child, count] pairs;
            // de-interleave into the parallel arrays the block layout
            // keeps.
            let n = node.len();
            let payload = node.payload();
            let mut children = Vec::with_capacity(n);
            let mut counts = Vec::with_capacity(n);
            for pair in payload.chunks_exact(2) {
                children.push(pair[0]);
                counts.push(pair[1]);
            }
            IndexNode::Internal(InternalBlock::from_rects(
                node.dim(),
                node.coords().into(),
                children.into_boxed_slice(),
                counts.into_boxed_slice(),
            ))
        }
    }
}

impl From<sqda_rstar::Node> for IndexNode {
    fn from(node: sqda_rstar::Node) -> Self {
        (&node).into()
    }
}

impl<S: sqda_storage::PageStore> AccessMethod for sqda_rstar::RStarTree<S> {
    fn root_page(&self) -> PageId {
        sqda_rstar::RStarTree::root_page(self)
    }

    fn num_disks(&self) -> u32 {
        self.store().num_disks()
    }

    fn read_index_node(&self, page: PageId) -> Result<IndexNode, QueryError> {
        Ok(self.read_node(page)?.as_ref().into())
    }

    fn placement(&self, page: PageId) -> Result<Placement, QueryError> {
        Ok(self.store().placement(page)?)
    }

    fn cached_index_node(&self, page: PageId) -> Result<Option<IndexNode>, QueryError> {
        Ok(self.cached_node(page).map(|node| node.as_ref().into()))
    }

    fn decode_index_node(
        &self,
        page: PageId,
        bytes: sqda_storage::Bytes,
    ) -> Result<IndexNode, QueryError> {
        Ok(self.decode_node_bytes(page, bytes)?.as_ref().into())
    }
}

/// Reusable per-query workspace: the best-first priority heap, the
/// fetched-batch buffer and the batch-kernel distance buffer survive
/// between queries, so a steady-state query sweep performs no per-query
/// allocations for any of them. One scratch per worker thread; any
/// scratch works with any access method (it carries no query state
/// between runs).
#[derive(Default)]
pub struct QueryScratch {
    /// Heap storage for [`best_first_knn_with`] (and the WOPTSS oracle).
    pub best_first: sqda_rstar::BestFirstScratch,
    /// Staging buffer for fetched `(page, node)` batches; executors fill
    /// it, algorithms drain it in place.
    pub batch: Vec<(PageId, IndexNode)>,
    /// Per-node distance vector for the batch kernels.
    pub dists: Vec<f64>,
}

impl QueryScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Generic best-first k-NN over any access method (Hjaltason–Samet).
/// Used as the WOPTSS oracle and for ground truth; visits nodes in
/// increasing `D_min` order.
///
/// Delegates to the engine in `sqda_rstar::best_first_search` — the same
/// heap and tie-breaking the native R\*-tree search uses, with node
/// expansion routed through [`AccessMethod::read_index_node`] and the
/// per-node distances computed by the batch kernels.
pub fn best_first_knn(
    am: &(impl AccessMethod + ?Sized),
    center: &Point,
    k: usize,
) -> Result<Vec<sqda_rstar::Neighbor>, QueryError> {
    let mut scratch = QueryScratch::new();
    best_first_knn_with(am, center, k, &mut scratch)
}

/// [`best_first_knn`] over a caller-supplied [`QueryScratch`], reusing its
/// priority heap and distance buffer across queries.
pub fn best_first_knn_with(
    am: &(impl AccessMethod + ?Sized),
    center: &Point,
    k: usize,
    scratch: &mut QueryScratch,
) -> Result<Vec<sqda_rstar::Neighbor>, QueryError> {
    let dists = &mut scratch.dists;
    let (out, _nodes_read) = sqda_rstar::best_first_search_with(
        &mut scratch.best_first,
        am.root_page(),
        k,
        |page, frontier| {
            match am.read_index_node(page)? {
                IndexNode::Leaf(leaf) => {
                    leaf.dist_sq_into(center.coords(), dists);
                    for (i, (coords, id)) in leaf.iter().enumerate() {
                        frontier.push_object(
                            sqda_rstar::ObjectId(id),
                            Point::from(coords),
                            dists[i],
                        );
                    }
                }
                IndexNode::Internal(block) => {
                    block.min_dist_sq_into(center.coords(), dists);
                    for (i, &d) in dists.iter().enumerate() {
                        frontier.push_node(block.child(i), d);
                    }
                }
            }
            Ok::<(), QueryError>(())
        },
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqda_rstar::decluster::ProximityIndex;
    use sqda_rstar::{RStarConfig, RStarTree};
    use sqda_storage::ArrayStore;
    use std::sync::Arc;

    #[test]
    fn rstar_tree_serves_index_nodes() {
        let store = Arc::new(ArrayStore::new(4, 100, 1));
        let mut tree = RStarTree::create(
            store,
            RStarConfig::new(2).with_max_entries(4),
            Box::new(ProximityIndex),
        )
        .unwrap();
        for i in 0..40u64 {
            tree.insert(Point::new(vec![i as f64, (i * 3 % 11) as f64]), i)
                .unwrap();
        }
        let root = AccessMethod::read_index_node(&tree, AccessMethod::root_page(&tree)).unwrap();
        assert!(!root.is_leaf());
        assert!(!root.is_empty());
        if let IndexNode::Internal(block) = &root {
            let total: u64 = block.counts().iter().sum();
            assert_eq!(total, 40);
            assert_eq!(block.dim(), 2);
            assert_eq!(block.children().count(), block.len());
        }
        // Generic best-first equals the tree's own knn.
        let q = Point::new(vec![5.0, 5.0]);
        let generic = best_first_knn(&tree, &q, 7).unwrap();
        let native = tree.knn(&q, 7).unwrap();
        assert_eq!(generic.len(), native.len());
        for (g, n) in generic.iter().zip(native.iter()) {
            assert_eq!(g.dist_sq, n.dist_sq);
        }
    }

    #[test]
    fn block_conversion_matches_node_accessors() {
        let store = Arc::new(ArrayStore::new(2, 100, 7));
        let mut tree = RStarTree::create(
            store,
            RStarConfig::new(3).with_max_entries(5),
            Box::new(ProximityIndex),
        )
        .unwrap();
        for i in 0..60u64 {
            let f = i as f64;
            tree.insert(Point::new(vec![f, (f * 0.5).sin(), -f]), i)
                .unwrap();
        }
        // Every node round-trips: the flat block view agrees with the
        // source node's per-entry accessors, bit for bit.
        let mut stack = vec![AccessMethod::root_page(&tree)];
        let q = Point::new(vec![3.0, 0.25, -4.0]);
        let mut d_min = Vec::new();
        let mut d_mm = Vec::new();
        let mut d_max = Vec::new();
        while let Some(page) = stack.pop() {
            let node = tree.read_node(page).unwrap();
            let view: IndexNode = node.as_ref().into();
            assert_eq!(view.len(), node.len());
            match &view {
                IndexNode::Leaf(leaf) => {
                    leaf.dist_sq_into(q.coords(), &mut d_min);
                    for (i, (coords, id)) in leaf.iter().enumerate() {
                        assert_eq!(coords, node.leaf_point(i));
                        assert_eq!(id, node.leaf_object(i).0);
                        assert_eq!(
                            d_min[i].to_bits(),
                            q.dist_sq_coords(node.leaf_point(i)).to_bits()
                        );
                    }
                }
                IndexNode::Internal(block) => {
                    block.metrics_into(q.coords(), &mut d_min, &mut d_mm, &mut d_max);
                    for i in 0..block.len() {
                        let r = node.internal_rect(i);
                        assert_eq!(block.child(i), node.internal_child(i));
                        assert_eq!(block.count(i), node.internal_count(i));
                        assert_eq!(d_min[i].to_bits(), r.min_dist_sq(q.coords()).to_bits());
                        assert_eq!(d_mm[i].to_bits(), r.min_max_dist_sq(q.coords()).to_bits());
                        assert_eq!(d_max[i].to_bits(), r.max_dist_sq(q.coords()).to_bits());
                        assert_eq!(block.region(i), Region::Rect(r.to_rect()));
                        stack.push(block.child(i));
                    }
                }
            }
        }
    }
}
