//! The typed error of the query-engine boundary.
//!
//! Everything that crosses the [`crate::AccessMethod`] / executor seam —
//! the four algorithms, the logical executor and the event-driven
//! simulator — fails with [`QueryError`], replacing the former
//! `Box<dyn Error>` alias. Access-method crates convert their own error
//! types via `From` impls (`sqda-rstar` here, `sqda-sstree` in its own
//! crate), so `?` works across the boundary without boxing.

use sqda_rstar::RStarError;
use sqda_storage::{PageId, StorageError};

/// Why a similarity query could not be answered.
#[derive(Debug, Clone)]
pub enum QueryError {
    /// The underlying page store failed (missing page, bad disk, ...).
    Storage(StorageError),
    /// A page was fetched but its bytes do not decode into a node.
    Codec {
        /// What the decoder rejected.
        detail: String,
    },
    /// An access-method invariant was violated (wrong dimensionality,
    /// malformed geometry, ...).
    Invariant(String),
    /// The caller's configuration is inconsistent with the data it is
    /// applied to (e.g. a simulation sized for a different disk array).
    Config(String),
    /// A required page had no live replica within the retry budget: its
    /// disk is failed and either the array is not mirrored or the disk
    /// is the unpaired one of an odd array. The query degrades to a
    /// typed error instead of hanging (see the fault-injection layer).
    Unavailable {
        /// The page that could not be read.
        page: PageId,
        /// The primary disk the page lives on.
        disk: u32,
        /// Probes spent before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
            QueryError::Codec { detail } => write!(f, "codec error: {detail}"),
            QueryError::Invariant(msg) => write!(f, "invariant violated: {msg}"),
            QueryError::Config(msg) => write!(f, "configuration error: {msg}"),
            QueryError::Unavailable {
                page,
                disk,
                attempts,
            } => write!(
                f,
                "page {page:?} unavailable: disk {disk} failed and no live \
                 replica answered within {attempts} probes"
            ),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        match e {
            // Undecodable pages are a codec failure, not an I/O failure.
            StorageError::CorruptPage { .. } => QueryError::Codec {
                detail: e.to_string(),
            },
            other => QueryError::Storage(other),
        }
    }
}

impl From<RStarError> for QueryError {
    fn from(e: RStarError) -> Self {
        match e {
            RStarError::Storage(e) => QueryError::from(e),
            RStarError::Geometry(_)
            | RStarError::DimensionMismatch { .. }
            | RStarError::UnsupportedPacking { .. }
            | RStarError::InvalidBuild(_) => QueryError::Invariant(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqda_storage::PageId;

    #[test]
    fn storage_errors_split_into_codec_and_storage() {
        let corrupt = StorageError::CorruptPage {
            page: PageId::from_raw(3),
            detail: "truncated header".into(),
        };
        assert!(matches!(
            QueryError::from(corrupt),
            QueryError::Codec { .. }
        ));
        let missing = StorageError::PageNotFound(PageId::from_raw(3));
        assert!(matches!(
            QueryError::from(missing),
            QueryError::Storage(StorageError::PageNotFound(_))
        ));
    }

    #[test]
    fn rstar_errors_map_by_kind() {
        let dim = RStarError::DimensionMismatch {
            expected: 2,
            got: 3,
        };
        assert!(matches!(QueryError::from(dim), QueryError::Invariant(_)));
        let io = RStarError::Storage(StorageError::UninitializedPage(PageId::from_raw(7)));
        assert!(matches!(QueryError::from(io), QueryError::Storage(_)));
    }

    #[test]
    fn display_is_informative() {
        let e = QueryError::Config("simulation has 10 disks, array has 4".into());
        assert!(e.to_string().contains("configuration error"));
        // QueryError satisfies the std error trait with a source chain.
        let e: Box<dyn std::error::Error> = Box::new(QueryError::from(StorageError::PageNotFound(
            PageId::from_raw(1),
        )));
        assert!(std::error::Error::source(e.as_ref()).is_some());
    }
}
