//! The simulated executor: the event-driven queueing network of
//! Section 4.1 (Figure 7) driving the algorithm state machines.
//!
//! Each query session cycles through: CPU processing → page requests to
//! per-disk FCFS queues → page transfers over the shared bus → next CPU
//! step, until its algorithm reports `Done`. Query arrivals follow the
//! workload's (Poisson) schedule. Response time is measured from arrival
//! to completion, averaged over all queries — the paper's primary metric
//! for the multi-user experiments (Figures 10–12, Tables 3–4).
//!
//! The executor optionally narrates itself through a
//! [`Recorder`](sqda_obs::Recorder): every arrival, disk service (with
//! its queue/seek/rotation/transfer breakdown), bus grant, CPU slice and
//! completion becomes a structured [`sqda_obs::Event`]. With the
//! default [`NullRecorder`] all observability bookkeeping is skipped —
//! no per-event heap allocation, and simulated timing is untouched
//! either way (recording observes, never steers).

use super::clock::{EngineClock, VirtualClock};
use super::session::{least_busy_cpu, route_read, settle_outstanding, Route, Session, SessionObs};
use crate::access::{AccessMethod, IndexNode};
use crate::algo::{AlgorithmKind, SimilaritySearch, Step};
use crate::error::QueryError;
use crate::workload::Workload;
use sqda_obs::{Event as ObsEvent, NullRecorder, Recorder};
use sqda_simkernel::{
    Bus, Cpu, Disk, DiskFault, EventQueue, FaultPlan, SampleStats, SimTime, SystemParams,
};
use sqda_storage::PageId;
use std::collections::HashMap;

/// Aggregated results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Which algorithm ran.
    pub algorithm: &'static str,
    /// Queries completed (the full workload in fault-free runs; under
    /// fault injection, the queries that were not aborted).
    pub completed: usize,
    /// Mean response time in seconds (the paper's headline metric).
    pub mean_response_s: f64,
    /// Standard deviation of response times.
    pub std_response_s: f64,
    /// Maximum response time observed.
    pub max_response_s: f64,
    /// 95th-percentile response time.
    pub p95_response_s: f64,
    /// Mean nodes fetched per query.
    pub mean_nodes_per_query: f64,
    /// Mean utilization across disks over the simulated horizon.
    pub mean_disk_utilization: f64,
    /// Bus utilization over the simulated horizon.
    pub bus_utilization: f64,
    /// CPU utilization over the simulated horizon.
    pub cpu_utilization: f64,
    /// Time the last query completed.
    pub makespan_s: f64,
    /// Queries aborted with a typed error under fault injection
    /// (always 0 in fault-free runs).
    pub failed: usize,
    /// Reads served by a shadow replica because the primary disk was
    /// failed at submission time.
    pub degraded_reads: u64,
    /// Probes of pages that found no live replica (each probe of each
    /// retry loop counts once).
    pub read_retries: u64,
    /// The typed error of every aborted query, keyed by workload index.
    pub failures: Vec<(u32, QueryError)>,
    /// Response time of every completed query, in workload (= arrival)
    /// index order. Feeds warm-up truncation and replication statistics;
    /// aborted queries are skipped.
    pub responses: Vec<f64>,
}

enum Event {
    Arrive(usize),
    DiskDone {
        q: usize,
        page: PageId,
    },
    BusDone {
        q: usize,
        page: PageId,
    },
    CpuDone {
        q: usize,
    },
    /// Re-probe a page whose every replica was unavailable (degraded
    /// mode only; never scheduled under an empty fault plan).
    Retry {
        q: usize,
        page: PageId,
        attempt: u32,
    },
}

/// Submits a page read to `disk`, scheduling its completion and (while
/// recording) narrating the service breakdown. Shared by the initial
/// fetch path and the degraded-mode retry path, so both produce the
/// same events and the same timing for the same submission.
#[allow(clippy::too_many_arguments)]
fn submit_read(
    disks: &mut [Disk],
    disk: usize,
    q: usize,
    page: PageId,
    cylinder: u32,
    level: u16,
    now: SimTime,
    clock: &dyn EngineClock,
    rng: &mut rand::rngs::StdRng,
    events: &mut EventQueue<Event>,
    recording: bool,
    recorder: &mut dyn Recorder,
    obs: &mut SessionObs,
) {
    if recording {
        let detail = disks[disk].submit_detailed(now, cylinder, rng);
        obs.disk_queue_ns += detail.queue.as_nanos();
        obs.seek_ns += detail.seek.as_nanos();
        obs.rotation_ns += detail.rotation.as_nanos();
        obs.transfer_ns += detail.transfer.as_nanos();
        recorder.record(
            clock.now_ns(),
            ObsEvent::DiskService {
                query: q as u32,
                disk: disk as u16,
                cylinder,
                level,
                queue_ns: detail.queue.as_nanos(),
                seek_ns: detail.seek.as_nanos(),
                rotation_ns: detail.rotation.as_nanos(),
                transfer_ns: detail.transfer.as_nanos(),
                queue_depth: detail.queue_depth,
            },
        );
        events.schedule(detail.completion, Event::DiskDone { q, page });
    } else {
        let done = disks[disk].submit(now, cylinder, rng);
        events.schedule(done, Event::DiskDone { q, page });
    }
}

/// An event-driven simulation of the disk-array system executing one
/// workload with one algorithm over any access method.
pub struct Simulation<'t, A: AccessMethod + ?Sized> {
    am: &'t A,
    params: SystemParams,
}

impl<'t, A: AccessMethod + ?Sized> Simulation<'t, A> {
    /// Creates a simulation over an access method with the given system
    /// parameters.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::Config`] if `params.num_disks` disagrees
    /// with the array backing the index — its pages are placed on that
    /// array, so simulating a differently-sized one would be meaningless.
    pub fn new(am: &'t A, params: SystemParams) -> Result<Self, QueryError> {
        if params.num_disks != am.num_disks() {
            return Err(QueryError::Config(format!(
                "simulation disk count must match the store the tree lives on \
                 (simulation has {}, array has {})",
                params.num_disks,
                am.num_disks()
            )));
        }
        Ok(Self { am, params })
    }

    /// Runs `workload` under `kind`, returning aggregate statistics.
    ///
    /// `seed` drives the stochastic parts of the timing model (rotational
    /// latencies); the workload carries its own arrival schedule.
    pub fn run(
        &self,
        kind: AlgorithmKind,
        workload: &Workload,
        seed: u64,
    ) -> Result<SimulationReport, QueryError> {
        self.run_recorded(kind, workload, seed, &mut NullRecorder)
    }

    /// Like [`Simulation::run`], but narrates the run through `recorder`
    /// (see [`sqda_obs`]). Timing and results are identical to an
    /// unrecorded run with the same seed.
    pub fn run_recorded(
        &self,
        kind: AlgorithmKind,
        workload: &Workload,
        seed: u64,
        recorder: &mut dyn Recorder,
    ) -> Result<SimulationReport, QueryError> {
        // One scratch shared across all of this run's oracle builds: the
        // WOPTSS precomputation reuses a single best-first heap.
        let mut scratch = crate::QueryScratch::new();
        let mut factory =
            |point: sqda_geom::Point, k: usize| kind.build_with(self.am, point, k, &mut scratch);
        self.run_with_fallible(
            &mut factory,
            kind.name(),
            workload,
            seed,
            &FaultPlan::none(),
            recorder,
        )
    }

    /// Runs `workload` under `kind` with faults injected from `plan`.
    ///
    /// With the empty plan this is byte-identical to [`Simulation::run`]
    /// (same RNG stream, same timing, same report). Under a non-empty
    /// plan, reads targeting a failed disk are redirected to the shadow
    /// replica when the array is mirrored; pages with no live replica
    /// are re-probed under the plan's retry policy and the owning query
    /// aborts with [`QueryError::Unavailable`] when the budget runs out
    /// — per-query failures land in
    /// [`SimulationReport::failures`], they do not fail the run.
    pub fn run_faulted(
        &self,
        kind: AlgorithmKind,
        workload: &Workload,
        seed: u64,
        plan: &FaultPlan,
    ) -> Result<SimulationReport, QueryError> {
        self.run_faulted_recorded(kind, workload, seed, plan, &mut NullRecorder)
    }

    /// [`Simulation::run_faulted`] plus a recorder. Fault transitions
    /// are narrated as first-class events (`disk_failed`,
    /// `disk_recovered`, `disk_degraded`, `degraded_read`,
    /// `read_retry`, `query_abort`).
    pub fn run_faulted_recorded(
        &self,
        kind: AlgorithmKind,
        workload: &Workload,
        seed: u64,
        plan: &FaultPlan,
        recorder: &mut dyn Recorder,
    ) -> Result<SimulationReport, QueryError> {
        let mut scratch = crate::QueryScratch::new();
        let mut factory =
            |point: sqda_geom::Point, k: usize| kind.build_with(self.am, point, k, &mut scratch);
        self.run_with_fallible(&mut factory, kind.name(), workload, seed, plan, recorder)
    }

    /// Runs `workload` with algorithm instances produced by `factory`
    /// (used for parameter sweeps like the CRSS activation-bound
    /// ablation, where [`AlgorithmKind`] cannot carry the parameter).
    pub fn run_with<F>(
        &self,
        factory: F,
        name: &'static str,
        workload: &Workload,
        seed: u64,
    ) -> Result<SimulationReport, QueryError>
    where
        F: FnMut(sqda_geom::Point, usize) -> Box<dyn SimilaritySearch>,
    {
        self.run_with_recorded(factory, name, workload, seed, &mut NullRecorder)
    }

    /// [`Simulation::run_with`] plus a recorder.
    pub fn run_with_recorded<F>(
        &self,
        mut factory: F,
        name: &'static str,
        workload: &Workload,
        seed: u64,
        recorder: &mut dyn Recorder,
    ) -> Result<SimulationReport, QueryError>
    where
        F: FnMut(sqda_geom::Point, usize) -> Box<dyn SimilaritySearch>,
    {
        let mut fallible =
            |point: sqda_geom::Point, k: usize| -> Result<Box<dyn SimilaritySearch>, QueryError> {
                Ok(factory(point, k))
            };
        self.run_with_fallible(
            &mut fallible,
            name,
            workload,
            seed,
            &FaultPlan::none(),
            recorder,
        )
    }

    /// [`Simulation::run_with_recorded`] plus a fault plan — the
    /// factory-driven twin of [`Simulation::run_faulted_recorded`],
    /// used by tests that wrap algorithms to observe degraded-mode
    /// answers.
    pub fn run_with_faulted_recorded<F>(
        &self,
        mut factory: F,
        name: &'static str,
        workload: &Workload,
        seed: u64,
        plan: &FaultPlan,
        recorder: &mut dyn Recorder,
    ) -> Result<SimulationReport, QueryError>
    where
        F: FnMut(sqda_geom::Point, usize) -> Box<dyn SimilaritySearch>,
    {
        let mut fallible =
            |point: sqda_geom::Point, k: usize| -> Result<Box<dyn SimilaritySearch>, QueryError> {
                Ok(factory(point, k))
            };
        self.run_with_fallible(&mut fallible, name, workload, seed, plan, recorder)
    }

    fn run_with_fallible(
        &self,
        factory: &mut dyn FnMut(
            sqda_geom::Point,
            usize,
        ) -> Result<Box<dyn SimilaritySearch>, QueryError>,
        name: &'static str,
        workload: &Workload,
        seed: u64,
        plan: &FaultPlan,
        recorder: &mut dyn Recorder,
    ) -> Result<SimulationReport, QueryError> {
        if let Some(max) = plan.max_disk() {
            if max >= self.params.num_disks {
                return Err(QueryError::Config(format!(
                    "fault plan references disk {max} but the array has only {} disks",
                    self.params.num_disks
                )));
            }
        }
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let mut disks: Vec<Disk> = (0..self.params.num_disks)
            .map(|_| Disk::new(self.params.disk.clone()))
            .collect();
        let mut bus = Bus::new(self.params.bus_transfer());
        let mut cpus: Vec<Cpu> = (0..self.params.num_cpus.max(1))
            .map(|_| Cpu::new(self.params.cpu_mips))
            .collect();
        // Every query contributes one arrival event up front, so the
        // workload size is a tight initial-capacity hint.
        let mut events: EventQueue<Event> = EventQueue::with_capacity(workload.queries.len());
        let recording = recorder.enabled();

        // Degraded-mode state. `faulted` gates every fault-path branch:
        // with an empty plan no profile is installed, no fault event is
        // emitted and the routing below is the pre-fault logic verbatim,
        // which keeps empty-plan runs byte-identical to `run`.
        let faulted = !plan.is_empty();
        let retry = plan.retry();
        if faulted {
            for (d, disk) in disks.iter_mut().enumerate() {
                let profile = plan.profile_for(d as u32);
                if !profile.is_clean() {
                    disk.set_fault_profile(profile);
                }
            }
            if recording {
                // Narrate the plan's transitions up front: they are
                // scheduled facts, not simulation outcomes, so they do
                // not flow through the event queue. Consumers that care
                // about ordering (metrics, Perfetto) scan the whole
                // stream first.
                for fault in plan.faults() {
                    match *fault {
                        DiskFault::FailStop {
                            disk,
                            at,
                            recovers_at,
                        } => {
                            recorder
                                .record(at.as_nanos(), ObsEvent::DiskFailed { disk: disk as u16 });
                            if let Some(rec) = recovers_at {
                                recorder.record(
                                    rec.as_nanos(),
                                    ObsEvent::DiskRecovered { disk: disk as u16 },
                                );
                            }
                        }
                        DiskFault::SlowWindow {
                            disk,
                            from,
                            until,
                            multiplier,
                        } => recorder.record(
                            from.as_nanos(),
                            ObsEvent::DiskDegraded {
                                disk: disk as u16,
                                until_ns: until.as_nanos(),
                                multiplier,
                                extra_ns: 0,
                            },
                        ),
                        DiskFault::HotSpot {
                            disk,
                            from,
                            until,
                            extra,
                        } => recorder.record(
                            from.as_nanos(),
                            ObsEvent::DiskDegraded {
                                disk: disk as u16,
                                until_ns: until.as_nanos(),
                                multiplier: 1.0,
                                extra_ns: extra.as_nanos(),
                            },
                        ),
                    }
                }
            }
        }
        let mut degraded_reads = 0u64;
        let mut read_retries = 0u64;
        let mut failures: Vec<(u32, QueryError)> = Vec::new();

        // Tree level of every page seen so far (root = 0), extended as
        // internal nodes are decoded. Only maintained while recording.
        let mut levels: HashMap<PageId, u16> = HashMap::new();
        if recording {
            levels.insert(self.am.root_page(), 0);
        }

        // Build one session per query. Oracle preparation (WOPTSS) happens
        // here, outside simulated time.
        let mut sessions: Vec<Session<SimTime>> = Vec::with_capacity(workload.queries.len());
        for wq in &workload.queries {
            let algo = factory(wq.point.clone(), wq.k)?;
            sessions.push(Session::new(algo, wq.arrival));
            events.schedule(wq.arrival, Event::Arrive(sessions.len() - 1));
        }

        let mut response_times = SampleStats::new();
        let mut total_nodes = 0u64;
        let mut makespan = SimTime::ZERO;

        // The virtual clock tracks the event being processed; recorder
        // timestamps flow through it, exactly as the real-clock engine
        // stamps through its wall clock.
        let mut clock = VirtualClock::new();
        while let Some((now, event)) = events.pop() {
            clock.advance(now);
            match event {
                Event::Arrive(q) => {
                    // Per the paper, a new query enters the system
                    // immediately; it pays the fixed startup cost on the
                    // CPU, then issues its first request (the root page).
                    let step = sessions[q].algo.start();
                    sessions[q].pending = Some(step);
                    let c = least_busy_cpu(&cpus);
                    let (done, queue) =
                        cpus[c].submit_duration_detailed(now, self.params.query_startup());
                    events.schedule(done, Event::CpuDone { q });
                    if recording {
                        recorder.record(clock.now_ns(), ObsEvent::QueryArrive { query: q as u32 });
                        let exec = done - now - queue;
                        sessions[q].obs.cpu_queue_ns += queue.as_nanos();
                        sessions[q].obs.cpu_ns += exec.as_nanos();
                        recorder.record(
                            clock.now_ns(),
                            ObsEvent::CpuSlice {
                                query: q as u32,
                                cpu: c as u16,
                                queue_ns: queue.as_nanos(),
                                exec_ns: exec.as_nanos(),
                                instructions: 0,
                            },
                        );
                    }
                }
                Event::CpuDone { q } => {
                    if sessions[q].failed {
                        continue;
                    }
                    let step = sessions[q].pending.take().ok_or_else(|| {
                        QueryError::Invariant(format!(
                            "CPU completion for query {q} without a pending step"
                        ))
                    })?;
                    match step {
                        Step::Fetch(pages) => {
                            if pages.is_empty() {
                                return Err(QueryError::Invariant(format!(
                                    "query {q} issued an empty fetch batch"
                                )));
                            }
                            sessions[q].outstanding = pages.len();
                            sessions[q].nodes_visited += pages.len() as u64;
                            if recording {
                                sessions[q].obs.batches += 1;
                                // A batch can mix levels (CRSS pulls pages
                                // from several runs at once): record the
                                // shallowest and deepest, not pages[0]'s,
                                // which mislabelled mixed batches.
                                let mut level = u16::MAX;
                                let mut level_max = 0u16;
                                for page in &pages {
                                    let l = levels.get(page).copied().unwrap_or_default();
                                    level = level.min(l);
                                    level_max = level_max.max(l);
                                }
                                recorder.record(
                                    clock.now_ns(),
                                    ObsEvent::BatchIssued {
                                        query: q as u32,
                                        level,
                                        level_max,
                                        size: pages.len() as u32,
                                    },
                                );
                            }
                            for page in pages {
                                let placement = self.am.placement(page)?;
                                let primary = placement.disk.index();
                                let level = if recording {
                                    levels.get(&page).copied().unwrap_or_default()
                                } else {
                                    0
                                };
                                match route_read(
                                    primary,
                                    now,
                                    &disks,
                                    self.params.mirrored_reads,
                                    faulted,
                                ) {
                                    Route::Serve(disk) => submit_read(
                                        &mut disks,
                                        disk,
                                        q,
                                        page,
                                        placement.cylinder,
                                        level,
                                        now,
                                        &clock,
                                        &mut rng,
                                        &mut events,
                                        recording,
                                        recorder,
                                        &mut sessions[q].obs,
                                    ),
                                    Route::Degraded { primary, replica } => {
                                        degraded_reads += 1;
                                        if recording {
                                            recorder.record(
                                                clock.now_ns(),
                                                ObsEvent::DegradedRead {
                                                    query: q as u32,
                                                    disk: primary as u16,
                                                    replica: replica as u16,
                                                },
                                            );
                                        }
                                        submit_read(
                                            &mut disks,
                                            replica,
                                            q,
                                            page,
                                            placement.cylinder,
                                            level,
                                            now,
                                            &clock,
                                            &mut rng,
                                            &mut events,
                                            recording,
                                            recorder,
                                            &mut sessions[q].obs,
                                        );
                                    }
                                    Route::Unavailable { primary } => {
                                        read_retries += 1;
                                        if recording {
                                            recorder.record(
                                                clock.now_ns(),
                                                ObsEvent::ReadRetry {
                                                    query: q as u32,
                                                    disk: primary as u16,
                                                    attempt: 1,
                                                },
                                            );
                                        }
                                        if retry.max_attempts <= 1 {
                                            sessions[q].failed = true;
                                            makespan = makespan.max(now);
                                            failures.push((
                                                q as u32,
                                                QueryError::Unavailable {
                                                    page,
                                                    disk: primary as u32,
                                                    attempts: 1,
                                                },
                                            ));
                                            if recording {
                                                recorder.record(
                                                    clock.now_ns(),
                                                    ObsEvent::QueryAbort {
                                                        query: q as u32,
                                                        disk: primary as u16,
                                                        attempts: 1,
                                                    },
                                                );
                                            }
                                            break;
                                        }
                                        events.schedule(
                                            now + retry.backoff,
                                            Event::Retry {
                                                q,
                                                page,
                                                attempt: 2,
                                            },
                                        );
                                    }
                                }
                            }
                        }
                        Step::Done => {
                            let resp = now - sessions[q].arrival;
                            response_times.push(resp.as_secs_f64());
                            sessions[q].finished_at = Some(now);
                            total_nodes += sessions[q].nodes_visited;
                            makespan = makespan.max(now);
                            if recording {
                                let obs = sessions[q].obs;
                                recorder.record(
                                    clock.now_ns(),
                                    ObsEvent::QueryComplete {
                                        query: q as u32,
                                        response_ns: resp.as_nanos(),
                                        nodes: sessions[q].nodes_visited,
                                        batches: obs.batches,
                                        disk_queue_ns: obs.disk_queue_ns,
                                        seek_ns: obs.seek_ns,
                                        rotation_ns: obs.rotation_ns,
                                        transfer_ns: obs.transfer_ns,
                                        bus_queue_ns: obs.bus_queue_ns,
                                        bus_ns: obs.bus_ns,
                                        cpu_queue_ns: obs.cpu_queue_ns,
                                        cpu_ns: obs.cpu_ns,
                                    },
                                );
                            }
                        }
                    }
                }
                Event::DiskDone { q, page } => {
                    if sessions[q].failed {
                        // The page was read, but its query already
                        // aborted: drop it instead of crossing the bus.
                        let _ = page;
                        continue;
                    }
                    let (done, queue) = bus.submit_detailed(now);
                    events.schedule(done, Event::BusDone { q, page });
                    if recording {
                        let transfer = done - now - queue;
                        sessions[q].obs.bus_queue_ns += queue.as_nanos();
                        sessions[q].obs.bus_ns += transfer.as_nanos();
                        recorder.record(
                            clock.now_ns(),
                            ObsEvent::BusTransfer {
                                query: q as u32,
                                queue_ns: queue.as_nanos(),
                                transfer_ns: transfer.as_nanos(),
                            },
                        );
                    }
                }
                Event::BusDone { q, page } => {
                    if sessions[q].failed {
                        continue;
                    }
                    let node = self.am.read_index_node(page)?;
                    if recording {
                        if let IndexNode::Internal(block) = &node {
                            let child_level = levels.get(&page).copied().unwrap_or_default() + 1;
                            for child in block.children() {
                                levels.insert(child, child_level);
                            }
                        }
                    }
                    let session = &mut sessions[q];
                    session.fetched.push((page, node));
                    session.outstanding = settle_outstanding(session.outstanding, q)?;
                    if session.outstanding == 0 {
                        // The algorithm drains `fetched` in place; its
                        // capacity is reused for the session's next batch.
                        let result = session.algo.on_fetched(&mut session.fetched);
                        debug_assert!(session.fetched.is_empty(), "algorithms drain the batch");
                        session.fetched.clear();
                        session.pending = Some(result.next);
                        let c = least_busy_cpu(&cpus);
                        if recording {
                            let (done, queue) =
                                cpus[c].submit_detailed(now, result.cpu_instructions);
                            events.schedule(done, Event::CpuDone { q });
                            let exec = done - now - queue;
                            session.obs.cpu_queue_ns += queue.as_nanos();
                            session.obs.cpu_ns += exec.as_nanos();
                            recorder.record(
                                clock.now_ns(),
                                ObsEvent::CpuSlice {
                                    query: q as u32,
                                    cpu: c as u16,
                                    queue_ns: queue.as_nanos(),
                                    exec_ns: exec.as_nanos(),
                                    instructions: result.cpu_instructions,
                                },
                            );
                            if let Some(p) = session.algo.progress() {
                                recorder.record(
                                    clock.now_ns(),
                                    ObsEvent::CrssState {
                                        query: q as u32,
                                        d_th_sq: p.d_th_sq,
                                        stack_runs: p.stack_runs,
                                        stack_candidates: p.stack_candidates,
                                    },
                                );
                            }
                        } else {
                            let done = cpus[c].submit(now, result.cpu_instructions);
                            events.schedule(done, Event::CpuDone { q });
                        }
                    }
                }
                Event::Retry { q, page, attempt } => {
                    if sessions[q].failed {
                        continue;
                    }
                    let placement = self.am.placement(page)?;
                    let primary = placement.disk.index();
                    let level = if recording {
                        levels.get(&page).copied().unwrap_or_default()
                    } else {
                        0
                    };
                    match route_read(primary, now, &disks, self.params.mirrored_reads, faulted) {
                        Route::Serve(disk) => submit_read(
                            &mut disks,
                            disk,
                            q,
                            page,
                            placement.cylinder,
                            level,
                            now,
                            &clock,
                            &mut rng,
                            &mut events,
                            recording,
                            recorder,
                            &mut sessions[q].obs,
                        ),
                        Route::Degraded { primary, replica } => {
                            degraded_reads += 1;
                            if recording {
                                recorder.record(
                                    clock.now_ns(),
                                    ObsEvent::DegradedRead {
                                        query: q as u32,
                                        disk: primary as u16,
                                        replica: replica as u16,
                                    },
                                );
                            }
                            submit_read(
                                &mut disks,
                                replica,
                                q,
                                page,
                                placement.cylinder,
                                level,
                                now,
                                &clock,
                                &mut rng,
                                &mut events,
                                recording,
                                recorder,
                                &mut sessions[q].obs,
                            );
                        }
                        Route::Unavailable { primary } => {
                            read_retries += 1;
                            if recording {
                                recorder.record(
                                    clock.now_ns(),
                                    ObsEvent::ReadRetry {
                                        query: q as u32,
                                        disk: primary as u16,
                                        attempt,
                                    },
                                );
                            }
                            if attempt >= retry.max_attempts {
                                // Budget exhausted: degrade to a typed
                                // per-query failure instead of probing
                                // (and hence hanging) forever.
                                sessions[q].failed = true;
                                makespan = makespan.max(now);
                                failures.push((
                                    q as u32,
                                    QueryError::Unavailable {
                                        page,
                                        disk: primary as u32,
                                        attempts: attempt,
                                    },
                                ));
                                if recording {
                                    recorder.record(
                                        clock.now_ns(),
                                        ObsEvent::QueryAbort {
                                            query: q as u32,
                                            disk: primary as u16,
                                            attempts: attempt,
                                        },
                                    );
                                }
                            } else {
                                events.schedule(
                                    now + retry.backoff,
                                    Event::Retry {
                                        q,
                                        page,
                                        attempt: attempt + 1,
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }

        debug_assert!(
            sessions.iter().all(|s| s.finished_at.is_some() || s.failed),
            "all queries must complete or abort"
        );
        let completed = sessions.iter().filter(|s| s.finished_at.is_some()).count();
        let horizon = makespan;
        let mean_disk_utilization = if disks.is_empty() {
            0.0
        } else {
            disks.iter().map(|d| d.utilization(horizon)).sum::<f64>() / disks.len() as f64
        };
        let summary = response_times.summary();
        Ok(SimulationReport {
            algorithm: name,
            completed,
            mean_response_s: summary.mean,
            std_response_s: summary.std_dev,
            max_response_s: summary.max,
            p95_response_s: summary.p95,
            mean_nodes_per_query: if completed == 0 {
                0.0
            } else {
                total_nodes as f64 / completed as f64
            },
            mean_disk_utilization,
            bus_utilization: bus.utilization(horizon),
            cpu_utilization: cpus.iter().map(|c| c.utilization(horizon)).sum::<f64>()
                / cpus.len() as f64,
            makespan_s: makespan.as_secs_f64(),
            failed: failures.len(),
            degraded_reads,
            read_retries,
            failures,
            responses: sessions
                .iter()
                .filter_map(|s| s.finished_at.map(|f| (f - s.arrival).as_secs_f64()))
                .collect(),
        })
    }
}
