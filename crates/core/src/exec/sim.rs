//! The simulated executor: the event-driven queueing network of
//! Section 4.1 (Figure 7) driving the algorithm state machines.
//!
//! Each query session cycles through: CPU processing → page requests to
//! per-disk FCFS queues → page transfers over the shared bus → next CPU
//! step, until its algorithm reports `Done`. Query arrivals follow the
//! workload's (Poisson) schedule. Response time is measured from arrival
//! to completion, averaged over all queries — the paper's primary metric
//! for the multi-user experiments (Figures 10–12, Tables 3–4).

use crate::access::{AccessMethod, IndexNode};
use crate::algo::{AlgorithmKind, SimilaritySearch, Step};
use crate::error::QueryError;
use crate::workload::Workload;
use sqda_simkernel::{Bus, Cpu, Disk, EventQueue, SampleStats, SimTime, SystemParams};
use sqda_storage::PageId;

/// Aggregated results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Which algorithm ran.
    pub algorithm: &'static str,
    /// Queries completed (always the full workload).
    pub completed: usize,
    /// Mean response time in seconds (the paper's headline metric).
    pub mean_response_s: f64,
    /// Standard deviation of response times.
    pub std_response_s: f64,
    /// Maximum response time observed.
    pub max_response_s: f64,
    /// 95th-percentile response time.
    pub p95_response_s: f64,
    /// Mean nodes fetched per query.
    pub mean_nodes_per_query: f64,
    /// Mean utilization across disks over the simulated horizon.
    pub mean_disk_utilization: f64,
    /// Bus utilization over the simulated horizon.
    pub bus_utilization: f64,
    /// CPU utilization over the simulated horizon.
    pub cpu_utilization: f64,
    /// Time the last query completed.
    pub makespan_s: f64,
}

/// Index of the CPU that frees up first (least-loaded dispatch).
fn least_busy_cpu(cpus: &[Cpu]) -> usize {
    cpus.iter()
        .enumerate()
        .min_by_key(|(_, c)| c.busy_until())
        .map(|(i, _)| i)
        .expect("at least one CPU")
}

enum Event {
    Arrive(usize),
    DiskDone { q: usize, page: PageId },
    BusDone { q: usize, page: PageId },
    CpuDone { q: usize },
}

struct Session {
    algo: Box<dyn SimilaritySearch>,
    arrival: SimTime,
    outstanding: usize,
    fetched: Vec<(PageId, IndexNode)>,
    pending: Option<Step>,
    nodes_visited: u64,
    finished_at: Option<SimTime>,
}

/// An event-driven simulation of the disk-array system executing one
/// workload with one algorithm over any access method.
pub struct Simulation<'t, A: AccessMethod + ?Sized> {
    am: &'t A,
    params: SystemParams,
}

impl<'t, A: AccessMethod + ?Sized> Simulation<'t, A> {
    /// Creates a simulation over an access method with the given system
    /// parameters.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::Config`] if `params.num_disks` disagrees
    /// with the array backing the index — its pages are placed on that
    /// array, so simulating a differently-sized one would be meaningless.
    pub fn new(am: &'t A, params: SystemParams) -> Result<Self, QueryError> {
        if params.num_disks != am.num_disks() {
            return Err(QueryError::Config(format!(
                "simulation disk count must match the store the tree lives on \
                 (simulation has {}, array has {})",
                params.num_disks,
                am.num_disks()
            )));
        }
        Ok(Self { am, params })
    }

    /// Runs `workload` under `kind`, returning aggregate statistics.
    ///
    /// `seed` drives the stochastic parts of the timing model (rotational
    /// latencies); the workload carries its own arrival schedule.
    pub fn run(
        &self,
        kind: AlgorithmKind,
        workload: &Workload,
        seed: u64,
    ) -> Result<SimulationReport, QueryError> {
        let mut factory = |point: sqda_geom::Point, k: usize| kind.build(self.am, point, k);
        self.run_with_fallible(&mut factory, kind.name(), workload, seed)
    }

    /// Runs `workload` with algorithm instances produced by `factory`
    /// (used for parameter sweeps like the CRSS activation-bound
    /// ablation, where [`AlgorithmKind`] cannot carry the parameter).
    pub fn run_with<F>(
        &self,
        mut factory: F,
        name: &'static str,
        workload: &Workload,
        seed: u64,
    ) -> Result<SimulationReport, QueryError>
    where
        F: FnMut(sqda_geom::Point, usize) -> Box<dyn SimilaritySearch>,
    {
        let mut fallible =
            |point: sqda_geom::Point, k: usize| -> Result<Box<dyn SimilaritySearch>, QueryError> {
                Ok(factory(point, k))
            };
        self.run_with_fallible(&mut fallible, name, workload, seed)
    }

    fn run_with_fallible(
        &self,
        factory: &mut dyn FnMut(
            sqda_geom::Point,
            usize,
        ) -> Result<Box<dyn SimilaritySearch>, QueryError>,
        name: &'static str,
        workload: &Workload,
        seed: u64,
    ) -> Result<SimulationReport, QueryError> {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let mut disks: Vec<Disk> = (0..self.params.num_disks)
            .map(|_| Disk::new(self.params.disk.clone()))
            .collect();
        let mut bus = Bus::new(self.params.bus_transfer());
        let mut cpus: Vec<Cpu> = (0..self.params.num_cpus.max(1))
            .map(|_| Cpu::new(self.params.cpu_mips))
            .collect();
        let mut events: EventQueue<Event> = EventQueue::new();

        // Build one session per query. Oracle preparation (WOPTSS) happens
        // here, outside simulated time.
        let mut sessions: Vec<Session> = Vec::with_capacity(workload.queries.len());
        for wq in &workload.queries {
            let algo = factory(wq.point.clone(), wq.k)?;
            sessions.push(Session {
                algo,
                arrival: wq.arrival,
                outstanding: 0,
                fetched: Vec::new(),
                pending: None,
                nodes_visited: 0,
                finished_at: None,
            });
            events.schedule(wq.arrival, Event::Arrive(sessions.len() - 1));
        }

        let mut response_times = SampleStats::new();
        let mut total_nodes = 0u64;
        let mut makespan = SimTime::ZERO;

        while let Some((now, event)) = events.pop() {
            match event {
                Event::Arrive(q) => {
                    // Per the paper, a new query enters the system
                    // immediately; it pays the fixed startup cost on the
                    // CPU, then issues its first request (the root page).
                    let step = sessions[q].algo.start();
                    sessions[q].pending = Some(step);
                    let c = least_busy_cpu(&cpus);
                    let done = cpus[c].submit_duration(now, self.params.query_startup());
                    events.schedule(done, Event::CpuDone { q });
                }
                Event::CpuDone { q } => {
                    let step = sessions[q]
                        .pending
                        .take()
                        .expect("CPU completion without a pending step");
                    match step {
                        Step::Fetch(pages) => {
                            assert!(!pages.is_empty(), "empty fetch batch");
                            sessions[q].outstanding = pages.len();
                            sessions[q].nodes_visited += pages.len() as u64;
                            for page in pages {
                                let placement = self.am.placement(page)?;
                                let mut disk = placement.disk.index();
                                if self.params.mirrored_reads {
                                    // Shadowed disks: the replica lives
                                    // half the array away; serve the read
                                    // from whichever copy frees up first.
                                    let partner = (disk + self.params.num_disks as usize / 2)
                                        % self.params.num_disks as usize;
                                    if disks[partner].busy_until() < disks[disk].busy_until() {
                                        disk = partner;
                                    }
                                }
                                let done = disks[disk].submit(now, placement.cylinder, &mut rng);
                                events.schedule(done, Event::DiskDone { q, page });
                            }
                        }
                        Step::Done => {
                            let resp = now - sessions[q].arrival;
                            response_times.push(resp.as_secs_f64());
                            sessions[q].finished_at = Some(now);
                            total_nodes += sessions[q].nodes_visited;
                            makespan = makespan.max(now);
                        }
                    }
                }
                Event::DiskDone { q, page } => {
                    let done = bus.submit(now);
                    events.schedule(done, Event::BusDone { q, page });
                }
                Event::BusDone { q, page } => {
                    let node = self.am.read_index_node(page)?;
                    let session = &mut sessions[q];
                    session.fetched.push((page, node));
                    session.outstanding -= 1;
                    if session.outstanding == 0 {
                        let batch = std::mem::take(&mut session.fetched);
                        let result = session.algo.on_fetched(batch);
                        session.pending = Some(result.next);
                        let c = least_busy_cpu(&cpus);
                        let done = cpus[c].submit(now, result.cpu_instructions);
                        events.schedule(done, Event::CpuDone { q });
                    }
                }
            }
        }

        debug_assert!(
            sessions.iter().all(|s| s.finished_at.is_some()),
            "all queries must complete"
        );
        let n = sessions.len();
        let horizon = makespan;
        let mean_disk_utilization = if disks.is_empty() {
            0.0
        } else {
            disks.iter().map(|d| d.utilization(horizon)).sum::<f64>() / disks.len() as f64
        };
        Ok(SimulationReport {
            algorithm: name,
            completed: n,
            mean_response_s: response_times.mean(),
            std_response_s: response_times.std_dev(),
            max_response_s: response_times.max(),
            p95_response_s: response_times.percentile(95.0),
            mean_nodes_per_query: if n == 0 {
                0.0
            } else {
                total_nodes as f64 / n as f64
            },
            mean_disk_utilization,
            bus_utilization: bus.utilization(horizon),
            cpu_utilization: cpus.iter().map(|c| c.utilization(horizon)).sum::<f64>()
                / cpus.len() as f64,
            makespan_s: makespan.as_secs_f64(),
        })
    }
}
