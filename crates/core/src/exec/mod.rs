//! Executors: run the batch state machines either logically (counting
//! node accesses) or under the full event-driven disk-array timing model.

mod logical;
mod sim;

pub use logical::{run_query, run_query_with, QueryRun};
pub use sim::{mirror_partner, Simulation, SimulationReport};
