//! Executors: run the batch state machines logically (counting node
//! accesses), under the full event-driven disk-array timing model, or
//! against real files on the machine's clock.
//!
//! The three executors share one session/batch machinery ([`session`])
//! and one timestamp discipline ([`clock`]): the simulator drives it
//! with the virtual [`clock::VirtualClock`] advanced by its event
//! queue, the real-clock engine with [`clock::WallClock`] and an
//! [`sqda_storage::IoBackend`] for batched reads.

mod clock;
mod logical;
mod real;
mod session;
mod sim;

pub use clock::{EngineClock, VirtualClock, WallClock};
pub use logical::{run_query, run_query_with, QueryRun};
pub use real::{RealTimeEngine, RealTimeReport};
pub use session::mirror_partner;
pub use sim::{Simulation, SimulationReport};
