//! The logical executor: runs one query to completion, counting node
//! accesses (the effectiveness metric of Figures 8–9).

use crate::access::AccessMethod;
use crate::algo::{SimilaritySearch, Step};
use crate::error::QueryError;
use sqda_rstar::Neighbor;

/// The outcome of one logically executed query.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// The k answers, sorted by increasing distance.
    pub results: Vec<Neighbor>,
    /// Total nodes (pages) fetched, including the root.
    pub nodes_visited: u64,
    /// Number of fetch batches (round trips to the array).
    pub batches: u64,
    /// Largest single batch (peak intra-query parallelism demand).
    pub max_batch: usize,
    /// CPU instructions accumulated under the paper's cost model.
    pub cpu_instructions: u64,
}

/// Runs `algo` against any access method until completion.
///
/// Batches are fetched atomically: the algorithm receives all requested
/// nodes at once, exactly as the disk array would deliver them (order
/// within a batch is preserved but carries no timing meaning here).
pub fn run_query(
    am: &(impl AccessMethod + ?Sized),
    algo: &mut dyn SimilaritySearch,
) -> Result<QueryRun, QueryError> {
    let mut scratch = crate::QueryScratch::new();
    run_query_with(am, algo, &mut scratch)
}

/// [`run_query`] over a reusable [`crate::QueryScratch`]: the fetched-batch
/// buffer is borrowed from the scratch, so a sweep of queries re-fills one
/// allocation instead of building a fresh `Vec` per batch.
pub fn run_query_with(
    am: &(impl AccessMethod + ?Sized),
    algo: &mut dyn SimilaritySearch,
    scratch: &mut crate::QueryScratch,
) -> Result<QueryRun, QueryError> {
    let mut step = algo.start();
    let mut nodes_visited = 0u64;
    let mut batches = 0u64;
    let mut max_batch = 0usize;
    let mut cpu_instructions = 0u64;
    scratch.batch.clear();
    while let Step::Fetch(pages) = step {
        assert!(!pages.is_empty(), "{}: empty fetch batch", algo.name());
        nodes_visited += pages.len() as u64;
        batches += 1;
        max_batch = max_batch.max(pages.len());
        for page in pages {
            scratch.batch.push((page, am.read_index_node(page)?));
        }
        let result = algo.on_fetched(&mut scratch.batch);
        debug_assert!(scratch.batch.is_empty(), "algorithms drain the batch");
        scratch.batch.clear();
        cpu_instructions += result.cpu_instructions;
        step = result.next;
    }
    Ok(QueryRun {
        results: algo.results(),
        nodes_visited,
        batches,
        max_batch,
        cpu_instructions,
    })
}
