//! Query-session machinery shared by the simulated and real-clock
//! engines.
//!
//! A [`Session`] carries one in-flight query through the engine loop:
//! the algorithm state machine, its outstanding-page count, the staging
//! buffer for fetched nodes, and the per-component response-time
//! accumulators that feed `query_complete` events. The simulator
//! instantiates it over [`SimTime`](sqda_simkernel::SimTime); the
//! real-clock engine over wall-clock nanoseconds. Read routing under
//! fault state ([`route_read`], [`mirror_partner`]) and the
//! outstanding-count invariant ([`settle_outstanding`]) live here too,
//! so both engines — and any future one — share one definition of how a
//! session behaves.

use crate::access::IndexNode;
use crate::algo::{SimilaritySearch, Step};
use crate::error::QueryError;
use sqda_simkernel::{Cpu, Disk, SimTime};
use sqda_storage::PageId;

/// The disk holding the replica of `disk`'s pages under shadowed
/// (mirrored) operation, or `None` if the disk is unpaired.
///
/// Disks are shadowed in pairs `(d, d + n/2)` for `d < n/2`; the pairing
/// is an involution, so a read is only ever redirected to the one disk
/// that actually holds the replica. With an odd array the last disk has
/// no partner and always serves its own reads. (The old `(d + n/2) mod
/// n` rule was not an involution for odd `n` and could send a read to a
/// disk without the page.)
pub fn mirror_partner(disk: usize, num_disks: usize) -> Option<usize> {
    let half = num_disks / 2;
    if disk < half {
        Some(disk + half)
    } else if disk < 2 * half {
        Some(disk - half)
    } else {
        None
    }
}

/// Index of the CPU that frees up first (least-loaded dispatch).
pub(crate) fn least_busy_cpu(cpus: &[Cpu]) -> usize {
    cpus.iter()
        .enumerate()
        .min_by_key(|(_, c)| c.busy_until())
        .map(|(i, _)| i)
        .expect("at least one CPU")
}

/// Where a page read should be served under the current fault state.
pub(crate) enum Route {
    /// Serve from this disk (the healthy path; may already be the
    /// mirror partner under the earliest-free-replica rule).
    Serve(usize),
    /// The primary is failed; its shadow replica serves the read.
    Degraded { primary: usize, replica: usize },
    /// No live replica exists right now.
    Unavailable { primary: usize },
}

/// Picks the disk to serve a read of a page placed on `primary`,
/// honouring fail-stop state when `faulted`. The fault-free branch is
/// the pre-fault routing verbatim, which is what keeps empty-plan runs
/// byte-identical.
pub(crate) fn route_read(
    primary: usize,
    now: SimTime,
    disks: &[Disk],
    mirrored: bool,
    faulted: bool,
) -> Route {
    let partner = if mirrored {
        mirror_partner(primary, disks.len())
    } else {
        None
    };
    if !faulted {
        // Shadowed disks: serve the read from whichever replica frees
        // up first.
        if let Some(p) = partner {
            if disks[p].busy_until() < disks[primary].busy_until() {
                return Route::Serve(p);
            }
        }
        return Route::Serve(primary);
    }
    let primary_up = !disks[primary].is_failed(now);
    let partner_up = partner.map(|p| !disks[p].is_failed(now));
    match (primary_up, partner, partner_up) {
        (true, Some(p), Some(true)) => {
            // Both replicas alive: the earliest-free rule, as above.
            if disks[p].busy_until() < disks[primary].busy_until() {
                Route::Serve(p)
            } else {
                Route::Serve(primary)
            }
        }
        (true, _, _) => Route::Serve(primary),
        (false, Some(p), Some(true)) => Route::Degraded {
            primary,
            replica: p,
        },
        (false, _, _) => Route::Unavailable { primary },
    }
}

/// Decrements a session's outstanding-page count on a delivery.
///
/// A duplicate or spurious completion used to wrap the counter around
/// in release builds (the guarding `debug_assert` compiled out),
/// leaving a query that never finishes and a silently wrong report;
/// it now surfaces as a typed invariant error.
pub(crate) fn settle_outstanding(outstanding: usize, q: usize) -> Result<usize, QueryError> {
    outstanding.checked_sub(1).ok_or_else(|| {
        QueryError::Invariant(format!(
            "spurious BusDone for query {q}: no outstanding pages in flight"
        ))
    })
}

/// Per-session response-time component accumulators, filled only while
/// recording is enabled. All scalars — lives inline in the session.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SessionObs {
    pub(crate) disk_queue_ns: u64,
    pub(crate) seek_ns: u64,
    pub(crate) rotation_ns: u64,
    pub(crate) transfer_ns: u64,
    pub(crate) bus_queue_ns: u64,
    pub(crate) bus_ns: u64,
    pub(crate) cpu_queue_ns: u64,
    pub(crate) cpu_ns: u64,
    pub(crate) batches: u32,
}

/// One in-flight query session, generic over the engine's time instant:
/// [`SimTime`](sqda_simkernel::SimTime) under the virtual clock,
/// nanoseconds (`u64`) under the wall clock.
pub(crate) struct Session<T> {
    pub(crate) algo: Box<dyn SimilaritySearch>,
    pub(crate) arrival: T,
    pub(crate) outstanding: usize,
    pub(crate) fetched: Vec<(PageId, IndexNode)>,
    pub(crate) pending: Option<Step>,
    pub(crate) nodes_visited: u64,
    pub(crate) finished_at: Option<T>,
    /// Set when the query aborts (degraded mode); the session's
    /// remaining in-flight events are ignored from then on.
    pub(crate) failed: bool,
    pub(crate) obs: SessionObs,
}

impl<T> Session<T> {
    /// A fresh session for a query arriving at `arrival`.
    pub(crate) fn new(algo: Box<dyn SimilaritySearch>, arrival: T) -> Self {
        Self {
            algo,
            arrival,
            outstanding: 0,
            fetched: Vec::new(),
            pending: None,
            nodes_visited: 0,
            finished_at: None,
            failed: false,
            obs: SessionObs::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settle_outstanding_counts_down() {
        assert!(matches!(settle_outstanding(3, 0), Ok(2)));
        assert!(matches!(settle_outstanding(1, 0), Ok(0)));
    }

    #[test]
    fn spurious_bus_done_is_a_typed_invariant_error() {
        // Regression: this used to be `outstanding -= 1`, which wraps
        // to usize::MAX in release builds and leaves the query spinning.
        let err = settle_outstanding(0, 7).unwrap_err();
        match err {
            QueryError::Invariant(msg) => {
                assert!(msg.contains("spurious BusDone"), "{msg}");
                assert!(msg.contains('7'), "{msg}");
            }
            other => panic!("expected Invariant, got {other:?}"),
        }
    }

    #[test]
    fn mirror_partner_pairs_and_involutes() {
        // Even array: perfect pairing, involution, no self-pairing.
        for n in [2usize, 4, 6, 10, 128] {
            for d in 0..n {
                let p = mirror_partner(d, n).expect("even arrays pair fully");
                assert_ne!(p, d, "n={n} d={d}");
                assert_eq!(mirror_partner(p, n), Some(d), "n={n} d={d}");
            }
        }
        // Odd array: the last disk is unpaired, the rest involute.
        for n in [3usize, 5, 7, 11] {
            assert_eq!(mirror_partner(n - 1, n), None, "n={n}");
            for d in 0..n - 1 {
                let p = mirror_partner(d, n).expect("non-last disks pair");
                assert_ne!(p, d, "n={n} d={d}");
                assert_eq!(mirror_partner(p, n), Some(d), "n={n} d={d}");
            }
        }
        // Degenerate single-disk array: nothing to mirror onto.
        assert_eq!(mirror_partner(0, 1), None);
    }
}
