//! The engine clock seam.
//!
//! The session/batch machinery in this module tree runs under two
//! notions of time: the *virtual* clock of the event-driven simulator
//! (advanced by popping the [`EventQueue`](sqda_simkernel::EventQueue))
//! and the *wall* clock of the real-file engine (advanced by the
//! machine). Observability events are stamped through [`EngineClock`]
//! in both modes, so a trace consumer sees one timestamp discipline —
//! nanoseconds since run start — regardless of which engine produced
//! the stream.

use sqda_simkernel::SimTime;
use std::time::Instant;

/// Monotonic nanoseconds since the start of an engine run.
pub trait EngineClock {
    /// Current time in nanoseconds since run start.
    fn now_ns(&self) -> u64;
}

/// The simulator's clock: holds the timestamp of the event currently
/// being processed. The event loop advances it on every pop, so
/// `now_ns` is exactly the popped event's time — recording through it
/// is bit-identical to stamping with the event time directly.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: SimTime,
}

impl VirtualClock {
    /// A clock at simulated time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances to the time of the event being processed. Events pop in
    /// non-decreasing time order, so the clock never runs backwards.
    #[inline]
    pub fn advance(&mut self, to: SimTime) {
        debug_assert!(to >= self.now, "virtual clock cannot run backwards");
        self.now = to;
    }

    /// The current simulated instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }
}

impl EngineClock for VirtualClock {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.now.as_nanos()
    }
}

/// The machine's clock, anchored at engine start so timestamps are
/// comparable to a simulated run's (both count from zero).
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A clock anchored at the current instant.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineClock for WallClock {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_tracks_event_times() {
        let mut clock = VirtualClock::new();
        assert_eq!(clock.now_ns(), 0);
        clock.advance(SimTime::from_nanos(42));
        assert_eq!(clock.now_ns(), 42);
        clock.advance(SimTime::from_nanos(42)); // equal times are fine
        assert_eq!(clock.now(), SimTime::from_nanos(42));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "backwards")]
    fn virtual_clock_rejects_time_travel() {
        let mut clock = VirtualClock::new();
        clock.advance(SimTime::from_nanos(10));
        clock.advance(SimTime::from_nanos(9));
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = WallClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }
}
