//! The real-clock executor: the same session/batch machinery as the
//! simulator, driven by the machine's clock and a batched I/O backend
//! instead of the event queue and the disk timing model.
//!
//! One k-NN activation round becomes one [`IoBackend::submit_batch`]
//! call — over a [`ThreadedFileBackend`](sqda_storage::ThreadedFileBackend)
//! the batch's pages are read concurrently across the per-disk files,
//! which is the paper's intra-query parallelism on real hardware. The
//! engine runs a closed-loop workload: `concurrency` workers each drive
//! one query session at a time to completion, so "arrival" is the
//! moment a worker picks the query up (the Poisson schedule of a
//! [`Workload`] only has meaning under the simulator).
//!
//! Observability uses the same vocabulary as the simulated engine —
//! `query_arrive`, `batch_issued`, `disk_service`, `cpu_slice`,
//! `query_complete` — stamped through [`WallClock`] instead of the
//! virtual clock. Wall-clock `disk_service` carries measured queue and
//! transfer times (seek/rotation are not separable on real files), and
//! there are no `bus_transfer` events: the memory bus is not observable
//! from user space.

use super::clock::{EngineClock, WallClock};
use super::session::{settle_outstanding, Session, SessionObs};
use crate::access::{AccessMethod, IndexNode};
use crate::algo::{AlgorithmKind, Step};
use crate::error::QueryError;
use crate::workload::Workload;
use sqda_obs::{Event as ObsEvent, LiveTelemetry, NullRecorder, QueryObservation, Recorder};
use sqda_rstar::Neighbor;
use sqda_storage::{IoBackend, PageId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Aggregated results of one real-clock run.
#[derive(Debug, Clone)]
pub struct RealTimeReport {
    /// Which algorithm ran.
    pub algorithm: &'static str,
    /// Which I/O backend served the reads.
    pub backend: &'static str,
    /// Concurrent worker sessions.
    pub concurrency: usize,
    /// Queries completed.
    pub completed: usize,
    /// Queries aborted with a typed error.
    pub failed: usize,
    /// Wall-clock duration of the whole run, in seconds.
    pub wall_s: f64,
    /// Completed queries per wall-clock second.
    pub qps: f64,
    /// Mean response time in seconds (pickup to completion).
    pub mean_response_s: f64,
    /// Median response time.
    pub p50_response_s: f64,
    /// 95th-percentile response time.
    pub p95_response_s: f64,
    /// 99th-percentile response time.
    pub p99_response_s: f64,
    /// Maximum response time observed.
    pub max_response_s: f64,
    /// Mean nodes fetched per completed query.
    pub mean_nodes_per_query: f64,
    /// Response time of every completed query, in workload index order.
    pub responses: Vec<f64>,
    /// The k-NN answers of every query, in workload index order
    /// (empty for aborted queries).
    pub answers: Vec<Vec<Neighbor>>,
    /// The typed error of every aborted query, keyed by workload index.
    pub failures: Vec<(u32, QueryError)>,
}

/// Linear-interpolated percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }
}

/// Outcome of one driven session, before aggregation.
struct SessionOutcome {
    index: u32,
    result: Result<CompletedSession, QueryError>,
}

/// Per-query introspection accumulators behind [`RealTimeEngine::
/// explain_query`]: everything a [`sqda_obs::QueryExplain`] reports
/// beyond the [`SessionObs`] timing accumulators. Collected inline in
/// `drive_session` so an explained query runs the exact same code path
/// (and produces the exact same answers and I/O) as a bare one.
struct ExplainProbe {
    /// Node accesses per tree level, index 0 = root.
    level_accesses: Vec<u64>,
    /// Pages per fetch batch, in issue order.
    batch_sizes: Vec<u32>,
    /// Lemma-1 threshold (`d_th`) after each batch, when the algorithm
    /// exposes it.
    thresholds: Vec<f64>,
    /// Physical reads per disk for this query.
    reads_per_disk: Vec<u64>,
    /// Node lookups served by the decoded-node cache.
    cache_hits: u64,
    /// Node lookups that went to the I/O backend.
    cache_misses: u64,
}

impl ExplainProbe {
    fn new(num_disks: u32) -> Self {
        Self {
            level_accesses: Vec::new(),
            batch_sizes: Vec::new(),
            thresholds: Vec::new(),
            reads_per_disk: vec![0; num_disks as usize],
            cache_hits: 0,
            cache_misses: 0,
        }
    }
}

struct CompletedSession {
    response_ns: u64,
    nodes_visited: u64,
    answers: Vec<Neighbor>,
    /// Component accumulators, populated when recording or live
    /// telemetry asked for them (zeros otherwise).
    obs: SessionObs,
}

/// Rewrites the query id an event is tagged with: recorder streams use
/// workload indices (what the post-hoc tooling joins on), the shared
/// flight recorder uses the global serving ids [`LiveTelemetry`] hands
/// out, so one constructed event serves both.
fn retag(event: ObsEvent, query: u32) -> ObsEvent {
    let mut ev = event;
    match &mut ev {
        ObsEvent::QueryArrive { query: q }
        | ObsEvent::QueryComplete { query: q, .. }
        | ObsEvent::BatchIssued { query: q, .. }
        | ObsEvent::DiskService { query: q, .. }
        | ObsEvent::BusTransfer { query: q, .. }
        | ObsEvent::CpuSlice { query: q, .. }
        | ObsEvent::CrssState { query: q, .. }
        | ObsEvent::DegradedRead { query: q, .. }
        | ObsEvent::ReadRetry { query: q, .. }
        | ObsEvent::QueryAbort { query: q, .. } => *q = query,
        ObsEvent::DiskFailed { .. }
        | ObsEvent::DiskRecovered { .. }
        | ObsEvent::DiskDegraded { .. } => {}
    }
    ev
}

/// The wall-clock twin of [`super::Simulation`]: executes a workload
/// with the same batch state machines, real reads through an
/// [`IoBackend`], and the machine's clock.
pub struct RealTimeEngine<'t, A: AccessMethod + ?Sized> {
    am: &'t A,
    backend: Arc<dyn IoBackend>,
    live: Option<Arc<LiveTelemetry>>,
}

impl<'t, A: AccessMethod + ?Sized> RealTimeEngine<'t, A> {
    /// Creates an engine over an access method and an I/O backend.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::Config`] if the backend's array geometry
    /// disagrees with the one the index is declustered over.
    pub fn new(am: &'t A, backend: Arc<dyn IoBackend>) -> Result<Self, QueryError> {
        if backend.num_disks() != am.num_disks() {
            return Err(QueryError::Config(format!(
                "backend disk count must match the store the tree lives on \
                 (backend has {}, array has {})",
                backend.num_disks(),
                am.num_disks()
            )));
        }
        Ok(Self {
            am,
            backend,
            live: None,
        })
    }

    /// Attaches a live telemetry registry: every run feeds query
    /// counters, component histograms, the sliding window, the flight
    /// recorder and the slow-query log — concurrently, while queries
    /// are still in flight. Answers and I/O stay byte-identical; the
    /// registry only observes.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::Config`] if the registry's disk count
    /// disagrees with the backend's array.
    pub fn with_telemetry(mut self, live: Arc<LiveTelemetry>) -> Result<Self, QueryError> {
        if live.num_disks() != self.backend.num_disks() {
            return Err(QueryError::Config(format!(
                "telemetry disk count must match the I/O backend \
                 (telemetry has {}, backend has {})",
                live.num_disks(),
                self.backend.num_disks()
            )));
        }
        self.live = Some(live);
        Ok(self)
    }

    /// The attached live telemetry registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<LiveTelemetry>> {
        self.live.as_ref()
    }

    /// The access method the engine runs over.
    pub fn access_method(&self) -> &A {
        self.am
    }

    /// Runs `queries` as one shared-traversal k-NN batch (see
    /// [`crate::batch`]): the batch descends the tree once, decodes each
    /// wavefront page a single time, and serves every interested query
    /// from the shared block via the batch distance kernels. Answers are
    /// bit-identical to running FPSS per query through [`Self::run`].
    /// Each round probes the node cache first, then reads the misses
    /// through this engine's [`IoBackend`] as one submitted batch — over
    /// a threaded backend the whole wavefront reads concurrently across
    /// the per-disk files, the same intra-round parallelism the
    /// per-session scheduler gets. Returns the batch report and the
    /// wall-clock seconds the batch took.
    pub fn run_query_batch(
        &self,
        queries: &[sqda_geom::Point],
        k: usize,
    ) -> Result<(crate::batch::BatchKnnReport, f64), QueryError> {
        let started = Instant::now();
        let report = crate::batch::batch_knn_backend(self.am, self.backend.as_ref(), queries, k)?;
        Ok((report, started.elapsed().as_secs_f64()))
    }

    /// Runs `workload` under `kind` with `concurrency` worker sessions.
    pub fn run(
        &self,
        kind: AlgorithmKind,
        workload: &Workload,
        concurrency: usize,
    ) -> Result<RealTimeReport, QueryError> {
        self.run_recorded(kind, workload, concurrency, &mut NullRecorder)
    }

    /// Like [`RealTimeEngine::run`], but narrates the run through
    /// `recorder`. Workers buffer events locally; the merged stream is
    /// delivered to the recorder in timestamp order after the run.
    pub fn run_recorded(
        &self,
        kind: AlgorithmKind,
        workload: &Workload,
        concurrency: usize,
        recorder: &mut dyn Recorder,
    ) -> Result<RealTimeReport, QueryError> {
        let concurrency = concurrency.max(1);
        let recording = recorder.enabled();
        let flight_on = self.live.as_ref().is_some_and(|live| live.flight_enabled());
        let clock = WallClock::new();
        let started = Instant::now();
        let cursor = AtomicUsize::new(0);

        // Per-worker results, merged after the scope joins.
        let mut worker_outcomes: Vec<Vec<SessionOutcome>> = Vec::new();
        let mut worker_events: Vec<Vec<(u64, ObsEvent)>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..concurrency)
                .map(|worker| {
                    let cursor = &cursor;
                    let clock = &clock;
                    scope.spawn(move || {
                        let mut outcomes = Vec::new();
                        let mut events: Vec<(u64, ObsEvent)> = Vec::new();
                        let mut scratch = crate::QueryScratch::new();
                        // Tree level of every page this worker has seen
                        // (root = 0); only maintained while some event
                        // consumer (recorder or flight ring) wants it.
                        let mut levels: HashMap<PageId, u16> = HashMap::new();
                        if recording || flight_on {
                            levels.insert(self.am.root_page(), 0);
                        }
                        loop {
                            let q = cursor.fetch_add(1, Ordering::Relaxed);
                            if q >= workload.queries.len() {
                                break;
                            }
                            let wq = &workload.queries[q];
                            // Global serving id: counts the pickup and
                            // tags this query's flight events.
                            let live_q = self.live.as_ref().map(|live| live.begin_query());
                            let result = kind
                                .build_with(self.am, wq.point.clone(), wq.k, &mut scratch)
                                .and_then(|algo| {
                                    self.drive_session(
                                        algo,
                                        q as u32,
                                        live_q,
                                        worker as u16,
                                        clock,
                                        recording,
                                        &mut events,
                                        &mut levels,
                                        None,
                                    )
                                });
                            if let Some(live) = &self.live {
                                let query = live_q.unwrap_or(q as u32);
                                let observation = match &result {
                                    Ok(done) => QueryObservation {
                                        query,
                                        algo: kind.name(),
                                        k: wq.k,
                                        answers: done.answers.len(),
                                        nodes: done.nodes_visited,
                                        batches: done.obs.batches,
                                        response_ns: done.response_ns,
                                        disk_queue_ns: done.obs.disk_queue_ns,
                                        disk_service_ns: done.obs.seek_ns
                                            + done.obs.rotation_ns
                                            + done.obs.transfer_ns,
                                        cpu_ns: done.obs.cpu_ns,
                                        failed: false,
                                    },
                                    Err(_) => QueryObservation {
                                        query,
                                        algo: kind.name(),
                                        k: wq.k,
                                        answers: 0,
                                        nodes: 0,
                                        batches: 0,
                                        response_ns: 0,
                                        disk_queue_ns: 0,
                                        disk_service_ns: 0,
                                        cpu_ns: 0,
                                        failed: true,
                                    },
                                };
                                live.observe_query(&observation);
                            }
                            outcomes.push(SessionOutcome {
                                index: q as u32,
                                result,
                            });
                        }
                        (outcomes, events)
                    })
                })
                .collect();
            for handle in handles {
                let (outcomes, events) = handle.join().expect("engine worker panicked");
                worker_outcomes.push(outcomes);
                worker_events.push(events);
            }
        });
        let wall_s = started.elapsed().as_secs_f64();

        if recording {
            let mut merged: Vec<(u64, ObsEvent)> = worker_events.into_iter().flatten().collect();
            merged.sort_by_key(|(ts, _)| *ts);
            for (ts, event) in merged {
                recorder.record(ts, event);
            }
        }

        let mut outcomes: Vec<SessionOutcome> = worker_outcomes.into_iter().flatten().collect();
        outcomes.sort_by_key(|o| o.index);
        let mut responses = Vec::new();
        let mut answers = vec![Vec::new(); workload.queries.len()];
        let mut failures = Vec::new();
        let mut total_nodes = 0u64;
        for outcome in outcomes {
            match outcome.result {
                Ok(done) => {
                    responses.push(done.response_ns as f64 / 1e9);
                    total_nodes += done.nodes_visited;
                    answers[outcome.index as usize] = done.answers;
                }
                Err(e) => failures.push((outcome.index, e)),
            }
        }
        let completed = responses.len();
        let mut sorted = responses.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        Ok(RealTimeReport {
            algorithm: kind.name(),
            backend: self.backend.name(),
            concurrency,
            completed,
            failed: failures.len(),
            wall_s,
            qps: if wall_s > 0.0 {
                completed as f64 / wall_s
            } else {
                0.0
            },
            mean_response_s: if completed == 0 {
                0.0
            } else {
                sorted.iter().sum::<f64>() / completed as f64
            },
            p50_response_s: percentile(&sorted, 0.50),
            p95_response_s: percentile(&sorted, 0.95),
            p99_response_s: percentile(&sorted, 0.99),
            max_response_s: sorted.last().copied().unwrap_or(0.0),
            mean_nodes_per_query: if completed == 0 {
                0.0
            } else {
                total_nodes as f64 / completed as f64
            },
            responses,
            answers,
            failures,
        })
    }

    /// Runs one k-NN query through the exact per-session machinery of
    /// [`Self::run`] and returns its introspection record next to its
    /// answers: per-level node accesses, batch sizes, the lemma-1
    /// threshold trajectory, the per-disk read distribution, the cache
    /// hit/miss split and the queue/service/CPU time breakdown.
    ///
    /// The query flows through the attached [`LiveTelemetry`] (serving
    /// id, counters, histograms, flight ring) exactly like a served
    /// query; the probe only observes, so answers and store `IoStats`
    /// are identical to an unexplained run. A slow-query-log entry for
    /// the query carries the full explain record, and when `predicted`
    /// is given the observed-minus-predicted residuals feed the
    /// telemetry's drift windows. Callers without an analytical model
    /// pass `lambda` 0, `calibrated` false and `predicted` `None`; the
    /// record then reports observations with null predictions.
    pub fn explain_query(
        &self,
        kind: AlgorithmKind,
        point: sqda_geom::Point,
        k: usize,
        lambda: f64,
        calibrated: bool,
        predicted: Option<sqda_obs::Prediction>,
    ) -> Result<(sqda_obs::QueryExplain, Vec<Neighbor>), QueryError> {
        let clock = WallClock::new();
        let mut scratch = crate::QueryScratch::new();
        let mut events: Vec<(u64, ObsEvent)> = Vec::new();
        let mut levels: HashMap<PageId, u16> = HashMap::new();
        levels.insert(self.am.root_page(), 0);
        let live_q = self.live.as_ref().map(|live| live.begin_query());
        let query = live_q.unwrap_or(0);
        let mut probe = ExplainProbe::new(self.am.num_disks());
        let result = kind
            .build_with(self.am, point, k, &mut scratch)
            .and_then(|algo| {
                self.drive_session(
                    algo,
                    query,
                    live_q,
                    0,
                    &clock,
                    false,
                    &mut events,
                    &mut levels,
                    Some(&mut probe),
                )
            });
        let done = match result {
            Ok(done) => done,
            Err(e) => {
                if let Some(live) = &self.live {
                    live.observe_query(&QueryObservation {
                        query,
                        algo: kind.name(),
                        k,
                        answers: 0,
                        nodes: 0,
                        batches: 0,
                        response_ns: 0,
                        disk_queue_ns: 0,
                        disk_service_ns: 0,
                        cpu_ns: 0,
                        failed: true,
                    });
                }
                return Err(e);
            }
        };
        let disk_service_ns = done.obs.seek_ns + done.obs.rotation_ns + done.obs.transfer_ns;
        let explain = sqda_obs::QueryExplain {
            query,
            algo: kind.name().to_string(),
            k,
            answers: done.answers.len(),
            nodes: done.nodes_visited,
            batches: done.obs.batches,
            level_accesses: probe.level_accesses,
            batch_sizes: probe.batch_sizes,
            threshold_trajectory: probe.thresholds,
            reads_per_disk: probe.reads_per_disk,
            cache_hits: probe.cache_hits,
            cache_misses: probe.cache_misses,
            response_ms: done.response_ns as f64 / 1e6,
            disk_queue_ms: done.obs.disk_queue_ns as f64 / 1e6,
            disk_service_ms: disk_service_ns as f64 / 1e6,
            cpu_ms: done.obs.cpu_ns as f64 / 1e6,
            lambda,
            calibrated,
            predicted,
        };
        if let Some(live) = &self.live {
            let record = explain.to_json();
            live.observe_query_explained(
                &QueryObservation {
                    query,
                    algo: kind.name(),
                    k,
                    answers: done.answers.len(),
                    nodes: done.nodes_visited,
                    batches: done.obs.batches,
                    response_ns: done.response_ns,
                    disk_queue_ns: done.obs.disk_queue_ns,
                    disk_service_ns,
                    cpu_ns: done.obs.cpu_ns,
                    failed: false,
                },
                Some(&record),
            );
            if let Some(accesses) = explain.residual_accesses() {
                // Saturated predictions have no latency residual; NaN is
                // dropped by the window, the access residual still lands.
                let latency = explain.residual_response_ms().unwrap_or(f64::NAN);
                live.observe_residual(accesses, latency);
            }
        }
        Ok((explain, done.answers))
    }

    /// Drives one session from `start` to `Done`: probe the node cache,
    /// submit the misses as one batch, decode completions, feed the
    /// algorithm — the simulator's Fetch/BusDone/CpuDone cycle with the
    /// event queue replaced by real completion delivery.
    #[allow(clippy::too_many_arguments)]
    fn drive_session(
        &self,
        algo: Box<dyn crate::SimilaritySearch>,
        q: u32,
        live_q: Option<u32>,
        worker: u16,
        clock: &WallClock,
        recording: bool,
        events: &mut Vec<(u64, ObsEvent)>,
        levels: &mut HashMap<PageId, u16>,
        mut probe: Option<&mut ExplainProbe>,
    ) -> Result<CompletedSession, QueryError> {
        // Four independent consumers of this session's observability,
        // all free to be off: the post-hoc recorder (workload-indexed
        // events), the flight ring (serving-id events, live clock), the
        // live aggregates (which need only the accumulators), and the
        // EXPLAIN probe (per-level/per-disk/threshold introspection).
        let live = self.live.as_deref();
        let flight = live.filter(|l| l.flight_enabled());
        let probing = probe.is_some();
        let observing = recording || live.is_some() || probing;
        let emitting = recording || flight.is_some();
        let tracking_levels = emitting || probing;
        let fq = live_q.unwrap_or(q);
        let arrival = clock.now_ns();
        let mut session = Session::new(algo, arrival);
        if recording {
            events.push((arrival, ObsEvent::QueryArrive { query: q }));
        }
        if let Some(l) = flight {
            l.record_event(l.now_ns(), ObsEvent::QueryArrive { query: fq });
        }
        session.pending = Some(session.algo.start());
        // Completions arrive in finish order; the batch is re-assembled
        // in request order so algorithms see exactly what the logical
        // and simulated executors deliver.
        let mut decoded: HashMap<PageId, IndexNode> = HashMap::new();
        let mut misses: Vec<PageId> = Vec::new();
        loop {
            let step = session
                .pending
                .take()
                .ok_or_else(|| QueryError::Invariant(format!("query {q} lost its pending step")))?;
            let pages = match step {
                Step::Done => break,
                Step::Fetch(pages) => pages,
            };
            if pages.is_empty() {
                return Err(QueryError::Invariant(format!(
                    "query {q} issued an empty fetch batch"
                )));
            }
            session.outstanding = pages.len();
            session.nodes_visited += pages.len() as u64;
            if observing {
                session.obs.batches += 1;
            }
            if let Some(l) = live {
                l.batch_size.observe(pages.len() as f64);
            }
            if let Some(p) = probe.as_deref_mut() {
                p.batch_sizes.push(pages.len() as u32);
                for page in &pages {
                    let l = levels.get(page).copied().unwrap_or_default() as usize;
                    if p.level_accesses.len() <= l {
                        p.level_accesses.resize(l + 1, 0);
                    }
                    p.level_accesses[l] += 1;
                }
            }
            if emitting {
                let mut level = u16::MAX;
                let mut level_max = 0u16;
                for page in &pages {
                    let l = levels.get(page).copied().unwrap_or_default();
                    level = level.min(l);
                    level_max = level_max.max(l);
                }
                let ev = ObsEvent::BatchIssued {
                    query: q,
                    level,
                    level_max,
                    size: pages.len() as u32,
                };
                if recording {
                    events.push((clock.now_ns(), ev));
                }
                if let Some(l) = flight {
                    l.record_event(l.now_ns(), retag(ev, fq));
                }
            }
            // Cache probes first (hit/miss accounting identical to the
            // read-through path), then one batched submission for the
            // misses: the whole activation round reads in parallel.
            decoded.clear();
            misses.clear();
            for &page in &pages {
                match self.am.cached_index_node(page)? {
                    Some(node) => {
                        if let Some(p) = probe.as_deref_mut() {
                            p.cache_hits += 1;
                        }
                        decoded.insert(page, node);
                    }
                    None => {
                        if let Some(p) = probe.as_deref_mut() {
                            p.cache_misses += 1;
                        }
                        misses.push(page);
                    }
                }
            }
            if !misses.is_empty() {
                let rx = self.backend.submit_batch(&misses);
                for _ in 0..misses.len() {
                    let completion = rx.recv().map_err(|_| {
                        QueryError::Invariant(format!(
                            "query {q}: I/O backend dropped a batch mid-flight"
                        ))
                    })?;
                    let bytes = completion.result?;
                    if observing {
                        session.obs.disk_queue_ns += completion.queue_ns;
                        session.obs.transfer_ns += completion.service_ns;
                    }
                    if let Some(p) = probe.as_deref_mut() {
                        if let Some(slot) = p.reads_per_disk.get_mut(completion.disk as usize) {
                            *slot += 1;
                        }
                    }
                    if emitting {
                        let level = levels.get(&completion.page).copied().unwrap_or_default();
                        let ev = ObsEvent::DiskService {
                            query: q,
                            disk: completion.disk as u16,
                            cylinder: completion.cylinder,
                            level,
                            queue_ns: completion.queue_ns,
                            seek_ns: 0,
                            rotation_ns: 0,
                            transfer_ns: completion.service_ns,
                            queue_depth: completion.queue_depth,
                        };
                        if recording {
                            events.push((clock.now_ns(), ev));
                        }
                        if let Some(l) = flight {
                            l.record_event(l.now_ns(), retag(ev, fq));
                        }
                    }
                    let node = self.am.decode_index_node(completion.page, bytes)?;
                    decoded.insert(completion.page, node);
                }
            }
            for &page in &pages {
                let node = decoded.remove(&page).ok_or_else(|| {
                    QueryError::Invariant(format!(
                        "query {q}: page {page:?} requested but never delivered"
                    ))
                })?;
                if tracking_levels {
                    if let IndexNode::Internal(block) = &node {
                        let child_level = levels.get(&page).copied().unwrap_or_default() + 1;
                        for child in block.children() {
                            levels.insert(child, child_level);
                        }
                    }
                }
                session.fetched.push((page, node));
                session.outstanding = settle_outstanding(session.outstanding, q as usize)?;
            }
            debug_assert_eq!(session.outstanding, 0);
            let cpu_start = Instant::now();
            let result = session.algo.on_fetched(&mut session.fetched);
            let cpu_ns = cpu_start.elapsed().as_nanos() as u64;
            debug_assert!(session.fetched.is_empty(), "algorithms drain the batch");
            session.fetched.clear();
            session.pending = Some(result.next);
            if observing {
                session.obs.cpu_ns += cpu_ns;
            }
            if let Some(pr) = probe.as_deref_mut() {
                if let Some(p) = session.algo.progress() {
                    pr.thresholds.push(p.d_th_sq.sqrt());
                }
            }
            if emitting {
                let ev = ObsEvent::CpuSlice {
                    query: q,
                    cpu: worker,
                    queue_ns: 0,
                    exec_ns: cpu_ns,
                    instructions: result.cpu_instructions,
                };
                if recording {
                    events.push((clock.now_ns(), ev));
                }
                if let Some(l) = flight {
                    l.record_event(l.now_ns(), retag(ev, fq));
                }
                if let Some(p) = session.algo.progress() {
                    let ev = ObsEvent::CrssState {
                        query: q,
                        d_th_sq: p.d_th_sq,
                        stack_runs: p.stack_runs,
                        stack_candidates: p.stack_candidates,
                    };
                    if recording {
                        events.push((clock.now_ns(), ev));
                    }
                    if let Some(l) = flight {
                        l.record_event(l.now_ns(), retag(ev, fq));
                    }
                }
            }
        }
        let now = clock.now_ns();
        session.finished_at = Some(now);
        let response_ns = now.saturating_sub(arrival);
        if emitting {
            let obs = session.obs;
            let ev = ObsEvent::QueryComplete {
                query: q,
                response_ns,
                nodes: session.nodes_visited,
                batches: obs.batches,
                disk_queue_ns: obs.disk_queue_ns,
                seek_ns: obs.seek_ns,
                rotation_ns: obs.rotation_ns,
                transfer_ns: obs.transfer_ns,
                bus_queue_ns: obs.bus_queue_ns,
                bus_ns: obs.bus_ns,
                cpu_queue_ns: obs.cpu_queue_ns,
                cpu_ns: obs.cpu_ns,
            };
            if recording {
                events.push((now, ev));
            }
            if let Some(l) = flight {
                l.record_event(l.now_ns(), retag(ev, fq));
            }
        }
        Ok(CompletedSession {
            response_ns,
            nodes_visited: session.nodes_visited,
            answers: session.algo.results(),
            obs: session.obs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 1.0), 4.0);
        assert_eq!(percentile(&s, 0.5), 2.5);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }
}
