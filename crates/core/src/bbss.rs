//! BBSS — Branch-and-Bound Similarity Search (Section 3.1).
//!
//! The Roussopoulos–Kelley–Vincent nearest-neighbour algorithm, restated
//! as a batch machine that requests **one node per batch**: a depth-first
//! traversal in `D_min` order, pruning branches whose `D_min` exceeds the
//! distance to the current k-th best object. On a disk array it exploits
//! no intra-query parallelism — the paper's motivation for CRSS.

use crate::access::{AccessMethod, IndexNode};
use crate::algo::{BatchResult, KBest, SimilaritySearch, Step};
use sqda_geom::Point;
use sqda_rstar::{Neighbor, ObjectId};
use sqda_simkernel::cpu_instructions_for_batch;
use sqda_storage::PageId;

/// A deferred branch on the DFS stack.
#[derive(Debug, Clone)]
struct Branch {
    page: PageId,
    d_min_sq: f64,
}

/// The branch-and-bound (depth-first) similarity search.
pub struct Bbss {
    query: Point,
    kbest: KBest,
    root: PageId,
    /// DFS stack; the most promising branch (smallest `D_min`) on top.
    stack: Vec<Branch>,
    /// Batch-kernel scratch: per-node distance vector, reused across
    /// batches.
    dists: Vec<f64>,
}

impl Bbss {
    /// Prepares a BBSS run for `k` neighbours of `query`.
    pub fn new(am: &(impl AccessMethod + ?Sized), query: Point, k: usize) -> Self {
        Self {
            query,
            kbest: KBest::new(k),
            root: am.root_page(),
            stack: Vec::new(),
            dists: Vec::new(),
        }
    }

    /// Pops the next branch still intersecting the query sphere.
    fn next_step(&mut self) -> Step {
        let dk_sq = self.kbest.dk_sq();
        while let Some(branch) = self.stack.pop() {
            if branch.d_min_sq <= dk_sq {
                return Step::Fetch(vec![branch.page]);
            }
            // Pruned by Rule 3: cannot contain a better answer.
        }
        Step::Done
    }
}

impl SimilaritySearch for Bbss {
    fn start(&mut self) -> Step {
        Step::Fetch(vec![self.root])
    }

    fn on_fetched(&mut self, nodes: &mut Vec<(PageId, IndexNode)>) -> BatchResult {
        debug_assert_eq!(nodes.len(), 1, "BBSS fetches one node at a time");
        let mut scanned = 0u64;
        let mut sorted = 0u64;
        for (_, node) in nodes.drain(..) {
            match node {
                IndexNode::Leaf(leaf) => {
                    scanned += leaf.len() as u64;
                    // One batch-kernel call per node, then a filtered
                    // bulk push (offers past `dk` are no-ops; ties keep
                    // the object-id tie-break).
                    leaf.dist_sq_into(self.query.coords(), &mut self.dists);
                    for i in 0..leaf.len() {
                        let d = self.dists[i];
                        if d <= self.kbest.dk_sq() {
                            self.kbest
                                .offer(ObjectId(leaf.id(i)), Point::from(leaf.point(i)), d);
                        }
                    }
                }
                IndexNode::Internal(block) => {
                    scanned += block.len() as u64;
                    let dk_sq = self.kbest.dk_sq();
                    // Build the active branch list in D_min order (the
                    // ordering Roussopoulos et al. recommend), pruning
                    // branches already outside the query sphere (Rule 1/3).
                    // `D_min²` comes from one batched kernel sweep.
                    block.min_dist_sq_into(self.query.coords(), &mut self.dists);
                    let mut branches: Vec<Branch> = (0..block.len())
                        .map(|i| Branch {
                            page: block.child(i),
                            d_min_sq: self.dists[i],
                        })
                        .filter(|b| b.d_min_sq <= dk_sq)
                        .collect();
                    sorted += branches.len() as u64;
                    // Push in decreasing D_min order so the smallest ends
                    // on top of the DFS stack.
                    branches.sort_by(|a, b| {
                        b.d_min_sq
                            .partial_cmp(&a.d_min_sq)
                            .expect("distances are finite")
                    });
                    self.stack.extend(branches);
                }
            }
        }
        BatchResult {
            next: self.next_step(),
            cpu_instructions: cpu_instructions_for_batch(scanned, sorted),
        }
    }

    fn results(&self) -> Vec<Neighbor> {
        self.kbest.to_sorted()
    }

    fn name(&self) -> &'static str {
        "BBSS"
    }
}
