//! Lemma 1 (the count-based threshold distance) and the candidate
//! reduction criterion of Section 3.3.

use sqda_storage::PageId;

/// A candidate branch: a directory entry annotated with its distances
/// from the query point. Distances are squared throughout and come out
/// of the batch kernels ([`crate::InternalBlock::metrics_into`]) — the
/// candidate carries no geometry of its own.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The child page the branch points to.
    pub page: PageId,
    /// Objects in the subtree (from the count-augmented entry).
    pub count: u64,
    /// `D_min²` from the query point.
    pub d_min_sq: f64,
    /// `D_mm²` (MINMAXDIST for MBRs, `D_max` for spheres) from the query
    /// point.
    pub d_mm_sq: f64,
    /// `D_max²` from the query point.
    pub d_max_sq: f64,
}

impl Candidate {
    /// Builds a candidate from precomputed squared metrics.
    pub fn new(page: PageId, count: u64, d_min_sq: f64, d_mm_sq: f64, d_max_sq: f64) -> Self {
        Self {
            page,
            count,
            d_min_sq,
            d_mm_sq,
            d_max_sq,
        }
    }
}

/// Lemma 1: the squared threshold distance `D_th²`.
///
/// Sort the candidate MBRs by `D_max` ascending and accumulate their
/// object counts; the sphere of radius `D_max(P_q, R_x)` around the query
/// point — where `x` is the first position at which the accumulated count
/// reaches `k` — is guaranteed to contain at least `k` objects, because
/// the MBRs `R_1..R_x` lie entirely inside it. Hence all `k` nearest
/// neighbours are within that radius.
///
/// Returns `None` when the candidates hold fewer than `k` objects in
/// total (then no finite bound exists yet and the caller must keep every
/// branch).
pub fn lemma1_threshold_sq(candidates: &[Candidate], k: u64) -> Option<f64> {
    if k == 0 {
        return Some(0.0);
    }
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| {
        candidates[a]
            .d_max_sq
            .partial_cmp(&candidates[b].d_max_sq)
            .expect("distances are finite")
    });
    let mut acc = 0u64;
    for idx in order {
        acc += candidates[idx].count;
        if acc >= k {
            return Some(candidates[idx].d_max_sq);
        }
    }
    None
}

/// A tighter threshold from MINMAXDIST (an extension beyond the paper):
/// each MBR guarantees at least one object within its `D_mm`, and sibling
/// MBRs bound disjoint subtrees, so the k-th smallest `D_mm` among ≥ k
/// candidates also upper-bounds `D_k`. Combined with Lemma 1 via `min`,
/// this can only shrink the threshold — the `ext_tighter_threshold`
/// experiment measures by how much.
///
/// Returns `None` when fewer than `k` candidate MBRs exist (the guarantee
/// needs k distinct subtrees). `k = 0` yields `Some(0.0)`.
pub fn minmax_threshold_sq(candidates: &[Candidate], k: u64) -> Option<f64> {
    if k == 0 {
        return Some(0.0);
    }
    let k = k as usize;
    if candidates.len() < k {
        return None;
    }
    let mut dmms: Vec<f64> = candidates.iter().map(|c| c.d_mm_sq).collect();
    dmms.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
    Some(dmms[k - 1])
}

/// The verdict of the candidate reduction criterion for one MBR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// `D_th < D_min`: the branch cannot contain an answer — discard.
    Reject,
    /// `D_th > D_mm`: the branch is guaranteed useful — fetch now.
    Activate,
    /// Between the bounds: defer on the candidate stack.
    Save,
}

/// Applies the candidate reduction criterion (Section 3.3) to one
/// candidate given the squared threshold `d_th_sq`:
///
/// * reject if `D_th < D_min` (no intersection with the query sphere),
/// * activate if `D_th > D_mm` (an object is guaranteed within `D_th`),
/// * save otherwise.
pub fn classify(candidate: &Candidate, d_th_sq: f64) -> Verdict {
    if d_th_sq < candidate.d_min_sq {
        Verdict::Reject
    } else if d_th_sq > candidate.d_mm_sq {
        Verdict::Activate
    } else {
        Verdict::Save
    }
}

/// Splits candidates into (activated, saved) lists under the criterion
/// and the CRSS activation bounds.
///
/// The criterion first rejects branches outside the query sphere
/// (`D_th < D_min`). Surviving branches are prioritized: guaranteed
/// useful ones (`D_th > D_mm`) first, doubtful ones after, each group by
/// increasing `D_min`. The activation list takes candidates in that
/// priority order up to the **upper bound `u`** (one page per disk —
/// "we never allow the activation of more than u = NumOfDisks
/// elements"); the overflow is saved for the candidate stack. The
/// paper's **lower bound `l`** (activate at least enough branches to
/// guarantee `k` objects) is subsumed: the list is filled to `u ≥ l`
/// whenever enough survivors exist, which is exactly how CRSS "exploits
/// parallelism up to a point" while the threshold keeps the wavefront
/// from exploding the way FPSS's does.
///
/// Both returned lists are sorted by increasing `D_min`; the saved list
/// is ready to be pushed as a candidate run (the *caller* pushes in
/// decreasing-`D_min` order so the most promising candidate ends on top
/// of the stack).
pub fn reduce_candidates(
    mut candidates: Vec<Candidate>,
    d_th_sq: f64,
    k: u64,
    u: usize,
) -> (Vec<Candidate>, Vec<Candidate>) {
    debug_assert!(u >= 1);
    let _ = k; // `l ≤ u` always holds once the list is filled to `u`.
    candidates.retain(|c| classify(c, d_th_sq) != Verdict::Reject);
    candidates.sort_by(|a, b| {
        let class_a = classify(a, d_th_sq) == Verdict::Save;
        let class_b = classify(b, d_th_sq) == Verdict::Save;
        class_a.cmp(&class_b).then(
            a.d_min_sq
                .partial_cmp(&b.d_min_sq)
                .expect("distances are finite"),
        )
    });
    let saved: Vec<Candidate> = candidates.split_off(candidates.len().min(u));
    let mut active = candidates;
    active.sort_by(|a, b| {
        a.d_min_sq
            .partial_cmp(&b.d_min_sq)
            .expect("distances are finite")
    });
    let mut saved = saved;
    saved.sort_by(|a, b| {
        a.d_min_sq
            .partial_cmp(&b.d_min_sq)
            .expect("distances are finite")
    });
    (active, saved)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(page: u64, count: u64, d_min: f64, d_mm: f64, d_max: f64) -> Candidate {
        Candidate::new(PageId::from_raw(page), count, d_min, d_mm, d_max)
    }

    #[test]
    fn lemma1_accumulates_counts() {
        let cs = vec![
            cand(1, 3, 0.0, 1.0, 4.0),
            cand(2, 5, 1.0, 2.0, 9.0),
            cand(3, 10, 2.0, 3.0, 16.0),
        ];
        // k=3: first MBR (smallest Dmax) suffices.
        assert_eq!(lemma1_threshold_sq(&cs, 3), Some(4.0));
        // k=4: need the second.
        assert_eq!(lemma1_threshold_sq(&cs, 4), Some(9.0));
        // k=8: need the second (3+5=8).
        assert_eq!(lemma1_threshold_sq(&cs, 8), Some(9.0));
        // k=9: need the third.
        assert_eq!(lemma1_threshold_sq(&cs, 9), Some(16.0));
        // k beyond total: no bound.
        assert_eq!(lemma1_threshold_sq(&cs, 100), None);
    }

    #[test]
    fn lemma1_sorts_by_dmax_not_input_order() {
        let cs = vec![cand(1, 5, 0.0, 1.0, 100.0), cand(2, 5, 0.0, 1.0, 1.0)];
        assert_eq!(lemma1_threshold_sq(&cs, 5), Some(1.0));
    }

    #[test]
    fn lemma1_empty_and_zero_k() {
        assert_eq!(lemma1_threshold_sq(&[], 1), None);
        assert_eq!(lemma1_threshold_sq(&[], 0), Some(0.0));
    }

    #[test]
    fn minmax_threshold_kth_smallest() {
        let cs = vec![
            cand(1, 9, 0.0, 4.0, 100.0),
            cand(2, 9, 0.0, 1.0, 100.0),
            cand(3, 9, 0.0, 9.0, 100.0),
        ];
        assert_eq!(minmax_threshold_sq(&cs, 1), Some(1.0));
        assert_eq!(minmax_threshold_sq(&cs, 2), Some(4.0));
        assert_eq!(minmax_threshold_sq(&cs, 3), Some(9.0));
        // Needs k distinct MBRs regardless of counts.
        assert_eq!(minmax_threshold_sq(&cs, 4), None);
        assert_eq!(minmax_threshold_sq(&cs, 0), Some(0.0));
        assert_eq!(minmax_threshold_sq(&[], 1), None);
    }

    #[test]
    fn minmax_can_tighten_lemma1() {
        // Large counts make Lemma 1 pick the first Dmax; MINMAXDIST can
        // still be far smaller.
        let cs = vec![cand(1, 100, 0.0, 0.5, 50.0), cand(2, 100, 0.0, 0.6, 60.0)];
        let lemma = lemma1_threshold_sq(&cs, 2).unwrap();
        let mm = minmax_threshold_sq(&cs, 2).unwrap();
        assert!(mm < lemma, "mm {mm} vs lemma {lemma}");
    }

    #[test]
    fn criterion_thresholds() {
        let c = cand(1, 1, 4.0, 9.0, 16.0);
        assert_eq!(classify(&c, 3.0), Verdict::Reject); // Dth < Dmin
        assert_eq!(classify(&c, 4.0), Verdict::Save); // Dmin ≤ Dth ≤ Dmm
        assert_eq!(classify(&c, 9.0), Verdict::Save);
        assert_eq!(classify(&c, 9.5), Verdict::Activate); // Dth > Dmm
    }

    #[test]
    fn reduce_rejects_outside_sphere_and_fills_to_u() {
        let cs = vec![
            cand(1, 2, 0.0, 0.5, 1.0), // guaranteed useful (Dth 2 > Dmm .5)
            cand(2, 2, 1.5, 3.0, 5.0), // doubtful, still intersects
            cand(3, 2, 4.0, 6.0, 9.0), // reject (Dmin 4 > Dth 2)
        ];
        let (active, saved) = reduce_candidates(cs, 2.0, 2, 10);
        // Both survivors fit within u=10 pages: full parallel activation.
        assert_eq!(active.len(), 2);
        assert!(active.iter().any(|c| c.page == PageId::from_raw(1)));
        assert!(active.iter().any(|c| c.page == PageId::from_raw(2)));
        assert!(saved.is_empty());
    }

    #[test]
    fn reduce_prioritizes_guaranteed_useful_branches() {
        // With u=1 only one branch activates; the guaranteed-useful one
        // wins even though a doubtful one has smaller D_min.
        let cs = vec![
            cand(1, 2, 0.1, 5.0, 9.0), // doubtful (Dth 4 < Dmm 5)
            cand(2, 2, 0.3, 3.0, 9.0), // guaranteed (Dth 4 > Dmm 3)
        ];
        let (active, saved) = reduce_candidates(cs, 4.0, 3, 1);
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].page, PageId::from_raw(2));
        assert_eq!(saved.len(), 1);
        assert_eq!(saved[0].page, PageId::from_raw(1));
    }

    #[test]
    fn reduce_clamps_to_disk_count() {
        let cs: Vec<Candidate> = (0..8)
            .map(|i| cand(i, 10, i as f64 * 0.01, 0.5, 1.0)) // all activate
            .collect();
        let (active, saved) = reduce_candidates(cs, 2.0, 5, 3);
        assert_eq!(active.len(), 3);
        assert_eq!(saved.len(), 5);
        // The three best by D_min were kept.
        let pages: Vec<u64> = active.iter().map(|c| c.page.as_raw()).collect();
        assert_eq!(pages, vec![0, 1, 2]);
        // Saved stays sorted by D_min.
        for w in saved.windows(2) {
            assert!(w[0].d_min_sq <= w[1].d_min_sq);
        }
    }

    #[test]
    fn reduce_with_insufficient_candidates() {
        let cs = vec![cand(1, 1, 0.0, 0.5, 1.0)];
        let (active, saved) = reduce_candidates(cs, 2.0, 10, 4);
        assert_eq!(active.len(), 1);
        assert!(saved.is_empty());
    }
}
