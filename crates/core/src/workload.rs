//! Multi-user query workloads with Poisson arrivals.

use sqda_geom::Point;
use sqda_simkernel::{PoissonArrivals, SimTime};

/// One query of a workload: when it arrives, where it asks, how many
/// neighbours it wants.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// Arrival time.
    pub arrival: SimTime,
    /// The query point.
    pub point: Point,
    /// Number of nearest neighbours requested.
    pub k: usize,
}

/// A time-ordered stream of queries for the simulated executor.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The queries, in non-decreasing arrival order.
    pub queries: Vec<WorkloadQuery>,
}

impl Workload {
    /// Builds a Poisson workload: the given query points arrive at rate
    /// `lambda` per second, all asking for `k` neighbours (the paper's
    /// setup: 100 queries, λ varied per experiment).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not positive or `k` is zero.
    pub fn poisson(points: Vec<Point>, k: usize, lambda: f64, seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        let mut arrivals = PoissonArrivals::new(lambda);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let queries = points
            .into_iter()
            .map(|point| WorkloadQuery {
                arrival: arrivals.next_arrival(&mut rng),
                point,
                k,
            })
            .collect();
        Self { queries }
    }

    /// A single query arriving at time zero (for single-user latency
    /// measurements).
    pub fn single(point: Point, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            queries: vec![WorkloadQuery {
                arrival: SimTime::ZERO,
                point,
                k,
            }],
        }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_workload_ordered() {
        let points: Vec<Point> = (0..50).map(|i| Point::new(vec![i as f64])).collect();
        let w = Workload::poisson(points, 5, 10.0, 3);
        assert_eq!(w.len(), 50);
        for pair in w.queries.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        assert!(w.queries.iter().all(|q| q.k == 5));
    }

    #[test]
    fn single_workload() {
        let w = Workload::single(Point::new(vec![1.0, 2.0]), 3);
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
        assert_eq!(w.queries[0].arrival, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        Workload::single(Point::new(vec![0.0]), 0);
    }
}
