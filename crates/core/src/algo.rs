//! The batch state-machine abstraction shared by all four algorithms.

use crate::access::{AccessMethod, IndexNode};
use crate::error::QueryError;
use sqda_geom::Point;
use sqda_rstar::{Neighbor, ObjectId};
use sqda_storage::PageId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What a similarity-search algorithm wants to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Fetch these pages from the disk array. Pages on different disks
    /// are serviced in parallel; the executor delivers the whole batch.
    Fetch(Vec<PageId>),
    /// The k best answers are final.
    Done,
}

/// Outcome of processing one batch of fetched nodes.
#[derive(Debug)]
pub struct BatchResult {
    /// The next step.
    pub next: Step,
    /// CPU instructions charged for this batch under the paper's cost
    /// model (`2·N` scan + `3·M·log₂M` sort); consumed by the simulator.
    pub cpu_instructions: u64,
}

/// Algorithm-internal telemetry surfaced to the observability layer
/// after each processed batch (see [`SimilaritySearch::progress`]).
///
/// Today this carries CRSS's distinctive state — the threshold-distance
/// trajectory and candidate-stack occupancy of Section 3.3 — but any
/// algorithm may report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgoProgress {
    /// Current squared pruning threshold (`D_th²` for CRSS; infinite
    /// until bounded).
    pub d_th_sq: f64,
    /// Runs on the candidate stack.
    pub stack_runs: u32,
    /// Saved candidates across all runs.
    pub stack_candidates: u32,
}

/// A k-NN algorithm expressed as a batch state machine.
///
/// Protocol: call [`SimilaritySearch::start`] once, fetch the requested
/// pages, call [`SimilaritySearch::on_fetched`] with the decoded nodes,
/// repeat until [`Step::Done`], then read
/// [`SimilaritySearch::results`].
pub trait SimilaritySearch {
    /// Begins the query; returns the first fetch batch (the root page).
    fn start(&mut self) -> Step;

    /// Consumes one fetched batch (same order as requested) and decides
    /// what to do next. The algorithm drains the buffer, leaving it empty
    /// but with its capacity intact — executors reuse one batch buffer for
    /// every round of every query instead of allocating per round.
    fn on_fetched(&mut self, nodes: &mut Vec<(PageId, IndexNode)>) -> BatchResult;

    /// The answers, sorted by increasing distance. Complete only after
    /// `Done`.
    fn results(&self) -> Vec<Neighbor>;

    /// The algorithm's display name.
    fn name(&self) -> &'static str;

    /// Internal telemetry after the last processed batch, for tracing.
    /// Queried only when recording is enabled; `None` (the default)
    /// means the algorithm has nothing distinctive to report.
    fn progress(&self) -> Option<AlgoProgress> {
        None
    }
}

/// Bounded max-heap of the k best (closest) objects seen so far.
///
/// `D_k` — the distance to the current k-th nearest neighbour — is the
/// pruning radius every algorithm shares: it is infinite until k objects
/// have been seen and only shrinks afterwards.
#[derive(Debug)]
pub struct KBest {
    k: usize,
    heap: BinaryHeap<KBestItem>,
}

#[derive(Debug)]
struct KBestItem(Neighbor);

impl PartialEq for KBestItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for KBestItem {}
impl PartialOrd for KBestItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for KBestItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .dist_sq
            .partial_cmp(&other.0.dist_sq)
            .expect("distances are finite")
            // Deterministic tie-breaking across algorithms: larger object
            // id counts as "farther" so the retained set is unique.
            .then(self.0.object.cmp(&other.0.object))
    }
}

impl KBest {
    /// Creates an empty collector for the `k` nearest.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers a candidate object.
    pub fn offer(&mut self, object: ObjectId, point: Point, dist_sq: f64) {
        let neighbor = Neighbor {
            object,
            point,
            dist_sq,
        };
        if self.heap.len() < self.k {
            self.heap.push(KBestItem(neighbor));
        } else if let Some(worst) = self.heap.peek() {
            let item = KBestItem(neighbor);
            if item.cmp(worst) == Ordering::Less {
                self.heap.pop();
                self.heap.push(item);
            }
        }
    }

    /// Squared distance to the current k-th best, or infinity while fewer
    /// than k objects have been seen.
    pub fn dk_sq(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap
                .peek()
                .map(|i| i.0.dist_sq)
                .unwrap_or(f64::INFINITY)
        }
    }

    /// Number of answers collected so far.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no answers have been collected.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The answers in increasing-distance order.
    pub fn to_sorted(&self) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = self.heap.iter().map(|i| i.0.clone()).collect();
        v.sort_by(|a, b| {
            a.dist_sq
                .partial_cmp(&b.dist_sq)
                .expect("finite")
                .then(a.object.cmp(&b.object))
        });
        v
    }
}

/// Which of the four algorithms to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Branch-and-bound (Roussopoulos et al.), depth-first.
    Bbss,
    /// Full-parallel breadth-first search.
    Fpss,
    /// Candidate-reduction search (the paper's proposal).
    Crss,
    /// The weak-optimal oracle (requires precomputing the true `D_k`).
    Woptss,
}

impl AlgorithmKind {
    /// All four algorithms, in the paper's presentation order.
    pub const ALL: [AlgorithmKind; 4] = [
        AlgorithmKind::Bbss,
        AlgorithmKind::Fpss,
        AlgorithmKind::Crss,
        AlgorithmKind::Woptss,
    ];

    /// The three *real* (non-oracle) algorithms.
    pub const REAL: [AlgorithmKind; 3] = [
        AlgorithmKind::Bbss,
        AlgorithmKind::Fpss,
        AlgorithmKind::Crss,
    ];

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::Bbss => "BBSS",
            AlgorithmKind::Fpss => "FPSS",
            AlgorithmKind::Crss => "CRSS",
            AlgorithmKind::Woptss => "WOPTSS",
        }
    }

    /// Builds an instance for one query over any [`AccessMethod`].
    ///
    /// For [`AlgorithmKind::Woptss`] this computes the true k-NN distance
    /// through the sequential best-first search first (the oracle's
    /// foreknowledge); that preparatory work is *not* billed to the
    /// query.
    pub fn build(
        self,
        am: &(impl AccessMethod + ?Sized),
        query: Point,
        k: usize,
    ) -> Result<Box<dyn SimilaritySearch>, QueryError> {
        let mut scratch = crate::QueryScratch::new();
        self.build_with(am, query, k, &mut scratch)
    }

    /// [`AlgorithmKind::build`] over a reusable [`crate::QueryScratch`]:
    /// the WOPTSS oracle's best-first heap is borrowed from the scratch
    /// instead of freshly allocated (the other algorithms need no
    /// build-time scratch).
    pub fn build_with(
        self,
        am: &(impl AccessMethod + ?Sized),
        query: Point,
        k: usize,
        scratch: &mut crate::QueryScratch,
    ) -> Result<Box<dyn SimilaritySearch>, QueryError> {
        Ok(match self {
            AlgorithmKind::Bbss => Box::new(crate::Bbss::new(am, query, k)),
            AlgorithmKind::Fpss => Box::new(crate::Fpss::new(am, query, k)),
            AlgorithmKind::Crss => Box::new(crate::Crss::new(am, query, k)),
            AlgorithmKind::Woptss => Box::new(crate::Woptss::new_with(am, query, k, scratch)?),
        })
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offer(kb: &mut KBest, id: u64, d: f64) {
        kb.offer(ObjectId(id), Point::new(vec![0.0]), d);
    }

    #[test]
    fn kbest_tracks_k_smallest() {
        let mut kb = KBest::new(3);
        assert_eq!(kb.dk_sq(), f64::INFINITY);
        for (id, d) in [(0, 5.0), (1, 1.0), (2, 9.0), (3, 0.5), (4, 4.0)] {
            offer(&mut kb, id, d);
        }
        assert_eq!(kb.len(), 3);
        assert_eq!(kb.dk_sq(), 4.0);
        let sorted = kb.to_sorted();
        let ids: Vec<u64> = sorted.iter().map(|n| n.object.0).collect();
        assert_eq!(ids, vec![3, 1, 4]);
    }

    #[test]
    fn kbest_dk_infinite_until_full() {
        let mut kb = KBest::new(5);
        offer(&mut kb, 0, 1.0);
        offer(&mut kb, 1, 2.0);
        assert_eq!(kb.dk_sq(), f64::INFINITY);
        for i in 2..5 {
            offer(&mut kb, i, i as f64);
        }
        assert_eq!(kb.dk_sq(), 4.0);
    }

    #[test]
    fn kbest_ties_break_by_object_id() {
        let mut a = KBest::new(2);
        let mut b = KBest::new(2);
        // Same candidates, different arrival order.
        for (id, d) in [(7, 1.0), (3, 1.0), (5, 1.0)] {
            offer(&mut a, id, d);
        }
        for (id, d) in [(5, 1.0), (7, 1.0), (3, 1.0)] {
            offer(&mut b, id, d);
        }
        let ids = |kb: &KBest| {
            kb.to_sorted()
                .iter()
                .map(|n| n.object.0)
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&a), ids(&b));
        assert_eq!(ids(&a), vec![3, 5]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn kbest_zero_k_panics() {
        let _ = KBest::new(0);
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(AlgorithmKind::Crss.to_string(), "CRSS");
        assert_eq!(AlgorithmKind::ALL.len(), 4);
        assert_eq!(AlgorithmKind::REAL.len(), 3);
    }
}
