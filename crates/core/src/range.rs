//! Parallel similarity *range* query processing.
//!
//! The paper (Section 3) contrasts k-NN with the range query: a range
//! query's region is fixed up front, so after a node is read every
//! relevant child is known immediately and the disks hosting them can all
//! be activated in parallel — visiting order does not matter. This module
//! implements that "easy case" as a batch state machine so range queries
//! run under the same executors (and timing model) as the k-NN
//! algorithms.

use crate::access::{AccessMethod, IndexNode};
use crate::algo::{BatchResult, SimilaritySearch, Step};
use sqda_geom::{Point, Sphere};
use sqda_rstar::{Neighbor, ObjectId};
use sqda_simkernel::cpu_instructions_for_batch;
use sqda_storage::PageId;

/// A parallel range query: all objects within `radius` of the center.
///
/// Implements [`SimilaritySearch`] for executor compatibility; its
/// "results" are every qualifying object, sorted by distance (there is no
/// `k`).
pub struct RangeSearch {
    sphere: Sphere,
    root: PageId,
    hits: Vec<Neighbor>,
    /// Batch-kernel scratch: per-node distance vector, reused across
    /// batches.
    dists: Vec<f64>,
}

impl RangeSearch {
    /// Prepares a range query with the given radius (Definition 1:
    /// `dist(P_q, x) ≤ ε`).
    pub fn new(am: &(impl AccessMethod + ?Sized), center: Point, radius: f64) -> Self {
        Self {
            sphere: Sphere::new(center, radius),
            root: am.root_page(),
            hits: Vec::new(),
            dists: Vec::new(),
        }
    }
}

impl SimilaritySearch for RangeSearch {
    fn start(&mut self) -> Step {
        Step::Fetch(vec![self.root])
    }

    fn on_fetched(&mut self, nodes: &mut Vec<(PageId, IndexNode)>) -> BatchResult {
        let mut scanned = 0u64;
        let mut pages = Vec::new();
        for (_, node) in nodes.drain(..) {
            match node {
                IndexNode::Leaf(leaf) => {
                    scanned += leaf.len() as u64;
                    // One batch-kernel call per node; only qualifying
                    // entries materialise a Point.
                    leaf.dist_sq_into(self.sphere.center().coords(), &mut self.dists);
                    for i in 0..leaf.len() {
                        let dist_sq = self.dists[i];
                        if dist_sq <= self.sphere.radius_sq() {
                            self.hits.push(Neighbor {
                                object: ObjectId(leaf.id(i)),
                                point: Point::from(leaf.point(i)),
                                dist_sq,
                            });
                        }
                    }
                }
                IndexNode::Internal(block) => {
                    scanned += block.len() as u64;
                    block.min_dist_sq_into(self.sphere.center().coords(), &mut self.dists);
                    pages.extend(
                        (0..block.len())
                            .filter(|&i| self.dists[i] <= self.sphere.radius_sq())
                            .map(|i| block.child(i)),
                    );
                }
            }
        }
        let sorted = pages.len() as u64;
        let next = if pages.is_empty() {
            Step::Done
        } else {
            Step::Fetch(pages)
        };
        BatchResult {
            next,
            cpu_instructions: cpu_instructions_for_batch(scanned, sorted),
        }
    }

    fn results(&self) -> Vec<Neighbor> {
        let mut v = self.hits.clone();
        v.sort_by(|a, b| {
            a.dist_sq
                .partial_cmp(&b.dist_sq)
                .expect("distances are finite")
                .then(a.object.cmp(&b.object))
        });
        v
    }

    fn name(&self) -> &'static str {
        "RANGE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_query;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sqda_rstar::decluster::ProximityIndex;
    use sqda_rstar::{RStarConfig, RStarTree};
    use sqda_storage::ArrayStore;
    use std::sync::Arc;

    fn build(n: usize, seed: u64) -> (RStarTree<ArrayStore>, Vec<Point>) {
        let store = Arc::new(ArrayStore::new(4, 1449, seed));
        let mut tree = RStarTree::create(
            store,
            RStarConfig::new(2).with_max_entries(8),
            Box::new(ProximityIndex),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)]))
            .collect();
        for (i, p) in points.iter().enumerate() {
            tree.insert(p.clone(), i as u64).unwrap();
        }
        (tree, points)
    }

    #[test]
    fn matches_sequential_range_query() {
        let (tree, points) = build(1200, 31);
        let center = Point::new(vec![5.0, 5.0]);
        for radius in [0.0, 0.5, 2.0, 20.0] {
            let mut rs = RangeSearch::new(&tree, center.clone(), radius);
            let run = run_query(&tree, &mut rs).unwrap();
            let want = points.iter().filter(|p| center.dist(p) <= radius).count();
            assert_eq!(run.results.len(), want, "radius {radius}");
            // Agrees with the tree's own sequential implementation.
            let seq = tree.range_query(&center, radius).unwrap();
            assert_eq!(run.results.len(), seq.len());
        }
    }

    #[test]
    fn exploits_full_parallelism() {
        let (tree, _) = build(3000, 32);
        let mut rs = RangeSearch::new(&tree, Point::new(vec![5.0, 5.0]), 3.0);
        let run = run_query(&tree, &mut rs).unwrap();
        // Breadth-first over a fat region: batches grow beyond one page.
        assert!(run.max_batch > 1, "range queries parallelize freely");
        // Results sorted by distance.
        for w in run.results.windows(2) {
            assert!(w[0].dist_sq <= w[1].dist_sq);
        }
    }

    #[test]
    fn empty_result_for_distant_sphere() {
        let (tree, _) = build(500, 33);
        let mut rs = RangeSearch::new(&tree, Point::new(vec![500.0, 500.0]), 1.0);
        let run = run_query(&tree, &mut rs).unwrap();
        assert!(run.results.is_empty());
        assert_eq!(run.nodes_visited, 1, "only the root is read");
    }
}
