//! CRSS — Candidate Reduction Similarity Search (Section 3.3, the
//! paper's contribution).
//!
//! CRSS interpolates between BBSS (pure depth-first, one page at a time)
//! and FPSS (pure breadth-first, everything at once):
//!
//! * A **threshold distance** `D_th` is derived from the per-entry
//!   subtree object counts (Lemma 1) before any data page is read, and
//!   later tightened to the distance `D_k` of the k-th best object seen.
//! * The **candidate reduction criterion** splits each batch of fetched
//!   MBRs three ways: reject (`D_th < D_min`), activate (`D_th > D_mm`),
//!   or save for later.
//! * Saved candidates go on a **candidate stack**, one *run* per batch,
//!   each run ordered by `D_min` and separated by guards: because the
//!   granularity of MBRs improves towards the leaves, deeper (newer) runs
//!   are always inspected first, and within a run the first candidate
//!   that misses the query sphere rejects the entire remainder of the
//!   run.
//! * The activation list is bounded: at least enough branches to
//!   guarantee `k` objects (`l`), at most one page per disk (`u`), so
//!   parallelism is exploited without flooding the array.
//!
//! Operating modes (per the paper's pseudo-code): ADAPTIVE from the root
//! until the leaf level is first reached (threshold adapts per level),
//! UPDATE whenever leaves are processed (the best-k array updates),
//! NORMAL for internal nodes afterwards, TERMINATE when the stack is
//! exhausted.

use crate::access::{AccessMethod, IndexNode};
use crate::algo::{BatchResult, KBest, SimilaritySearch, Step};
use crate::threshold::{lemma1_threshold_sq, reduce_candidates, Candidate};
use sqda_geom::Point;
use sqda_rstar::{Neighbor, ObjectId};
use sqda_simkernel::cpu_instructions_for_batch;
use sqda_storage::PageId;

/// The operating mode of the CRSS state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Descending from the root; leaf level not reached yet.
    Adaptive,
    /// Steady state: internal nodes after the first leaf batch.
    Normal,
    /// No candidates remain.
    Terminate,
}

/// The candidate-reduction similarity search.
pub struct Crss {
    query: Point,
    k: usize,
    /// Activation upper bound `u` = number of disks in the array.
    u: usize,
    kbest: KBest,
    root: PageId,
    /// Current squared threshold distance `D_th²` (only ever shrinks).
    d_th_sq: f64,
    /// The candidate stack: each element is a run, ordered by increasing
    /// `D_min`. Guards are implicit in the run boundaries.
    stack: Vec<Vec<Candidate>>,
    mode: Mode,
    /// Extension beyond the paper: also bound `D_th` by the k-th smallest
    /// MINMAXDIST of each adaptive-phase wavefront.
    minmax_threshold: bool,
    /// Batch-kernel scratch: per-node `D_min²` (and leaf distance)
    /// vector, reused across batches.
    d_min: Vec<f64>,
    /// Batch-kernel scratch: per-node `D_mm²` vector.
    d_mm: Vec<f64>,
    /// Batch-kernel scratch: per-node `D_max²` vector.
    d_max: Vec<f64>,
}

impl Crss {
    /// Prepares a CRSS run for `k` neighbours of `query`. The activation
    /// bound is taken from the array's disk count.
    pub fn new(am: &(impl AccessMethod + ?Sized), query: Point, k: usize) -> Self {
        let u = am.num_disks() as usize;
        Self::with_activation_bound(am, query, k, u)
    }

    /// Prepares a CRSS run with an explicit activation bound `u` (used by
    /// the ablation experiments; the paper fixes `u = NumOfDisks`).
    ///
    /// # Panics
    ///
    /// Panics if `u` is zero.
    pub fn with_activation_bound(
        am: &(impl AccessMethod + ?Sized),
        query: Point,
        k: usize,
        u: usize,
    ) -> Self {
        assert!(u >= 1, "activation bound must be at least 1");
        Self {
            query,
            k,
            u,
            kbest: KBest::new(k),
            root: am.root_page(),
            d_th_sq: f64::INFINITY,
            stack: Vec::new(),
            mode: Mode::Adaptive,
            minmax_threshold: false,
            d_min: Vec::new(),
            d_mm: Vec::new(),
            d_max: Vec::new(),
        }
    }

    /// Enables the MINMAXDIST threshold tightening (an extension beyond
    /// the paper; see [`crate::threshold::minmax_threshold_sq`]). Answers
    /// are unchanged; node accesses can only shrink.
    pub fn with_minmax_threshold(mut self) -> Self {
        self.minmax_threshold = true;
        self
    }

    /// Tightens the threshold with the current `D_k` when k objects have
    /// been seen.
    fn absorb_dk(&mut self) {
        let dk = self.kbest.dk_sq();
        if dk < self.d_th_sq {
            self.d_th_sq = dk;
        }
    }

    /// Pops candidate runs until one yields an activation list, applying
    /// the guard optimization within each run.
    fn next_from_stack(&mut self) -> Step {
        while let Some(run) = self.stack.pop() {
            // Guard elimination: the run is ordered by increasing D_min,
            // so the first miss rejects the remainder of the run.
            let mut survivors = Vec::with_capacity(run.len());
            for c in run {
                if c.d_min_sq > self.d_th_sq {
                    break;
                }
                survivors.push(c);
            }
            if survivors.is_empty() {
                continue;
            }
            let (active, saved) = reduce_candidates(survivors, self.d_th_sq, self.k as u64, self.u);
            if !saved.is_empty() {
                self.stack.push(saved);
            }
            // With k ≥ 1 the lower-bound promotion in `reduce_candidates`
            // always activates at least one surviving candidate.
            debug_assert!(!active.is_empty());
            return Step::Fetch(active.into_iter().map(|c| c.page).collect());
        }
        self.mode = Mode::Terminate;
        Step::Done
    }
}

impl SimilaritySearch for Crss {
    fn start(&mut self) -> Step {
        Step::Fetch(vec![self.root])
    }

    fn on_fetched(&mut self, nodes: &mut Vec<(PageId, IndexNode)>) -> BatchResult {
        let mut scanned = 0u64;
        let mut sorted = 0u64;
        // Fetched batches are level-uniform (activation lists never mix
        // levels), so inspect the first node.
        let leaf_batch = nodes.first().map(|(_, n)| n.is_leaf()).unwrap_or(true);

        let next = if leaf_batch {
            // UPDATE mode: data objects refine the best-k array. One
            // batch-kernel call per node, then a filtered bulk push
            // (offers past `dk` are no-ops; ties keep the object-id
            // tie-break).
            for (_, node) in nodes.drain(..) {
                let IndexNode::Leaf(leaf) = node else {
                    unreachable!("level-uniform batch")
                };
                scanned += leaf.len() as u64;
                leaf.dist_sq_into(self.query.coords(), &mut self.d_min);
                for i in 0..leaf.len() {
                    let d = self.d_min[i];
                    if d <= self.kbest.dk_sq() {
                        self.kbest
                            .offer(ObjectId(leaf.id(i)), Point::from(leaf.point(i)), d);
                    }
                }
            }
            self.absorb_dk();
            if self.mode == Mode::Adaptive {
                self.mode = Mode::Normal;
            }
            self.next_from_stack()
        } else {
            let mut candidates: Vec<Candidate> = Vec::new();
            for (_, node) in nodes.drain(..) {
                let IndexNode::Internal(block) = node else {
                    unreachable!("level-uniform batch")
                };
                scanned += block.len() as u64;
                // All three metrics for the whole node in one batched
                // kernel sweep.
                block.metrics_into(
                    self.query.coords(),
                    &mut self.d_min,
                    &mut self.d_mm,
                    &mut self.d_max,
                );
                candidates.extend((0..block.len()).map(|i| {
                    Candidate::new(
                        block.child(i),
                        block.count(i),
                        self.d_min[i],
                        self.d_mm[i],
                        self.d_max[i],
                    )
                }));
            }
            if self.mode == Mode::Adaptive {
                // Adapt the threshold from this level's counts (Lemma 1).
                if let Some(th) = lemma1_threshold_sq(&candidates, self.k as u64) {
                    if th < self.d_th_sq {
                        self.d_th_sq = th;
                    }
                }
                if self.minmax_threshold {
                    if let Some(th) =
                        crate::threshold::minmax_threshold_sq(&candidates, self.k as u64)
                    {
                        if th < self.d_th_sq {
                            self.d_th_sq = th;
                        }
                    }
                }
            }
            self.absorb_dk();
            let (active, saved) =
                reduce_candidates(candidates, self.d_th_sq, self.k as u64, self.u);
            sorted += (active.len() + saved.len()) as u64;
            if !saved.is_empty() {
                self.stack.push(saved);
            }
            if active.is_empty() {
                self.next_from_stack()
            } else {
                Step::Fetch(active.into_iter().map(|c| c.page).collect())
            }
        };

        BatchResult {
            next,
            cpu_instructions: cpu_instructions_for_batch(scanned, sorted),
        }
    }

    fn results(&self) -> Vec<Neighbor> {
        self.kbest.to_sorted()
    }

    fn name(&self) -> &'static str {
        "CRSS"
    }

    fn progress(&self) -> Option<crate::algo::AlgoProgress> {
        Some(crate::algo::AlgoProgress {
            d_th_sq: self.d_th_sq,
            stack_runs: self.stack.len() as u32,
            stack_candidates: self.stack.iter().map(|run| run.len() as u32).sum(),
        })
    }
}
