//! Multi-query shared traversal: B queries through one descent.
//!
//! The paper's engines parallelize one query across disks; this module
//! adds the orthogonal axis — amortizing one *traversal* across queries.
//! A batch of B k-NN queries descends the tree in lockstep (FPSS
//! wavefront semantics, level by level): each round fetches the **union**
//! of the pages any query still needs, decodes every node once, and runs
//! the batch distance kernels per interested query over the shared
//! decoded block — a B×entries distance matrix per node, realised one
//! query-row at a time into reused scratch buffers.
//!
//! Answers are **bit-identical** to running FPSS per query: each query's
//! round-r node *set* equals its solo wavefront (the Lemma-1 threshold is
//! order-independent, survivor filtering is per-candidate, and the
//! retained k-set under the (distance, object-id) order does not depend
//! on offer order), so sharing changes only how often a page is fetched,
//! never what is answered. The I/O saving is reported as
//! [`BatchKnnReport::unique_fetches`] versus
//! [`BatchKnnReport::total_interest`] (what B solo traversals would have
//! read).

use crate::access::{AccessMethod, IndexNode};
use crate::algo::KBest;
use crate::error::QueryError;
use crate::threshold::{lemma1_threshold_sq, Candidate};
use sqda_geom::Point;
use sqda_rstar::{Neighbor, ObjectId};
use sqda_storage::{IoBackend, PageId};
use std::collections::{BTreeMap, HashMap};

/// Results of one shared-traversal batch.
#[derive(Debug, Clone)]
pub struct BatchKnnReport {
    /// Per-query answers, in input order; each sorted by increasing
    /// distance (object id breaking ties).
    pub answers: Vec<Vec<Neighbor>>,
    /// Pages fetched and decoded once for the whole batch.
    pub unique_fetches: u64,
    /// Sum over fetched pages of the number of interested queries — the
    /// page reads B independent traversals would have issued.
    pub total_interest: u64,
    /// Descent rounds (tree levels touched).
    pub rounds: u32,
}

impl BatchKnnReport {
    /// Fetch amplification avoided: `total_interest / unique_fetches`
    /// (1.0 when queries never overlap, up to B when they always do).
    pub fn sharing_factor(&self) -> f64 {
        if self.unique_fetches == 0 {
            1.0
        } else {
            self.total_interest as f64 / self.unique_fetches as f64
        }
    }
}

/// Reusable workspace for [`batch_knn_with`]: the kernel scratch buffers
/// survive across batches, so a steady-state batch stream allocates only
/// per-query state.
#[derive(Default)]
pub struct BatchScratch {
    d_min: Vec<f64>,
    d_mm: Vec<f64>,
    d_max: Vec<f64>,
}

impl BatchScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs `queries` as one shared-traversal k-NN batch over `am`.
///
/// See the module docs for semantics; answers are bit-identical to
/// running [`crate::Fpss`] per query.
pub fn batch_knn(
    am: &(impl AccessMethod + ?Sized),
    queries: &[Point],
    k: usize,
) -> Result<BatchKnnReport, QueryError> {
    let mut scratch = BatchScratch::new();
    batch_knn_with(am, queries, k, &mut scratch)
}

/// [`batch_knn`] over a caller-supplied [`BatchScratch`].
pub fn batch_knn_with(
    am: &(impl AccessMethod + ?Sized),
    queries: &[Point],
    k: usize,
    scratch: &mut BatchScratch,
) -> Result<BatchKnnReport, QueryError> {
    batch_knn_core(am, queries, k, scratch, &mut |am, pages, out| {
        for &page in pages {
            out.push(am.read_index_node(page)?);
        }
        Ok(())
    })
}

/// [`batch_knn`] with each wavefront read served through an
/// [`IoBackend`]: cache probes first (hit/miss accounting identical to
/// the read-through path), then one `submit_batch` call for the misses —
/// over a [`sqda_storage::ThreadedFileBackend`] the whole round reads
/// concurrently across the per-disk files. Completions arrive in finish
/// order, **not** request order; they are re-assembled by page id before
/// the kernels run, so answers and the report stay bit-identical to
/// [`batch_knn`].
pub fn batch_knn_backend(
    am: &(impl AccessMethod + ?Sized),
    backend: &dyn IoBackend,
    queries: &[Point],
    k: usize,
) -> Result<BatchKnnReport, QueryError> {
    let mut scratch = BatchScratch::new();
    batch_knn_backend_with(am, backend, queries, k, &mut scratch)
}

/// [`batch_knn_backend`] over a caller-supplied [`BatchScratch`].
pub fn batch_knn_backend_with(
    am: &(impl AccessMethod + ?Sized),
    backend: &dyn IoBackend,
    queries: &[Point],
    k: usize,
    scratch: &mut BatchScratch,
) -> Result<BatchKnnReport, QueryError> {
    let mut decoded: HashMap<PageId, IndexNode> = HashMap::new();
    let mut misses: Vec<PageId> = Vec::new();
    batch_knn_core(am, queries, k, scratch, &mut |am, pages, out| {
        decoded.clear();
        misses.clear();
        for &page in pages {
            match am.cached_index_node(page)? {
                Some(node) => {
                    decoded.insert(page, node);
                }
                None => misses.push(page),
            }
        }
        if !misses.is_empty() {
            let rx = backend.submit_batch(&misses);
            for _ in 0..misses.len() {
                let completion = rx.recv().map_err(|_| {
                    QueryError::Invariant("I/O backend dropped a batch mid-flight".into())
                })?;
                let bytes = completion.result?;
                let node = am.decode_index_node(completion.page, bytes)?;
                decoded.insert(completion.page, node);
            }
        }
        for &page in pages {
            out.push(decoded.remove(&page).ok_or_else(|| {
                QueryError::Invariant(format!("page {page:?} requested but never delivered"))
            })?);
        }
        Ok(())
    })
}

/// Signature of a wavefront reader: append one decoded node per page of
/// `pages`, in request order, to `out`.
type FetchWave<'a, A> =
    dyn FnMut(&A, &[PageId], &mut Vec<IndexNode>) -> Result<(), QueryError> + 'a;

/// The shared-traversal state machine, generic over how each round's
/// page union is turned into decoded nodes.
fn batch_knn_core<A: AccessMethod + ?Sized>(
    am: &A,
    queries: &[Point],
    k: usize,
    scratch: &mut BatchScratch,
    fetch_wave: &mut FetchWave<'_, A>,
) -> Result<BatchKnnReport, QueryError> {
    let b = queries.len();
    let mut kbest: Vec<KBest> = (0..b).map(|_| KBest::new(k)).collect();
    let mut d_th = vec![f64::INFINITY; b];
    // The shared wavefront: page → queries still interested in it.
    // BTreeMap so rounds iterate pages in a deterministic order.
    let mut frontier: BTreeMap<PageId, Vec<u32>> = BTreeMap::new();
    if b > 0 {
        frontier.insert(am.root_page(), (0..b as u32).collect());
    }
    let mut unique_fetches = 0u64;
    let mut total_interest = 0u64;
    let mut rounds = 0u32;
    // Per-query candidate accumulators for the current round.
    let mut cands: Vec<Vec<Candidate>> = (0..b).map(|_| Vec::new()).collect();

    let mut nodes: Vec<IndexNode> = Vec::new();
    while !frontier.is_empty() {
        rounds += 1;
        let wave = std::mem::take(&mut frontier);
        // One fetch call covers the whole round (over an I/O backend the
        // union reads in parallel); one decode serves every interested
        // query of a page.
        let pages: Vec<PageId> = wave.keys().copied().collect();
        nodes.clear();
        fetch_wave(am, &pages, &mut nodes)?;
        if nodes.len() != pages.len() {
            return Err(QueryError::Invariant(format!(
                "wavefront reader returned {} nodes for {} pages",
                nodes.len(),
                pages.len()
            )));
        }
        let mut leaf_round = false;
        for ((_page, interested), node) in wave.into_iter().zip(nodes.drain(..)) {
            unique_fetches += 1;
            total_interest += interested.len() as u64;
            match node {
                IndexNode::Leaf(leaf) => {
                    // Index trees are balanced: a leaf round is a leaf
                    // round for every query in the batch.
                    leaf_round = true;
                    for &q in &interested {
                        let qi = q as usize;
                        // One row of the B×entries distance matrix,
                        // then a filtered bulk push (offers past `dk`
                        // are no-ops; ties keep the id tie-break).
                        leaf.dist_sq_into(queries[qi].coords(), &mut scratch.d_min);
                        for i in 0..leaf.len() {
                            let d = scratch.d_min[i];
                            if d <= kbest[qi].dk_sq() {
                                kbest[qi].offer(
                                    ObjectId(leaf.id(i)),
                                    Point::from(leaf.point(i)),
                                    d,
                                );
                            }
                        }
                    }
                }
                IndexNode::Internal(block) => {
                    for &q in &interested {
                        let qi = q as usize;
                        block.metrics_into(
                            queries[qi].coords(),
                            &mut scratch.d_min,
                            &mut scratch.d_mm,
                            &mut scratch.d_max,
                        );
                        cands[qi].extend((0..block.len()).map(|i| {
                            Candidate::new(
                                block.child(i),
                                block.count(i),
                                scratch.d_min[i],
                                scratch.d_mm[i],
                                scratch.d_max[i],
                            )
                        }));
                    }
                }
            }
        }
        if leaf_round {
            // FPSS semantics: the leaf level ends the descent.
            break;
        }
        for (qi, qc) in cands.iter_mut().enumerate() {
            if qc.is_empty() {
                continue;
            }
            // Adapt the query's threshold over its whole wavefront
            // (Lemma 1; only ever shrinks), then keep every branch still
            // intersecting its query sphere.
            if let Some(th) = lemma1_threshold_sq(qc, k as u64) {
                if th < d_th[qi] {
                    d_th[qi] = th;
                }
            }
            for c in qc.drain(..) {
                if c.d_min_sq <= d_th[qi] {
                    frontier.entry(c.page).or_default().push(qi as u32);
                }
            }
        }
    }

    Ok(BatchKnnReport {
        answers: kbest.iter().map(|kb| kb.to_sorted()).collect(),
        unique_fetches,
        total_interest,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_query;
    use crate::Fpss;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sqda_rstar::decluster::ProximityIndex;
    use sqda_rstar::{RStarConfig, RStarTree};
    use sqda_storage::ArrayStore;
    use std::sync::Arc;

    fn build(n: usize, seed: u64) -> RStarTree<ArrayStore> {
        let store = Arc::new(ArrayStore::new(4, 1449, seed));
        let mut tree = RStarTree::create(
            store,
            RStarConfig::new(2).with_max_entries(8),
            Box::new(ProximityIndex),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            tree.insert(
                Point::new(vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)]),
                i as u64,
            )
            .unwrap();
        }
        tree
    }

    #[test]
    fn batch_answers_bit_identical_to_solo_fpss() {
        let tree = build(1500, 41);
        let mut rng = StdRng::seed_from_u64(99);
        let queries: Vec<Point> = (0..16)
            .map(|_| Point::new(vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)]))
            .collect();
        for k in [1, 5, 10] {
            let batch = batch_knn(&tree, &queries, k).unwrap();
            assert_eq!(batch.answers.len(), queries.len());
            for (q, got) in queries.iter().zip(batch.answers.iter()) {
                let mut solo = Fpss::new(&tree, q.clone(), k);
                let want = run_query(&tree, &mut solo).unwrap().results;
                assert_eq!(got.len(), want.len(), "k={k}");
                for (g, w) in got.iter().zip(want.iter()) {
                    assert_eq!(g.object, w.object, "k={k}");
                    assert_eq!(g.dist_sq.to_bits(), w.dist_sq.to_bits(), "k={k}");
                }
            }
        }
    }

    #[test]
    fn sharing_reduces_unique_fetches() {
        let tree = build(2000, 42);
        // Clustered queries overlap heavily: the union wavefront must be
        // far smaller than B solo traversals.
        let queries: Vec<Point> = (0..8)
            .map(|i| Point::new(vec![5.0 + 0.01 * i as f64, 5.0]))
            .collect();
        let report = batch_knn(&tree, &queries, 5).unwrap();
        assert!(report.unique_fetches > 0);
        assert!(
            report.total_interest > report.unique_fetches,
            "clustered queries must share fetches: {} vs {}",
            report.total_interest,
            report.unique_fetches
        );
        assert!(report.sharing_factor() > 1.5);
        assert!(report.rounds >= 2);
    }

    #[test]
    fn empty_batch_and_single_query() {
        let tree = build(300, 43);
        let none = batch_knn(&tree, &[], 3).unwrap();
        assert!(none.answers.is_empty());
        assert_eq!(none.unique_fetches, 0);

        let one = vec![Point::new(vec![2.0, 2.0])];
        let report = batch_knn(&tree, &one, 3).unwrap();
        assert_eq!(report.answers.len(), 1);
        assert_eq!(report.answers[0].len(), 3);
        // A batch of one shares nothing.
        assert_eq!(report.unique_fetches, report.total_interest);
    }

    #[test]
    fn backend_routed_batch_is_bit_identical() {
        use sqda_storage::InlineBackend;
        let tree = build(1200, 45);
        let backend = InlineBackend::new(Arc::clone(tree.store()));
        let mut rng = StdRng::seed_from_u64(7);
        let queries: Vec<Point> = (0..12)
            .map(|_| Point::new(vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)]))
            .collect();
        for k in [1, 7] {
            let direct = batch_knn(&tree, &queries, k).unwrap();
            let routed = batch_knn_backend(&tree, &backend, &queries, k).unwrap();
            // Identical counters: the backend path fetches the same page
            // union per round, it only changes who performs the reads.
            assert_eq!(routed.unique_fetches, direct.unique_fetches);
            assert_eq!(routed.total_interest, direct.total_interest);
            assert_eq!(routed.rounds, direct.rounds);
            assert_eq!(routed.answers.len(), direct.answers.len());
            for (r, d) in routed.answers.iter().zip(direct.answers.iter()) {
                assert_eq!(r.len(), d.len());
                for (a, b) in r.iter().zip(d.iter()) {
                    assert_eq!(a.object, b.object);
                    assert_eq!(a.dist_sq.to_bits(), b.dist_sq.to_bits());
                }
            }
        }
    }

    #[test]
    fn batch_larger_than_tree_k() {
        let tree = build(10, 44);
        let queries = vec![Point::new(vec![1.0, 1.0]), Point::new(vec![9.0, 9.0])];
        let report = batch_knn(&tree, &queries, 50).unwrap();
        for a in &report.answers {
            assert_eq!(a.len(), 10, "k beyond population returns everything");
        }
    }
}
