//! WOPTSS — the hypothetical Weak-OPTimal Similarity Search
//! (Section 3.4).
//!
//! A weak-optimal algorithm touches exactly the nodes intersected by the
//! sphere centered at the query point with radius `D_k`, the distance to
//! the k-th nearest neighbour — a radius no real algorithm can know in
//! advance. WOPTSS obtains `D_k` from the sequential best-first search
//! at construction time (the oracle step, not billed to the query), then
//! fetches every relevant node level by level with full parallelism. Its
//! node count and response time are the lower bounds the real algorithms
//! are measured against (Theorem 2 shows none of them attains it).

use crate::access::{best_first_knn_with, AccessMethod, IndexNode, QueryScratch};
use crate::algo::{BatchResult, KBest, SimilaritySearch, Step};
use crate::error::QueryError;
use sqda_geom::Point;
use sqda_rstar::{Neighbor, ObjectId};
use sqda_simkernel::cpu_instructions_for_batch;
use sqda_storage::PageId;

/// The weak-optimal oracle search.
pub struct Woptss {
    query: Point,
    kbest: KBest,
    root: PageId,
    /// The oracle radius: squared distance to the true k-th neighbour.
    dk_sq: f64,
    /// Batch-kernel scratch: per-node distance vector, reused across
    /// batches.
    dists: Vec<f64>,
}

impl Woptss {
    /// Prepares a WOPTSS run, precomputing the true `D_k` via the
    /// sequential best-first search (the oracle's foreknowledge).
    pub fn new(
        am: &(impl AccessMethod + ?Sized),
        query: Point,
        k: usize,
    ) -> Result<Self, QueryError> {
        let mut scratch = QueryScratch::new();
        Self::new_with(am, query, k, &mut scratch)
    }

    /// [`Woptss::new`] with the oracle's best-first heap borrowed from a
    /// reusable [`QueryScratch`].
    pub fn new_with(
        am: &(impl AccessMethod + ?Sized),
        query: Point,
        k: usize,
        scratch: &mut QueryScratch,
    ) -> Result<Self, QueryError> {
        let truth = best_first_knn_with(am, &query, k, scratch)?;
        // Fewer than k objects in the tree: every node is "relevant"
        // (the query must return the whole database).
        let dk_sq = if truth.len() < k {
            f64::INFINITY
        } else {
            truth.last().map(|n| n.dist_sq).unwrap_or(f64::INFINITY)
        };
        Ok(Self {
            query,
            kbest: KBest::new(k),
            root: am.root_page(),
            dk_sq,
            dists: Vec::new(),
        })
    }

    /// The oracle radius (squared). Exposed for experiments that need the
    /// answer sphere (e.g. plotting pruning effectiveness).
    pub fn oracle_radius_sq(&self) -> f64 {
        self.dk_sq
    }
}

impl SimilaritySearch for Woptss {
    fn start(&mut self) -> Step {
        Step::Fetch(vec![self.root])
    }

    fn on_fetched(&mut self, nodes: &mut Vec<(PageId, IndexNode)>) -> BatchResult {
        let mut scanned = 0u64;
        let mut pages: Vec<PageId> = Vec::new();
        for (_, node) in nodes.drain(..) {
            match node {
                IndexNode::Leaf(leaf) => {
                    scanned += leaf.len() as u64;
                    // One batch-kernel call per node, then a filtered
                    // bulk push (offers past `dk` are no-ops; ties keep
                    // the object-id tie-break).
                    leaf.dist_sq_into(self.query.coords(), &mut self.dists);
                    for i in 0..leaf.len() {
                        let d = self.dists[i];
                        if d <= self.kbest.dk_sq() {
                            self.kbest
                                .offer(ObjectId(leaf.id(i)), Point::from(leaf.point(i)), d);
                        }
                    }
                }
                IndexNode::Internal(block) => {
                    scanned += block.len() as u64;
                    // `D_min²` for the whole node in one batched sweep.
                    block.min_dist_sq_into(self.query.coords(), &mut self.dists);
                    pages.extend(
                        (0..block.len())
                            .filter(|&i| self.dists[i] <= self.dk_sq)
                            .map(|i| block.child(i)),
                    );
                }
            }
        }
        let sorted = pages.len() as u64;
        let next = if pages.is_empty() {
            Step::Done
        } else {
            Step::Fetch(pages)
        };
        BatchResult {
            next,
            cpu_instructions: cpu_instructions_for_batch(scanned, sorted),
        }
    }

    fn results(&self) -> Vec<Neighbor> {
        self.kbest.to_sorted()
    }

    fn name(&self) -> &'static str {
        "WOPTSS"
    }
}
