//! Similarity query processing on disk arrays.
//!
//! This crate is the primary contribution of the reproduced paper: four
//! k-nearest-neighbour algorithms that operate over a *declustered*
//! R\*-tree (`sqda-rstar`) whose nodes live on the disks of a RAID-0
//! array:
//!
//! * [`Bbss`] — **B**ranch-and-**B**ound **S**imilarity **S**earch, the
//!   Roussopoulos–Kelley–Vincent depth-first algorithm. One node request
//!   at a time: minimal node accesses for small `k`, but no intra-query
//!   parallelism.
//! * [`Fpss`] — **F**ull-**P**arallel **S**imilarity **S**earch:
//!   breadth-first, activating *every* node that intersects the current
//!   query sphere. Maximal parallelism, uncontrolled I/O volume.
//! * [`Crss`] — **C**andidate-**R**eduction **S**imilarity **S**earch,
//!   the paper's proposal: a threshold distance derived from per-entry
//!   subtree object counts (Lemma 1) prunes candidates before any data is
//!   seen, a candidate stack organised in guarded runs defers doubtful
//!   MBRs, and the activation set is bounded by the number of disks —
//!   balancing parallelism against wasted I/O.
//! * [`Woptss`] — the hypothetical **W**eak-**OPT**imal search that knows
//!   the final k-NN distance in advance and touches only nodes
//!   intersecting the answer sphere: the lower bound every real algorithm
//!   is measured against.
//!
//! Algorithms are *batch state machines* ([`SimilaritySearch`]): they emit
//! page-fetch batches and consume decoded nodes, so the same
//! implementation runs under
//!
//! * the [logical executor](exec::run_query) — counts node accesses
//!   (Figures 8–9 of the paper), and
//! * the [event-driven simulator](exec::Simulation) — measures query
//!   response times on the modelled disk array under Poisson workloads
//!   (Figures 10–12, Tables 3–4), and
//! * the [real-clock engine](exec::RealTimeEngine) — the same sessions
//!   against real files through a batched
//!   [`IoBackend`](sqda_storage::IoBackend), reporting wall-clock
//!   latencies (`sqda serve`, `bench_serve`).
//!
//! # Example: one query, four algorithms
//!
//! ```
//! use sqda_core::{AlgorithmKind, exec::run_query};
//! use sqda_rstar::{RStarTree, RStarConfig, decluster::ProximityIndex};
//! use sqda_storage::ArrayStore;
//! use sqda_geom::Point;
//! use std::sync::Arc;
//!
//! let store = Arc::new(ArrayStore::new(10, 1449, 1));
//! let mut tree = RStarTree::create(
//!     store, RStarConfig::new(2).with_max_entries(16), Box::new(ProximityIndex),
//! ).unwrap();
//! for i in 0..2000u64 {
//!     let p = Point::new(vec![(i % 83) as f64, (i % 59) as f64]);
//!     tree.insert(p, i).unwrap();
//! }
//! let q = Point::new(vec![41.0, 29.0]);
//! for kind in AlgorithmKind::ALL {
//!     let mut algo = kind.build(&tree, q.clone(), 10).unwrap();
//!     let run = run_query(&tree, algo.as_mut()).unwrap();
//!     assert_eq!(run.results.len(), 10);
//! }
//! ```

pub mod access;
pub mod algo;
pub mod batch;
mod bbss;
mod crss;
pub mod error;
pub mod exec;
mod fpss;
mod range;
pub mod threshold;
mod woptss;
pub mod workload;

pub use access::{
    best_first_knn, best_first_knn_with, AccessMethod, IndexNode, InternalBlock, LeafBlock,
    QueryScratch, RegionBlock,
};
pub use batch::{
    batch_knn, batch_knn_backend, batch_knn_backend_with, batch_knn_with, BatchKnnReport,
    BatchScratch,
};
pub use error::QueryError;
// Re-exported so access-method crates can type their answers without a
// direct dependency on the R*-tree crate.
pub use algo::{AlgoProgress, AlgorithmKind, BatchResult, KBest, SimilaritySearch, Step};
pub use bbss::Bbss;
pub use crss::Crss;
pub use exec::{
    mirror_partner, run_query, run_query_with, QueryRun, RealTimeEngine, RealTimeReport,
    Simulation, SimulationReport,
};
pub use fpss::Fpss;
pub use range::RangeSearch;
pub use sqda_rstar::{Neighbor, ObjectId};
pub use woptss::Woptss;
pub use workload::{Workload, WorkloadQuery};
