//! Correctness of the four similarity-search algorithms: identical
//! answers to brute force, WOPTSS as a node-access lower bound, and the
//! batch-shape properties that define each algorithm.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqda_core::{exec::run_query, AlgorithmKind, Crss};
use sqda_geom::Point;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{RStarConfig, RStarTree};
use sqda_storage::ArrayStore;
use std::sync::Arc;

fn build_tree(points: &[Point], dim: usize, disks: u32, fanout: usize) -> RStarTree<ArrayStore> {
    let store = Arc::new(ArrayStore::new(disks, 1449, 42));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::new(dim).with_max_entries(fanout),
        Box::new(ProximityIndex),
    )
    .unwrap();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    tree
}

fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new((0..dim).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect()
}

fn brute_dists(points: &[Point], q: &Point, k: usize) -> Vec<f64> {
    let mut d: Vec<f64> = points.iter().map(|p| q.dist_sq(p)).collect();
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    d.truncate(k);
    d
}

#[test]
fn all_algorithms_match_brute_force() {
    let dim = 2;
    let points = random_points(3000, dim, 1);
    let tree = build_tree(&points, dim, 10, 16);
    let mut rng = StdRng::seed_from_u64(7);
    for trial in 0..15 {
        let q = Point::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
        for k in [1, 4, 20, 100] {
            let want = brute_dists(&points, &q, k);
            for kind in AlgorithmKind::ALL {
                let mut algo = kind.build(&tree, q.clone(), k).unwrap();
                let run = run_query(&tree, algo.as_mut()).unwrap();
                assert_eq!(
                    run.results.len(),
                    k,
                    "{kind} trial {trial} k {k}: wrong count"
                );
                for (got, want) in run.results.iter().zip(want.iter()) {
                    assert!(
                        (got.dist_sq - want).abs() < 1e-9,
                        "{kind} trial {trial} k {k}: {} vs {}",
                        got.dist_sq,
                        want
                    );
                }
            }
        }
    }
}

#[test]
fn all_algorithms_match_in_high_dimensions() {
    let dim = 10;
    let points = random_points(2000, dim, 2);
    let tree = build_tree(&points, dim, 10, 12);
    let q = Point::splat(dim, 0.5);
    for k in [1, 10, 50] {
        let want = brute_dists(&points, &q, k);
        for kind in AlgorithmKind::ALL {
            let mut algo = kind.build(&tree, q.clone(), k).unwrap();
            let run = run_query(&tree, algo.as_mut()).unwrap();
            let got: Vec<f64> = run.results.iter().map(|n| n.dist_sq).collect();
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g - w).abs() < 1e-9, "{kind} 10-d k={k}");
            }
        }
    }
}

#[test]
fn k_exceeding_population_returns_everything() {
    let points = random_points(25, 2, 3);
    let tree = build_tree(&points, 2, 4, 4);
    let q = Point::splat(2, 0.5);
    for kind in AlgorithmKind::ALL {
        let mut algo = kind.build(&tree, q.clone(), 100).unwrap();
        let run = run_query(&tree, algo.as_mut()).unwrap();
        assert_eq!(run.results.len(), 25, "{kind} must return all objects");
    }
}

#[test]
fn k_one_works_everywhere() {
    let points = random_points(500, 3, 4);
    let tree = build_tree(&points, 3, 5, 8);
    let q = Point::new(vec![0.25, 0.75, 0.5]);
    let want = brute_dists(&points, &q, 1)[0];
    for kind in AlgorithmKind::ALL {
        let mut algo = kind.build(&tree, q.clone(), 1).unwrap();
        let run = run_query(&tree, algo.as_mut()).unwrap();
        assert!((run.results[0].dist_sq - want).abs() < 1e-12, "{kind}");
    }
}

#[test]
fn woptss_is_node_access_lower_bound() {
    let points = random_points(4000, 2, 5);
    let tree = build_tree(&points, 2, 10, 16);
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..10 {
        let q = Point::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
        for k in [1, 10, 50] {
            let mut wopt = AlgorithmKind::Woptss.build(&tree, q.clone(), k).unwrap();
            let wopt_run = run_query(&tree, wopt.as_mut()).unwrap();
            for kind in AlgorithmKind::REAL {
                let mut algo = kind.build(&tree, q.clone(), k).unwrap();
                let run = run_query(&tree, algo.as_mut()).unwrap();
                assert!(
                    run.nodes_visited >= wopt_run.nodes_visited,
                    "{kind} visited {} < WOPTSS {} (k={k})",
                    run.nodes_visited,
                    wopt_run.nodes_visited
                );
            }
        }
    }
}

#[test]
fn bbss_fetches_one_page_per_batch() {
    let points = random_points(2000, 2, 6);
    let tree = build_tree(&points, 2, 10, 16);
    let q = Point::splat(2, 0.3);
    let mut algo = AlgorithmKind::Bbss.build(&tree, q, 25).unwrap();
    let run = run_query(&tree, algo.as_mut()).unwrap();
    assert_eq!(run.max_batch, 1, "BBSS has no intra-query parallelism");
    assert_eq!(run.batches, run.nodes_visited);
}

#[test]
fn crss_batches_bounded_by_disk_count() {
    let points = random_points(5000, 2, 7);
    for disks in [2u32, 5, 10] {
        let tree = build_tree(&points, 2, disks, 16);
        let q = Point::splat(2, 0.6);
        let mut algo = AlgorithmKind::Crss.build(&tree, q, 50).unwrap();
        let run = run_query(&tree, algo.as_mut()).unwrap();
        assert!(
            run.max_batch <= disks as usize,
            "CRSS batch {} exceeds {} disks",
            run.max_batch,
            disks
        );
    }
}

#[test]
fn crss_explicit_activation_bound() {
    let points = random_points(3000, 2, 8);
    let tree = build_tree(&points, 2, 10, 16);
    let q = Point::splat(2, 0.4);
    for u in [1usize, 3, 7] {
        let mut algo = Crss::with_activation_bound(&tree, q.clone(), 20, u);
        let run = run_query(&tree, &mut algo).unwrap();
        assert!(run.max_batch <= u, "bound {u} violated: {}", run.max_batch);
        assert_eq!(run.results.len(), 20);
    }
}

#[test]
fn fpss_visits_at_least_as_many_nodes_as_crss_on_average() {
    // FPSS activates everything intersecting the sphere; CRSS defers.
    // Aggregated over queries, FPSS can't fetch less.
    let points = random_points(6000, 2, 9);
    let tree = build_tree(&points, 2, 10, 16);
    let mut rng = StdRng::seed_from_u64(21);
    let mut fpss_total = 0u64;
    let mut crss_total = 0u64;
    for _ in 0..15 {
        let q = Point::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
        let mut fpss = AlgorithmKind::Fpss.build(&tree, q.clone(), 20).unwrap();
        fpss_total += run_query(&tree, fpss.as_mut()).unwrap().nodes_visited;
        let mut crss = AlgorithmKind::Crss.build(&tree, q.clone(), 20).unwrap();
        crss_total += run_query(&tree, crss.as_mut()).unwrap().nodes_visited;
    }
    assert!(
        fpss_total >= crss_total,
        "FPSS {fpss_total} < CRSS {crss_total}"
    );
}

#[test]
fn duplicate_heavy_data() {
    // Many coincident points stress tie-breaking and termination.
    let mut points = Vec::new();
    for i in 0..200 {
        points.push(Point::new(vec![(i % 5) as f64, (i % 3) as f64]));
    }
    let tree = build_tree(&points, 2, 4, 6);
    let q = Point::new(vec![2.0, 1.0]);
    let want = brute_dists(&points, &q, 30);
    for kind in AlgorithmKind::ALL {
        let mut algo = kind.build(&tree, q.clone(), 30).unwrap();
        let run = run_query(&tree, algo.as_mut()).unwrap();
        assert_eq!(run.results.len(), 30, "{kind}");
        for (g, w) in run.results.iter().zip(want.iter()) {
            assert!((g.dist_sq - w).abs() < 1e-9, "{kind}");
        }
    }
}

#[test]
fn query_far_outside_data() {
    let points = random_points(1000, 2, 10);
    let tree = build_tree(&points, 2, 5, 8);
    let q = Point::new(vec![1000.0, -500.0]);
    let want = brute_dists(&points, &q, 5);
    for kind in AlgorithmKind::ALL {
        let mut algo = kind.build(&tree, q.clone(), 5).unwrap();
        let run = run_query(&tree, algo.as_mut()).unwrap();
        for (g, w) in run.results.iter().zip(want.iter()) {
            assert!((g.dist_sq - w).abs() < 1e-6, "{kind}");
        }
    }
}

#[test]
fn cpu_instructions_are_accumulated() {
    let points = random_points(2000, 2, 11);
    let tree = build_tree(&points, 2, 10, 16);
    let q = Point::splat(2, 0.5);
    for kind in AlgorithmKind::ALL {
        let mut algo = kind.build(&tree, q.clone(), 10).unwrap();
        let run = run_query(&tree, algo.as_mut()).unwrap();
        assert!(run.cpu_instructions > 0, "{kind} reported no CPU work");
    }
}

#[test]
fn results_sorted_by_distance() {
    let points = random_points(1500, 4, 12);
    let tree = build_tree(&points, 4, 8, 10);
    let q = Point::splat(4, 0.5);
    for kind in AlgorithmKind::ALL {
        let mut algo = kind.build(&tree, q.clone(), 40).unwrap();
        let run = run_query(&tree, algo.as_mut()).unwrap();
        for w in run.results.windows(2) {
            assert!(w[0].dist_sq <= w[1].dist_sq, "{kind} results unsorted");
        }
    }
}
