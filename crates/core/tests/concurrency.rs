//! Concurrent read-only queries over a shared tree: the inter-query
//! parallelism the disk array exists to serve, exercised with real
//! threads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqda_core::{exec::run_query, AlgorithmKind};
use sqda_geom::Point;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{RStarConfig, RStarTree};
use sqda_storage::ArrayStore;
use std::sync::Arc;

#[test]
fn parallel_queries_from_many_threads() {
    let store = Arc::new(ArrayStore::new(8, 1449, 3));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::new(2).with_max_entries(16),
        Box::new(ProximityIndex),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let points: Vec<Point> = (0..5000)
        .map(|_| Point::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
        .collect();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let tree = Arc::new(tree);
    let points = Arc::new(points);

    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let tree = Arc::clone(&tree);
            let points = Arc::clone(&points);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + t);
                for _ in 0..25 {
                    let q = Point::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
                    let k = rng.gen_range(1..30);
                    let kind = AlgorithmKind::ALL[rng.gen_range(0..4)];
                    let mut algo = kind.build(tree.as_ref(), q.clone(), k).unwrap();
                    let run = run_query(tree.as_ref(), algo.as_mut()).unwrap();
                    // Verify against brute force inside the thread.
                    let mut want: Vec<f64> = points.iter().map(|p| q.dist_sq(p)).collect();
                    want.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    want.truncate(k);
                    assert_eq!(run.results.len(), want.len());
                    for (g, w) in run.results.iter().zip(want.iter()) {
                        assert!((g.dist_sq - w).abs() < 1e-9, "{kind} mismatch");
                    }
                }
            });
        }
    });
}
