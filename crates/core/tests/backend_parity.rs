//! Execution-backend equivalence: the same persisted tree and query set
//! must yield byte-identical k-NN answers and identical `IoStats`
//! (reads, per-disk breakdown, cache hits) under the logical executor,
//! the simulated engine, and the real-clock engine.
//!
//! This is the contract that makes wall-clock measurements from
//! `sqda serve` / `bench_serve` comparable to the simulator's
//! predictions: the engines may disagree about *time*, never about
//! *work* — which pages are read, from which disks, and which of those
//! reads the shared node cache absorbs.

use sqda_core::{
    exec::run_query, AlgorithmKind, BatchResult, IndexNode, Neighbor, RealTimeEngine,
    SimilaritySearch, Simulation, Step, Workload, WorkloadQuery,
};
use sqda_geom::Point;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{Node, RStarConfig, RStarTree};
use sqda_simkernel::{FaultPlan, SimTime, SystemParams};
use sqda_storage::{
    FileStore, InlineBackend, IoStats, NodeCache, PageId, PageStore, ThreadedFileBackend,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

const NUM_DISKS: u32 = 4;
const PAGE_SIZE: usize = 1024;

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sqda-backend-parity-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> RStarConfig {
    RStarConfig::with_page_size(2, PAGE_SIZE)
}

/// Persists a deterministic tree and returns its root page.
fn build_store(dir: &PathBuf) -> PageId {
    let store = Arc::new(FileStore::create(dir, NUM_DISKS, 100, PAGE_SIZE, 11).unwrap());
    let mut tree = RStarTree::create(store.clone(), config(), Box::new(ProximityIndex)).unwrap();
    for i in 0..400u64 {
        let x = (i % 23) as f64 + (i as f64) * 1e-3;
        let y = (i % 17) as f64;
        tree.insert(Point::new(vec![x, y]), i).unwrap();
    }
    let root = tree.root_page();
    store.sync().unwrap();
    root
}

/// A fresh handle on the persisted tree with a cold, eviction-free node
/// cache and zeroed I/O counters — each execution mode starts from the
/// identical state.
fn open_tree(dir: &PathBuf, root: PageId) -> RStarTree<FileStore> {
    let store = Arc::new(FileStore::open(dir).unwrap());
    let mut tree = RStarTree::attach(store, config(), Box::new(ProximityIndex), root).unwrap();
    tree.set_node_cache(Arc::new(NodeCache::<Node>::new(4096)));
    tree.store().reset_stats();
    tree
}

fn queries() -> Vec<(Point, usize)> {
    (0..6)
        .map(|i| {
            (
                Point::new(vec![(i * 3 % 20) as f64 + 0.4, (i * 5 % 15) as f64 + 0.7]),
                5,
            )
        })
        .collect()
}

fn workload() -> Workload {
    Workload {
        queries: queries()
            .into_iter()
            .enumerate()
            .map(|(i, (point, k))| WorkloadQuery {
                arrival: SimTime::from_millis_f64(i as f64 * 5.0),
                point,
                k,
            })
            .collect(),
    }
}

/// Answers of every query plus the run's I/O statistics, for one mode.
struct ModeRun {
    answers: Vec<Vec<Neighbor>>,
    io: IoStats,
}

fn run_logical(dir: &PathBuf, root: PageId, kind: AlgorithmKind) -> ModeRun {
    let tree = open_tree(dir, root);
    let answers = queries()
        .into_iter()
        .map(|(point, k)| {
            let mut algo = kind.build(&tree, point, k).unwrap();
            run_query(&tree, algo.as_mut()).unwrap().results
        })
        .collect();
    ModeRun {
        answers,
        io: tree.io_stats(),
    }
}

/// Stashes the inner algorithm's answers on `Done`; the simulated
/// executor never reads answers itself, so this is the capture seam.
struct Spy {
    inner: Box<dyn SimilaritySearch>,
    query: usize,
    sink: Arc<Mutex<BTreeMap<usize, Vec<Neighbor>>>>,
}

impl SimilaritySearch for Spy {
    fn start(&mut self) -> Step {
        self.inner.start()
    }
    fn on_fetched(&mut self, nodes: &mut Vec<(PageId, IndexNode)>) -> BatchResult {
        let result = self.inner.on_fetched(nodes);
        if matches!(result.next, Step::Done) {
            self.sink
                .lock()
                .unwrap()
                .insert(self.query, self.inner.results());
        }
        result
    }
    fn results(&self) -> Vec<Neighbor> {
        self.inner.results()
    }
    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

fn run_simulated(dir: &PathBuf, root: PageId, kind: AlgorithmKind) -> ModeRun {
    let tree = open_tree(dir, root);
    let sim = Simulation::new(&tree, SystemParams::with_disks(NUM_DISKS)).unwrap();
    let sink: Arc<Mutex<BTreeMap<usize, Vec<Neighbor>>>> = Arc::default();
    let mut next_query = 0usize;
    let factory_sink = Arc::clone(&sink);
    let report = sim
        .run_with_faulted_recorded(
            |point, k| {
                let spy = Spy {
                    inner: kind.build(&tree, point, k).unwrap(),
                    query: next_query,
                    sink: Arc::clone(&factory_sink),
                };
                next_query += 1;
                Box::new(spy)
            },
            kind.name(),
            &workload(),
            13,
            &FaultPlan::none(),
            &mut sqda_obs::NullRecorder,
        )
        .unwrap();
    assert_eq!(report.failed, 0, "{kind}");
    let captured = sink.lock().unwrap();
    let answers = (0..captured.len()).map(|q| captured[&q].clone()).collect();
    ModeRun {
        answers,
        io: tree.io_stats(),
    }
}

fn run_real(dir: &PathBuf, root: PageId, kind: AlgorithmKind, threaded: bool) -> ModeRun {
    let tree = open_tree(dir, root);
    let backend: Arc<dyn sqda_storage::IoBackend> = if threaded {
        Arc::new(ThreadedFileBackend::new(Arc::clone(tree.store())))
    } else {
        Arc::new(InlineBackend::new(Arc::clone(tree.store())))
    };
    let engine = RealTimeEngine::new(&tree, backend).unwrap();
    let report = engine.run(kind, &workload(), 1).unwrap();
    assert_eq!(report.failed, 0, "{kind}");
    assert_eq!(report.completed, queries().len(), "{kind}");
    ModeRun {
        answers: report.answers,
        io: tree.io_stats(),
    }
}

/// Like [`run_real`] (threaded backend), but with the full telemetry
/// plane armed: a `LiveTelemetry` registry observing the engine, a
/// `ReadObserver` on the backend's disk workers, a flight-recorder ring
/// and the sliding window — the configuration `sqda serve` runs with.
fn run_real_observed(
    dir: &PathBuf,
    root: PageId,
    kind: AlgorithmKind,
) -> (ModeRun, Arc<sqda_obs::LiveTelemetry>, sqda_core::RealTimeReport) {
    let tree = open_tree(dir, root);
    let live = Arc::new(sqda_obs::LiveTelemetry::new(NUM_DISKS).with_flight_recorder(8192));
    let observer: Arc<dyn sqda_storage::ReadObserver> = Arc::clone(&live) as _;
    let backend = Arc::new(ThreadedFileBackend::with_observer(
        Arc::clone(tree.store()),
        observer,
    ));
    let engine = RealTimeEngine::new(&tree, backend)
        .unwrap()
        .with_telemetry(Arc::clone(&live))
        .unwrap();
    let report = engine.run(kind, &workload(), 1).unwrap();
    assert_eq!(report.failed, 0, "{kind}");
    let run = ModeRun {
        answers: report.answers.clone(),
        io: tree.io_stats(),
    };
    (run, live, report)
}

fn assert_answers_identical(kind: AlgorithmKind, a: &ModeRun, b: &ModeRun, what: &str) {
    assert_eq!(a.answers.len(), b.answers.len(), "{kind}: {what}");
    for (q, (want, got)) in a.answers.iter().zip(&b.answers).enumerate() {
        assert_eq!(want.len(), got.len(), "{kind} query {q}: {what}");
        for (x, y) in want.iter().zip(got) {
            assert_eq!(x.object, y.object, "{kind} query {q}: {what}");
            // Bit-exact, not approximate: both engines must do the same
            // arithmetic on the same decoded bytes.
            assert_eq!(
                x.dist_sq.to_bits(),
                y.dist_sq.to_bits(),
                "{kind} query {q}: {what}"
            );
            assert_eq!(
                x.point.coords(),
                y.point.coords(),
                "{kind} query {q}: {what}"
            );
        }
    }
}

fn assert_io_identical(kind: AlgorithmKind, a: &ModeRun, b: &ModeRun, what: &str) {
    assert_eq!(a.io.reads, b.io.reads, "{kind} reads: {what}");
    assert_eq!(
        a.io.reads_per_disk, b.io.reads_per_disk,
        "{kind} per-disk reads: {what}"
    );
    assert_eq!(
        a.io.cache_hits, b.io.cache_hits,
        "{kind} cache hits: {what}"
    );
    assert_eq!(
        a.io.cache_misses, b.io.cache_misses,
        "{kind} cache misses: {what}"
    );
}

/// The acceptance pin: logical, simulated, and real-clock execution
/// agree bit-for-bit on answers and I/O work for all four algorithms.
#[test]
fn three_execution_modes_agree_on_answers_and_io() {
    let dir = tmpdir("modes");
    let root = build_store(&dir);
    for kind in AlgorithmKind::ALL {
        let logical = run_logical(&dir, root, kind);
        let simulated = run_simulated(&dir, root, kind);
        let real = run_real(&dir, root, kind, true);
        assert!(
            logical.io.reads > 0 && logical.io.cache_hits > 0,
            "{kind}: the workload must exercise both the store and the cache"
        );
        assert_answers_identical(kind, &logical, &simulated, "logical vs simulated");
        assert_answers_identical(kind, &logical, &real, "logical vs real");
        assert_io_identical(kind, &logical, &simulated, "logical vs simulated");
        assert_io_identical(kind, &logical, &real, "logical vs real");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The inline (synchronous) backend is work-equivalent to the threaded
/// per-disk backend: same answers, same I/O statistics.
#[test]
fn inline_and_threaded_backends_agree() {
    let dir = tmpdir("backends");
    let root = build_store(&dir);
    for kind in [AlgorithmKind::Crss, AlgorithmKind::Bbss] {
        let inline = run_real(&dir, root, kind, false);
        let threaded = run_real(&dir, root, kind, true);
        assert_answers_identical(kind, &inline, &threaded, "inline vs threaded");
        assert_io_identical(kind, &inline, &threaded, "inline vs threaded");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The telemetry plane observes, never steers: with a live registry,
/// read observer, and flight recorder all armed, the real-clock engine
/// produces byte-identical answers and identical `IoStats` to the bare
/// engine — and the registry's own books agree with the store's.
#[test]
fn telemetry_enabled_run_is_work_identical() {
    let dir = tmpdir("telemetry");
    let root = build_store(&dir);
    for kind in [AlgorithmKind::Crss, AlgorithmKind::Bbss] {
        let bare = run_real(&dir, root, kind, true);
        let (observed, live, _) = run_real_observed(&dir, root, kind);
        assert_answers_identical(kind, &bare, &observed, "bare vs telemetry");
        assert_io_identical(kind, &bare, &observed, "bare vs telemetry");
        // The registry saw every query and exactly the physical reads.
        assert_eq!(live.queries_completed.get(), queries().len() as u64, "{kind}");
        assert_eq!(live.queries_failed.get(), 0, "{kind}");
        let observed_reads: Vec<u64> = live.disks().iter().map(|d| d.requests.get()).collect();
        assert_eq!(observed_reads, observed.io.reads_per_disk, "{kind}");
        assert!(live.flight().unwrap().recorded() > 0, "{kind}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The introspection plane observes, never steers: running every query
/// through [`RealTimeEngine::explain_query`] yields byte-identical
/// answers and identical `IoStats` to the bare engine, and each
/// record's internal books are consistent — per-level accesses sum to
/// the node total, per-disk reads sum to the store's physical reads.
#[test]
fn explain_enabled_run_is_work_identical() {
    let dir = tmpdir("explain");
    let root = build_store(&dir);
    for kind in [AlgorithmKind::Crss, AlgorithmKind::Bbss] {
        let bare = run_real(&dir, root, kind, true);
        let tree = open_tree(&dir, root);
        let backend = Arc::new(ThreadedFileBackend::new(Arc::clone(tree.store())));
        let engine = RealTimeEngine::new(&tree, backend).unwrap();
        let mut answers = Vec::new();
        let mut explained_reads = vec![0u64; NUM_DISKS as usize];
        let mut explained_hits = 0u64;
        for (point, k) in queries() {
            let (explain, result) = engine.explain_query(kind, point, k, 0.0, false, None).unwrap();
            assert_eq!(
                explain.nodes,
                explain.level_accesses.iter().sum::<u64>(),
                "{kind}: per-level accesses must sum to the node total"
            );
            assert_eq!(
                explain.batches as usize,
                explain.batch_sizes.len(),
                "{kind}: one recorded size per batch"
            );
            assert_eq!(
                explain.nodes,
                explain.cache_hits + explain.cache_misses,
                "{kind}: every access is a hit or a miss"
            );
            for (slot, n) in explained_reads.iter_mut().zip(&explain.reads_per_disk) {
                *slot += n;
            }
            explained_hits += explain.cache_hits;
            answers.push(result);
        }
        let explained = ModeRun {
            answers,
            io: tree.io_stats(),
        };
        assert_answers_identical(kind, &bare, &explained, "bare vs explain");
        assert_io_identical(kind, &bare, &explained, "bare vs explain");
        assert_eq!(
            explained_reads, explained.io.reads_per_disk,
            "{kind}: per-query disk distributions must sum to the store's"
        );
        assert_eq!(
            explained_hits, explained.io.cache_hits,
            "{kind}: per-query cache hits must sum to the cache's"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance pin for the metrics plane: the live response-time
/// histogram (what `METRICS` exposes) brackets the exact percentiles
/// the `RealTimeReport` computes from raw samples — the two views of
/// latency agree within bucket resolution.
#[test]
fn live_histogram_brackets_report_percentiles() {
    let dir = tmpdir("percentiles");
    let root = build_store(&dir);
    let (_, live, report) = run_real_observed(&dir, root, AlgorithmKind::Crss);
    let hist = live.response_ms.snapshot();
    assert_eq!(hist.count(), report.completed as u64);
    for (q, exact_s) in [
        (0.5, report.p50_response_s),
        (0.95, report.p95_response_s),
        (0.99, report.p99_response_s),
    ] {
        let exact_ms = exact_s * 1e3;
        let (lo, hi) = hist.quantile_bracket(q);
        assert!(
            lo <= exact_ms && exact_ms <= hi,
            "q={q}: report {exact_ms} ms outside live bracket [{lo}, {hi}]"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Concurrent real-clock sessions still return the right answers (I/O
/// totals may differ: two sessions can race to fault the same page into
/// the cache, which is benign duplicated work, not wrong work).
#[test]
fn concurrent_real_sessions_preserve_answers() {
    let dir = tmpdir("concurrent");
    let root = build_store(&dir);
    let kind = AlgorithmKind::Crss;
    let sequential = run_real(&dir, root, kind, true);
    let tree = open_tree(&dir, root);
    let backend = Arc::new(ThreadedFileBackend::new(Arc::clone(tree.store())));
    let engine = RealTimeEngine::new(&tree, backend).unwrap();
    let report = engine.run(kind, &workload(), 4).unwrap();
    assert_eq!(report.failed, 0);
    let concurrent = ModeRun {
        answers: report.answers,
        io: tree.io_stats(),
    };
    assert_answers_identical(kind, &sequential, &concurrent, "sequential vs concurrent");
    std::fs::remove_dir_all(&dir).ok();
}
