//! Tests of the future-work extensions: shadowed (mirrored) disks and
//! multiprocessor configurations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqda_core::{AlgorithmKind, Simulation, Workload};
use sqda_geom::Point;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{RStarConfig, RStarTree};
use sqda_simkernel::SystemParams;
use sqda_storage::ArrayStore;
use std::sync::Arc;

fn build_tree(n: usize, disks: u32, seed: u64) -> RStarTree<ArrayStore> {
    let store = Arc::new(ArrayStore::new(disks, 1449, seed));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::new(2).with_max_entries(16),
        Box::new(ProximityIndex),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        let p = Point::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
        tree.insert(p, i as u64).unwrap();
    }
    tree
}

fn queries(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
        .collect()
}

#[test]
fn mirrored_reads_never_slower() {
    let tree = build_tree(4000, 10, 1);
    let w = Workload::poisson(queries(50, 2), 20, 10.0, 3);
    let plain = Simulation::new(&tree, SystemParams::with_disks(10))
        .unwrap()
        .run(AlgorithmKind::Crss, &w, 4)
        .unwrap();
    let mirrored = Simulation::new(
        &tree,
        SystemParams {
            mirrored_reads: true,
            ..SystemParams::with_disks(10)
        },
    )
    .unwrap()
    .run(AlgorithmKind::Crss, &w, 4)
    .unwrap();
    // Shadowing lets hot disks offload reads; mean response must improve
    // (or at worst stay put — assert a generous bound).
    assert!(
        mirrored.mean_response_s <= plain.mean_response_s * 1.02,
        "mirrored {} vs plain {}",
        mirrored.mean_response_s,
        plain.mean_response_s
    );
    assert_eq!(mirrored.completed, 50);
}

#[test]
fn mirrored_reads_same_answers() {
    // Mirroring is a timing-only change: node counts stay identical.
    let tree = build_tree(2000, 6, 5);
    let w = Workload::poisson(queries(20, 6), 10, 5.0, 7);
    for kind in AlgorithmKind::ALL {
        let plain = Simulation::new(&tree, SystemParams::with_disks(6))
            .unwrap()
            .run(kind, &w, 8)
            .unwrap();
        let mirrored = Simulation::new(
            &tree,
            SystemParams {
                mirrored_reads: true,
                ..SystemParams::with_disks(6)
            },
        )
        .unwrap()
        .run(kind, &w, 8)
        .unwrap();
        assert_eq!(
            plain.mean_nodes_per_query, mirrored.mean_nodes_per_query,
            "{kind}"
        );
    }
}

#[test]
fn extra_cpus_help_under_cpu_pressure() {
    // Make the CPU the bottleneck by slowing it drastically.
    let tree = build_tree(4000, 10, 9);
    let w = Workload::poisson(queries(50, 10), 50, 20.0, 11);
    let slow = SystemParams {
        cpu_mips: 0.01, // a ~2k-instruction batch takes ~0.2 s
        ..SystemParams::with_disks(10)
    };
    let one = Simulation::new(&tree, slow.clone())
        .unwrap()
        .run(AlgorithmKind::Fpss, &w, 12)
        .unwrap();
    let four = Simulation::new(
        &tree,
        SystemParams {
            num_cpus: 4,
            ..slow
        },
    )
    .unwrap()
    .run(AlgorithmKind::Fpss, &w, 12)
    .unwrap();
    assert!(
        four.mean_response_s < one.mean_response_s,
        "4 CPUs {} >= 1 CPU {}",
        four.mean_response_s,
        one.mean_response_s
    );
}

#[test]
fn single_cpu_default_matches_paper_config() {
    let p = SystemParams::default();
    assert_eq!(p.num_cpus, 1);
    assert!(!p.mirrored_reads);
}
