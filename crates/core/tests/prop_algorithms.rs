//! Property-based tests: for arbitrary data, query points and k, all four
//! algorithms return exactly the brute-force answer, and the structural
//! invariants of each algorithm hold.

use proptest::prelude::*;
use sqda_core::{exec::run_query, mirror_partner, AlgorithmKind, Simulation, Workload, WorkloadQuery};
use sqda_geom::Point;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{RStarConfig, RStarTree};
use sqda_simkernel::{FaultPlan, SimTime, SystemParams};
use sqda_storage::ArrayStore;
use std::sync::Arc;

fn dataset_strategy() -> impl Strategy<Value = (Vec<(f64, f64)>, (f64, f64), usize)> {
    (
        proptest::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 1..400),
        (-120.0..120.0f64, -120.0..120.0f64),
        1usize..40,
    )
}

fn build(points: &[(f64, f64)], disks: u32) -> RStarTree<ArrayStore> {
    let store = Arc::new(ArrayStore::new(disks, 1449, 3));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::new(2).with_max_entries(6),
        Box::new(ProximityIndex),
    )
    .unwrap();
    for (i, (x, y)) in points.iter().enumerate() {
        tree.insert(Point::new(vec![*x, *y]), i as u64).unwrap();
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All four algorithms agree with brute force on arbitrary inputs.
    #[test]
    fn algorithms_equal_brute_force((points, (qx, qy), k) in dataset_strategy()) {
        let tree = build(&points, 4);
        let q = Point::new(vec![qx, qy]);
        let mut want: Vec<f64> = points
            .iter()
            .map(|(x, y)| {
                let dx = qx - x;
                let dy = qy - y;
                dx * dx + dy * dy
            })
            .collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        want.truncate(k);
        for kind in AlgorithmKind::ALL {
            let mut algo = kind.build(&tree, q.clone(), k).unwrap();
            let run = run_query(&tree, algo.as_mut()).unwrap();
            prop_assert_eq!(run.results.len(), want.len(), "{} count", kind);
            for (g, w) in run.results.iter().zip(want.iter()) {
                prop_assert!((g.dist_sq - w).abs() < 1e-9,
                    "{}: got {} want {}", kind, g.dist_sq, w);
            }
        }
    }

    /// WOPTSS never visits more nodes than any real algorithm; BBSS never
    /// batches more than one page; CRSS never batches more than the disk
    /// count.
    #[test]
    fn structural_invariants((points, (qx, qy), k) in dataset_strategy()) {
        let disks = 4u32;
        let tree = build(&points, disks);
        let q = Point::new(vec![qx, qy]);
        let mut wopt = AlgorithmKind::Woptss.build(&tree, q.clone(), k).unwrap();
        let wopt_run = run_query(&tree, wopt.as_mut()).unwrap();
        for kind in AlgorithmKind::REAL {
            let mut algo = kind.build(&tree, q.clone(), k).unwrap();
            let run = run_query(&tree, algo.as_mut()).unwrap();
            prop_assert!(run.nodes_visited >= wopt_run.nodes_visited,
                "{} beat the weak-optimal bound", kind);
            match kind {
                AlgorithmKind::Bbss => prop_assert_eq!(run.max_batch, 1),
                AlgorithmKind::Crss => prop_assert!(run.max_batch <= disks as usize),
                _ => {}
            }
        }
    }

    /// Query results never change when the number of disks changes — the
    /// declustering layout affects timing, not answers.
    #[test]
    fn answers_independent_of_disk_count(
        (points, (qx, qy), k) in dataset_strategy(),
    ) {
        let q = Point::new(vec![qx, qy]);
        let tree2 = build(&points, 2);
        let tree8 = build(&points, 8);
        for kind in AlgorithmKind::ALL {
            let mut a2 = kind.build(&tree2, q.clone(), k).unwrap();
            let mut a8 = kind.build(&tree8, q.clone(), k).unwrap();
            let r2 = run_query(&tree2, a2.as_mut()).unwrap();
            let r8 = run_query(&tree8, a8.as_mut()).unwrap();
            let d2: Vec<f64> = r2.results.iter().map(|n| n.dist_sq).collect();
            let d8: Vec<f64> = r8.results.iter().map(|n| n.dist_sq).collect();
            prop_assert_eq!(d2, d8, "{} answers changed with disk count", kind);
        }
    }

    /// `mirror_partner` is a self-inverse pairing with no fixed points;
    /// only the leftover disk of an odd array is unpaired. (The old
    /// `(d + n/2) mod n` rule violated the involution for odd `n`,
    /// redirecting reads to disks that never held the replica.)
    #[test]
    fn mirror_partner_properties(n in 1usize..512, d_seed in any::<u64>()) {
        let d = (d_seed % n as u64) as usize;
        match mirror_partner(d, n) {
            Some(p) => {
                prop_assert!(p < n, "n={} d={} partner {} out of range", n, d, p);
                prop_assert_ne!(p, d, "n={} d={} self-paired", n, d);
                prop_assert_eq!(mirror_partner(p, n), Some(d), "n={} d={}", n, d);
            }
            None => prop_assert!(
                n % 2 == 1 && d == n - 1,
                "n={} d={} lost its partner", n, d
            ),
        }
    }

    /// Degraded-mode execution on a shadowed array: killing any one
    /// disk never aborts, hangs, or changes the work of a query — the
    /// shadow partner absorbs the failed disk's reads.
    #[test]
    fn degraded_reads_preserve_query_work(
        (points, (qx, qy), k) in dataset_strategy(),
        dead_seed in any::<u64>(),
    ) {
        let tree = build(&points, 4);
        let dead = (dead_seed % 4) as u32;
        let w = Workload {
            queries: vec![WorkloadQuery {
                arrival: SimTime::ZERO,
                point: Point::new(vec![qx, qy]),
                k,
            }],
        };
        let params = SystemParams {
            mirrored_reads: true,
            ..SystemParams::with_disks(4)
        };
        let sim = Simulation::new(&tree, params).unwrap();
        let healthy = sim
            .run_faulted(AlgorithmKind::Crss, &w, 11, &FaultPlan::none())
            .unwrap();
        let plan = FaultPlan::none().fail_stop(dead, SimTime::ZERO);
        let degraded = sim
            .run_faulted(AlgorithmKind::Crss, &w, 11, &plan)
            .unwrap();
        prop_assert_eq!(degraded.failed, 0, "mirrored loss must not abort");
        prop_assert_eq!(degraded.completed, 1);
        // Identical traversal: the same nodes are fetched, only their
        // serving disk (and hence timing) may differ.
        prop_assert_eq!(
            healthy.mean_nodes_per_query,
            degraded.mean_nodes_per_query
        );
    }
}
