//! Tests of the event-driven simulated executor: completion, determinism,
//! and the qualitative behaviours the paper's evaluation rests on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqda_core::{AlgorithmKind, QueryError, Simulation, Workload};
use sqda_geom::Point;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{RStarConfig, RStarTree};
use sqda_simkernel::SystemParams;
use sqda_storage::ArrayStore;
use std::sync::Arc;

fn build_tree(n: usize, dim: usize, disks: u32, fanout: usize, seed: u64) -> RStarTree<ArrayStore> {
    let store = Arc::new(ArrayStore::new(disks, 1449, seed));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::new(dim).with_max_entries(fanout),
        Box::new(ProximityIndex),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        let p = Point::new((0..dim).map(|_| rng.gen_range(0.0..1.0)).collect());
        tree.insert(p, i as u64).unwrap();
    }
    tree
}

fn queries(n: usize, dim: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new((0..dim).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect()
}

#[test]
fn all_queries_complete_for_every_algorithm() {
    let tree = build_tree(3000, 2, 10, 16, 1);
    let sim = Simulation::new(&tree, SystemParams::with_disks(10)).unwrap();
    let w = Workload::poisson(queries(40, 2, 2), 10, 5.0, 3);
    for kind in AlgorithmKind::ALL {
        let report = sim.run(kind, &w, 99).unwrap();
        assert_eq!(report.completed, 40, "{kind}");
        assert!(report.mean_response_s > 0.0, "{kind}");
        assert!(report.mean_nodes_per_query >= 1.0, "{kind}");
        assert!(report.makespan_s > 0.0);
    }
}

#[test]
fn simulation_is_deterministic() {
    let tree = build_tree(2000, 2, 5, 16, 4);
    let sim = Simulation::new(&tree, SystemParams::with_disks(5)).unwrap();
    let w = Workload::poisson(queries(25, 2, 5), 10, 5.0, 6);
    let a = sim.run(AlgorithmKind::Crss, &w, 7).unwrap();
    let b = sim.run(AlgorithmKind::Crss, &w, 7).unwrap();
    assert_eq!(a.mean_response_s, b.mean_response_s);
    assert_eq!(a.makespan_s, b.makespan_s);
    // A different timing seed changes rotational latencies.
    let c = sim.run(AlgorithmKind::Crss, &w, 8).unwrap();
    assert_ne!(a.mean_response_s, c.mean_response_s);
}

#[test]
fn single_query_latency_is_physical() {
    // A single k=1 query must cost at least: startup + one disk access +
    // one bus transfer per level of the tree.
    let tree = build_tree(2000, 2, 10, 16, 9);
    let sim = Simulation::new(&tree, SystemParams::with_disks(10)).unwrap();
    let w = Workload::single(Point::new(vec![0.5, 0.5]), 1);
    let report = sim.run(AlgorithmKind::Crss, &w, 1).unwrap();
    let height = tree.height() as f64;
    // Lower bound: startup (1 ms) + height * (transfer+overhead = 2 ms).
    let floor = 0.001 + height * 0.002;
    assert!(
        report.mean_response_s > floor,
        "{} <= floor {floor}",
        report.mean_response_s
    );
    // And it is far below a second on an idle array.
    assert!(report.mean_response_s < 1.0);
}

#[test]
fn response_time_grows_with_load() {
    let tree = build_tree(4000, 2, 5, 16, 10);
    let sim = Simulation::new(&tree, SystemParams::with_disks(5)).unwrap();
    let pts = queries(60, 2, 11);
    let light = sim
        .run(
            AlgorithmKind::Crss,
            &Workload::poisson(pts.clone(), 10, 1.0, 12),
            5,
        )
        .unwrap();
    let heavy = sim
        .run(
            AlgorithmKind::Crss,
            &Workload::poisson(pts, 10, 50.0, 12),
            5,
        )
        .unwrap();
    assert!(
        heavy.mean_response_s > light.mean_response_s,
        "heavy {} <= light {}",
        heavy.mean_response_s,
        light.mean_response_s
    );
}

#[test]
fn woptss_is_fastest_on_average() {
    let tree = build_tree(4000, 2, 10, 16, 13);
    let sim = Simulation::new(&tree, SystemParams::with_disks(10)).unwrap();
    let w = Workload::poisson(queries(50, 2, 14), 20, 5.0, 15);
    let wopt = sim.run(AlgorithmKind::Woptss, &w, 3).unwrap();
    for kind in AlgorithmKind::REAL {
        let r = sim.run(kind, &w, 3).unwrap();
        assert!(
            r.mean_response_s >= wopt.mean_response_s * 0.999,
            "{kind} {} beat WOPTSS {}",
            r.mean_response_s,
            wopt.mean_response_s
        );
    }
}

#[test]
fn crss_beats_bbss_under_load() {
    // The paper's headline result: under a multi-user workload CRSS
    // responds faster than the branch-and-bound search.
    let tree = build_tree(6000, 2, 10, 16, 16);
    let sim = Simulation::new(&tree, SystemParams::with_disks(10)).unwrap();
    let w = Workload::poisson(queries(60, 2, 17), 50, 5.0, 18);
    let crss = sim.run(AlgorithmKind::Crss, &w, 4).unwrap();
    let bbss = sim.run(AlgorithmKind::Bbss, &w, 4).unwrap();
    assert!(
        crss.mean_response_s < bbss.mean_response_s,
        "CRSS {} >= BBSS {}",
        crss.mean_response_s,
        bbss.mean_response_s
    );
}

#[test]
fn utilizations_are_sane() {
    let tree = build_tree(3000, 2, 5, 16, 19);
    let sim = Simulation::new(&tree, SystemParams::with_disks(5)).unwrap();
    let w = Workload::poisson(queries(40, 2, 20), 10, 10.0, 21);
    let r = sim.run(AlgorithmKind::Fpss, &w, 5).unwrap();
    for u in [
        r.mean_disk_utilization,
        r.bus_utilization,
        r.cpu_utilization,
    ] {
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }
    assert!(r.mean_disk_utilization > 0.0);
    assert!(r.p95_response_s >= r.mean_response_s * 0.5);
    assert!(r.max_response_s >= r.p95_response_s);
}

#[test]
fn mismatched_disk_count_is_a_config_error() {
    let tree = build_tree(100, 2, 4, 8, 22);
    let err = Simulation::new(&tree, SystemParams::with_disks(10))
        .err()
        .expect("disk mismatch must be rejected");
    assert!(matches!(err, QueryError::Config(_)));
    assert!(err.to_string().contains("disk count must match"));
}

#[test]
fn simulated_results_match_logical_results() {
    // Timing must not change the answers.
    let tree = build_tree(2500, 2, 8, 16, 23);
    let sim = Simulation::new(&tree, SystemParams::with_disks(8)).unwrap();
    let pts = queries(10, 2, 24);
    for kind in AlgorithmKind::ALL {
        for p in &pts {
            let mut algo = kind.build(&tree, p.clone(), 15).unwrap();
            let logical = sqda_core::exec::run_query(&tree, algo.as_mut()).unwrap();
            let w = Workload::single(p.clone(), 15);
            let report = sim.run(kind, &w, 6).unwrap();
            // The simulated run fetches the same number of nodes.
            assert_eq!(
                report.mean_nodes_per_query, logical.nodes_visited as f64,
                "{kind}"
            );
        }
    }
}
