//! Tests of the tracing/metrics layer: the recorder seam must not
//! change simulation results, the event stream must be internally
//! consistent, the Perfetto export must be structurally valid, and a
//! fully deterministic run must reproduce its golden JSONL log
//! byte-for-byte.

use sqda_core::{mirror_partner, AlgorithmKind, Simulation, Workload, WorkloadQuery};
use sqda_geom::Point;
use sqda_obs::{
    chrome_trace, events_to_jsonl, json, query_profiles, CollectingRecorder, Event, MetricsSnapshot,
};
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{RStarConfig, RStarTree};
use sqda_simkernel::{DiskParams, SimTime, SystemParams};
use sqda_storage::ArrayStore;
use std::sync::Arc;

/// A tree built from hand-written points over a 1-cylinder array: page
/// placement involves no effective randomness, so together with the
/// zero-revolution disk below the whole simulation is deterministic
/// regardless of the RNG implementation.
fn deterministic_tree(num_disks: u32) -> RStarTree<ArrayStore> {
    let store = Arc::new(ArrayStore::new(num_disks, 1, 0));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::new(2).with_max_entries(4),
        Box::new(ProximityIndex),
    )
    .unwrap();
    // A 5×5 grid, inserted row-major.
    for i in 0..25u64 {
        let x = (i % 5) as f64;
        let y = (i / 5) as f64;
        tree.insert(Point::new(vec![x, y]), i).unwrap();
    }
    tree
}

/// Deterministic system: no rotational latency (no RNG draw), no seeks
/// (single cylinder). Service time is exactly transfer + overhead.
fn deterministic_params(num_disks: u32) -> SystemParams {
    SystemParams {
        disk: DiskParams {
            num_cylinders: 1,
            revolution_time_s: 0.0,
            ..DiskParams::default()
        },
        ..SystemParams::with_disks(num_disks)
    }
}

fn deterministic_workload() -> Workload {
    Workload {
        queries: vec![
            WorkloadQuery {
                arrival: SimTime::ZERO,
                point: Point::new(vec![1.2, 1.1]),
                k: 3,
            },
            WorkloadQuery {
                arrival: SimTime::from_millis_f64(4.0),
                point: Point::new(vec![3.8, 2.9]),
                k: 2,
            },
        ],
    }
}

#[test]
fn recording_does_not_change_results() {
    let tree = deterministic_tree(4);
    let w = deterministic_workload();
    let sim = Simulation::new(&tree, deterministic_params(4)).unwrap();
    for kind in AlgorithmKind::ALL {
        let plain = sim.run(kind, &w, 42).unwrap();
        let mut rec = CollectingRecorder::new();
        let recorded = sim.run_recorded(kind, &w, 42, &mut rec).unwrap();
        assert!(!rec.is_empty(), "{kind}: no events recorded");
        // Bit-identical headline numbers: recording must only observe.
        assert_eq!(plain.completed, recorded.completed, "{kind}");
        assert_eq!(plain.mean_response_s, recorded.mean_response_s, "{kind}");
        assert_eq!(plain.std_response_s, recorded.std_response_s, "{kind}");
        assert_eq!(plain.max_response_s, recorded.max_response_s, "{kind}");
        assert_eq!(plain.p95_response_s, recorded.p95_response_s, "{kind}");
        assert_eq!(
            plain.mean_nodes_per_query, recorded.mean_nodes_per_query,
            "{kind}"
        );
        assert_eq!(plain.makespan_s, recorded.makespan_s, "{kind}");
    }
}

/// Also under a stochastic (default-drive) configuration: the recorded
/// path must consume the RNG stream identically.
#[test]
fn recording_preserves_rng_stream() {
    let store = Arc::new(ArrayStore::new(6, 1449, 3));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::new(2).with_max_entries(8),
        Box::new(ProximityIndex),
    )
    .unwrap();
    for i in 0..200u64 {
        let x = (i % 20) as f64 + (i as f64) * 1e-3;
        let y = (i / 20) as f64;
        tree.insert(Point::new(vec![x, y]), i).unwrap();
    }
    let w = Workload {
        queries: (0..10)
            .map(|i| WorkloadQuery {
                arrival: SimTime::from_millis_f64(i as f64 * 2.0),
                point: Point::new(vec![(i % 7) as f64, (i % 5) as f64]),
                k: 4,
            })
            .collect(),
    };
    let sim = Simulation::new(&tree, SystemParams::with_disks(6)).unwrap();
    let plain = sim.run(AlgorithmKind::Crss, &w, 9).unwrap();
    let mut rec = CollectingRecorder::new();
    let recorded = sim
        .run_recorded(AlgorithmKind::Crss, &w, 9, &mut rec)
        .unwrap();
    assert_eq!(plain.mean_response_s, recorded.mean_response_s);
    assert_eq!(plain.makespan_s, recorded.makespan_s);
}

#[test]
fn event_stream_is_internally_consistent() {
    let tree = deterministic_tree(4);
    let w = deterministic_workload();
    let sim = Simulation::new(&tree, deterministic_params(4)).unwrap();
    let mut rec = CollectingRecorder::new();
    let report = sim
        .run_recorded(AlgorithmKind::Crss, &w, 1, &mut rec)
        .unwrap();
    let events = rec.events();

    let arrives = events
        .iter()
        .filter(|(_, e)| matches!(e, Event::QueryArrive { .. }))
        .count();
    let completes: Vec<_> = events
        .iter()
        .filter_map(|(_, e)| match *e {
            Event::QueryComplete {
                query,
                response_ns,
                nodes,
                ..
            } => Some((query, response_ns, nodes)),
            _ => None,
        })
        .collect();
    assert_eq!(arrives, w.queries.len());
    assert_eq!(completes.len(), report.completed);

    // Per-query node counts from disk events match the completion record,
    // and the profile fold agrees.
    let profiles = query_profiles(events);
    assert_eq!(profiles.len(), w.queries.len());
    for (query, response_ns, nodes) in &completes {
        let disk_events = events
            .iter()
            .filter(|(_, e)| matches!(e, Event::DiskService { query: q, .. } if q == query))
            .count() as u64;
        assert_eq!(disk_events, *nodes, "query {query}");
        let p = &profiles[*query as usize];
        assert_eq!(p.total_nodes(), *nodes);
        assert_eq!(p.response_ns, *response_ns);
        assert_eq!(p.complete_ns - p.arrive_ns, *response_ns);
        // The root batch is level 0 and every level is populated up to
        // the deepest one.
        assert!(p.nodes_per_level[0] >= 1);
        assert!(p.nodes_per_level.iter().all(|&n| n > 0));
        // CRSS reported its threshold trajectory.
        assert!(!p.crss_trajectory.is_empty());
        // Timestamps are within the run.
        assert!(p.complete_ns as f64 <= report.makespan_s * 1e9 + 1.0);
    }

    // Every fetched node crosses the bus exactly once.
    let disk_total = events
        .iter()
        .filter(|(_, e)| matches!(e, Event::DiskService { .. }))
        .count();
    let bus_total = events
        .iter()
        .filter(|(_, e)| matches!(e, Event::BusTransfer { .. }))
        .count();
    assert_eq!(disk_total, bus_total);
}

#[test]
fn metrics_snapshot_folds_run_and_store() {
    let tree = deterministic_tree(4);
    let w = deterministic_workload();
    let sim = Simulation::new(&tree, deterministic_params(4)).unwrap();
    let mut rec = CollectingRecorder::new();
    sim.run_recorded(AlgorithmKind::Fpss, &w, 1, &mut rec)
        .unwrap();
    let mut snap = MetricsSnapshot::from_events(rec.events());
    snap.fold_io_stats(&tree.io_stats());
    assert_eq!(snap.queries_completed.0, 2);
    assert!(!snap.disks.is_empty());
    // FPSS over a round-robin declustered tree spreads requests; the
    // imbalance CV must be well below the all-on-one-disk regime.
    assert!(snap.load_imbalance() < 1.0, "CV {}", snap.load_imbalance());
    // The store saw at least the simulator's reads (it also served the
    // build), and the snapshot renders as valid JSON.
    let timed: u64 = snap.disks.values().map(|d| d.requests.0).sum();
    let stored: u64 = snap.store_reads_per_disk.iter().sum();
    assert!(stored >= timed);
    let doc = json::parse(&snap.to_json()).unwrap();
    assert_eq!(doc.get("queries_completed").unwrap().as_u64(), Some(2));
}

#[test]
fn perfetto_trace_structure_is_valid() {
    let tree = deterministic_tree(4);
    let w = deterministic_workload();
    let sim = Simulation::new(&tree, deterministic_params(4)).unwrap();
    let mut rec = CollectingRecorder::new();
    sim.run_recorded(AlgorithmKind::Crss, &w, 1, &mut rec)
        .unwrap();
    let text = chrome_trace(rec.events(), 4, 1);
    let doc = json::parse(&text).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();

    // Thread-name metadata for all 4 disks, the bus, and the CPU.
    for (pid, tid_count) in [(1u64, 4u64), (2, 1), (3, 1)] {
        let threads = events
            .iter()
            .filter(|e| {
                e.get("ph").unwrap().as_str() == Some("M")
                    && e.get("name").unwrap().as_str() == Some("thread_name")
                    && e.get("pid").unwrap().as_u64() == Some(pid)
            })
            .count() as u64;
        assert_eq!(threads, tid_count, "pid {pid}");
    }

    // Every query has exactly one async begin and one async end, paired
    // by id, and end.ts >= begin.ts.
    for q in 0..2u64 {
        let b: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("ph").unwrap().as_str() == Some("b")
                    && e.get("id").unwrap().as_u64() == Some(q)
            })
            .collect();
        let e: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("ph").unwrap().as_str() == Some("e")
                    && e.get("id").unwrap().as_u64() == Some(q)
            })
            .collect();
        assert_eq!((b.len(), e.len()), (1, 1), "query {q}");
        assert!(
            e[0].get("ts").unwrap().as_f64() >= b[0].get("ts").unwrap().as_f64(),
            "query {q} span inverted"
        );
    }

    // Complete slices land on the declared component tracks only.
    for ev in events {
        if ev.get("ph").unwrap().as_str() == Some("X") {
            let pid = ev.get("pid").unwrap().as_u64().unwrap();
            assert!((1..=3).contains(&pid), "slice on unexpected pid {pid}");
            assert!(ev.get("dur").unwrap().as_f64().unwrap() >= 0.0);
        }
    }
}

/// The golden log of the small deterministic CRSS run. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test -p sqda-core --test observability` after
/// an intentional schema or model change, and review the diff.
#[test]
fn golden_jsonl_log_of_deterministic_run() {
    let tree = deterministic_tree(2);
    let w = Workload {
        queries: vec![WorkloadQuery {
            arrival: SimTime::ZERO,
            point: Point::new(vec![2.1, 2.0]),
            k: 2,
        }],
    };
    let sim = Simulation::new(&tree, deterministic_params(2)).unwrap();
    let mut rec = CollectingRecorder::new();
    let report = sim
        .run_recorded(AlgorithmKind::Crss, &w, 7, &mut rec)
        .unwrap();
    assert_eq!(report.completed, 1);
    let jsonl = events_to_jsonl(rec.events());

    let dir = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| "crates/core".into());
    let path = std::path::Path::new(&dir).join("tests/golden/trace_small.jsonl");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &jsonl).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        jsonl,
        golden,
        "event log diverged from {} (set UPDATE_GOLDEN=1 to regenerate)",
        path.display()
    );
}

#[test]
fn mirror_partner_is_an_involution() {
    for n in 2..=12usize {
        for d in 0..n {
            match mirror_partner(d, n) {
                Some(p) => {
                    assert_ne!(p, d, "n={n} d={d}");
                    assert!(p < n, "n={n} d={d} partner {p} out of range");
                    // The involution property: redirecting a read to the
                    // partner must land on the disk whose replica pairs
                    // back, i.e. the one that actually holds the copy.
                    assert_eq!(mirror_partner(p, n), Some(d), "n={n} d={d}");
                }
                None => {
                    // Only the odd leftover disk may be unpaired.
                    assert!(n % 2 == 1 && d == n - 1, "n={n} d={d} lost its partner");
                }
            }
        }
    }
}

#[test]
fn mirrored_reads_with_odd_disk_count() {
    let tree = deterministic_tree(5);
    let w = deterministic_workload();
    let plain = Simulation::new(&tree, deterministic_params(5))
        .unwrap()
        .run(AlgorithmKind::Crss, &w, 3)
        .unwrap();
    let params = SystemParams {
        mirrored_reads: true,
        ..deterministic_params(5)
    };
    let sim = Simulation::new(&tree, params).unwrap();
    let mut rec = CollectingRecorder::new();
    let mirrored = sim
        .run_recorded(AlgorithmKind::Crss, &w, 3, &mut rec)
        .unwrap();
    // Mirroring is timing-only.
    assert_eq!(plain.mean_nodes_per_query, mirrored.mean_nodes_per_query);
    assert_eq!(mirrored.completed, 2);
    // Every disk that served a request exists; the unpaired disk (4) may
    // appear only as itself (never as a redirect target, which is
    // implied by the involution test above).
    for (_, e) in rec.events() {
        if let Event::DiskService { disk, .. } = e {
            assert!((*disk as usize) < 5);
        }
    }
}
