//! The MINMAXDIST threshold extension: identical answers, never more
//! node accesses than stock CRSS.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqda_core::{exec::run_query, Crss};
use sqda_geom::Point;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{RStarConfig, RStarTree};
use sqda_storage::ArrayStore;
use std::sync::Arc;

fn build(n: usize, dim: usize, seed: u64) -> RStarTree<ArrayStore> {
    let store = Arc::new(ArrayStore::new(10, 1449, seed));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::new(dim).with_max_entries(16),
        Box::new(ProximityIndex),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        let p = Point::new((0..dim).map(|_| rng.gen::<f64>()).collect());
        tree.insert(p, i as u64).unwrap();
    }
    tree
}

#[test]
fn same_answers_never_more_nodes() {
    let tree = build(5000, 2, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let mut stock_total = 0u64;
    let mut tight_total = 0u64;
    for _ in 0..30 {
        let q = Point::new(vec![rng.gen(), rng.gen()]);
        for k in [1usize, 10, 50] {
            let mut stock = Crss::new(&tree, q.clone(), k);
            let mut tight = Crss::new(&tree, q.clone(), k).with_minmax_threshold();
            let rs = run_query(&tree, &mut stock).unwrap();
            let rt = run_query(&tree, &mut tight).unwrap();
            let ds: Vec<f64> = rs.results.iter().map(|n| n.dist_sq).collect();
            let dt: Vec<f64> = rt.results.iter().map(|n| n.dist_sq).collect();
            assert_eq!(ds, dt, "answers differ at k={k}");
            stock_total += rs.nodes_visited;
            tight_total += rt.nodes_visited;
        }
    }
    assert!(
        tight_total <= stock_total,
        "tighter threshold read more nodes: {tight_total} vs {stock_total}"
    );
}

#[test]
fn tighter_in_high_dimensions_too() {
    // A smaller threshold changes the traversal (different activation
    // sets discover D_k along different paths), so improvement is
    // guaranteed only in aggregate, not per query.
    let tree = build(3000, 6, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let mut stock_total = 0u64;
    let mut tight_total = 0u64;
    for _ in 0..20 {
        let q = Point::new((0..6).map(|_| rng.gen::<f64>()).collect());
        for k in [5usize, 25] {
            let mut stock = Crss::new(&tree, q.clone(), k);
            let mut tight = Crss::new(&tree, q.clone(), k).with_minmax_threshold();
            let rs = run_query(&tree, &mut stock).unwrap();
            let rt = run_query(&tree, &mut tight).unwrap();
            assert_eq!(
                rs.results.iter().map(|n| n.object).collect::<Vec<_>>(),
                rt.results.iter().map(|n| n.object).collect::<Vec<_>>()
            );
            stock_total += rs.nodes_visited;
            tight_total += rt.nodes_visited;
        }
    }
    assert!(
        tight_total <= stock_total,
        "aggregate regression: {tight_total} vs {stock_total}"
    );
}
