//! Tests of fault injection and degraded-mode execution.
//!
//! The two load-bearing properties: an **empty plan changes nothing**
//! (same RNG stream, same report, same event bytes as the fault-free
//! path), and a **non-empty plan degrades service, never correctness**
//! — answers survive the loss of any mirrored disk, and a query that
//! cannot be answered terminates with a typed error instead of hanging.

use sqda_core::{
    mirror_partner, AccessMethod, AlgorithmKind, BatchResult, IndexNode, Neighbor, QueryError,
    SimilaritySearch, Simulation, Step, Workload, WorkloadQuery,
};
use sqda_geom::Point;
use sqda_obs::{events_to_jsonl, CollectingRecorder, Event};
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{RStarConfig, RStarTree};
use sqda_simkernel::{DiskParams, FaultPlan, RetryPolicy, SimTime, SystemParams};
use sqda_storage::{ArrayStore, PageId};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Hand-written points over a 1-cylinder array: placement involves no
/// effective randomness, so with the zero-revolution disk below the
/// whole simulation is deterministic (no RNG draws at all).
fn deterministic_tree(num_disks: u32) -> RStarTree<ArrayStore> {
    let store = Arc::new(ArrayStore::new(num_disks, 1, 0));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::new(2).with_max_entries(4),
        Box::new(ProximityIndex),
    )
    .unwrap();
    for i in 0..25u64 {
        let x = (i % 5) as f64;
        let y = (i / 5) as f64;
        tree.insert(Point::new(vec![x, y]), i).unwrap();
    }
    tree
}

fn deterministic_params(num_disks: u32) -> SystemParams {
    SystemParams {
        disk: DiskParams {
            num_cylinders: 1,
            revolution_time_s: 0.0,
            ..DiskParams::default()
        },
        ..SystemParams::with_disks(num_disks)
    }
}

fn mirrored_params(num_disks: u32) -> SystemParams {
    SystemParams {
        mirrored_reads: true,
        ..deterministic_params(num_disks)
    }
}

fn workload() -> Workload {
    Workload {
        queries: vec![
            WorkloadQuery {
                arrival: SimTime::ZERO,
                point: Point::new(vec![1.2, 1.1]),
                k: 3,
            },
            WorkloadQuery {
                arrival: SimTime::from_millis_f64(4.0),
                point: Point::new(vec![3.8, 2.9]),
                k: 2,
            },
        ],
    }
}

/// The RNG-stream parity pin: with the empty plan, `run_faulted` is
/// byte-identical to `run` — reports bit-equal, recorded event streams
/// byte-equal — under a stochastic (default-drive, multi-cylinder)
/// configuration where any extra or reordered RNG draw would diverge.
#[test]
fn empty_plan_is_byte_identical_to_fault_free() {
    let store = Arc::new(ArrayStore::new(6, 1449, 3));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::new(2).with_max_entries(8),
        Box::new(ProximityIndex),
    )
    .unwrap();
    for i in 0..200u64 {
        let x = (i % 20) as f64 + (i as f64) * 1e-3;
        let y = (i / 20) as f64;
        tree.insert(Point::new(vec![x, y]), i).unwrap();
    }
    let w = Workload {
        queries: (0..10)
            .map(|i| WorkloadQuery {
                arrival: SimTime::from_millis_f64(i as f64 * 2.0),
                point: Point::new(vec![(i % 7) as f64, (i % 5) as f64]),
                k: 4,
            })
            .collect(),
    };
    let sim = Simulation::new(&tree, SystemParams::with_disks(6)).unwrap();
    for kind in AlgorithmKind::ALL {
        let plain = sim.run(kind, &w, 9).unwrap();
        let faulted = sim.run_faulted(kind, &w, 9, &FaultPlan::none()).unwrap();
        assert_eq!(plain.mean_response_s, faulted.mean_response_s, "{kind}");
        assert_eq!(plain.std_response_s, faulted.std_response_s, "{kind}");
        assert_eq!(plain.max_response_s, faulted.max_response_s, "{kind}");
        assert_eq!(plain.makespan_s, faulted.makespan_s, "{kind}");
        assert_eq!(plain.completed, faulted.completed, "{kind}");
        assert_eq!(faulted.failed, 0, "{kind}");
        assert_eq!(faulted.degraded_reads, 0, "{kind}");
        assert_eq!(faulted.read_retries, 0, "{kind}");
        assert!(faulted.failures.is_empty(), "{kind}");

        let mut rec_plain = CollectingRecorder::new();
        let mut rec_faulted = CollectingRecorder::new();
        sim.run_recorded(kind, &w, 9, &mut rec_plain).unwrap();
        sim.run_faulted_recorded(kind, &w, 9, &FaultPlan::none(), &mut rec_faulted)
            .unwrap();
        assert_eq!(
            events_to_jsonl(rec_plain.events()),
            events_to_jsonl(rec_faulted.events()),
            "{kind}: empty-plan event log diverged from fault-free"
        );
    }
}

/// A `SimilaritySearch` wrapper that stashes the final answers when the
/// inner algorithm reports `Done` — the simulated executor never reads
/// answers itself, so this is the seam for answer-identity assertions.
struct Spy {
    inner: Box<dyn SimilaritySearch>,
    query: usize,
    sink: Arc<Mutex<BTreeMap<usize, Vec<Neighbor>>>>,
}

impl SimilaritySearch for Spy {
    fn start(&mut self) -> Step {
        self.inner.start()
    }
    fn on_fetched(&mut self, nodes: &mut Vec<(PageId, IndexNode)>) -> BatchResult {
        let result = self.inner.on_fetched(nodes);
        if matches!(result.next, Step::Done) {
            self.sink
                .lock()
                .unwrap()
                .insert(self.query, self.inner.results());
        }
        result
    }
    fn results(&self) -> Vec<Neighbor> {
        self.inner.results()
    }
    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Runs one algorithm over the workload with answers captured per query.
fn run_spied(
    tree: &RStarTree<ArrayStore>,
    params: SystemParams,
    kind: AlgorithmKind,
    w: &Workload,
    plan: &FaultPlan,
) -> (
    sqda_core::SimulationReport,
    BTreeMap<usize, Vec<Neighbor>>,
) {
    let sink: Arc<Mutex<BTreeMap<usize, Vec<Neighbor>>>> = Arc::default();
    let sim = Simulation::new(tree, params).unwrap();
    let mut next_query = 0usize;
    let factory_sink = Arc::clone(&sink);
    let report = sim
        .run_with_faulted_recorded(
            |point, k| {
                let inner = kind.build(tree, point, k).unwrap();
                let spy = Spy {
                    inner,
                    query: next_query,
                    sink: Arc::clone(&factory_sink),
                };
                next_query += 1;
                Box::new(spy)
            },
            kind.name(),
            w,
            5,
            plan,
            &mut sqda_obs::NullRecorder,
        )
        .unwrap();
    let answers = sink.lock().unwrap().clone();
    (report, answers)
}

/// Killing one disk of a shadowed pair must not change any k-NN answer:
/// the partner serves the failed disk's pages. Pinned for all four
/// algorithms against the fault-free answers.
#[test]
fn killing_a_mirrored_disk_preserves_answers() {
    let tree = deterministic_tree(4);
    let w = workload();
    // Fail the disk the root lives on — every query must cross it, so
    // the degraded path is exercised unconditionally.
    let root_disk = tree.placement(tree.root_page()).unwrap().disk.index() as u32;
    assert!(
        mirror_partner(root_disk as usize, 4).is_some(),
        "even array: every disk has a shadow partner"
    );
    let plan = FaultPlan::none().fail_stop(root_disk, SimTime::ZERO);
    for kind in AlgorithmKind::ALL {
        let (baseline, healthy) =
            run_spied(&tree, mirrored_params(4), kind, &w, &FaultPlan::none());
        let (degraded, survived) = run_spied(&tree, mirrored_params(4), kind, &w, &plan);
        assert_eq!(baseline.failed, 0, "{kind}");
        assert_eq!(degraded.failed, 0, "{kind}: mirrored loss must not abort");
        assert_eq!(degraded.completed, w.queries.len(), "{kind}");
        assert!(degraded.degraded_reads > 0, "{kind}: root reads redirect");
        assert_eq!(healthy.len(), survived.len(), "{kind}");
        for (q, want) in &healthy {
            let got = &survived[q];
            assert_eq!(want.len(), got.len(), "{kind} query {q}");
            for (a, b) in want.iter().zip(got) {
                assert_eq!(a.object, b.object, "{kind} query {q}");
                assert_eq!(a.dist_sq, b.dist_sq, "{kind} query {q}");
            }
        }
    }
}

/// Killing the unpaired disk of an odd array makes its pages truly
/// unavailable: the touched queries abort with
/// [`QueryError::Unavailable`] after the bounded retry budget — the
/// run itself terminates and reports them, rather than hanging.
#[test]
fn killing_the_unpaired_disk_aborts_with_typed_error() {
    let tree = deterministic_tree(5);
    let unpaired = 4u32;
    assert_eq!(mirror_partner(unpaired as usize, 5), None);
    // k = 25 forces every leaf into every query, so pages on the dead
    // disk are unavoidable (the tree spreads its ~9 pages over 5 disks).
    let w = Workload {
        queries: vec![WorkloadQuery {
            arrival: SimTime::ZERO,
            point: Point::new(vec![2.0, 2.0]),
            k: 25,
        }],
    };
    let plan = FaultPlan::none().fail_stop(unpaired, SimTime::ZERO);
    for kind in AlgorithmKind::ALL {
        let sim = Simulation::new(&tree, mirrored_params(5)).unwrap();
        let report = sim.run_faulted(kind, &w, 5, &plan).unwrap();
        assert_eq!(report.failed, 1, "{kind}: the query must abort");
        assert_eq!(report.completed, 0, "{kind}");
        assert!(report.read_retries > 0, "{kind}");
        let (q, err) = &report.failures[0];
        assert_eq!(*q, 0, "{kind}");
        match err {
            QueryError::Unavailable { disk, attempts, .. } => {
                assert_eq!(*disk, unpaired, "{kind}");
                assert_eq!(
                    *attempts,
                    RetryPolicy::default().max_attempts,
                    "{kind}: aborts only after the full probe budget"
                );
            }
            other => panic!("{kind}: expected Unavailable, got {other:?}"),
        }
    }
}

/// A transient outage shorter than the retry budget is survived: the
/// probe fails, the bounded retry re-probes after backoff, the disk is
/// back, and the query completes with the right answers.
#[test]
fn transient_outage_is_survived_by_retries() {
    let tree = deterministic_tree(2);
    let root_disk = tree.placement(tree.root_page()).unwrap().disk.index() as u32;
    let w = workload();
    // No mirroring: the root read has no replica during the outage, so
    // it must go through the retry path rather than degraded reads.
    let plan = FaultPlan::none()
        .transient_outage(root_disk, SimTime::ZERO, SimTime::from_millis_f64(2.0))
        .with_retry(RetryPolicy {
            max_attempts: 10,
            backoff: SimTime::from_millis_f64(1.0),
        });
    let (baseline, healthy) = run_spied(
        &tree,
        deterministic_params(2),
        AlgorithmKind::Crss,
        &w,
        &FaultPlan::none(),
    );
    let (report, answers) = run_spied(
        &tree,
        deterministic_params(2),
        AlgorithmKind::Crss,
        &w,
        &plan,
    );
    assert_eq!(baseline.failed, 0);
    assert_eq!(report.failed, 0, "outage ends before the budget does");
    assert_eq!(report.completed, w.queries.len());
    assert!(report.read_retries > 0, "the outage must be observed");
    assert_eq!(report.degraded_reads, 0, "no replica to degrade onto");
    assert!(
        report.makespan_s > baseline.makespan_s,
        "waiting out the outage costs time"
    );
    for (q, want) in &healthy {
        assert_eq!(want, &answers[q], "query {q} answers changed");
    }
}

/// Faulted runs narrate first-class events: the fail-stop span, every
/// degraded read, and per-query aborts all appear in the stream.
#[test]
fn fault_events_are_recorded() {
    let tree = deterministic_tree(4);
    let w = workload();
    let root_disk = tree.placement(tree.root_page()).unwrap().disk.index() as u32;
    let plan = FaultPlan::none().fail_stop(root_disk, SimTime::ZERO);
    let sim = Simulation::new(&tree, mirrored_params(4)).unwrap();
    let mut rec = CollectingRecorder::new();
    let report = sim
        .run_faulted_recorded(AlgorithmKind::Bbss, &w, 5, &plan, &mut rec)
        .unwrap();
    let failed_events: Vec<_> = rec
        .events()
        .iter()
        .filter_map(|&(ts, e)| match e {
            Event::DiskFailed { disk } => Some((ts, disk)),
            _ => None,
        })
        .collect();
    assert_eq!(failed_events, vec![(0, root_disk as u16)]);
    let degraded = rec
        .events()
        .iter()
        .filter(|(_, e)| {
            matches!(e, Event::DegradedRead { disk, replica, .. }
                if *disk as u32 == root_disk
                && mirror_partner(root_disk as usize, 4) == Some(*replica as usize))
        })
        .count() as u64;
    assert_eq!(degraded, report.degraded_reads);
    assert!(degraded > 0);
}

/// A two-step algorithm whose second batch mixes tree levels (a child
/// page and the root): regression for the `batch_issued` label, which
/// used to stamp the whole batch with `pages[0]`'s level.
struct MixedFetcher {
    root: PageId,
    rounds: u8,
}

impl SimilaritySearch for MixedFetcher {
    fn start(&mut self) -> Step {
        Step::Fetch(vec![self.root])
    }
    fn on_fetched(&mut self, nodes: &mut Vec<(PageId, IndexNode)>) -> BatchResult {
        let fetched: Vec<(PageId, IndexNode)> = nodes.drain(..).collect();
        self.rounds += 1;
        let next = if self.rounds == 1 {
            let child = match &fetched[0].1 {
                IndexNode::Internal(block) => block.child(0),
                IndexNode::Leaf(_) => panic!("root of a 25-point tree is internal"),
            };
            // Deeper page FIRST: the old label took pages[0]'s level and
            // would report this batch as level 1 with no trace of the
            // root's level 0.
            Step::Fetch(vec![child, self.root])
        } else {
            Step::Done
        };
        BatchResult {
            next,
            cpu_instructions: 100,
        }
    }
    fn results(&self) -> Vec<Neighbor> {
        Vec::new()
    }
    fn name(&self) -> &'static str {
        "mixed-fetcher"
    }
}

#[test]
fn mixed_level_batches_record_min_and_max_levels() {
    let tree = deterministic_tree(2);
    let root = tree.root_page();
    let w = Workload {
        queries: vec![WorkloadQuery {
            arrival: SimTime::ZERO,
            point: Point::new(vec![0.0, 0.0]),
            k: 1,
        }],
    };
    let sim = Simulation::new(&tree, deterministic_params(2)).unwrap();
    let mut rec = CollectingRecorder::new();
    sim.run_with_recorded(
        |_point, _k| Box::new(MixedFetcher { root, rounds: 0 }),
        "mixed-fetcher",
        &w,
        1,
        &mut rec,
    )
    .unwrap();
    let batches: Vec<(u16, u16, u32)> = rec
        .events()
        .iter()
        .filter_map(|&(_, e)| match e {
            Event::BatchIssued {
                level,
                level_max,
                size,
                ..
            } => Some((level, level_max, size)),
            _ => None,
        })
        .collect();
    assert_eq!(
        batches,
        vec![
            // Root batch: uniform level 0.
            (0, 0, 1),
            // Mixed batch: shallowest 0 (the root), deepest 1 (a child)
            // — regardless of request order.
            (0, 1, 2),
        ]
    );
}
