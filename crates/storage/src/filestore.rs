//! A file-backed page store: one file per disk of the array.
//!
//! [`ArrayStore`](crate::ArrayStore) keeps page contents in RAM because
//! the *timing* of the modelled 1998 hardware comes from the simulator;
//! `FileStore` instead persists pages to real files — one per disk — so
//! an index survives the process. Page contents are stored at
//! `slot × page_size` within their disk's file; a compact superblock
//! (`meta.sqda`) records the geometry and the placement table.
//!
//! Reads return exactly the bytes written (lengths are tracked in the
//! superblock), so any `PageStore` consumer works unchanged.

use crate::{DiskId, IoStats, PageId, PageStore, Placement, Result, StorageError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const META_MAGIC: &[u8; 4] = b"SQDA";
const META_VERSION: u8 = 1;

struct SlotInfo {
    placement: Placement,
    /// Slot index within the disk file.
    slot: u64,
    /// Bytes actually written (`u32::MAX` = never written).
    len: u32,
}

struct Inner {
    files: Vec<File>,
    slots: Vec<Option<SlotInfo>>,
    /// Next fresh slot per disk.
    next_slot: Vec<u64>,
    /// Freed (disk, slot) pairs for reuse.
    free_slots: Vec<(u32, u64)>,
    /// Freed page ids for reuse.
    free_pages: Vec<u64>,
    rng: StdRng,
    stats: IoStats,
}

/// A persistent page store over one file per disk.
pub struct FileStore {
    dir: PathBuf,
    num_disks: u32,
    num_cylinders: u32,
    page_size: usize,
    inner: Mutex<Inner>,
}

const NEVER_WRITTEN: u32 = u32::MAX;

impl FileStore {
    /// Creates a fresh store in `dir` (created if missing; must not
    /// already hold a store).
    pub fn create(
        dir: &Path,
        num_disks: u32,
        num_cylinders: u32,
        page_size: usize,
        seed: u64,
    ) -> std::io::Result<Self> {
        assert!(num_disks > 0 && num_cylinders > 0 && page_size > 0);
        std::fs::create_dir_all(dir)?;
        if dir.join("meta.sqda").exists() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "store already exists; use FileStore::open",
            ));
        }
        let files = (0..num_disks)
            .map(|d| {
                OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(dir.join(format!("disk{d:04}.sqda")))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let store = Self {
            dir: dir.to_path_buf(),
            num_disks,
            num_cylinders,
            page_size,
            inner: Mutex::new(Inner {
                files,
                slots: Vec::new(),
                next_slot: vec![0; num_disks as usize],
                free_slots: Vec::new(),
                free_pages: Vec::new(),
                rng: StdRng::seed_from_u64(seed),
                stats: IoStats {
                    reads_per_disk: vec![0; num_disks as usize],
                    writes_per_disk: vec![0; num_disks as usize],
                    ..IoStats::default()
                },
            }),
        };
        store.sync()?;
        Ok(store)
    }

    /// Opens an existing store, restoring geometry and placements from
    /// the superblock.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        let mut meta = Vec::new();
        File::open(dir.join("meta.sqda"))?.read_to_end(&mut meta)?;
        let mut buf = Bytes::from(meta);
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        if buf.remaining() < 4 + 1 {
            return Err(bad("truncated superblock"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != META_MAGIC {
            return Err(bad("bad superblock magic"));
        }
        if buf.get_u8() != META_VERSION {
            return Err(bad("unsupported superblock version"));
        }
        let num_disks = buf.get_u32_le();
        let num_cylinders = buf.get_u32_le();
        let page_size = buf.get_u64_le() as usize;
        let rng_seed = buf.get_u64_le();
        let n_slots = buf.get_u64_le() as usize;
        let mut slots = Vec::with_capacity(n_slots);
        let mut next_slot = vec![0u64; num_disks as usize];
        let mut free_pages = Vec::new();
        for page in 0..n_slots {
            let tag = buf.get_u8();
            if tag == 0 {
                slots.push(None);
                free_pages.push(page as u64);
            } else {
                let disk = buf.get_u32_le();
                let cylinder = buf.get_u32_le();
                let slot = buf.get_u64_le();
                let len = buf.get_u32_le();
                next_slot[disk as usize] = next_slot[disk as usize].max(slot + 1);
                slots.push(Some(SlotInfo {
                    placement: Placement::new(DiskId(disk), cylinder),
                    slot,
                    len,
                }));
            }
        }
        let files = (0..num_disks)
            .map(|d| {
                OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(dir.join(format!("disk{d:04}.sqda")))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Self {
            dir: dir.to_path_buf(),
            num_disks,
            num_cylinders,
            page_size,
            inner: Mutex::new(Inner {
                files,
                slots,
                next_slot,
                free_slots: Vec::new(),
                free_pages,
                rng: StdRng::seed_from_u64(rng_seed),
                stats: IoStats {
                    reads_per_disk: vec![0; num_disks as usize],
                    writes_per_disk: vec![0; num_disks as usize],
                    ..IoStats::default()
                },
            }),
        })
    }

    /// Writes the superblock (placement table) to disk.
    pub fn sync(&self) -> std::io::Result<()> {
        let inner = self.inner.lock();
        let mut buf = BytesMut::new();
        buf.put_slice(META_MAGIC);
        buf.put_u8(META_VERSION);
        buf.put_u32_le(self.num_disks);
        buf.put_u32_le(self.num_cylinders);
        buf.put_u64_le(self.page_size as u64);
        // Persist a derived seed so reopened stores keep drawing fresh
        // cylinders (exact stream continuation is not required).
        buf.put_u64_le(0xC0FFEE);
        buf.put_u64_le(inner.slots.len() as u64);
        for slot in &inner.slots {
            match slot {
                None => buf.put_u8(0),
                Some(info) => {
                    buf.put_u8(1);
                    buf.put_u32_le(info.placement.disk.0);
                    buf.put_u32_le(info.placement.cylinder);
                    buf.put_u64_le(info.slot);
                    buf.put_u32_le(info.len);
                }
            }
        }
        let tmp = self.dir.join("meta.sqda.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
        std::fs::rename(tmp, self.dir.join("meta.sqda"))
    }

    fn io_err(e: std::io::Error, page: PageId) -> StorageError {
        StorageError::CorruptPage {
            page,
            detail: format!("file I/O: {e}"),
        }
    }
}

impl PageStore for FileStore {
    fn num_disks(&self) -> u32 {
        self.num_disks
    }

    fn num_cylinders(&self) -> u32 {
        self.num_cylinders
    }

    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&self, disk: DiskId) -> Result<PageId> {
        if disk.0 >= self.num_disks {
            return Err(StorageError::NoSuchDisk {
                disk: disk.0,
                num_disks: self.num_disks,
            });
        }
        let mut inner = self.inner.lock();
        let cylinder = inner.rng.gen_range(0..self.num_cylinders);
        // Prefer a freed slot on the target disk.
        let slot = if let Some(pos) = inner.free_slots.iter().position(|(d, _)| *d == disk.0) {
            inner.free_slots.swap_remove(pos).1
        } else {
            let s = inner.next_slot[disk.index()];
            inner.next_slot[disk.index()] += 1;
            s
        };
        let info = SlotInfo {
            placement: Placement::new(disk, cylinder),
            slot,
            len: NEVER_WRITTEN,
        };
        let raw = if let Some(raw) = inner.free_pages.pop() {
            inner.slots[raw as usize] = Some(info);
            raw
        } else {
            inner.slots.push(Some(info));
            (inner.slots.len() - 1) as u64
        };
        Ok(PageId::from_raw(raw))
    }

    fn write(&self, page: PageId, data: Bytes) -> Result<()> {
        if data.len() > self.page_size {
            return Err(StorageError::PageTooLarge {
                page,
                len: data.len(),
                page_size: self.page_size,
            });
        }
        let mut inner = self.inner.lock();
        let (disk, offset) = {
            let info = inner
                .slots
                .get_mut(page.as_raw() as usize)
                .and_then(|s| s.as_mut())
                .ok_or(StorageError::PageNotFound(page))?;
            info.len = data.len() as u32;
            (
                info.placement.disk.index(),
                info.slot * self.page_size as u64,
            )
        };
        let file = &mut inner.files[disk];
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| Self::io_err(e, page))?;
        file.write_all(&data).map_err(|e| Self::io_err(e, page))?;
        // Pad to a full page so slots never overlap.
        let pad = self.page_size - data.len();
        if pad > 0 {
            file.write_all(&vec![0u8; pad])
                .map_err(|e| Self::io_err(e, page))?;
        }
        inner.stats.writes += 1;
        inner.stats.writes_per_disk[disk] += 1;
        Ok(())
    }

    fn read(&self, page: PageId) -> Result<Bytes> {
        let mut inner = self.inner.lock();
        let (disk, offset, len) = {
            let info = inner
                .slots
                .get(page.as_raw() as usize)
                .and_then(|s| s.as_ref())
                .ok_or(StorageError::PageNotFound(page))?;
            if info.len == NEVER_WRITTEN {
                return Err(StorageError::UninitializedPage(page));
            }
            (
                info.placement.disk.index(),
                info.slot * self.page_size as u64,
                info.len as usize,
            )
        };
        let file = &mut inner.files[disk];
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| Self::io_err(e, page))?;
        let mut data = vec![0u8; len];
        file.read_exact(&mut data)
            .map_err(|e| Self::io_err(e, page))?;
        inner.stats.reads += 1;
        inner.stats.reads_per_disk[disk] += 1;
        Ok(Bytes::from(data))
    }

    fn free(&self, page: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        let info = inner
            .slots
            .get_mut(page.as_raw() as usize)
            .ok_or(StorageError::PageNotFound(page))?
            .take()
            .ok_or(StorageError::PageNotFound(page))?;
        inner.free_slots.push((info.placement.disk.0, info.slot));
        inner.free_pages.push(page.as_raw());
        Ok(())
    }

    fn placement(&self, page: PageId) -> Result<Placement> {
        let inner = self.inner.lock();
        inner
            .slots
            .get(page.as_raw() as usize)
            .and_then(|s| s.as_ref())
            .map(|s| s.placement)
            .ok_or(StorageError::PageNotFound(page))
    }

    fn stats(&self) -> IoStats {
        self.inner.lock().stats.clone()
    }

    fn reset_stats(&self) {
        let mut inner = self.inner.lock();
        let n = self.num_disks as usize;
        inner.stats = IoStats {
            reads_per_disk: vec![0; n],
            writes_per_disk: vec![0; n],
            ..IoStats::default()
        };
    }

    fn pages_per_disk(&self) -> Vec<usize> {
        let inner = self.inner.lock();
        let mut counts = vec![0usize; self.num_disks as usize];
        for slot in inner.slots.iter().flatten() {
            counts[slot.placement.disk.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sqda-filestore-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_and_padding() {
        let dir = tmpdir("roundtrip");
        let s = FileStore::create(&dir, 3, 100, 256, 1).unwrap();
        let p = s.allocate(DiskId(1)).unwrap();
        s.write(p, Bytes::from_static(b"hello world")).unwrap();
        assert_eq!(s.read(p).unwrap(), Bytes::from_static(b"hello world"));
        // Rewrite with different length.
        s.write(p, Bytes::from_static(b"xy")).unwrap();
        assert_eq!(s.read(p).unwrap(), Bytes::from_static(b"xy"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistence_across_open() {
        let dir = tmpdir("persist");
        let (p1, p2);
        {
            let s = FileStore::create(&dir, 2, 50, 128, 2).unwrap();
            p1 = s.allocate(DiskId(0)).unwrap();
            p2 = s.allocate(DiskId(1)).unwrap();
            s.write(p1, Bytes::from_static(b"first")).unwrap();
            s.write(p2, Bytes::from_static(b"second page")).unwrap();
            s.sync().unwrap();
        }
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.num_disks(), 2);
        assert_eq!(s.page_size(), 128);
        assert_eq!(s.read(p1).unwrap(), Bytes::from_static(b"first"));
        assert_eq!(s.read(p2).unwrap(), Bytes::from_static(b"second page"));
        assert_eq!(s.placement(p2).unwrap().disk, DiskId(1));
        // New allocations don't collide with restored ones.
        let p3 = s.allocate(DiskId(0)).unwrap();
        s.write(p3, Bytes::from_static(b"third")).unwrap();
        assert_eq!(s.read(p1).unwrap(), Bytes::from_static(b"first"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_existing() {
        let dir = tmpdir("exists");
        let _s = FileStore::create(&dir, 1, 10, 64, 3).unwrap();
        assert!(FileStore::create(&dir, 1, 10, 64, 3).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn free_and_slot_reuse() {
        let dir = tmpdir("free");
        let s = FileStore::create(&dir, 1, 10, 64, 4).unwrap();
        let a = s.allocate(DiskId(0)).unwrap();
        s.write(a, Bytes::from_static(b"a")).unwrap();
        s.free(a).unwrap();
        assert!(matches!(s.read(a), Err(StorageError::PageNotFound(_))));
        let b = s.allocate(DiskId(0)).unwrap();
        // Page id and file slot both recycled.
        assert_eq!(b, a);
        s.write(b, Bytes::from_static(b"b")).unwrap();
        assert_eq!(s.read(b).unwrap(), Bytes::from_static(b"b"));
        // The file didn't grow: one page's worth of data.
        let len = std::fs::metadata(dir.join("disk0000.sqda")).unwrap().len();
        assert_eq!(len, 64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn works_as_tree_backing_store() {
        // The whole R*-tree stack must run unmodified on files. (Uses
        // only PageStore; the tree crate is a dev-dependency elsewhere,
        // so here we just verify multi-page behaviour.)
        let dir = tmpdir("tree");
        let s = FileStore::create(&dir, 4, 1449, 4096, 5).unwrap();
        let mut pages = Vec::new();
        for i in 0..100u64 {
            let p = s.allocate(DiskId((i % 4) as u32)).unwrap();
            let payload = vec![i as u8; (i as usize % 200) + 1];
            s.write(p, Bytes::from(payload.clone())).unwrap();
            pages.push((p, payload));
        }
        for (p, payload) in &pages {
            assert_eq!(s.read(*p).unwrap(), Bytes::from(payload.clone()));
        }
        let per_disk = s.pages_per_disk();
        assert_eq!(per_disk.iter().sum::<usize>(), 100);
        assert!(per_disk.iter().all(|&c| c == 25));
        assert_eq!(s.stats().writes, 100);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_garbage_superblock() {
        let dir = tmpdir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("meta.sqda"), b"not a superblock").unwrap();
        assert!(FileStore::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
