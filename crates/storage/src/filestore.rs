//! A file-backed page store: one file per disk of the array.
//!
//! [`ArrayStore`](crate::ArrayStore) keeps page contents in RAM because
//! the *timing* of the modelled 1998 hardware comes from the simulator;
//! `FileStore` instead persists pages to real files — one per disk — so
//! an index survives the process. Page contents are stored at
//! `slot × page_size` within their disk's file; a compact superblock
//! (`meta.sqda`) records the geometry and the placement table.
//!
//! Reads return exactly the bytes written (lengths are tracked in the
//! superblock), so any `PageStore` consumer works unchanged.
//!
//! # Concurrency
//!
//! All I/O is *positional* (`pread`/`pwrite`-style via [`FileExt`]):
//! every disk has one shared `File` handle with no cursor state, so
//! concurrent readers — in particular the per-disk worker threads of
//! [`crate::ThreadedFileBackend`] — never serialize on a lock to reach
//! the data. The placement table sits behind an `RwLock` taken in read
//! mode on the read path, and the I/O tallies are atomics, mirroring
//! [`ArrayStore`](crate::ArrayStore)'s lock-free accounting. Readers on
//! different disks (and on the same disk) proceed fully in parallel;
//! only allocate/free/write take the table lock exclusively.

use crate::store::Counters;
use crate::{DiskId, IoStats, PageId, PageStore, Placement, Result, StorageError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const META_MAGIC: &[u8; 4] = b"SQDA";
const META_VERSION: u8 = 1;

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    std::os::unix::fs::FileExt::read_exact_at(file, buf, offset)
}

#[cfg(unix)]
fn write_all_at(file: &File, buf: &[u8], offset: u64) -> std::io::Result<()> {
    std::os::unix::fs::FileExt::write_all_at(file, buf, offset)
}

#[cfg(windows)]
fn read_exact_at(file: &File, mut buf: &mut [u8], mut offset: u64) -> std::io::Result<()> {
    use std::os::windows::fs::FileExt;
    while !buf.is_empty() {
        match file.seek_read(buf, offset)? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "failed to fill whole buffer",
                ))
            }
            n => {
                buf = &mut buf[n..];
                offset += n as u64;
            }
        }
    }
    Ok(())
}

#[cfg(windows)]
fn write_all_at(file: &File, mut buf: &[u8], mut offset: u64) -> std::io::Result<()> {
    use std::os::windows::fs::FileExt;
    while !buf.is_empty() {
        let n = file.seek_write(buf, offset)?;
        buf = &buf[n..];
        offset += n as u64;
    }
    Ok(())
}

struct SlotInfo {
    placement: Placement,
    /// Slot index within the disk file.
    slot: u64,
    /// Bytes actually written (`u32::MAX` = never written).
    len: u32,
}

/// The placement table and allocator state, behind one `RwLock`. The
/// read path only ever takes it in shared mode (and drops it before
/// touching the file), so metadata lookups never serialize readers.
struct Meta {
    slots: Vec<Option<SlotInfo>>,
    /// Next fresh slot per disk.
    next_slot: Vec<u64>,
    /// Freed (disk, slot) pairs for reuse.
    free_slots: Vec<(u32, u64)>,
    /// Freed page ids for reuse.
    free_pages: Vec<u64>,
    rng: StdRng,
}

/// A persistent page store over one file per disk, with positional
/// (`pread`-style) I/O so concurrent readers never contend on a lock.
pub struct FileStore {
    dir: PathBuf,
    num_disks: u32,
    num_cylinders: u32,
    page_size: usize,
    /// One shared handle per disk; accessed exclusively through
    /// positional I/O, so no cursor state and no guarding lock.
    files: Vec<File>,
    meta: RwLock<Meta>,
    counters: Counters,
}

const NEVER_WRITTEN: u32 = u32::MAX;

impl std::fmt::Debug for FileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStore")
            .field("dir", &self.dir)
            .field("num_disks", &self.num_disks)
            .field("num_cylinders", &self.num_cylinders)
            .field("page_size", &self.page_size)
            .finish_non_exhaustive()
    }
}

/// A bounds-checked cursor over superblock bytes: every decode states
/// what it needed, so a truncated `meta.sqda` surfaces as a typed
/// [`StorageError::Superblock`] instead of a panic deep in `bytes`.
struct MetaReader<'a> {
    buf: Bytes,
    path: &'a Path,
}

impl<'a> MetaReader<'a> {
    fn bad(&self, detail: impl Into<String>) -> StorageError {
        StorageError::Superblock {
            path: self.path.display().to_string(),
            detail: detail.into(),
        }
    }

    fn need(&self, n: usize, what: &str) -> Result<()> {
        if self.buf.remaining() < n {
            Err(self.bad(format!(
                "truncated: {what} needs {n} bytes, {} left",
                self.buf.remaining()
            )))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        self.need(1, what)?;
        Ok(self.buf.get_u8())
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        self.need(4, what)?;
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        self.need(8, what)?;
        Ok(self.buf.get_u64_le())
    }
}

impl FileStore {
    /// Creates a fresh store in `dir` (created if missing; must not
    /// already hold a store).
    pub fn create(
        dir: &Path,
        num_disks: u32,
        num_cylinders: u32,
        page_size: usize,
        seed: u64,
    ) -> std::io::Result<Self> {
        assert!(num_disks > 0 && num_cylinders > 0 && page_size > 0);
        std::fs::create_dir_all(dir)?;
        if dir.join("meta.sqda").exists() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "store already exists; use FileStore::open",
            ));
        }
        let files = (0..num_disks)
            .map(|d| {
                OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(dir.join(format!("disk{d:04}.sqda")))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let store = Self {
            dir: dir.to_path_buf(),
            num_disks,
            num_cylinders,
            page_size,
            files,
            meta: RwLock::new(Meta {
                slots: Vec::new(),
                next_slot: vec![0; num_disks as usize],
                free_slots: Vec::new(),
                free_pages: Vec::new(),
                rng: StdRng::seed_from_u64(seed),
            }),
            counters: Counters::new(num_disks),
        };
        store.sync()?;
        Ok(store)
    }

    /// Opens an existing store, restoring geometry and placements from
    /// the superblock.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Superblock`] — carrying the offending
    /// path — when `meta.sqda` is missing, unreadable, truncated, has a
    /// bad magic or an unsupported version, or references disks outside
    /// its own declared geometry. Damage is never papered over with a
    /// partial table.
    pub fn open(dir: &Path) -> Result<Self> {
        let meta_path = dir.join("meta.sqda");
        let bad = |detail: String| StorageError::Superblock {
            path: meta_path.display().to_string(),
            detail,
        };
        let mut meta_bytes = Vec::new();
        File::open(&meta_path)
            .and_then(|mut f| f.read_to_end(&mut meta_bytes))
            .map_err(|e| bad(format!("unreadable: {e}")))?;
        let mut r = MetaReader {
            buf: Bytes::from(meta_bytes),
            path: &meta_path,
        };
        r.need(4, "magic")?;
        let mut magic = [0u8; 4];
        r.buf.copy_to_slice(&mut magic);
        if &magic != META_MAGIC {
            return Err(r.bad(format!(
                "bad magic {magic:02x?} (expected {META_MAGIC:02x?})"
            )));
        }
        let version = r.u8("version")?;
        if version != META_VERSION {
            return Err(r.bad(format!(
                "unsupported superblock version {version} (this build reads version \
                 {META_VERSION})"
            )));
        }
        let num_disks = r.u32("disk count")?;
        if num_disks == 0 {
            return Err(r.bad("geometry declares zero disks"));
        }
        let num_cylinders = r.u32("cylinder count")?;
        let page_size = r.u64("page size")? as usize;
        if page_size == 0 {
            return Err(r.bad("geometry declares zero page size"));
        }
        let rng_seed = r.u64("rng seed")?;
        let n_slots = r.u64("slot count")? as usize;
        // Each slot record is at least its one tag byte, so a slot count
        // exceeding the remaining bytes is provably truncation — checked
        // before reserving memory for the table.
        r.need(n_slots, "slot table")?;
        let mut slots = Vec::with_capacity(n_slots);
        let mut next_slot = vec![0u64; num_disks as usize];
        let mut free_pages = Vec::new();
        for page in 0..n_slots {
            let tag = r.u8("slot tag")?;
            match tag {
                0 => {
                    slots.push(None);
                    free_pages.push(page as u64);
                }
                1 => {
                    let disk = r.u32("slot disk")?;
                    let cylinder = r.u32("slot cylinder")?;
                    let slot = r.u64("slot index")?;
                    let len = r.u32("slot length")?;
                    if disk >= num_disks {
                        return Err(r.bad(format!(
                            "page {page} placed on disk {disk}, but the geometry \
                             declares only {num_disks} disks"
                        )));
                    }
                    next_slot[disk as usize] = next_slot[disk as usize].max(slot + 1);
                    slots.push(Some(SlotInfo {
                        placement: Placement::new(DiskId(disk), cylinder),
                        slot,
                        len,
                    }));
                }
                other => {
                    return Err(r.bad(format!("page {page}: unknown slot tag {other}")));
                }
            }
        }
        if r.buf.remaining() > 0 {
            return Err(r.bad(format!(
                "{} trailing bytes after the slot table",
                r.buf.remaining()
            )));
        }
        let files = (0..num_disks)
            .map(|d| {
                let path = dir.join(format!("disk{d:04}.sqda"));
                OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&path)
                    .map_err(|e| bad(format!("disk file {} unreadable: {e}", path.display())))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            dir: dir.to_path_buf(),
            num_disks,
            num_cylinders,
            page_size,
            files,
            meta: RwLock::new(Meta {
                slots,
                next_slot,
                free_slots: Vec::new(),
                free_pages,
                rng: StdRng::seed_from_u64(rng_seed),
            }),
            counters: Counters::new(num_disks),
        })
    }

    /// Writes the superblock (placement table) to disk.
    pub fn sync(&self) -> std::io::Result<()> {
        let meta = self.meta.read();
        let mut buf = BytesMut::new();
        buf.put_slice(META_MAGIC);
        buf.put_u8(META_VERSION);
        buf.put_u32_le(self.num_disks);
        buf.put_u32_le(self.num_cylinders);
        buf.put_u64_le(self.page_size as u64);
        // Persist a derived seed so reopened stores keep drawing fresh
        // cylinders (exact stream continuation is not required).
        buf.put_u64_le(0xC0FFEE);
        buf.put_u64_le(meta.slots.len() as u64);
        for slot in &meta.slots {
            match slot {
                None => buf.put_u8(0),
                Some(info) => {
                    buf.put_u8(1);
                    buf.put_u32_le(info.placement.disk.0);
                    buf.put_u32_le(info.placement.cylinder);
                    buf.put_u64_le(info.slot);
                    buf.put_u32_le(info.len);
                }
            }
        }
        let tmp = self.dir.join("meta.sqda.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
        std::fs::rename(tmp, self.dir.join("meta.sqda"))
    }

    fn io_err(e: std::io::Error, page: PageId) -> StorageError {
        StorageError::CorruptPage {
            page,
            detail: format!("file I/O: {e}"),
        }
    }

    /// Looks up the physical location of a readable page: disk index,
    /// byte offset in the disk file, and stored length.
    fn read_plan(&self, page: PageId) -> Result<(usize, u64, usize)> {
        let meta = self.meta.read();
        let info = meta
            .slots
            .get(page.as_raw() as usize)
            .and_then(|s| s.as_ref())
            .ok_or(StorageError::PageNotFound(page))?;
        if info.len == NEVER_WRITTEN {
            return Err(StorageError::UninitializedPage(page));
        }
        Ok((
            info.placement.disk.index(),
            info.slot * self.page_size as u64,
            info.len as usize,
        ))
    }
}

impl PageStore for FileStore {
    fn num_disks(&self) -> u32 {
        self.num_disks
    }

    fn num_cylinders(&self) -> u32 {
        self.num_cylinders
    }

    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&self, disk: DiskId) -> Result<PageId> {
        if disk.0 >= self.num_disks {
            return Err(StorageError::NoSuchDisk {
                disk: disk.0,
                num_disks: self.num_disks,
            });
        }
        let mut meta = self.meta.write();
        let cylinder = meta.rng.gen_range(0..self.num_cylinders);
        // Prefer a freed slot on the target disk.
        let slot = if let Some(pos) = meta.free_slots.iter().position(|(d, _)| *d == disk.0) {
            meta.free_slots.swap_remove(pos).1
        } else {
            let s = meta.next_slot[disk.index()];
            meta.next_slot[disk.index()] += 1;
            s
        };
        let info = SlotInfo {
            placement: Placement::new(disk, cylinder),
            slot,
            len: NEVER_WRITTEN,
        };
        let raw = if let Some(raw) = meta.free_pages.pop() {
            meta.slots[raw as usize] = Some(info);
            raw
        } else {
            meta.slots.push(Some(info));
            (meta.slots.len() - 1) as u64
        };
        Ok(PageId::from_raw(raw))
    }

    fn write(&self, page: PageId, data: Bytes) -> Result<()> {
        if data.len() > self.page_size {
            return Err(StorageError::PageTooLarge {
                page,
                len: data.len(),
                page_size: self.page_size,
            });
        }
        let (disk, offset) = {
            let mut meta = self.meta.write();
            let info = meta
                .slots
                .get_mut(page.as_raw() as usize)
                .and_then(|s| s.as_mut())
                .ok_or(StorageError::PageNotFound(page))?;
            info.len = data.len() as u32;
            (
                info.placement.disk.index(),
                info.slot * self.page_size as u64,
            )
        };
        let file = &self.files[disk];
        write_all_at(file, &data, offset).map_err(|e| Self::io_err(e, page))?;
        // Pad to a full page so slots never overlap.
        let pad = self.page_size - data.len();
        if pad > 0 {
            write_all_at(file, &vec![0u8; pad], offset + data.len() as u64)
                .map_err(|e| Self::io_err(e, page))?;
        }
        self.counters.tally_write(disk);
        Ok(())
    }

    fn read(&self, page: PageId) -> Result<Bytes> {
        // Shared metadata lock, dropped before the file access; the read
        // itself is positional on the per-disk handle, so concurrent
        // readers — same disk or different disks — never serialize.
        let (disk, offset, len) = self.read_plan(page)?;
        let mut data = vec![0u8; len];
        read_exact_at(&self.files[disk], &mut data, offset).map_err(|e| Self::io_err(e, page))?;
        self.counters.tally_read(disk);
        Ok(Bytes::from(data))
    }

    fn free(&self, page: PageId) -> Result<()> {
        let mut meta = self.meta.write();
        let info = meta
            .slots
            .get_mut(page.as_raw() as usize)
            .ok_or(StorageError::PageNotFound(page))?
            .take()
            .ok_or(StorageError::PageNotFound(page))?;
        meta.free_slots.push((info.placement.disk.0, info.slot));
        meta.free_pages.push(page.as_raw());
        Ok(())
    }

    fn placement(&self, page: PageId) -> Result<Placement> {
        let meta = self.meta.read();
        meta.slots
            .get(page.as_raw() as usize)
            .and_then(|s| s.as_ref())
            .map(|s| s.placement)
            .ok_or(StorageError::PageNotFound(page))
    }

    fn stats(&self) -> IoStats {
        self.counters.snapshot(self.num_disks)
    }

    fn reset_stats(&self) {
        self.counters.reset();
    }

    fn pages_per_disk(&self) -> Vec<usize> {
        let meta = self.meta.read();
        let mut counts = vec![0usize; self.num_disks as usize];
        for slot in meta.slots.iter().flatten() {
            counts[slot.placement.disk.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sqda-filestore-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_and_padding() {
        let dir = tmpdir("roundtrip");
        let s = FileStore::create(&dir, 3, 100, 256, 1).unwrap();
        let p = s.allocate(DiskId(1)).unwrap();
        s.write(p, Bytes::from_static(b"hello world")).unwrap();
        assert_eq!(s.read(p).unwrap(), Bytes::from_static(b"hello world"));
        // Rewrite with different length.
        s.write(p, Bytes::from_static(b"xy")).unwrap();
        assert_eq!(s.read(p).unwrap(), Bytes::from_static(b"xy"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistence_across_open() {
        let dir = tmpdir("persist");
        let (p1, p2);
        {
            let s = FileStore::create(&dir, 2, 50, 128, 2).unwrap();
            p1 = s.allocate(DiskId(0)).unwrap();
            p2 = s.allocate(DiskId(1)).unwrap();
            s.write(p1, Bytes::from_static(b"first")).unwrap();
            s.write(p2, Bytes::from_static(b"second page")).unwrap();
            s.sync().unwrap();
        }
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.num_disks(), 2);
        assert_eq!(s.page_size(), 128);
        assert_eq!(s.read(p1).unwrap(), Bytes::from_static(b"first"));
        assert_eq!(s.read(p2).unwrap(), Bytes::from_static(b"second page"));
        assert_eq!(s.placement(p2).unwrap().disk, DiskId(1));
        // New allocations don't collide with restored ones.
        let p3 = s.allocate(DiskId(0)).unwrap();
        s.write(p3, Bytes::from_static(b"third")).unwrap();
        assert_eq!(s.read(p1).unwrap(), Bytes::from_static(b"first"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_existing() {
        let dir = tmpdir("exists");
        let _s = FileStore::create(&dir, 1, 10, 64, 3).unwrap();
        assert!(FileStore::create(&dir, 1, 10, 64, 3).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn free_and_slot_reuse() {
        let dir = tmpdir("free");
        let s = FileStore::create(&dir, 1, 10, 64, 4).unwrap();
        let a = s.allocate(DiskId(0)).unwrap();
        s.write(a, Bytes::from_static(b"a")).unwrap();
        s.free(a).unwrap();
        assert!(matches!(s.read(a), Err(StorageError::PageNotFound(_))));
        let b = s.allocate(DiskId(0)).unwrap();
        // Page id and file slot both recycled.
        assert_eq!(b, a);
        s.write(b, Bytes::from_static(b"b")).unwrap();
        assert_eq!(s.read(b).unwrap(), Bytes::from_static(b"b"));
        // The file didn't grow: one page's worth of data.
        let len = std::fs::metadata(dir.join("disk0000.sqda")).unwrap().len();
        assert_eq!(len, 64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn works_as_tree_backing_store() {
        // The whole R*-tree stack must run unmodified on files. (Uses
        // only PageStore; the tree crate is a dev-dependency elsewhere,
        // so here we just verify multi-page behaviour.)
        let dir = tmpdir("tree");
        let s = FileStore::create(&dir, 4, 1449, 4096, 5).unwrap();
        let mut pages = Vec::new();
        for i in 0..100u64 {
            let p = s.allocate(DiskId((i % 4) as u32)).unwrap();
            let payload = vec![i as u8; (i as usize % 200) + 1];
            s.write(p, Bytes::from(payload.clone())).unwrap();
            pages.push((p, payload));
        }
        for (p, payload) in &pages {
            assert_eq!(s.read(*p).unwrap(), Bytes::from(payload.clone()));
        }
        let per_disk = s.pages_per_disk();
        assert_eq!(per_disk.iter().sum::<usize>(), 100);
        assert!(per_disk.iter().all(|&c| c == 25));
        assert_eq!(s.stats().writes, 100);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_readers_do_not_contend_or_misread() {
        // Readers across all disks in parallel: every read returns its
        // page's exact bytes and the atomic tallies account for all of
        // them. (Pre-refactor a single global Mutex serialized this.)
        let dir = tmpdir("concurrent");
        let s = FileStore::create(&dir, 4, 100, 256, 6).unwrap();
        let mut pages = Vec::new();
        for i in 0..32u64 {
            let p = s.allocate(DiskId((i % 4) as u32)).unwrap();
            let payload = vec![i as u8; (i as usize % 100) + 1];
            s.write(p, Bytes::from(payload.clone())).unwrap();
            pages.push((p, payload));
        }
        s.reset_stats();
        const THREADS: usize = 8;
        const READS: usize = 200;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let s = &s;
                let pages = &pages;
                scope.spawn(move || {
                    for i in 0..READS {
                        let (p, payload) = &pages[(t + i) % pages.len()];
                        assert_eq!(s.read(*p).unwrap(), Bytes::from(payload.clone()));
                    }
                });
            }
        });
        let st = s.stats();
        assert_eq!(st.reads, (THREADS * READS) as u64);
        assert_eq!(st.reads_per_disk.iter().sum::<u64>(), st.reads);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_garbage_superblock() {
        let dir = tmpdir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("meta.sqda"), b"not a superblock").unwrap();
        let err = FileStore::open(&dir).unwrap_err();
        match &err {
            StorageError::Superblock { path, detail } => {
                assert!(path.contains("meta.sqda"), "{err}");
                assert!(detail.contains("magic"), "{err}");
            }
            other => panic!("expected Superblock error, got {other:?}"),
        }
    }

    #[test]
    fn open_rejects_unknown_version() {
        let dir = tmpdir("version");
        {
            let s = FileStore::create(&dir, 1, 10, 64, 7).unwrap();
            s.sync().unwrap();
        }
        let path = dir.join("meta.sqda");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 99; // the version byte follows the 4-byte magic
        std::fs::write(&path, bytes).unwrap();
        let err = FileStore::open(&dir).unwrap_err();
        match &err {
            StorageError::Superblock { path, detail } => {
                assert!(path.contains("meta.sqda"), "{err}");
                assert!(detail.contains("version 99"), "{err}");
            }
            other => panic!("expected Superblock error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_truncated_superblock() {
        let dir = tmpdir("truncated");
        {
            let s = FileStore::create(&dir, 2, 10, 64, 8).unwrap();
            let p = s.allocate(DiskId(0)).unwrap();
            s.write(p, Bytes::from_static(b"payload")).unwrap();
            s.sync().unwrap();
        }
        let path = dir.join("meta.sqda");
        let full = std::fs::read(&path).unwrap();
        // Every proper prefix must fail with a typed Superblock error —
        // never a panic, never a silently partial table.
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = FileStore::open(&dir).unwrap_err();
            match &err {
                StorageError::Superblock { path, .. } => {
                    assert!(path.contains("meta.sqda"), "cut={cut}: {err}");
                }
                other => panic!("cut={cut}: expected Superblock error, got {other:?}"),
            }
        }
        // Restoring the full superblock opens cleanly again.
        std::fs::write(&path, &full).unwrap();
        assert!(FileStore::open(&dir).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_out_of_range_disk() {
        let dir = tmpdir("baddisk");
        {
            let s = FileStore::create(&dir, 2, 10, 64, 9).unwrap();
            let p = s.allocate(DiskId(1)).unwrap();
            s.write(p, Bytes::from_static(b"x")).unwrap();
            s.sync().unwrap();
        }
        let path = dir.join("meta.sqda");
        let mut bytes = std::fs::read(&path).unwrap();
        // The first slot record starts after the fixed header
        // (4 magic + 1 version + 4 disks + 4 cylinders + 8 page size +
        // 8 seed + 8 slot count = 37 bytes); its disk field follows the
        // tag byte.
        let disk_field = 37 + 1;
        bytes[disk_field..disk_field + 4].copy_from_slice(&7u32.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        let err = FileStore::open(&dir).unwrap_err();
        match &err {
            StorageError::Superblock { detail, .. } => {
                assert!(detail.contains("disk 7"), "{err}");
            }
            other => panic!("expected Superblock error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_missing_superblock_is_typed() {
        let dir = tmpdir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        let err = FileStore::open(&dir).unwrap_err();
        assert!(
            matches!(&err, StorageError::Superblock { .. }),
            "expected Superblock error, got {err:?}"
        );
    }
}
