//! Physical placement of pages on the disk array.

/// Identifier of one disk in the array (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DiskId(pub u32);

impl DiskId {
    /// The disk index as a `usize`, for indexing per-disk tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DiskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "disk{}", self.0)
    }
}

/// Where a page physically lives: which disk, and at which cylinder.
///
/// The cylinder determines seek distances in the disk-timing model. The
/// paper assigns each newly created node a cylinder drawn uniformly at
/// random (Section 4.1), deliberately ignoring intra-disk locality — that
/// effect is orthogonal to the similarity-search algorithms under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placement {
    /// The disk hosting the page.
    pub disk: DiskId,
    /// The cylinder within the disk (0-based).
    pub cylinder: u32,
}

impl Placement {
    /// Creates a placement.
    pub fn new(disk: DiskId, cylinder: u32) -> Self {
        Self { disk, cylinder }
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@cyl{}", self.disk, self.cylinder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        let p = Placement::new(DiskId(3), 120);
        assert_eq!(p.to_string(), "disk3@cyl120");
        assert_eq!(p.disk.index(), 3);
    }
}
