//! Page identifiers and sizing.

/// Default page (disk block) size in bytes.
///
/// One R\*-tree node occupies exactly one page; the RAID-0 striping unit is
/// one page. 4 KiB matches typical block sizes of the era modelled by the
/// paper and yields the fan-outs the evaluation assumes (≈ 90 entries in
/// 2-d, ≈ 20 in 10-d).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// A stable identifier for one page of the declustered store.
///
/// `PageId`s are dense, allocation-ordered integers. They carry no
/// locality information themselves — the disk and cylinder a page lives on
/// are recorded in its [`Placement`](crate::Placement), chosen by the
/// access method's declustering heuristic at allocation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(u64);

impl PageId {
    /// Creates a page id from its raw representation.
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        PageId(raw)
    }

    /// The raw integer representation (used by the on-page codec).
    #[inline]
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        let p = PageId::from_raw(42);
        assert_eq!(p.as_raw(), 42);
        assert_eq!(p.to_string(), "P42");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(PageId::from_raw(1) < PageId::from_raw(2));
    }
}
