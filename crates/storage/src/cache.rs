//! A small fixed-capacity LRU page cache.
//!
//! The paper's experiments count every node access as a disk access (no
//! buffer pool), so the experiment harness leaves the cache out. The cache
//! is provided for library users who want realistic repeated-query
//! workloads, and for the "cached root" configuration, where the root page
//! (read by every single query) is pinned in memory.

use crate::PageId;
use bytes::Bytes;
use std::collections::HashMap;

/// A fixed-capacity least-recently-used page cache.
///
/// Uses an intrusive doubly-linked list over a slab, with a `HashMap` index
/// — O(1) `get` / `insert` / eviction.
pub struct LruCache {
    capacity: usize,
    map: HashMap<PageId, usize>,
    entries: Vec<EntrySlot>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
    hits: u64,
    misses: u64,
}

struct EntrySlot {
    page: PageId,
    data: Bytes,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl LruCache {
    /// Creates a cache holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            capacity,
            map: HashMap::with_capacity(capacity),
            entries: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`; 0 when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up a page, marking it most-recently-used on a hit.
    pub fn get(&mut self, page: PageId) -> Option<Bytes> {
        match self.map.get(&page).copied() {
            Some(idx) => {
                self.hits += 1;
                if self.head != idx {
                    self.unlink(idx);
                    self.push_front(idx);
                }
                Some(self.entries[idx].data.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a page, evicting the LRU entry if full.
    /// Returns the evicted page id, if any.
    pub fn insert(&mut self, page: PageId, data: Bytes) -> Option<PageId> {
        if let Some(&idx) = self.map.get(&page) {
            self.entries[idx].data = data;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            let victim = self.entries[lru].page;
            self.unlink(lru);
            self.map.remove(&victim);
            self.free.push(lru);
            evicted = Some(victim);
        }
        let slot = EntrySlot {
            page,
            data,
            prev: NIL,
            next: NIL,
        };
        let idx = if let Some(idx) = self.free.pop() {
            self.entries[idx] = slot;
            idx
        } else {
            self.entries.push(slot);
            self.entries.len() - 1
        };
        self.map.insert(page, idx);
        self.push_front(idx);
        evicted
    }

    /// Removes a page from the cache (e.g. on page free or update).
    pub fn invalidate(&mut self, page: PageId) -> bool {
        if let Some(idx) = self.map.remove(&page) {
            self.unlink(idx);
            self.free.push(idx);
            true
        } else {
            false
        }
    }

    /// Drops all cached pages and resets statistics.
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> PageId {
        PageId::from_raw(n)
    }

    fn data(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(2);
        assert!(c.get(page(1)).is_none());
        c.insert(page(1), data("a"));
        assert_eq!(c.get(page(1)).unwrap(), data("a"));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(page(1), data("a"));
        c.insert(page(2), data("b"));
        // Touch 1 so 2 becomes LRU.
        c.get(page(1));
        let evicted = c.insert(page(3), data("c"));
        assert_eq!(evicted, Some(page(2)));
        assert!(c.get(page(2)).is_none());
        assert!(c.get(page(1)).is_some());
        assert!(c.get(page(3)).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut c = LruCache::new(2);
        c.insert(page(1), data("a"));
        c.insert(page(2), data("b"));
        assert_eq!(c.insert(page(1), data("a2")), None);
        assert_eq!(c.get(page(1)).unwrap(), data("a2"));
        // 2 is now LRU.
        assert_eq!(c.insert(page(3), data("c")), Some(page(2)));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = LruCache::new(2);
        c.insert(page(1), data("a"));
        assert!(c.invalidate(page(1)));
        assert!(!c.invalidate(page(1)));
        assert!(c.get(page(1)).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn capacity_one_cycles() {
        let mut c = LruCache::new(1);
        for i in 0..10 {
            let evicted = c.insert(page(i), data("x"));
            if i > 0 {
                assert_eq!(evicted, Some(page(i - 1)));
            }
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn clear_resets() {
        let mut c = LruCache::new(4);
        c.insert(page(1), data("a"));
        c.get(page(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 0);
        // Reusable after clear.
        c.insert(page(2), data("b"));
        assert!(c.get(page(2)).is_some());
    }

    #[test]
    fn heavy_churn_consistency() {
        let mut c = LruCache::new(8);
        for round in 0..1000u64 {
            c.insert(page(round % 20), Bytes::from(round.to_string()));
            if round % 3 == 0 {
                c.get(page(round % 20));
            }
            if round % 7 == 0 {
                c.invalidate(page((round + 3) % 20));
            }
            assert!(c.len() <= 8);
        }
    }
}
