//! Fixed-capacity LRU caches: raw page bytes ([`LruCache`]) and a
//! thread-safe decoded-node cache ([`NodeCache`]).
//!
//! The paper's experiments count every node access as a disk access (no
//! buffer pool), so the experiment harness leaves the caches out. They are
//! provided for library users who want realistic repeated-query
//! workloads: a warm [`NodeCache`] serves repeated node lookups without
//! re-reading *or re-decoding* the page.

use crate::{PageId, PageStore, StorageError};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Multiplicative hasher for [`PageId`] keys (Fibonacci hashing).
///
/// Page ids are small dense integers, so SipHash — the `HashMap` default,
/// built to resist adversarial keys — is pure overhead on the warm-cache
/// path: the keyed rounds cost ~20 ns per probe, a large slice of the
/// per-node traversal budget. One multiply by 2⁶⁴/φ spreads sequential
/// ids across the high bits (which hashbrown uses for its control bytes)
/// and is a single cycle. Not DoS-resistant; page ids come from the
/// allocator, not from untrusted input.
#[derive(Clone, Copy, Default)]
pub struct PageIdHasher(u64);

impl std::hash::Hasher for PageIdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.0 = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-1a); `PageId`'s `Hash` impl only calls
        // `write_u64`.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// [`std::hash::BuildHasher`] for [`PageIdHasher`].
#[derive(Clone, Copy, Default)]
pub struct PageIdHashBuilder;

impl std::hash::BuildHasher for PageIdHashBuilder {
    type Hasher = PageIdHasher;

    #[inline]
    fn build_hasher(&self) -> PageIdHasher {
        PageIdHasher(0)
    }
}

/// A fixed-capacity least-recently-used cache keyed by [`PageId`].
///
/// Uses an intrusive doubly-linked list over a slab, with a `HashMap` index
/// — O(1) `get` / `insert` / eviction. The value type defaults to raw page
/// [`Bytes`]; [`NodeCache`] instantiates it with decoded nodes. The index
/// hashes with [`PageIdHasher`] — on a warm traversal the probe itself is
/// the hot path, and the multiplicative hash cuts it to a few cycles.
pub struct LruCache<V = Bytes> {
    capacity: usize,
    map: HashMap<PageId, usize, PageIdHashBuilder>,
    entries: Vec<EntrySlot<V>>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
    hits: u64,
    misses: u64,
    // Byte-budget mode: evict on resident bytes instead of entry count,
    // so cache memory stays bounded regardless of entry size (`None`
    // weigher = classic entry-count mode, weights all zero).
    byte_budget: Option<usize>,
    weigher: Option<Box<dyn Fn(&V) -> usize + Send>>,
    resident_bytes: usize,
}

struct EntrySlot<V> {
    page: PageId,
    data: V,
    prev: usize,
    next: usize,
    weight: usize,
}

const NIL: usize = usize::MAX;

impl<V: Clone> LruCache<V> {
    /// Creates a cache holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            capacity,
            map: HashMap::with_capacity_and_hasher(capacity, PageIdHashBuilder),
            entries: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            hits: 0,
            misses: 0,
            byte_budget: None,
            weigher: None,
            resident_bytes: 0,
        }
    }

    /// Creates a byte-budgeted cache: entries are weighed by `weigher`
    /// at insertion, and the LRU tail is evicted until the *resident
    /// bytes* fit `budget` — the entry count is unbounded. The budget is
    /// a hard cap, never momentarily exceeded: a single entry heavier
    /// than the whole budget is not cached at all.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn with_byte_budget(budget: usize, weigher: impl Fn(&V) -> usize + Send + 'static) -> Self {
        assert!(budget > 0, "cache byte budget must be positive");
        Self {
            capacity: usize::MAX,
            map: HashMap::with_hasher(PageIdHashBuilder),
            entries: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            hits: 0,
            misses: 0,
            byte_budget: Some(budget),
            weigher: Some(Box::new(weigher)),
            resident_bytes: 0,
        }
    }

    /// Bytes currently resident, as reported by the weigher (always 0
    /// in entry-count mode).
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// The byte budget, if this cache evicts by bytes.
    pub fn byte_budget(&self) -> Option<usize> {
        self.byte_budget
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`; 0 when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up a page, marking it most-recently-used on a hit.
    pub fn get(&mut self, page: PageId) -> Option<V> {
        match self.map.get(&page).copied() {
            Some(idx) => {
                self.hits += 1;
                if self.head != idx {
                    self.unlink(idx);
                    self.push_front(idx);
                }
                Some(self.entries[idx].data.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Evicts the LRU tail slot, returning its page id.
    fn evict_tail(&mut self) -> PageId {
        let lru = self.tail;
        debug_assert_ne!(lru, NIL);
        let victim = self.entries[lru].page;
        self.unlink(lru);
        self.map.remove(&victim);
        self.free.push(lru);
        self.resident_bytes -= self.entries[lru].weight;
        victim
    }

    /// Inserts (or refreshes) a page, evicting LRU entries as needed —
    /// one at most in entry-count mode, any number in byte-budget mode.
    /// Returns the last evicted page id, if any.
    pub fn insert(&mut self, page: PageId, data: V) -> Option<PageId> {
        let weight = self.weigher.as_ref().map_or(0, |w| w(&data));
        if let Some(budget) = self.byte_budget {
            if weight > budget {
                // Heavier than the whole budget: never cached (and any
                // stale copy must go — the caller's data superseded it).
                self.invalidate(page);
                return None;
            }
        }
        let mut evicted = None;
        if let Some(&idx) = self.map.get(&page) {
            self.resident_bytes = self.resident_bytes - self.entries[idx].weight + weight;
            self.entries[idx].data = data;
            self.entries[idx].weight = weight;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            if let Some(budget) = self.byte_budget {
                // A heavier refresh can push the total over budget; the
                // refreshed entry itself sits at the head, so the loop
                // terminates within budget at the latest when only it
                // remains.
                while self.resident_bytes > budget {
                    evicted = Some(self.evict_tail());
                }
            }
            return evicted;
        }
        if self.map.len() == self.capacity {
            evicted = Some(self.evict_tail());
        }
        if let Some(budget) = self.byte_budget {
            while self.resident_bytes + weight > budget && self.tail != NIL {
                evicted = Some(self.evict_tail());
            }
        }
        let slot = EntrySlot {
            page,
            data,
            prev: NIL,
            next: NIL,
            weight,
        };
        let idx = if let Some(idx) = self.free.pop() {
            self.entries[idx] = slot;
            idx
        } else {
            self.entries.push(slot);
            self.entries.len() - 1
        };
        self.map.insert(page, idx);
        self.push_front(idx);
        self.resident_bytes += weight;
        evicted
    }

    /// Removes a page from the cache (e.g. on page free or update).
    pub fn invalidate(&mut self, page: PageId) -> bool {
        if let Some(idx) = self.map.remove(&page) {
            self.unlink(idx);
            self.free.push(idx);
            self.resident_bytes -= self.entries[idx].weight;
            true
        } else {
            false
        }
    }

    /// Drops all cached pages and resets statistics.
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.hits = 0;
        self.misses = 0;
        self.resident_bytes = 0;
    }
}

/// A point-in-time snapshot of a [`NodeCache`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the store.
    pub misses: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum number of entries (0 for byte-budgeted caches, whose
    /// entry count is unbounded).
    pub capacity: usize,
    /// Bytes currently resident (0 in entry-count mode).
    pub resident_bytes: usize,
    /// The byte budget (0 in entry-count mode).
    pub byte_budget: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe, capacity-bounded LRU cache of *decoded* nodes.
///
/// Sits between a [`PageStore`] and an access method: on a hit the store
/// is not touched at all (no page read, no decode); on a miss the caller's
/// decoder runs once and the result is cached. One `NodeCache` can be
/// shared by any number of concurrent readers — the interior lock is held
/// only for the O(1) map/list operations, never across storage I/O or
/// decoding.
///
/// Nodes are stored as [`Arc<T>`]: a hit hands out a shared reference at
/// the cost of one atomic increment, never a deep clone of the node, so
/// warm traversals are copy-free regardless of fan-out.
pub struct NodeCache<T> {
    inner: Mutex<LruCache<Arc<T>>>,
}

impl<T> NodeCache<T> {
    /// Creates a cache holding at most `capacity` decoded nodes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(LruCache::new(capacity)),
        }
    }

    /// Creates a byte-budgeted cache: `weigher` reports each node's
    /// resident size and the cache evicts by total bytes instead of
    /// entry count, so query memory stays `O(budget)` at any tree size.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn new_bytes(budget: usize, weigher: impl Fn(&T) -> usize + Send + 'static) -> Self {
        Self {
            inner: Mutex::new(LruCache::with_byte_budget(budget, move |node: &Arc<T>| {
                weigher(node)
            })),
        }
    }

    /// Looks up a node, marking it most-recently-used on a hit. A hit is
    /// an `Arc` pointer bump — O(1) in the node's size.
    pub fn get(&self, page: PageId) -> Option<Arc<T>> {
        self.inner.lock().get(page)
    }

    /// Inserts (or refreshes) a node, evicting the LRU entry if full.
    /// Accepts a plain `T` or an already-shared `Arc<T>`.
    pub fn insert(&self, page: PageId, node: impl Into<Arc<T>>) {
        self.inner.lock().insert(page, node.into());
    }

    /// Removes a node (call on page write or free so stale decodes are
    /// never served). Returns whether the page was cached.
    pub fn invalidate(&self, page: PageId) -> bool {
        self.inner.lock().invalidate(page)
    }

    /// Drops all cached nodes and resets the counters.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let c = self.inner.lock();
        CacheStats {
            hits: c.hits(),
            misses: c.misses(),
            len: c.len(),
            capacity: if c.byte_budget().is_some() {
                0
            } else {
                c.capacity
            },
            resident_bytes: c.resident_bytes(),
            byte_budget: c.byte_budget().unwrap_or(0),
        }
    }

    /// The shared decode seam: returns the cached node for `page`, or
    /// reads the page from `store`, decodes it with `decode`, caches and
    /// returns the result.
    ///
    /// Both trees route their `read_node` through this single function, so
    /// "fetch bytes, decode, cache" lives in exactly one place. The decoded
    /// node is wrapped in an [`Arc`] once; the cache and the caller share
    /// it without copying the node itself.
    pub fn read_through<E, F>(
        &self,
        store: &(impl PageStore + ?Sized),
        page: PageId,
        decode: F,
    ) -> std::result::Result<Arc<T>, E>
    where
        E: From<StorageError>,
        F: FnOnce(Bytes) -> std::result::Result<T, E>,
    {
        if let Some(node) = self.get(page) {
            return Ok(node);
        }
        let bytes = store.read(page).map_err(E::from)?;
        let node = Arc::new(decode(bytes)?);
        self.insert(page, Arc::clone(&node));
        Ok(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> PageId {
        PageId::from_raw(n)
    }

    fn data(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(2);
        assert!(c.get(page(1)).is_none());
        c.insert(page(1), data("a"));
        assert_eq!(c.get(page(1)).unwrap(), data("a"));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(page(1), data("a"));
        c.insert(page(2), data("b"));
        // Touch 1 so 2 becomes LRU.
        c.get(page(1));
        let evicted = c.insert(page(3), data("c"));
        assert_eq!(evicted, Some(page(2)));
        assert!(c.get(page(2)).is_none());
        assert!(c.get(page(1)).is_some());
        assert!(c.get(page(3)).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut c = LruCache::new(2);
        c.insert(page(1), data("a"));
        c.insert(page(2), data("b"));
        assert_eq!(c.insert(page(1), data("a2")), None);
        assert_eq!(c.get(page(1)).unwrap(), data("a2"));
        // 2 is now LRU.
        assert_eq!(c.insert(page(3), data("c")), Some(page(2)));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = LruCache::new(2);
        c.insert(page(1), data("a"));
        assert!(c.invalidate(page(1)));
        assert!(!c.invalidate(page(1)));
        assert!(c.get(page(1)).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn capacity_one_cycles() {
        let mut c = LruCache::new(1);
        for i in 0..10 {
            let evicted = c.insert(page(i), data("x"));
            if i > 0 {
                assert_eq!(evicted, Some(page(i - 1)));
            }
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn clear_resets() {
        let mut c = LruCache::new(4);
        c.insert(page(1), data("a"));
        c.get(page(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 0);
        // Reusable after clear.
        c.insert(page(2), data("b"));
        assert!(c.get(page(2)).is_some());
    }

    #[test]
    fn node_cache_hit_miss_stats() {
        let c: NodeCache<String> = NodeCache::new(2);
        assert!(c.get(page(1)).is_none());
        c.insert(page(1), "a".to_string());
        assert_eq!(*c.get(page(1)).unwrap(), "a");
        let st = c.stats();
        assert_eq!((st.hits, st.misses, st.len, st.capacity), (1, 1, 1, 2));
        assert_eq!(st.hit_rate(), 0.5);
        c.clear();
        assert_eq!(
            c.stats(),
            CacheStats {
                capacity: 2,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn node_cache_eviction_order() {
        let c: NodeCache<u32> = NodeCache::new(2);
        c.insert(page(1), 10);
        c.insert(page(2), 20);
        // Touch 1 so 2 becomes the LRU victim.
        c.get(page(1));
        c.insert(page(3), 30);
        assert!(c.get(page(2)).is_none());
        assert_eq!(c.get(page(1)).as_deref(), Some(&10));
        assert_eq!(c.get(page(3)).as_deref(), Some(&30));
    }

    #[test]
    fn node_cache_hits_share_one_allocation() {
        let c: NodeCache<Vec<u64>> = NodeCache::new(2);
        c.insert(page(1), vec![1, 2, 3]);
        let a = c.get(page(1)).unwrap();
        let b = c.get(page(1)).unwrap();
        // A hit is a pointer bump: both handles alias the cached node.
        assert!(Arc::ptr_eq(&a, &b));
        // Re-insertion replaces the shared node; old handles stay valid.
        c.insert(page(1), vec![9]);
        let fresh = c.get(page(1)).unwrap();
        assert!(!Arc::ptr_eq(&a, &fresh));
        assert_eq!(*a, vec![1, 2, 3]);
        assert_eq!(*fresh, vec![9]);
    }

    #[test]
    fn node_cache_capacity_one() {
        let c: NodeCache<u64> = NodeCache::new(1);
        for i in 0..10 {
            c.insert(page(i), i);
            assert_eq!(c.stats().len, 1);
            assert_eq!(c.get(page(i)).as_deref(), Some(&i));
            if i > 0 {
                assert!(c.get(page(i - 1)).is_none());
            }
        }
        assert!(c.invalidate(page(9)));
        assert_eq!(c.stats().len, 0);
    }

    #[test]
    fn read_through_decodes_once_per_resident_page() {
        use crate::{ArrayStore, DiskId};
        use std::sync::atomic::{AtomicU64, Ordering};

        let store = ArrayStore::new(2, 10, 1);
        let p = store.allocate(DiskId(0)).unwrap();
        store.write(p, Bytes::from_static(b"42")).unwrap();
        let cache: NodeCache<u64> = NodeCache::new(4);
        let decodes = AtomicU64::new(0);
        for _ in 0..5 {
            let v: std::result::Result<Arc<u64>, StorageError> =
                cache.read_through(&store, p, |bytes| {
                    decodes.fetch_add(1, Ordering::Relaxed);
                    Ok(std::str::from_utf8(&bytes).unwrap().parse().unwrap())
                });
            assert_eq!(*v.unwrap(), 42);
        }
        // One miss (read + decode), then pure hits: the store saw one read.
        assert_eq!(decodes.load(Ordering::Relaxed), 1);
        assert_eq!(store.stats().reads, 1);
        let st = cache.stats();
        assert_eq!((st.hits, st.misses), (4, 1));
        // Invalidation forces a fresh read + decode.
        cache.invalidate(p);
        let _ = cache
            .read_through::<StorageError, _>(&store, p, |_| {
                decodes.fetch_add(1, Ordering::Relaxed);
                Ok(0)
            })
            .unwrap();
        assert_eq!(decodes.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn read_through_propagates_storage_errors() {
        use crate::ArrayStore;
        let store = ArrayStore::new(2, 10, 1);
        let cache: NodeCache<u64> = NodeCache::new(4);
        let bogus = page(99);
        let err = cache
            .read_through::<StorageError, _>(&store, bogus, |_| Ok(1))
            .unwrap_err();
        assert_eq!(err, StorageError::PageNotFound(bogus));
        assert_eq!(cache.stats().len, 0);
    }

    #[test]
    fn byte_budget_is_a_hard_cap() {
        let mut c: LruCache<Bytes> = LruCache::with_byte_budget(64, |b: &Bytes| b.len());
        for i in 0..100u64 {
            let size = (i % 30 + 1) as usize;
            c.insert(page(i), Bytes::from(vec![0u8; size]));
            assert!(
                c.resident_bytes() <= 64,
                "budget exceeded after insert {i}: {}",
                c.resident_bytes()
            );
            assert!(c.len() >= 1);
        }
        // Touch patterns keep the invariant too.
        for i in 90..100u64 {
            c.get(page(i));
            assert!(c.resident_bytes() <= 64);
        }
    }

    #[test]
    fn byte_budget_evicts_lru_first() {
        let mut c: LruCache<Bytes> = LruCache::with_byte_budget(10, |b: &Bytes| b.len());
        c.insert(page(1), Bytes::from(vec![0u8; 4]));
        c.insert(page(2), Bytes::from(vec![0u8; 4]));
        // Touch 1 so 2 is the LRU victim when 8 more bytes arrive.
        c.get(page(1));
        let evicted = c.insert(page(3), Bytes::from(vec![0u8; 6]));
        assert_eq!(evicted, Some(page(2)));
        assert!(c.get(page(1)).is_some());
        assert!(c.get(page(3)).is_some());
        assert_eq!(c.resident_bytes(), 10);
    }

    #[test]
    fn byte_budget_rejects_oversized_entries() {
        let mut c: LruCache<Bytes> = LruCache::with_byte_budget(8, |b: &Bytes| b.len());
        c.insert(page(1), Bytes::from(vec![0u8; 8]));
        assert_eq!(c.len(), 1);
        // Whole-budget-sized entries fit exactly; larger ones never cache,
        // and a stale resident copy is dropped rather than served.
        c.insert(page(1), Bytes::from(vec![0u8; 9]));
        assert_eq!(c.len(), 0);
        assert_eq!(c.resident_bytes(), 0);
        c.insert(page(2), Bytes::from(vec![0u8; 100]));
        assert!(c.get(page(2)).is_none());
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn byte_budget_refresh_adjusts_weight() {
        let mut c: LruCache<Bytes> = LruCache::with_byte_budget(12, |b: &Bytes| b.len());
        c.insert(page(1), Bytes::from(vec![0u8; 4]));
        c.insert(page(2), Bytes::from(vec![0u8; 4]));
        c.insert(page(3), Bytes::from(vec![0u8; 4]));
        // Growing page 3 to 10 bytes must push out the two LRU entries.
        c.insert(page(3), Bytes::from(vec![0u8; 10]));
        assert_eq!(c.resident_bytes(), 10);
        assert_eq!(c.len(), 1);
        assert!(c.get(page(1)).is_none() && c.get(page(2)).is_none());
        assert_eq!(c.get(page(3)).unwrap().len(), 10);
        // Shrinking releases budget.
        c.insert(page(3), Bytes::from(vec![0u8; 2]));
        assert_eq!(c.resident_bytes(), 2);
        c.invalidate(page(3));
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn node_cache_byte_mode_stats() {
        let c: NodeCache<Vec<u64>> = NodeCache::new_bytes(64, |v: &Vec<u64>| v.len() * 8);
        c.insert(page(1), vec![0u64; 4]); // 32 bytes
        c.insert(page(2), vec![0u64; 4]); // 32 bytes
        let st = c.stats();
        assert_eq!(
            (st.len, st.capacity, st.resident_bytes, st.byte_budget),
            (2, 0, 64, 64)
        );
        // A third node evicts the LRU one to stay within budget.
        c.insert(page(3), vec![0u64; 4]);
        let st = c.stats();
        assert_eq!((st.len, st.resident_bytes), (2, 64));
        assert!(c.get(page(1)).is_none());
        c.clear();
        assert_eq!(c.stats().resident_bytes, 0);
        // Entry-count caches report zero byte fields.
        let plain: NodeCache<u64> = NodeCache::new(2);
        plain.insert(page(1), 7);
        let st = plain.stats();
        assert_eq!((st.capacity, st.resident_bytes, st.byte_budget), (2, 0, 0));
    }

    #[test]
    fn heavy_churn_consistency() {
        let mut c = LruCache::new(8);
        for round in 0..1000u64 {
            c.insert(page(round % 20), Bytes::from(round.to_string()));
            if round % 3 == 0 {
                c.get(page(round % 20));
            }
            if round % 7 == 0 {
                c.invalidate(page((round + 3) % 20));
            }
            assert!(c.len() <= 8);
        }
    }
}
