//! Batched I/O submission backends.
//!
//! The execution engines in `sqda-core` fetch index nodes a *batch* at a
//! time: one k-NN activation round produces a set of pages whose reads
//! should proceed in parallel across the disks of the array (the paper's
//! intra-query parallelism). [`IoBackend`] is the seam between that
//! batching logic and how the reads actually happen:
//!
//! * [`InlineBackend`] serves each read synchronously from any
//!   [`PageStore`] — the in-RAM [`ArrayStore`](crate::ArrayStore) path,
//!   where "parallelism" is purely the simulator's affair;
//! * [`ThreadedFileBackend`] drives a [`FileStore`] with one worker
//!   thread per disk, so a whole-batch submission becomes genuinely
//!   concurrent positional reads against the per-disk files.
//!
//! Completions are delivered over a channel, unordered; each carries its
//! page id, physical placement, and wall-clock queue/service timings so
//! the real-clock engine can emit the same observability events as the
//! simulator.

use crate::{Bytes, FileStore, PageId, PageStore, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

/// One finished page read.
pub struct ReadCompletion {
    /// The page that was read.
    pub page: PageId,
    /// Disk the page lives on.
    pub disk: u32,
    /// Cylinder the page lives on.
    pub cylinder: u32,
    /// The page bytes, or the storage error that stopped the read.
    pub result: Result<Bytes>,
    /// Wall-clock nanoseconds the request waited before its disk's
    /// worker picked it up (always 0 for inline backends).
    pub queue_ns: u64,
    /// Wall-clock nanoseconds the read itself took.
    pub service_ns: u64,
    /// Requests already waiting or in service at this disk when the
    /// read was submitted, this request excluded (always 0 for inline
    /// backends — there is no queue to wait in).
    pub queue_depth: u32,
}

/// Observer of individual disk reads, called from whichever thread
/// serviced the read the moment it finishes.
///
/// This is the seam the live telemetry plane (in `sqda-obs`, which
/// *depends on* this crate) hooks into: the backend stays free of any
/// metrics vocabulary, the observer stays free of I/O. Implementations
/// must be cheap and lock-free — the call sits on the disk workers'
/// service path.
pub trait ReadObserver: Send + Sync {
    /// One read finished on `disk`: it waited `queue_ns` behind
    /// `queue_depth` earlier requests, then took `service_ns` to read.
    fn on_disk_read(&self, disk: u32, queue_ns: u64, service_ns: u64, queue_depth: u32);
}

/// Batched multi-page read submission with asynchronous completion
/// delivery.
///
/// `submit_batch` hands the whole activation round to the backend at
/// once and returns a receiver yielding exactly one [`ReadCompletion`]
/// per submitted page, in whatever order the reads finish.
pub trait IoBackend: Send + Sync {
    /// Submits `pages` for reading; completions arrive on the returned
    /// channel, one per page, unordered.
    fn submit_batch(&self, pages: &[PageId]) -> Receiver<ReadCompletion>;

    /// Short backend name for reports and logs.
    fn name(&self) -> &'static str;

    /// Number of disks in the underlying array.
    fn num_disks(&self) -> u32;
}

fn placement_of<S: PageStore + ?Sized>(store: &S, page: PageId) -> (u32, u32) {
    match store.placement(page) {
        Ok(p) => (p.disk.0, p.cylinder),
        // The read below will surface the real error; placement is only
        // observability metadata here.
        Err(_) => (0, 0),
    }
}

/// Synchronous backend over any [`PageStore`]: reads happen inline on
/// the submitting thread, one after another. This is the `ArrayStore`
/// path — contents live in RAM and concurrency would buy nothing — but
/// it works over any store, including `FileStore`, as a baseline.
pub struct InlineBackend<S: PageStore + ?Sized> {
    store: Arc<S>,
    observer: Option<Arc<dyn ReadObserver>>,
}

impl<S: PageStore + ?Sized> InlineBackend<S> {
    /// Wraps `store` in an inline (synchronous) backend.
    pub fn new(store: Arc<S>) -> Self {
        Self {
            store,
            observer: None,
        }
    }

    /// Wraps `store` with a read observer notified after every read.
    pub fn with_observer(store: Arc<S>, observer: Arc<dyn ReadObserver>) -> Self {
        Self {
            store,
            observer: Some(observer),
        }
    }
}

impl<S: PageStore + ?Sized + Send + Sync> IoBackend for InlineBackend<S> {
    fn submit_batch(&self, pages: &[PageId]) -> Receiver<ReadCompletion> {
        let (tx, rx) = std::sync::mpsc::channel();
        for &page in pages {
            let (disk, cylinder) = placement_of(self.store.as_ref(), page);
            let start = Instant::now();
            let result = self.store.read(page);
            let service_ns = start.elapsed().as_nanos() as u64;
            if let Some(obs) = &self.observer {
                obs.on_disk_read(disk, 0, service_ns, 0);
            }
            // The receiver outlives us by construction; a dropped
            // receiver just discards the completion.
            let _ = tx.send(ReadCompletion {
                page,
                disk,
                cylinder,
                result,
                queue_ns: 0,
                service_ns,
                queue_depth: 0,
            });
        }
        rx
    }

    fn name(&self) -> &'static str {
        "inline"
    }

    fn num_disks(&self) -> u32 {
        self.store.num_disks()
    }
}

struct ReadRequest {
    page: PageId,
    cylinder: u32,
    submitted: Instant,
    /// Requests already queued or in service at this disk when this one
    /// was submitted (this request excluded).
    queue_depth: u32,
    reply: Sender<ReadCompletion>,
}

/// Real-file backend: one worker thread per disk, each servicing its
/// disk's queue with positional reads, so a whole-batch submission
/// becomes parallel reads across the array.
pub struct ThreadedFileBackend {
    store: Arc<FileStore>,
    /// Per-disk request queues; dropping these shuts the workers down.
    queues: Vec<Sender<ReadRequest>>,
    /// Per-disk outstanding-request counts (queued + in service),
    /// incremented at submission and decremented by the worker when the
    /// read finishes — the real-path analogue of the simulator's FCFS
    /// queue-depth accounting.
    depths: Arc<Vec<AtomicU64>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadedFileBackend {
    /// Spawns one worker per disk of `store`.
    pub fn new(store: Arc<FileStore>) -> Self {
        Self::build(store, None)
    }

    /// Spawns one worker per disk, with a read observer notified from
    /// each worker thread as its reads finish.
    pub fn with_observer(store: Arc<FileStore>, observer: Arc<dyn ReadObserver>) -> Self {
        Self::build(store, Some(observer))
    }

    fn build(store: Arc<FileStore>, observer: Option<Arc<dyn ReadObserver>>) -> Self {
        let num_disks = store.num_disks();
        let depths: Arc<Vec<AtomicU64>> =
            Arc::new((0..num_disks).map(|_| AtomicU64::new(0)).collect());
        let mut queues = Vec::with_capacity(num_disks as usize);
        let mut workers = Vec::with_capacity(num_disks as usize);
        for disk in 0..num_disks {
            let (tx, rx) = std::sync::mpsc::channel::<ReadRequest>();
            queues.push(tx);
            let store = Arc::clone(&store);
            let depths = Arc::clone(&depths);
            let observer = observer.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sqda-disk{disk}"))
                    .spawn(move || {
                        while let Ok(req) = rx.recv() {
                            let start = Instant::now();
                            let result = store.read(req.page);
                            let done = Instant::now();
                            depths[disk as usize].fetch_sub(1, Ordering::Relaxed);
                            let queue_ns = (start - req.submitted).as_nanos() as u64;
                            let service_ns = (done - start).as_nanos() as u64;
                            if let Some(obs) = &observer {
                                obs.on_disk_read(disk, queue_ns, service_ns, req.queue_depth);
                            }
                            let _ = req.reply.send(ReadCompletion {
                                page: req.page,
                                disk,
                                cylinder: req.cylinder,
                                result,
                                queue_ns,
                                service_ns,
                                queue_depth: req.queue_depth,
                            });
                        }
                    })
                    .expect("spawn disk worker"),
            );
        }
        Self {
            store,
            queues,
            depths,
            workers,
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<FileStore> {
        &self.store
    }

    /// Requests currently queued or in service at `disk`.
    pub fn queue_depth(&self, disk: u32) -> u64 {
        self.depths
            .get(disk as usize)
            .map_or(0, |d| d.load(Ordering::Relaxed))
    }
}

impl IoBackend for ThreadedFileBackend {
    fn submit_batch(&self, pages: &[PageId]) -> Receiver<ReadCompletion> {
        let (tx, rx) = std::sync::mpsc::channel();
        for &page in pages {
            match self.store.placement(page) {
                Ok(p) => {
                    let queue_depth =
                        self.depths[p.disk.index()].fetch_add(1, Ordering::Relaxed) as u32;
                    let req = ReadRequest {
                        page,
                        cylinder: p.cylinder,
                        submitted: Instant::now(),
                        queue_depth,
                        reply: tx.clone(),
                    };
                    self.queues[p.disk.index()]
                        .send(req)
                        .expect("disk worker alive while backend alive");
                }
                // Unknown page: complete immediately with the error so
                // the batch still yields one completion per page.
                Err(e) => {
                    let _ = tx.send(ReadCompletion {
                        page,
                        disk: 0,
                        cylinder: 0,
                        result: Err(e),
                        queue_ns: 0,
                        service_ns: 0,
                        queue_depth: 0,
                    });
                }
            }
        }
        rx
    }

    fn name(&self) -> &'static str {
        "threaded-file"
    }

    fn num_disks(&self) -> u32 {
        self.store.num_disks()
    }
}

impl Drop for ThreadedFileBackend {
    fn drop(&mut self) {
        self.queues.clear(); // close the channels so workers exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrayStore, DiskId};
    use std::path::PathBuf;

    fn collect(rx: Receiver<ReadCompletion>, n: usize) -> Vec<ReadCompletion> {
        let out: Vec<_> = rx.into_iter().collect();
        assert_eq!(out.len(), n, "one completion per submitted page");
        out
    }

    #[test]
    fn inline_backend_reads_every_page() {
        let store = Arc::new(ArrayStore::new(4, 100, 1));
        let mut pages = Vec::new();
        for i in 0..16u64 {
            let p = store.allocate(DiskId((i % 4) as u32)).unwrap();
            store.write(p, Bytes::from(vec![i as u8; 10])).unwrap();
            pages.push(p);
        }
        let backend = InlineBackend::new(Arc::clone(&store));
        assert_eq!(backend.num_disks(), 4);
        let out = collect(backend.submit_batch(&pages), pages.len());
        for c in &out {
            let expect = store.read(c.page).unwrap();
            assert_eq!(c.result.as_ref().unwrap(), &expect);
            assert_eq!(c.queue_ns, 0);
            assert_eq!(c.disk, store.placement(c.page).unwrap().disk.0);
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqda-backend-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn threaded_backend_parallel_batch() {
        let dir = tmpdir("batch");
        let store = Arc::new(FileStore::create(&dir, 4, 100, 256, 2).unwrap());
        let mut pages = Vec::new();
        let mut expected = Vec::new();
        for i in 0..32u64 {
            let p = store.allocate(DiskId((i % 4) as u32)).unwrap();
            let payload = Bytes::from(vec![i as u8; (i as usize % 100) + 1]);
            store.write(p, payload.clone()).unwrap();
            pages.push(p);
            expected.push((p, payload));
        }
        store.reset_stats();
        let backend = ThreadedFileBackend::new(Arc::clone(&store));
        let out = collect(backend.submit_batch(&pages), pages.len());
        for c in &out {
            let (_, want) = expected.iter().find(|(p, _)| *p == c.page).unwrap();
            assert_eq!(c.result.as_ref().unwrap(), want);
        }
        let stats = store.stats();
        assert_eq!(stats.reads, 32);
        assert_eq!(stats.reads_per_disk, vec![8, 8, 8, 8]);
        drop(backend); // workers join cleanly
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threaded_backend_reports_missing_page() {
        let dir = tmpdir("missing");
        let store = Arc::new(FileStore::create(&dir, 2, 10, 64, 3).unwrap());
        let backend = ThreadedFileBackend::new(Arc::clone(&store));
        let out = collect(backend.submit_batch(&[PageId::from_raw(99)]), 1);
        assert!(out[0].result.is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[derive(Default)]
    struct CountingObserver {
        reads: AtomicU64,
        service_ns: AtomicU64,
        max_depth: AtomicU64,
    }

    impl ReadObserver for CountingObserver {
        fn on_disk_read(&self, _disk: u32, _queue_ns: u64, service_ns: u64, queue_depth: u32) {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.service_ns.fetch_add(service_ns, Ordering::Relaxed);
            self.max_depth
                .fetch_max(queue_depth as u64, Ordering::Relaxed);
        }
    }

    #[test]
    fn threaded_backend_notifies_observer_and_tracks_depth() {
        let dir = tmpdir("observer");
        let store = Arc::new(FileStore::create(&dir, 2, 100, 256, 7).unwrap());
        let mut pages = Vec::new();
        for i in 0..24u64 {
            let p = store.allocate(DiskId((i % 2) as u32)).unwrap();
            store.write(p, Bytes::from(vec![i as u8; 32])).unwrap();
            pages.push(p);
        }
        let obs = Arc::new(CountingObserver::default());
        let backend =
            ThreadedFileBackend::with_observer(Arc::clone(&store), Arc::<CountingObserver>::clone(&obs));
        let out = collect(backend.submit_batch(&pages), pages.len());
        assert!(out.iter().all(|c| c.result.is_ok()));
        assert_eq!(obs.reads.load(Ordering::Relaxed), 24);
        // 12 requests per disk submitted in one burst: some request must
        // have seen a non-empty queue.
        assert!(obs.max_depth.load(Ordering::Relaxed) > 0);
        // All submissions drained: outstanding counts return to zero.
        assert_eq!(backend.queue_depth(0), 0);
        assert_eq!(backend.queue_depth(1), 0);
        assert_eq!(backend.queue_depth(99), 0);
        drop(backend);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inline_backend_notifies_observer() {
        let store = Arc::new(ArrayStore::new(2, 50, 1));
        let p = store.allocate(DiskId(1)).unwrap();
        store.write(p, Bytes::from(vec![1u8; 8])).unwrap();
        let obs = Arc::new(CountingObserver::default());
        let backend = InlineBackend::with_observer(
            Arc::clone(&store) as Arc<ArrayStore>,
            Arc::<CountingObserver>::clone(&obs),
        );
        let out = collect(backend.submit_batch(&[p]), 1);
        assert!(out[0].result.is_ok());
        assert_eq!(out[0].queue_depth, 0);
        assert_eq!(obs.reads.load(Ordering::Relaxed), 1);
        assert_eq!(obs.max_depth.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn threaded_backend_concurrent_submitters() {
        let dir = tmpdir("many");
        let store = Arc::new(FileStore::create(&dir, 4, 100, 128, 4).unwrap());
        let mut pages = Vec::new();
        for i in 0..8u64 {
            let p = store.allocate(DiskId((i % 4) as u32)).unwrap();
            store.write(p, Bytes::from(vec![i as u8; 16])).unwrap();
            pages.push(p);
        }
        let backend = Arc::new(ThreadedFileBackend::new(Arc::clone(&store)));
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let backend = Arc::clone(&backend);
                let pages = &pages;
                scope.spawn(move || {
                    for _ in 0..20 {
                        let out: Vec<_> = backend.submit_batch(pages).into_iter().collect();
                        assert_eq!(out.len(), pages.len());
                        assert!(out.iter().all(|c| c.result.is_ok()));
                    }
                });
            }
        });
        std::fs::remove_dir_all(&dir).ok();
    }
}
