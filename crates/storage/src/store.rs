//! The `PageStore` trait and the in-memory RAID-0 array store.

use crate::{DiskId, PageId, Placement, Result, StorageError, DEFAULT_PAGE_SIZE};
use bytes::Bytes;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Cumulative I/O counters for a store.
///
/// The logical executor of the similarity-search algorithms uses these to
/// report the *number of visited nodes* (Figures 8–9 of the paper); the
/// per-disk breakdown exposes how well a declustering heuristic balances
/// load across the array. When a decoded-node cache fronts the store,
/// `cache_hits`/`cache_misses` record how many node lookups it absorbed
/// (zero for a bare store).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Total page reads.
    pub reads: u64,
    /// Total page writes.
    pub writes: u64,
    /// Reads broken down by disk.
    pub reads_per_disk: Vec<u64>,
    /// Writes broken down by disk.
    pub writes_per_disk: Vec<u64>,
    /// Node lookups served from a decoded-node cache without touching
    /// the store.
    pub cache_hits: u64,
    /// Node lookups that fell through the cache to the store.
    pub cache_misses: u64,
    /// Reads issued by tree profiling (`TreeProfile::measure`), counted
    /// separately so query experiments can subtract introspection I/O.
    pub profile_reads: u64,
    /// Bytes currently resident in the decoded-node cache (zero for a
    /// bare store or an entry-capped cache).
    pub cache_resident_bytes: u64,
    /// Byte budget of the decoded-node cache (zero for a bare store or
    /// an entry-capped cache).
    pub cache_byte_budget: u64,
}

impl IoStats {
    fn new(num_disks: u32) -> Self {
        Self {
            reads: 0,
            writes: 0,
            reads_per_disk: vec![0; num_disks as usize],
            writes_per_disk: vec![0; num_disks as usize],
            cache_hits: 0,
            cache_misses: 0,
            profile_reads: 0,
            cache_resident_bytes: 0,
            cache_byte_budget: 0,
        }
    }

    /// The coefficient of variation of per-disk read counts: 0 for a
    /// perfectly balanced array, larger when reads skew to few disks.
    pub fn read_imbalance(&self) -> f64 {
        let n = self.reads_per_disk.len();
        if n == 0 || self.reads == 0 {
            return 0.0;
        }
        let mean = self.reads as f64 / n as f64;
        let var = self
            .reads_per_disk
            .iter()
            .map(|&r| {
                let d = r as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }
}

/// Abstract paged storage with explicit disk placement.
///
/// The access method (the parallel R\*-tree) decides *which disk* each new
/// page goes to — that is the declustering heuristic — while the store
/// assigns the cylinder uniformly at random, mirroring the paper's setup.
/// All methods take `&self`; implementations use interior mutability so a
/// store can be shared by concurrent read-only queries.
pub trait PageStore: Send + Sync {
    /// Number of disks in the array.
    fn num_disks(&self) -> u32;

    /// Number of cylinders per disk (for the seek model).
    fn num_cylinders(&self) -> u32;

    /// Page size in bytes.
    fn page_size(&self) -> usize;

    /// Allocates a fresh page on the given disk. The cylinder is chosen by
    /// the store.
    fn allocate(&self, disk: DiskId) -> Result<PageId>;

    /// Writes the full contents of a page.
    fn write(&self, page: PageId, data: Bytes) -> Result<()>;

    /// Reads the contents of a page.
    fn read(&self, page: PageId) -> Result<Bytes>;

    /// Releases a page.
    fn free(&self, page: PageId) -> Result<()>;

    /// The physical placement of a page.
    fn placement(&self, page: PageId) -> Result<Placement>;

    /// Snapshot of the I/O counters.
    fn stats(&self) -> IoStats;

    /// Resets the I/O counters (e.g. after the build phase, so that query
    /// experiments measure only query I/O).
    fn reset_stats(&self);

    /// Number of allocated pages per disk. Declustering heuristics that
    /// balance page counts consult this; the default (all zeros) degrades
    /// them to their geometric criteria.
    fn pages_per_disk(&self) -> Vec<usize> {
        vec![0; self.num_disks() as usize]
    }
}

struct Slot {
    data: Option<Bytes>,
    placement: Placement,
}

struct Inner {
    slots: Vec<Option<Slot>>,
    free_list: Vec<u64>,
    rng: StdRng,
}

/// Lock-free I/O counters, kept outside the slot table's `RwLock` so the
/// hot read path never needs exclusive access just to do bookkeeping.
/// Relaxed ordering suffices: the counters are monotonic tallies with no
/// ordering relationship to the data they count. Shared with
/// [`crate::FileStore`], whose positional read path has the same
/// no-exclusive-access requirement.
pub(crate) struct Counters {
    pub(crate) reads: AtomicU64,
    pub(crate) writes: AtomicU64,
    reads_per_disk: Vec<AtomicU64>,
    writes_per_disk: Vec<AtomicU64>,
}

impl Counters {
    pub(crate) fn new(num_disks: u32) -> Self {
        Self {
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            reads_per_disk: (0..num_disks).map(|_| AtomicU64::new(0)).collect(),
            writes_per_disk: (0..num_disks).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub(crate) fn tally_read(&self, disk: usize) {
        self.reads.fetch_add(1, Relaxed);
        self.reads_per_disk[disk].fetch_add(1, Relaxed);
    }

    pub(crate) fn tally_write(&self, disk: usize) {
        self.writes.fetch_add(1, Relaxed);
        self.writes_per_disk[disk].fetch_add(1, Relaxed);
    }

    pub(crate) fn snapshot(&self, num_disks: u32) -> IoStats {
        let mut stats = IoStats::new(num_disks);
        stats.reads = self.reads.load(Relaxed);
        stats.writes = self.writes.load(Relaxed);
        for (out, c) in stats.reads_per_disk.iter_mut().zip(&self.reads_per_disk) {
            *out = c.load(Relaxed);
        }
        for (out, c) in stats.writes_per_disk.iter_mut().zip(&self.writes_per_disk) {
            *out = c.load(Relaxed);
        }
        stats
    }

    pub(crate) fn reset(&self) {
        self.reads.store(0, Relaxed);
        self.writes.store(0, Relaxed);
        for c in &self.reads_per_disk {
            c.store(0, Relaxed);
        }
        for c in &self.writes_per_disk {
            c.store(0, Relaxed);
        }
    }
}

/// An in-memory RAID level-0 page store.
///
/// Contents live in RAM: this store answers *what* is on each page, while
/// `sqda-simkernel` models *how long* the access would take on the modelled
/// hardware. Reads and writes are counted per disk with atomic counters,
/// so concurrent readers only ever take the shared lock.
pub struct ArrayStore {
    num_disks: u32,
    num_cylinders: u32,
    page_size: usize,
    inner: RwLock<Inner>,
    counters: Counters,
}

impl ArrayStore {
    /// Creates a store backed by `num_disks` disks of `num_cylinders`
    /// cylinders each, with the default page size. The seed drives the
    /// random cylinder assignment.
    pub fn new(num_disks: u32, num_cylinders: u32, seed: u64) -> Self {
        Self::with_page_size(num_disks, num_cylinders, DEFAULT_PAGE_SIZE, seed)
    }

    /// Creates a store with an explicit page size.
    ///
    /// # Panics
    ///
    /// Panics if `num_disks`, `num_cylinders` or `page_size` is zero.
    pub fn with_page_size(num_disks: u32, num_cylinders: u32, page_size: usize, seed: u64) -> Self {
        assert!(num_disks > 0, "array needs at least one disk");
        assert!(num_cylinders > 0, "disks need at least one cylinder");
        assert!(page_size > 0, "page size must be positive");
        Self {
            num_disks,
            num_cylinders,
            page_size,
            inner: RwLock::new(Inner {
                slots: Vec::new(),
                free_list: Vec::new(),
                rng: StdRng::seed_from_u64(seed),
            }),
            counters: Counters::new(num_disks),
        }
    }

    /// Number of currently allocated pages.
    pub fn allocated_pages(&self) -> usize {
        let inner = self.inner.read();
        inner.slots.iter().filter(|s| s.is_some()).count()
    }
}

impl PageStore for ArrayStore {
    fn num_disks(&self) -> u32 {
        self.num_disks
    }

    fn num_cylinders(&self) -> u32 {
        self.num_cylinders
    }

    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&self, disk: DiskId) -> Result<PageId> {
        if disk.0 >= self.num_disks {
            return Err(StorageError::NoSuchDisk {
                disk: disk.0,
                num_disks: self.num_disks,
            });
        }
        let mut inner = self.inner.write();
        let cylinder = inner.rng.gen_range(0..self.num_cylinders);
        let placement = Placement::new(disk, cylinder);
        let slot = Slot {
            data: None,
            placement,
        };
        let raw = if let Some(raw) = inner.free_list.pop() {
            inner.slots[raw as usize] = Some(slot);
            raw
        } else {
            inner.slots.push(Some(slot));
            (inner.slots.len() - 1) as u64
        };
        Ok(PageId::from_raw(raw))
    }

    fn write(&self, page: PageId, data: Bytes) -> Result<()> {
        if data.len() > self.page_size {
            return Err(StorageError::PageTooLarge {
                page,
                len: data.len(),
                page_size: self.page_size,
            });
        }
        let mut inner = self.inner.write();
        let slot = inner
            .slots
            .get_mut(page.as_raw() as usize)
            .and_then(|s| s.as_mut())
            .ok_or(StorageError::PageNotFound(page))?;
        slot.data = Some(data);
        let disk = slot.placement.disk.index();
        self.counters.writes.fetch_add(1, Relaxed);
        self.counters.writes_per_disk[disk].fetch_add(1, Relaxed);
        Ok(())
    }

    fn read(&self, page: PageId) -> Result<Bytes> {
        // Read lock only: the slot table is not mutated, and the I/O
        // tally lives in atomics — concurrent readers never serialize.
        let inner = self.inner.read();
        let slot = inner
            .slots
            .get(page.as_raw() as usize)
            .and_then(|s| s.as_ref())
            .ok_or(StorageError::PageNotFound(page))?;
        let data = slot
            .data
            .clone()
            .ok_or(StorageError::UninitializedPage(page))?;
        let disk = slot.placement.disk.index();
        self.counters.reads.fetch_add(1, Relaxed);
        self.counters.reads_per_disk[disk].fetch_add(1, Relaxed);
        Ok(data)
    }

    fn free(&self, page: PageId) -> Result<()> {
        let mut inner = self.inner.write();
        let slot = inner
            .slots
            .get_mut(page.as_raw() as usize)
            .ok_or(StorageError::PageNotFound(page))?;
        if slot.is_none() {
            return Err(StorageError::PageNotFound(page));
        }
        *slot = None;
        inner.free_list.push(page.as_raw());
        Ok(())
    }

    fn placement(&self, page: PageId) -> Result<Placement> {
        let inner = self.inner.read();
        inner
            .slots
            .get(page.as_raw() as usize)
            .and_then(|s| s.as_ref())
            .map(|s| s.placement)
            .ok_or(StorageError::PageNotFound(page))
    }

    fn stats(&self) -> IoStats {
        self.counters.snapshot(self.num_disks)
    }

    fn reset_stats(&self) {
        self.counters.reset();
    }

    fn pages_per_disk(&self) -> Vec<usize> {
        let inner = self.inner.read();
        let mut counts = vec![0usize; self.num_disks as usize];
        for slot in inner.slots.iter().flatten() {
            counts[slot.placement.disk.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ArrayStore {
        ArrayStore::new(4, 100, 7)
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let s = store();
        let p = s.allocate(DiskId(2)).unwrap();
        s.write(p, Bytes::from_static(b"hello")).unwrap();
        assert_eq!(s.read(p).unwrap(), Bytes::from_static(b"hello"));
        let pl = s.placement(p).unwrap();
        assert_eq!(pl.disk, DiskId(2));
        assert!(pl.cylinder < 100);
    }

    #[test]
    fn read_unwritten_page_fails() {
        let s = store();
        let p = s.allocate(DiskId(0)).unwrap();
        assert_eq!(s.read(p), Err(StorageError::UninitializedPage(p)));
    }

    #[test]
    fn read_unknown_page_fails() {
        let s = store();
        let bogus = PageId::from_raw(999);
        assert_eq!(s.read(bogus), Err(StorageError::PageNotFound(bogus)));
    }

    #[test]
    fn allocate_on_missing_disk_fails() {
        let s = store();
        assert_eq!(
            s.allocate(DiskId(4)),
            Err(StorageError::NoSuchDisk {
                disk: 4,
                num_disks: 4
            })
        );
    }

    #[test]
    fn oversized_write_fails() {
        let s = ArrayStore::with_page_size(1, 10, 8, 0);
        let p = s.allocate(DiskId(0)).unwrap();
        let err = s.write(p, Bytes::from(vec![0u8; 9])).unwrap_err();
        assert!(matches!(err, StorageError::PageTooLarge { len: 9, .. }));
        // Exactly page-size writes are fine.
        s.write(p, Bytes::from(vec![0u8; 8])).unwrap();
    }

    #[test]
    fn free_and_reuse() {
        let s = store();
        let p1 = s.allocate(DiskId(0)).unwrap();
        s.write(p1, Bytes::from_static(b"x")).unwrap();
        s.free(p1).unwrap();
        assert_eq!(s.read(p1), Err(StorageError::PageNotFound(p1)));
        // Freed slot is recycled.
        let p2 = s.allocate(DiskId(1)).unwrap();
        assert_eq!(p2, p1);
        assert_eq!(s.placement(p2).unwrap().disk, DiskId(1));
        // Double free fails.
        let p3 = s.allocate(DiskId(0)).unwrap();
        s.free(p3).unwrap();
        assert_eq!(s.free(p3), Err(StorageError::PageNotFound(p3)));
    }

    #[test]
    fn stats_count_per_disk() {
        let s = store();
        let a = s.allocate(DiskId(0)).unwrap();
        let b = s.allocate(DiskId(3)).unwrap();
        s.write(a, Bytes::from_static(b"a")).unwrap();
        s.write(b, Bytes::from_static(b"b")).unwrap();
        s.read(a).unwrap();
        s.read(a).unwrap();
        s.read(b).unwrap();
        let st = s.stats();
        assert_eq!(st.reads, 3);
        assert_eq!(st.writes, 2);
        assert_eq!(st.reads_per_disk, vec![2, 0, 0, 1]);
        assert_eq!(st.writes_per_disk, vec![1, 0, 0, 1]);
        s.reset_stats();
        assert_eq!(s.stats().reads, 0);
    }

    #[test]
    fn imbalance_metric() {
        let balanced = IoStats {
            reads: 8,
            reads_per_disk: vec![2, 2, 2, 2],
            writes_per_disk: vec![0; 4],
            ..IoStats::default()
        };
        assert_eq!(balanced.read_imbalance(), 0.0);
        let skewed = IoStats {
            reads: 8,
            reads_per_disk: vec![8, 0, 0, 0],
            writes_per_disk: vec![0; 4],
            ..IoStats::default()
        };
        assert!(skewed.read_imbalance() > 1.0);
    }

    #[test]
    fn concurrent_readers_see_consistent_stats() {
        // Many threads hammer the read path at once; the atomic counters
        // must account for every read, and the per-disk breakdown must
        // sum to the total.
        let s = store();
        let mut pages = Vec::new();
        for i in 0..16u32 {
            let p = s.allocate(DiskId(i % 4)).unwrap();
            s.write(p, Bytes::from(vec![i as u8; 4])).unwrap();
            pages.push(p);
        }
        s.reset_stats();
        const THREADS: usize = 8;
        const READS_PER_THREAD: usize = 500;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let s = &s;
                let pages = &pages;
                scope.spawn(move || {
                    for i in 0..READS_PER_THREAD {
                        let p = pages[(t + i) % pages.len()];
                        s.read(p).unwrap();
                    }
                });
            }
        });
        let st = s.stats();
        assert_eq!(st.reads, (THREADS * READS_PER_THREAD) as u64);
        assert_eq!(st.reads_per_disk.iter().sum::<u64>(), st.reads);
        assert_eq!(st.writes, 0);
        assert_eq!(st.cache_hits, 0);
    }

    #[test]
    fn pages_per_disk_tracking() {
        let s = store();
        s.allocate(DiskId(1)).unwrap();
        s.allocate(DiskId(1)).unwrap();
        s.allocate(DiskId(2)).unwrap();
        assert_eq!(s.pages_per_disk(), vec![0, 2, 1, 0]);
        assert_eq!(s.allocated_pages(), 3);
    }

    #[test]
    fn cylinder_assignment_is_spread() {
        let s = ArrayStore::new(1, 1000, 42);
        let mut cyls = std::collections::HashSet::new();
        for _ in 0..100 {
            let p = s.allocate(DiskId(0)).unwrap();
            cyls.insert(s.placement(p).unwrap().cylinder);
        }
        // Uniform assignment over 1000 cylinders: expect many distinct.
        assert!(cyls.len() > 80, "got {} distinct cylinders", cyls.len());
    }
}
