//! Paged storage layer for a declustered access method on a disk array.
//!
//! The SIGMOD'98 system distributes the pages (nodes) of an R\*-tree over
//! the disks of a RAID level-0 array, with the striping unit equal to one
//! disk block (= one tree node = one page). This crate provides:
//!
//! * [`PageId`] — stable page identifiers,
//! * [`Placement`] — which disk a page lives on and at which cylinder
//!   (the cylinder drives the seek-time model of the simulator),
//! * the [`PageStore`] trait — allocate / read / write / free pages with
//!   explicit disk placement, plus per-disk I/O accounting,
//! * [`ArrayStore`] — the in-memory RAID-0 store used by the simulation
//!   (contents are held in RAM; *timing* is provided by `sqda-simkernel`),
//! * [`LruCache`] — an optional fixed-capacity page cache,
//! * [`NodeCache`] — a thread-safe LRU over *decoded* nodes that the
//!   access methods can share for repeated-query workloads.
//!
//! Separating *what is stored where* (this crate) from *how long an access
//! takes* (the simulator) lets the similarity-search algorithms run either
//! logically (counting node accesses, Figures 8–9 of the paper) or under
//! the full event-driven timing model (Figures 10–12, Tables 3–4).

mod backend;
mod cache;
mod error;
mod filestore;
mod page;
mod placement;
mod store;

pub use backend::{InlineBackend, IoBackend, ReadCompletion, ReadObserver, ThreadedFileBackend};
pub use cache::{CacheStats, LruCache, NodeCache};
pub use error::{Result, StorageError};
pub use filestore::FileStore;
pub use page::{PageId, DEFAULT_PAGE_SIZE};
pub use placement::{DiskId, Placement};
pub use store::{ArrayStore, IoStats, PageStore};

/// Re-exported page byte buffer type, so downstream crates can name the
/// type `PageStore` and `IoBackend` traffic in without a direct `bytes`
/// dependency.
pub use bytes::Bytes;
