//! Storage-layer errors.

use crate::PageId;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The page id is not currently allocated.
    PageNotFound(PageId),
    /// A page write exceeded the configured page size.
    PageTooLarge {
        /// The page being written.
        page: PageId,
        /// Bytes attempted.
        len: usize,
        /// The configured page size.
        page_size: usize,
    },
    /// A disk id referenced a disk outside the array.
    NoSuchDisk {
        /// The offending disk index.
        disk: u32,
        /// Number of disks in the array.
        num_disks: u32,
    },
    /// A page was read before ever being written.
    UninitializedPage(PageId),
    /// The page contents failed to decode (corrupt or wrong codec version).
    CorruptPage {
        /// The page that failed to decode.
        page: PageId,
        /// Human-readable detail.
        detail: String,
    },
    /// A store superblock (`meta.sqda`) is unreadable, truncated, or has
    /// an unsupported version. Opening a damaged store must surface this
    /// typed error — never a panic or a silent garbage read.
    Superblock {
        /// The offending superblock path.
        path: String,
        /// Human-readable detail (what was wrong and where).
        detail: String,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::PageNotFound(p) => write!(f, "page {p} not found"),
            StorageError::PageTooLarge {
                page,
                len,
                page_size,
            } => write!(
                f,
                "write of {len} bytes to {page} exceeds page size {page_size}"
            ),
            StorageError::NoSuchDisk { disk, num_disks } => {
                write!(f, "disk {disk} out of range (array has {num_disks} disks)")
            }
            StorageError::UninitializedPage(p) => {
                write!(f, "page {p} was allocated but never written")
            }
            StorageError::CorruptPage { page, detail } => {
                write!(f, "page {page} is corrupt: {detail}")
            }
            StorageError::Superblock { path, detail } => {
                write!(f, "bad superblock {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience alias for storage results.
pub type Result<T> = std::result::Result<T, StorageError>;
