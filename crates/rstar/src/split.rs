//! The R\*-tree node split: ChooseSplitAxis + ChooseSplitIndex
//! (Beckmann et al., SIGMOD'90, Section 4.2).
//!
//! The split operates on MBRs only and returns index groups, so the same
//! code splits leaf and internal nodes.

use sqda_geom::Rect;

/// The outcome of a split: indices of the entries for each group.
/// `group1` keeps the original page; `group2` moves to the new page.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitResult {
    /// Indices (into the input slice) staying on the old page.
    pub group1: Vec<usize>,
    /// Indices moving to the newly allocated page.
    pub group2: Vec<usize>,
}

/// Splits `mbrs` (an overflowing node's `M+1` entries) into two groups,
/// each of size ≥ `m`.
///
/// Axis choice: for every axis, entries are sorted by lower and by upper
/// boundary; for each sort all legal distributions are generated and the
/// axis with the minimum total margin (perimeter) sum is chosen.
/// Distribution choice: on the chosen axis, the distribution with minimal
/// overlap between the two group MBRs wins; ties fall to minimal total
/// area, then to the more balanced distribution for determinism.
///
/// # Panics
///
/// Panics if `mbrs.len() < 2 * m` (no legal distribution) or `m == 0`.
pub fn rstar_split(mbrs: &[Rect], m: usize) -> SplitResult {
    assert!(m >= 1, "minimum fill must be at least 1");
    let total = mbrs.len();
    assert!(
        total >= 2 * m,
        "cannot split {total} entries with minimum fill {m}"
    );
    let dim = mbrs[0].dim();
    let num_dists = total - 2 * m + 1;

    let mut best_axis = 0usize;
    let mut best_margin = f64::INFINITY;
    let mut best_axis_sorts: Option<[Vec<usize>; 2]> = None;

    for axis in 0..dim {
        let sort_lo = sorted_indices(mbrs, |r| r.lo()[axis]);
        let sort_hi = sorted_indices(mbrs, |r| r.hi()[axis]);
        let mut margin_sum = 0.0;
        for sort in [&sort_lo, &sort_hi] {
            let (prefix, suffix) = prefix_suffix_boxes(mbrs, sort);
            for k in 0..num_dists {
                let split_at = m + k; // group1 = first m+k entries
                margin_sum += prefix[split_at - 1].margin() + suffix[split_at].margin();
            }
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
            best_axis_sorts = Some([sort_lo, sort_hi]);
        }
    }
    let _ = best_axis; // retained for debugging clarity

    let sorts = best_axis_sorts.expect("at least one axis");
    let mut best: Option<(f64, f64, usize, &Vec<usize>, usize)> = None;
    for sort in sorts.iter() {
        let (prefix, suffix) = prefix_suffix_boxes(mbrs, sort);
        for k in 0..num_dists {
            let split_at = m + k;
            let bb1 = &prefix[split_at - 1];
            let bb2 = &suffix[split_at];
            let overlap = bb1.intersection_area(bb2);
            let area = bb1.area() + bb2.area();
            // Balance criterion: distance from an even split (tie-break).
            let imbalance = (total as isize - 2 * split_at as isize).unsigned_abs();
            let better = match &best {
                None => true,
                Some((bo, ba, bi, _, _)) => {
                    overlap < *bo
                        || (overlap == *bo && area < *ba)
                        || (overlap == *bo && area == *ba && imbalance < *bi)
                }
            };
            if better {
                best = Some((overlap, area, imbalance, sort, split_at));
            }
        }
    }
    let (_, _, _, sort, split_at) = best.expect("at least one distribution");
    SplitResult {
        group1: sort[..split_at].to_vec(),
        group2: sort[split_at..].to_vec(),
    }
}

fn sorted_indices(mbrs: &[Rect], key: impl Fn(&Rect) -> f64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..mbrs.len()).collect();
    idx.sort_by(|&a, &b| {
        key(&mbrs[a])
            .partial_cmp(&key(&mbrs[b]))
            .expect("finite coordinates")
            .then(a.cmp(&b))
    });
    idx
}

/// For a sorted order, returns (`prefix[i]` = bb of entries `0..=i`,
/// `suffix[i]` = bb of entries `i..`).
fn prefix_suffix_boxes(mbrs: &[Rect], order: &[usize]) -> (Vec<Rect>, Vec<Rect>) {
    let n = order.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = mbrs[order[0]].clone();
    prefix.push(acc.clone());
    for &i in &order[1..] {
        acc.union_in_place(&mbrs[i]);
        prefix.push(acc.clone());
    }
    let mut suffix = vec![mbrs[order[n - 1]].clone(); n];
    for j in (0..n - 1).rev() {
        let mut r = suffix[j + 1].clone();
        r.union_in_place(&mbrs[order[j]]);
        suffix[j] = r;
    }
    (prefix, suffix)
}

/// Selects the entries to evict for R\* forced reinsertion: the `p`
/// entries whose centers are farthest from the node MBR's center,
/// returned in **decreasing** distance order. Reinsertion then proceeds
/// from the *closest* of the evicted entries ("close reinsert" performed
/// by the caller iterating in reverse).
pub fn reinsert_victims(mbrs: &[Rect], p: usize) -> Vec<usize> {
    assert!(p < mbrs.len(), "cannot evict {p} of {} entries", mbrs.len());
    let node_mbr = Rect::union_all(mbrs.iter()).expect("non-empty node");
    let center = node_mbr.center();
    let mut idx: Vec<usize> = (0..mbrs.len()).collect();
    idx.sort_by(|&a, &b| {
        let da = mbrs[a].center().dist_sq(&center);
        let db = mbrs[b].center().dist_sq(&center);
        db.partial_cmp(&da)
            .expect("finite coordinates")
            .then(a.cmp(&b))
    });
    idx.truncate(p);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(lo: &[f64], hi: &[f64]) -> Rect {
        Rect::new(lo.to_vec(), hi.to_vec()).unwrap()
    }

    fn pt(x: f64, y: f64) -> Rect {
        rect(&[x, y], &[x, y])
    }

    #[test]
    fn split_respects_min_fill() {
        let mbrs: Vec<Rect> = (0..11).map(|i| pt(i as f64, 0.0)).collect();
        let m = 4;
        let r = rstar_split(&mbrs, m);
        assert!(r.group1.len() >= m);
        assert!(r.group2.len() >= m);
        assert_eq!(r.group1.len() + r.group2.len(), 11);
        // Each index appears exactly once.
        let mut all: Vec<usize> = r.group1.iter().chain(&r.group2).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two well-separated clusters along x must split cleanly.
        let mut mbrs = Vec::new();
        for i in 0..5 {
            mbrs.push(pt(i as f64 * 0.1, 0.0));
        }
        for i in 0..5 {
            mbrs.push(pt(100.0 + i as f64 * 0.1, 0.0));
        }
        let r = rstar_split(&mbrs, 2);
        let g1_max = r
            .group1
            .iter()
            .map(|&i| mbrs[i].lo()[0])
            .fold(f64::MIN, f64::max);
        let g2_min = r
            .group2
            .iter()
            .map(|&i| mbrs[i].lo()[0])
            .fold(f64::MAX, f64::min);
        let g1_min = r
            .group1
            .iter()
            .map(|&i| mbrs[i].lo()[0])
            .fold(f64::MAX, f64::min);
        let g2_max = r
            .group2
            .iter()
            .map(|&i| mbrs[i].lo()[0])
            .fold(f64::MIN, f64::max);
        // One group entirely below the other.
        assert!(g1_max < g2_min || g2_max < g1_min);
    }

    #[test]
    fn split_picks_discriminating_axis() {
        // Clusters separated along y, mixed along x: split must use y.
        let mut mbrs = Vec::new();
        for i in 0..6 {
            mbrs.push(pt((i % 3) as f64, 0.0));
            mbrs.push(pt((i % 3) as f64, 50.0));
        }
        let r = rstar_split(&mbrs, 3);
        let y_of =
            |idx: &Vec<usize>| -> Vec<f64> { idx.iter().map(|&i| mbrs[i].lo()[1]).collect() };
        let g1 = y_of(&r.group1);
        let g2 = y_of(&r.group2);
        assert!(
            g1.iter().all(|&y| y == g1[0]),
            "group1 mixes clusters: {g1:?}"
        );
        assert!(g2.iter().all(|&y| y == g2[0]));
    }

    #[test]
    fn split_zero_overlap_when_possible() {
        let mbrs: Vec<Rect> = (0..10).map(|i| pt(i as f64, i as f64)).collect();
        let r = rstar_split(&mbrs, 4);
        let bb1 = Rect::union_all(r.group1.iter().map(|&i| &mbrs[i])).unwrap();
        let bb2 = Rect::union_all(r.group2.iter().map(|&i| &mbrs[i])).unwrap();
        assert_eq!(bb1.intersection_area(&bb2), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn too_few_entries_panics() {
        let mbrs: Vec<Rect> = (0..3).map(|i| pt(i as f64, 0.0)).collect();
        rstar_split(&mbrs, 2);
    }

    #[test]
    fn split_handles_identical_rects() {
        let mbrs: Vec<Rect> = (0..9).map(|_| pt(1.0, 1.0)).collect();
        let r = rstar_split(&mbrs, 4);
        assert!(r.group1.len() >= 4 && r.group2.len() >= 4);
    }

    #[test]
    fn split_of_real_rects_in_3d() {
        let mbrs: Vec<Rect> = (0..12)
            .map(|i| {
                let f = i as f64;
                rect(&[f, f * 2.0, -f], &[f + 1.0, f * 2.0 + 0.5, -f + 2.0])
            })
            .collect();
        let r = rstar_split(&mbrs, 5);
        assert_eq!(r.group1.len() + r.group2.len(), 12);
        assert!(r.group1.len() >= 5 && r.group2.len() >= 5);
    }

    #[test]
    fn reinsert_victims_are_farthest() {
        // Points clustered at origin plus outliers.
        let mbrs = vec![
            pt(0.0, 0.0),
            pt(0.1, 0.1),
            pt(-0.1, 0.0),
            pt(10.0, 10.0), // outlier a
            pt(0.0, 0.2),
            pt(-12.0, 0.0), // outlier b
        ];
        let victims = reinsert_victims(&mbrs, 2);
        let mut v = victims.clone();
        v.sort_unstable();
        assert_eq!(v, vec![3, 5]);
        // Decreasing distance order: center of node MBR is approx (-1, 5)
        // — verify ordering property rather than exact order.
        let node = Rect::union_all(mbrs.iter()).unwrap();
        let c = node.center();
        let d0 = mbrs[victims[0]].center().dist_sq(&c);
        let d1 = mbrs[victims[1]].center().dist_sq(&c);
        assert!(d0 >= d1);
    }

    #[test]
    #[should_panic(expected = "cannot evict")]
    fn reinsert_all_entries_panics() {
        let mbrs = vec![pt(0.0, 0.0), pt(1.0, 1.0)];
        reinsert_victims(&mbrs, 2);
    }

    #[test]
    fn prefix_suffix_cover_everything() {
        let mbrs: Vec<Rect> = (0..6).map(|i| pt(i as f64, -(i as f64))).collect();
        let order: Vec<usize> = (0..6).collect();
        let (prefix, suffix) = prefix_suffix_boxes(&mbrs, &order);
        let full = Rect::union_all(mbrs.iter()).unwrap();
        assert_eq!(prefix[5], full);
        assert_eq!(suffix[0], full);
        for i in 0..6 {
            assert!(full.contains_rect(&prefix[i]));
            assert!(full.contains_rect(&suffix[i]));
        }
    }
}
