//! A declustered (parallel) R\*-tree over a disk-array page store.
//!
//! This crate implements the access method of the SIGMOD'98 paper
//! *"Similarity Query Processing Using Disk Arrays"*: an R\*-tree
//! ([Beckmann et al., SIGMOD'90]) whose nodes are distributed over the
//! disks of a RAID-0 array, in the style of the multiplexed/parallel
//! R-tree of Kamel & Faloutsos (SIGMOD'92). Two modifications distinguish
//! it from a textbook R\*-tree:
//!
//! 1. **Per-entry subtree object counts.** Every internal entry records how
//!    many data objects its subtree contains. The CRSS/FPSS algorithms use
//!    these counts to compute the Lemma-1 threshold distance before any
//!    data page has been fetched.
//! 2. **Declustered page placement.** When a node splits, the newly
//!    created page is assigned to a disk by a pluggable
//!    [`Declusterer`]; the default is the Proximity-Index heuristic, which
//!    places a new node on the disk whose resident sibling nodes are
//!    *least proximal* to it, so that nodes likely to be fetched by the
//!    same query live on different disks.
//!
//! Nodes occupy exactly one page each and are stored through the
//! [`sqda_storage::PageStore`] abstraction in a compact binary format, so
//! the same tree can be driven by the logical executor (counting node
//! accesses) or by the event-driven disk-array simulator (measuring
//! response times).
//!
//! # Example
//!
//! ```
//! use sqda_rstar::{RStarTree, RStarConfig, decluster::RoundRobin};
//! use sqda_storage::ArrayStore;
//! use sqda_geom::Point;
//! use std::sync::Arc;
//!
//! let store = Arc::new(ArrayStore::new(4, 1449, 42));
//! let mut tree = RStarTree::create(
//!     store,
//!     RStarConfig::new(2),
//!     Box::new(RoundRobin::new()),
//! ).unwrap();
//! for i in 0..1000 {
//!     let x = (i % 37) as f64;
//!     let y = (i % 61) as f64;
//!     tree.insert(Point::new(vec![x, y]), i).unwrap();
//! }
//! let nearest = tree.knn(&Point::new(vec![5.0, 5.0]), 3).unwrap();
//! assert_eq!(nearest.len(), 3);
//! ```

mod bulk;
pub mod codec;
pub mod config;
pub mod decluster;
mod delete;
pub mod entry;
pub mod external;
mod insert;
pub mod node;
pub mod query;
pub mod sfc;
mod split;
pub mod split_policy;
pub mod tree;
pub mod validate;

pub use bulk::{PackingOrder, PlacementMode};
pub use config::RStarConfig;
pub use decluster::Declusterer;
pub use entry::{InternalEntry, LeafEntry, ObjectId};
pub use external::{ExternalBuildOptions, ExternalBuildReport, FnSource, PointSource, SliceSource};
pub use node::{InternalRef, Node, NodeMut};
pub use query::knn::{
    best_first_search, best_first_search_with, knn_with_scratch, knn_with_stats, BestFirstScratch,
    Frontier, Neighbor,
};
pub use split_policy::SplitPolicy;
pub use tree::{RStarError, RStarTree, TreeStats};
pub use validate::ValidationError;
