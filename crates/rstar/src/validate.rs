//! Structural invariant checking.
//!
//! After any sequence of insertions and deletions a valid R\*-tree must
//! satisfy:
//!
//! 1. every internal entry's MBR equals the MBR of its child node
//!    (tight bounding), and so transitively contains everything below;
//! 2. every internal entry's object count equals the number of data
//!    objects in the child subtree (the paper's count augmentation);
//! 3. all leaves sit at level 0 and the level decreases by exactly one
//!    per edge (balanced height);
//! 4. every node except the root holds at least the minimum and at most
//!    the maximum number of entries;
//! 5. the root has at least 2 entries unless it is a leaf;
//! 6. the recorded object total matches the actual number of leaf
//!    entries.

use crate::node::Node;
use crate::tree::{RStarTree, Result};
use sqda_storage::{PageId, PageStore};

/// A violated invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// A parent entry's MBR is not the exact union of its child.
    LooseMbr {
        /// Page of the parent node.
        parent: PageId,
        /// Page of the child node.
        child: PageId,
    },
    /// A parent entry's count disagrees with the child subtree.
    WrongCount {
        /// Page of the parent node.
        parent: PageId,
        /// Page of the child node.
        child: PageId,
        /// Count recorded in the parent entry.
        recorded: u64,
        /// Count measured in the child subtree.
        actual: u64,
    },
    /// Child level is not parent level − 1.
    BrokenLevel {
        /// Page of the parent node.
        parent: PageId,
        /// Parent's level.
        parent_level: u32,
        /// Child's level.
        child_level: u32,
    },
    /// A non-root node under- or overflows.
    BadFill {
        /// The offending node.
        page: PageId,
        /// Its entry count.
        len: usize,
        /// Allowed minimum.
        min: usize,
        /// Allowed maximum.
        max: usize,
    },
    /// A non-leaf root has fewer than 2 entries.
    DegenerateRoot {
        /// The root page.
        page: PageId,
        /// Its entry count.
        len: usize,
    },
    /// `num_objects` does not match the leaves.
    WrongTotal {
        /// Objects recorded in the tree metadata.
        recorded: u64,
        /// Leaf entries actually found.
        actual: u64,
    },
    /// The tree height recorded does not match the root's level + 1.
    WrongHeight {
        /// Height recorded in the metadata.
        recorded: u32,
        /// Root level + 1.
        actual: u32,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::LooseMbr { parent, child } => {
                write!(f, "entry MBR in {parent} is not tight around {child}")
            }
            ValidationError::WrongCount {
                parent,
                child,
                recorded,
                actual,
            } => write!(
                f,
                "entry in {parent} records {recorded} objects under {child}, found {actual}"
            ),
            ValidationError::BrokenLevel {
                parent,
                parent_level,
                child_level,
            } => write!(
                f,
                "node {parent} at level {parent_level} has child at level {child_level}"
            ),
            ValidationError::BadFill {
                page,
                len,
                min,
                max,
            } => write!(f, "node {page} has {len} entries, allowed {min}..={max}"),
            ValidationError::DegenerateRoot { page, len } => {
                write!(f, "internal root {page} has only {len} entries")
            }
            ValidationError::WrongTotal { recorded, actual } => {
                write!(f, "tree records {recorded} objects, leaves hold {actual}")
            }
            ValidationError::WrongHeight { recorded, actual } => {
                write!(f, "tree records height {recorded}, structure says {actual}")
            }
        }
    }
}

/// Validates all invariants; returns the first violation found.
pub fn validate<S: PageStore>(
    tree: &RStarTree<S>,
) -> Result<std::result::Result<(), ValidationError>> {
    let root = tree.read_node(tree.root_page())?;
    if root.level() + 1 != tree.height() {
        return Ok(Err(ValidationError::WrongHeight {
            recorded: tree.height(),
            actual: root.level() + 1,
        }));
    }
    if !root.is_leaf() && root.len() < 2 {
        return Ok(Err(ValidationError::DegenerateRoot {
            page: tree.root_page(),
            len: root.len(),
        }));
    }
    let mut total = 0u64;
    if let Err(e) = check_node(tree, tree.root_page(), &root, true, &mut total)? {
        return Ok(Err(e));
    }
    if total != tree.num_objects() {
        return Ok(Err(ValidationError::WrongTotal {
            recorded: tree.num_objects(),
            actual: total,
        }));
    }
    Ok(Ok(()))
}

/// Recursively checks one node; accumulates the objects seen into `total`
/// and returns the subtree's object count on success.
fn check_node<S: PageStore>(
    tree: &RStarTree<S>,
    page: PageId,
    node: &Node,
    is_root: bool,
    total: &mut u64,
) -> Result<std::result::Result<u64, ValidationError>> {
    let (min, max) = if node.is_leaf() {
        (
            tree.config().min_leaf_entries(),
            tree.config().max_leaf_entries,
        )
    } else {
        (
            tree.config().min_internal_entries(),
            tree.config().max_internal_entries,
        )
    };
    if !is_root && (node.len() < min || node.len() > max) {
        return Ok(Err(ValidationError::BadFill {
            page,
            len: node.len(),
            min,
            max,
        }));
    }
    if is_root && node.len() > max {
        return Ok(Err(ValidationError::BadFill {
            page,
            len: node.len(),
            min: 0,
            max,
        }));
    }
    if node.is_leaf() {
        *total += node.len() as u64;
        Ok(Ok(node.len() as u64))
    } else {
        let level = node.level();
        let mut subtree_total = 0u64;
        for e in node.internal_iter() {
            let child = tree.read_node(e.child)?;
            if child.level() + 1 != level {
                return Ok(Err(ValidationError::BrokenLevel {
                    parent: page,
                    parent_level: level,
                    child_level: child.level(),
                }));
            }
            let child_mbr = child.mbr().expect("non-root nodes are non-empty");
            if child_mbr.lo() != e.mbr.lo() || child_mbr.hi() != e.mbr.hi() {
                return Ok(Err(ValidationError::LooseMbr {
                    parent: page,
                    child: e.child,
                }));
            }
            let child_count = match check_node(tree, e.child, &child, false, total)? {
                Ok(c) => c,
                Err(err) => return Ok(Err(err)),
            };
            if child_count != e.count {
                return Ok(Err(ValidationError::WrongCount {
                    parent: page,
                    child: e.child,
                    recorded: e.count,
                    actual: child_count,
                }));
            }
            subtree_total += child_count;
        }
        Ok(Ok(subtree_total))
    }
}
