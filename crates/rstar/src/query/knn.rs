//! Optimal sequential k-NN search (best-first / Hjaltason–Samet).
//!
//! This is the reference single-disk algorithm: it visits nodes in
//! increasing `D_min` order and provably reads exactly the nodes whose
//! `D_min` is below the final k-NN distance — the sequential analogue of
//! the paper's WOPTSS lower bound. The experiments use it both for ground
//! truth and to derive the oracle radius `D_k` that WOPTSS needs.
//!
//! The engine's priority heap can be supplied by the caller through a
//! [`BestFirstScratch`], so a query-per-iteration workload (the paper's
//! multi-user experiments sweep thousands of queries) reuses one heap
//! allocation instead of growing a fresh one per query.

use crate::entry::ObjectId;
use crate::tree::{RStarTree, Result};
use sqda_geom::{kernel, Point};
use sqda_storage::{PageId, PageStore};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One k-NN answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// The object found.
    pub object: ObjectId,
    /// Its point.
    pub point: Point,
    /// Squared Euclidean distance from the query point.
    pub dist_sq: f64,
}

impl Neighbor {
    /// Euclidean distance from the query point.
    pub fn dist(&self) -> f64 {
        self.dist_sq.sqrt()
    }
}

/// Priority-queue element: either a node to expand or a candidate object.
enum QueueItem {
    Node { dist_sq: f64, page: PageId },
    Object { dist_sq: f64, neighbor: Neighbor },
}

impl QueueItem {
    fn dist_sq(&self) -> f64 {
        match self {
            QueueItem::Node { dist_sq, .. } | QueueItem::Object { dist_sq, .. } => *dist_sq,
        }
    }

    /// Objects sort before nodes at equal distance so a result at distance
    /// `d` is emitted before expanding a node that can only yield ≥ `d`.
    fn tier(&self) -> u8 {
        match self {
            QueueItem::Object { .. } => 0,
            QueueItem::Node { .. } => 1,
        }
    }
}

impl PartialEq for QueueItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for min-by-distance.
        other
            .dist_sq()
            .partial_cmp(&self.dist_sq())
            .expect("distances are finite")
            .then(other.tier().cmp(&self.tier()))
    }
}

/// Reusable state of a [`best_first_search_with`] run: the priority heap
/// and the batch-kernel distance buffer survive between queries, so
/// steady-state searches allocate nothing.
///
/// A scratch is plain storage — it carries no query state between runs
/// (the engine clears it on entry) and any scratch works with any tree.
#[derive(Default)]
pub struct BestFirstScratch {
    heap: BinaryHeap<QueueItem>,
    /// Per-node distance vector for the batch distance kernels.
    pub dists: Vec<f64>,
}

impl BestFirstScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The expanding wavefront of a best-first search: candidate objects and
/// unvisited nodes, ordered by increasing distance with objects winning
/// ties (a result at distance `d` is emitted before any node that can
/// only yield ≥ `d`).
///
/// Filled by the `expand` callback of [`best_first_search`]; how a node's
/// page is fetched and decoded is the caller's business, which is what
/// lets one engine serve both the native R\*-tree search and the generic
/// access-method search in `sqda-core`.
pub struct Frontier<'a> {
    heap: &'a mut BinaryHeap<QueueItem>,
}

impl Frontier<'_> {
    /// Offers a candidate object at squared distance `dist_sq`.
    pub fn push_object(&mut self, object: ObjectId, point: Point, dist_sq: f64) {
        self.heap.push(QueueItem::Object {
            dist_sq,
            neighbor: Neighbor {
                object,
                point,
                dist_sq,
            },
        });
    }

    /// Offers an unvisited node at squared minimum distance `dist_sq`.
    pub fn push_node(&mut self, page: PageId, dist_sq: f64) {
        self.heap.push(QueueItem::Node { dist_sq, page });
    }
}

/// The Hjaltason–Samet best-first k-NN engine, generic over how nodes are
/// read: `expand` receives the next-closest page and pushes its children
/// (or data objects) into the [`Frontier`]. Returns up to `k` neighbours
/// in increasing-distance order plus the number of nodes expanded.
///
/// Allocates a fresh heap per call; hot callers should hold a
/// [`BestFirstScratch`] and use [`best_first_search_with`].
pub fn best_first_search<E>(
    root: PageId,
    k: usize,
    expand: impl FnMut(PageId, &mut Frontier<'_>) -> std::result::Result<(), E>,
) -> std::result::Result<(Vec<Neighbor>, u64), E> {
    let mut scratch = BestFirstScratch::new();
    best_first_search_with(&mut scratch, root, k, expand)
}

/// [`best_first_search`] over a caller-supplied scratch heap. The scratch
/// is cleared on entry, so stale state from a previous query can never
/// leak into this one.
pub fn best_first_search_with<E>(
    scratch: &mut BestFirstScratch,
    root: PageId,
    k: usize,
    expand: impl FnMut(PageId, &mut Frontier<'_>) -> std::result::Result<(), E>,
) -> std::result::Result<(Vec<Neighbor>, u64), E> {
    best_first_search_heap(&mut scratch.heap, root, k, expand)
}

/// The engine proper, over a bare heap — lets callers that also borrow
/// other scratch fields (e.g. the distance buffer) split the borrows.
fn best_first_search_heap<E>(
    heap: &mut BinaryHeap<QueueItem>,
    root: PageId,
    k: usize,
    mut expand: impl FnMut(PageId, &mut Frontier<'_>) -> std::result::Result<(), E>,
) -> std::result::Result<(Vec<Neighbor>, u64), E> {
    let mut out = Vec::with_capacity(k.min(64));
    if k == 0 {
        return Ok((out, 0));
    }
    heap.clear();
    let mut frontier = Frontier { heap };
    frontier.push_node(root, 0.0);
    let mut nodes_read = 0u64;
    while let Some(item) = frontier.heap.pop() {
        match item {
            QueueItem::Object { neighbor, .. } => {
                out.push(neighbor);
                if out.len() == k {
                    break;
                }
            }
            QueueItem::Node { page, .. } => {
                nodes_read += 1;
                expand(page, &mut frontier)?;
            }
        }
    }
    Ok((out, nodes_read))
}

/// Best-first k-NN; returns up to `k` neighbours ordered by increasing
/// distance.
pub(crate) fn knn<S: PageStore>(
    tree: &RStarTree<S>,
    center: &Point,
    k: usize,
) -> Result<Vec<Neighbor>> {
    Ok(knn_with_stats(tree, center, k)?.0)
}

/// A lazy nearest-neighbour stream: yields neighbours in increasing
/// distance order, reading tree nodes only as needed. Useful when the
/// caller does not know `k` in advance (e.g. "closest facility matching a
/// post-filter").
///
/// Created by [`crate::RStarTree::nn_iter`]. Errors during traversal end
/// the stream after yielding the error once.
pub struct NnIter<'t, S: PageStore> {
    tree: &'t crate::RStarTree<S>,
    center: Point,
    heap: BinaryHeap<QueueItem>,
    dists: Vec<f64>,
    failed: bool,
}

impl<'t, S: PageStore> NnIter<'t, S> {
    pub(crate) fn new(tree: &'t crate::RStarTree<S>, center: Point) -> Self {
        let mut heap = BinaryHeap::new();
        heap.push(QueueItem::Node {
            dist_sq: 0.0,
            page: tree.root_page(),
        });
        Self {
            tree,
            center,
            heap,
            dists: Vec::new(),
            failed: false,
        }
    }
}

impl<'t, S: PageStore> Iterator for NnIter<'t, S> {
    type Item = Result<Neighbor>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        while let Some(item) = self.heap.pop() {
            match item {
                QueueItem::Object { neighbor, .. } => return Some(Ok(neighbor)),
                QueueItem::Node { page, .. } => {
                    let node = match self.tree.read_node(page) {
                        Ok(n) => n,
                        Err(e) => {
                            self.failed = true;
                            return Some(Err(e));
                        }
                    };
                    if node.is_leaf() {
                        kernel::batch_dist_sq(self.center.coords(), node.coords(), &mut self.dists);
                        for (i, (coords, object)) in node.leaf_iter().enumerate() {
                            let dist_sq = self.dists[i];
                            self.heap.push(QueueItem::Object {
                                dist_sq,
                                neighbor: Neighbor {
                                    object,
                                    point: Point::from(coords),
                                    dist_sq,
                                },
                            });
                        }
                    } else {
                        kernel::batch_min_dist_sq(
                            self.center.coords(),
                            node.coords(),
                            &mut self.dists,
                        );
                        for (i, e) in node.internal_iter().enumerate() {
                            self.heap.push(QueueItem::Node {
                                dist_sq: self.dists[i],
                                page: e.child,
                            });
                        }
                    }
                }
            }
        }
        None
    }
}

/// Best-first k-NN that also reports the number of nodes read.
pub fn knn_with_stats<S: PageStore>(
    tree: &RStarTree<S>,
    center: &Point,
    k: usize,
) -> Result<(Vec<Neighbor>, u64)> {
    let mut scratch = BestFirstScratch::new();
    knn_with_scratch(tree, center, k, &mut scratch)
}

/// [`knn_with_stats`] over a reusable scratch heap: the allocation-free
/// steady state for query sweeps.
pub fn knn_with_scratch<S: PageStore>(
    tree: &RStarTree<S>,
    center: &Point,
    k: usize,
    scratch: &mut BestFirstScratch,
) -> Result<(Vec<Neighbor>, u64)> {
    let BestFirstScratch { heap, dists } = scratch;
    best_first_search_heap(heap, tree.root_page(), k, |page, frontier| {
        let node = tree.read_node(page)?;
        // One batch-kernel sweep over the node's flat coordinate block
        // (bit-identical to the per-entry metrics), then bulk pushes.
        if node.is_leaf() {
            kernel::batch_dist_sq(center.coords(), node.coords(), dists);
            for (i, (coords, object)) in node.leaf_iter().enumerate() {
                frontier.push_object(object, Point::from(coords), dists[i]);
            }
        } else {
            kernel::batch_min_dist_sq(center.coords(), node.coords(), dists);
            for (i, e) in node.internal_iter().enumerate() {
                frontier.push_node(e.child, dists[i]);
            }
        }
        Ok(())
    })
}
