//! Read-only queries over the tree: range/window queries and the optimal
//! sequential k-NN search.

pub mod knn;
pub mod range;
