//! Similarity range queries and rectangular window queries.

use crate::entry::LeafEntry;
use crate::tree::{RStarTree, Result};
use sqda_geom::{Point, Rect, Sphere};
use sqda_storage::PageStore;

/// All objects within `radius` of `center` (Definition 1 of the paper:
/// `dist(P_q, x_j) ≤ ε` under the Euclidean metric).
pub(crate) fn range_query<S: PageStore>(
    tree: &RStarTree<S>,
    center: &Point,
    radius: f64,
) -> Result<Vec<LeafEntry>> {
    let sphere = Sphere::new(center.clone(), radius);
    let mut out = Vec::new();
    let mut stack = vec![tree.root_page()];
    while let Some(page) = stack.pop() {
        let node = tree.read_node(page)?;
        if node.is_leaf() {
            out.extend(
                node.leaf_iter()
                    .filter(|(coords, _)| sphere.contains_coords(coords))
                    .map(|(coords, object)| LeafEntry::new(Point::from(coords), object)),
            );
        } else {
            stack.extend(
                node.internal_iter()
                    .filter(|e| sphere.intersects_rect_ref(&e.mbr))
                    .map(|e| e.child),
            );
        }
    }
    Ok(out)
}

/// All objects whose point lies in `window`.
pub(crate) fn window_query<S: PageStore>(
    tree: &RStarTree<S>,
    window: &Rect,
) -> Result<Vec<LeafEntry>> {
    let mut out = Vec::new();
    let mut stack = vec![tree.root_page()];
    while let Some(page) = stack.pop() {
        let node = tree.read_node(page)?;
        if node.is_leaf() {
            out.extend(
                node.leaf_iter()
                    .filter(|(coords, _)| window.contains_coords(coords))
                    .map(|(coords, object)| LeafEntry::new(Point::from(coords), object)),
            );
        } else {
            stack.extend(
                node.internal_iter()
                    .filter(|e| e.mbr.intersects(window))
                    .map(|e| e.child),
            );
        }
    }
    Ok(out)
}
