//! The declustered R\*-tree.

use crate::config::RStarConfig;
use crate::decluster::{DeclusterContext, Declusterer};
use crate::entry::{LeafEntry, ObjectId};
use crate::node::Node;
use crate::{codec, query};
use sqda_geom::{GeomError, Point, Rect};
use sqda_storage::{DiskId, IoStats, NodeCache, PageId, PageStore, StorageError};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Errors from tree operations.
#[derive(Debug)]
pub enum RStarError {
    /// Underlying storage failed.
    Storage(StorageError),
    /// Geometry construction failed.
    Geometry(GeomError),
    /// A point's dimensionality does not match the tree's.
    DimensionMismatch {
        /// The tree's dimensionality.
        expected: usize,
        /// The offending point's dimensionality.
        got: usize,
    },
    /// The requested packing order does not support this dimensionality
    /// (Hilbert is 2-d only; Morton keys stop at 8 dimensions).
    UnsupportedPacking {
        /// The packing order's name.
        order: &'static str,
        /// The offending dimensionality.
        dim: usize,
    },
    /// A bulk-build invariant was violated (empty slab, non-finite
    /// coordinate, malformed run file); the build aborts cleanly.
    InvalidBuild(String),
}

impl From<StorageError> for RStarError {
    fn from(e: StorageError) -> Self {
        RStarError::Storage(e)
    }
}

impl From<GeomError> for RStarError {
    fn from(e: GeomError) -> Self {
        RStarError::Geometry(e)
    }
}

impl std::fmt::Display for RStarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RStarError::Storage(e) => write!(f, "storage error: {e}"),
            RStarError::Geometry(e) => write!(f, "geometry error: {e}"),
            RStarError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: tree is {expected}-d, point is {got}-d"
                )
            }
            RStarError::UnsupportedPacking { order, dim } => {
                write!(f, "{order} packing does not support {dim}-d data")
            }
            RStarError::InvalidBuild(msg) => write!(f, "invalid bulk build: {msg}"),
        }
    }
}

impl std::error::Error for RStarError {}

/// Convenience alias for tree results.
pub type Result<T> = std::result::Result<T, RStarError>;

/// Summary statistics of a tree (used by experiments and diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Number of levels (1 = a single leaf).
    pub height: u32,
    /// Indexed objects.
    pub num_objects: u64,
    /// Node count per level, `[0]` = leaves.
    pub nodes_per_level: Vec<u64>,
    /// Mean fill factor over all nodes (entries / capacity).
    pub avg_fill: f64,
    /// Pages allocated per disk.
    pub pages_per_disk: Vec<usize>,
}

impl TreeStats {
    /// Total number of nodes.
    pub fn total_nodes(&self) -> u64 {
        self.nodes_per_level.iter().sum()
    }
}

/// A declustered R\*-tree over a disk-array page store.
///
/// Mutating operations (`insert`, `delete`) take `&mut self`; read-only
/// queries take `&self` and can run concurrently through an `Arc` when the
/// tree is not being mutated (the experiments build once, then query).
pub struct RStarTree<S: PageStore> {
    pub(crate) store: Arc<S>,
    pub(crate) config: RStarConfig,
    pub(crate) declusterer: Box<dyn Declusterer>,
    pub(crate) root: PageId,
    pub(crate) height: u32,
    pub(crate) num_objects: u64,
    pub(crate) cache: Option<Arc<NodeCache<Node>>>,
    pub(crate) profile_reads: AtomicU64,
}

impl<S: PageStore> RStarTree<S> {
    /// Creates an empty tree: a single empty leaf, placed on disk 0.
    pub fn create(
        store: Arc<S>,
        config: RStarConfig,
        declusterer: Box<dyn Declusterer>,
    ) -> Result<Self> {
        let root = store.allocate(DiskId(0))?;
        let leaf = Node::empty_leaf();
        store.write(root, codec::encode_node(&leaf, config.dim))?;
        Ok(Self {
            store,
            config,
            declusterer,
            root,
            height: 1,
            num_objects: 0,
            cache: None,
            profile_reads: AtomicU64::new(0),
        })
    }

    /// Re-attaches to a tree already present in a (persistent) store.
    ///
    /// `root` is the root page id recorded by the caller (e.g. alongside
    /// a [`sqda_storage::FileStore`]'s superblock); height and object
    /// count are recovered from the root node itself.
    pub fn attach(
        store: Arc<S>,
        config: RStarConfig,
        declusterer: Box<dyn Declusterer>,
        root: PageId,
    ) -> Result<Self> {
        let bytes = store.read(root)?;
        let node = codec::decode_node(bytes, config.dim, root)?;
        let height = node.level() + 1;
        let num_objects = node.object_count();
        Ok(Self {
            store,
            config,
            declusterer,
            root,
            height,
            num_objects,
            cache: None,
            profile_reads: AtomicU64::new(0),
        })
    }

    /// The page id of the root node.
    pub fn root_page(&self) -> PageId {
        self.root
    }

    /// Number of levels (1 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The level of the root node (`height - 1`).
    pub fn root_level(&self) -> u32 {
        self.height - 1
    }

    /// Number of indexed objects.
    pub fn num_objects(&self) -> u64 {
        self.num_objects
    }

    /// The tree's dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// The tree configuration.
    pub fn config(&self) -> &RStarConfig {
        &self.config
    }

    /// The underlying page store.
    pub fn store(&self) -> &Arc<S> {
        &self.store
    }

    /// Attaches a decoded-node cache; subsequent `read_node` calls that
    /// hit it skip both the page read and the decode. The cache may be
    /// shared with other trees over the same store (page ids are
    /// store-wide). Builder-style variant of [`Self::set_node_cache`].
    pub fn with_node_cache(mut self, cache: Arc<NodeCache<Node>>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches (or replaces) a decoded-node cache.
    pub fn set_node_cache(&mut self, cache: Arc<NodeCache<Node>>) {
        self.cache = Some(cache);
    }

    /// The attached decoded-node cache, if any.
    pub fn node_cache(&self) -> Option<&Arc<NodeCache<Node>>> {
        self.cache.as_ref()
    }

    /// Store I/O counters merged with the node-cache counters: the full
    /// read-path picture for this tree.
    pub fn io_stats(&self) -> IoStats {
        let mut stats = self.store.stats();
        if let Some(cache) = &self.cache {
            let c = cache.stats();
            stats.cache_hits = c.hits;
            stats.cache_misses = c.misses;
            stats.cache_resident_bytes = c.resident_bytes as u64;
            stats.cache_byte_budget = c.byte_budget as u64;
        }
        stats.profile_reads = self.profile_reads.load(Relaxed);
        stats
    }

    /// Reads and decodes the node stored at `page`, consulting the
    /// decoded-node cache when one is attached.
    ///
    /// Returns a shared handle: a cache hit is a reference-count bump, no
    /// entry data is copied or re-decoded.
    pub fn read_node(&self, page: PageId) -> Result<Arc<Node>> {
        let dim = self.config.dim;
        match &self.cache {
            Some(cache) => cache.read_through(self.store.as_ref(), page, |bytes| {
                codec::decode_node(bytes, dim, page).map_err(RStarError::from)
            }),
            None => {
                let bytes = self.store.read(page)?;
                Ok(Arc::new(codec::decode_node(bytes, dim, page)?))
            }
        }
    }

    /// Like [`Self::read_node`], but tallies the access under
    /// `IoStats::profile_reads` so introspection walks (tree profiling,
    /// diagnostics) can be subtracted from query I/O. Goes through the
    /// decoded-node cache when one is attached, so profiling a served
    /// store never double-fetches a page the engine already decoded.
    pub fn read_node_profiled(&self, page: PageId) -> Result<Arc<Node>> {
        self.profile_reads.fetch_add(1, Relaxed);
        self.read_node(page)
    }

    /// Probes the decoded-node cache alone — no page read on a miss.
    ///
    /// The hit/miss counters advance exactly as in [`Self::read_node`],
    /// so an engine that probes here and completes misses through
    /// [`Self::decode_node_bytes`] produces the same cache statistics
    /// as one reading through. Always a miss when no cache is attached.
    pub fn cached_node(&self, page: PageId) -> Option<Arc<Node>> {
        self.cache.as_ref().and_then(|cache| cache.get(page))
    }

    /// Decodes page bytes fetched out-of-band (e.g. by a batched I/O
    /// backend) and populates the cache, completing the miss path of
    /// [`Self::cached_node`]. Together the pair is [`Self::read_node`]
    /// with the page read lifted out.
    pub fn decode_node_bytes(&self, page: PageId, bytes: bytes::Bytes) -> Result<Arc<Node>> {
        let node = Arc::new(codec::decode_node(bytes, self.config.dim, page)?);
        if let Some(cache) = &self.cache {
            cache.insert(page, Arc::clone(&node));
        }
        Ok(node)
    }

    /// Encodes and writes `node` to `page`, invalidating any cached
    /// decode so readers never see a stale node.
    pub(crate) fn write_node(&self, page: PageId, node: &Node) -> Result<()> {
        self.store
            .write(page, codec::encode_node(node, self.config.dim))?;
        if let Some(cache) = &self.cache {
            cache.invalidate(page);
        }
        Ok(())
    }

    /// Frees a page and drops any cached decode of it.
    pub(crate) fn free_node(&self, page: PageId) -> Result<()> {
        self.store.free(page)?;
        if let Some(cache) = &self.cache {
            cache.invalidate(page);
        }
        Ok(())
    }

    /// Allocates a page for a newly split node, consulting the
    /// declustering heuristic.
    ///
    /// `siblings` are the entries of the parent node (the nodes the new
    /// node will compete with during queries), given as MBR + hosting
    /// disk.
    pub(crate) fn allocate_declustered(
        &self,
        new_mbr: &Rect,
        siblings: &[(Rect, DiskId)],
    ) -> Result<PageId> {
        let pages_per_disk = self.pages_per_disk();
        let ctx = DeclusterContext {
            new_mbr,
            siblings,
            pages_per_disk: &pages_per_disk,
            num_disks: self.store.num_disks(),
        };
        let disk = self.declusterer.assign_disk(&ctx);
        Ok(self.store.allocate(disk)?)
    }

    /// Pages currently allocated per disk. Uses the store-wide counter,
    /// which is equivalent to the tree's own page distribution when the
    /// store is dedicated to one tree (the case in all experiments).
    pub(crate) fn pages_per_disk(&self) -> Vec<usize> {
        self.store.pages_per_disk()
    }

    /// Validates the tree invariants; see [`crate::validate`].
    pub fn validate(&self) -> Result<std::result::Result<(), crate::ValidationError>> {
        crate::validate::validate(self)
    }

    /// Inserts a point with its object id.
    pub fn insert(&mut self, point: Point, object: u64) -> Result<()> {
        if point.dim() != self.config.dim {
            return Err(RStarError::DimensionMismatch {
                expected: self.config.dim,
                got: point.dim(),
            });
        }
        crate::insert::insert_object(self, LeafEntry::new(point, ObjectId(object)))
    }

    /// Deletes a point/object pair. Returns `true` if it was present.
    pub fn delete(&mut self, point: &Point, object: u64) -> Result<bool> {
        if point.dim() != self.config.dim {
            return Err(RStarError::DimensionMismatch {
                expected: self.config.dim,
                got: point.dim(),
            });
        }
        crate::delete::delete_object(self, point, ObjectId(object))
    }

    /// Returns all objects within `radius` of `center` (a similarity
    /// *range* query, Definition 1 of the paper).
    pub fn range_query(&self, center: &Point, radius: f64) -> Result<Vec<LeafEntry>> {
        if center.dim() != self.config.dim {
            return Err(RStarError::DimensionMismatch {
                expected: self.config.dim,
                got: center.dim(),
            });
        }
        query::range::range_query(self, center, radius)
    }

    /// Returns all objects whose point lies in `window`.
    pub fn window_query(&self, window: &Rect) -> Result<Vec<LeafEntry>> {
        if window.dim() != self.config.dim {
            return Err(RStarError::DimensionMismatch {
                expected: self.config.dim,
                got: window.dim(),
            });
        }
        query::range::window_query(self, window)
    }

    /// Returns the `k` nearest neighbours of `center` using the optimal
    /// sequential best-first search (Hjaltason & Samet style). This is the
    /// library-quality single-disk algorithm; the disk-array algorithms
    /// (BBSS/FPSS/CRSS/WOPTSS) live in `sqda-core`.
    pub fn knn(&self, center: &Point, k: usize) -> Result<Vec<query::knn::Neighbor>> {
        if center.dim() != self.config.dim {
            return Err(RStarError::DimensionMismatch {
                expected: self.config.dim,
                got: center.dim(),
            });
        }
        query::knn::knn(self, center, k)
    }

    /// Returns a lazy stream of neighbours in increasing distance order —
    /// best-first search that reads nodes only as the iterator advances.
    ///
    /// # Panics
    ///
    /// Panics if `center`'s dimensionality differs from the tree's.
    pub fn nn_iter(&self, center: Point) -> query::knn::NnIter<'_, S> {
        assert_eq!(
            center.dim(),
            self.config.dim,
            "query dimensionality mismatch"
        );
        query::knn::NnIter::new(self, center)
    }

    /// Gathers summary statistics by traversing the whole tree.
    pub fn stats(&self) -> Result<TreeStats> {
        let mut nodes_per_level = vec![0u64; self.height as usize];
        let mut fill_sum = 0.0;
        let mut node_count = 0u64;
        let mut pages_per_disk = vec![0usize; self.store.num_disks() as usize];
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = self.read_node(page)?;
            nodes_per_level[node.level() as usize] += 1;
            let cap = if node.is_leaf() {
                self.config.max_leaf_entries
            } else {
                self.config.max_internal_entries
            };
            fill_sum += node.len() as f64 / cap as f64;
            node_count += 1;
            let placement = self.store.placement(page)?;
            pages_per_disk[placement.disk.index()] += 1;
            if !node.is_leaf() {
                stack.extend(node.internal_iter().map(|e| e.child));
            }
        }
        Ok(TreeStats {
            height: self.height,
            num_objects: self.num_objects,
            nodes_per_level,
            avg_fill: if node_count == 0 {
                0.0
            } else {
                fill_sum / node_count as f64
            },
            pages_per_disk,
        })
    }
}

impl<S: PageStore> std::fmt::Debug for RStarTree<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RStarTree")
            .field("dim", &self.config.dim)
            .field("height", &self.height)
            .field("num_objects", &self.num_objects)
            .field("root", &self.root)
            .field("declusterer", &self.declusterer.name())
            .finish()
    }
}
