//! Alternative node-split policies.
//!
//! Section 2.1 of the paper surveys the split policies of the R-tree
//! family: Guttman's exponential, quadratic and linear splits, and the
//! margin/overlap-driven R\* split the paper adopts. This module provides
//! the classic Guttman policies behind a common [`SplitPolicy`] enum so
//! their effect on similarity-search performance can be measured (the
//! `ablation_split_policy` experiment); the exponential split is omitted
//! as it is O(2^M) and of historical interest only.

use crate::split::SplitResult;
use sqda_geom::Rect;

/// Which algorithm splits an overflowing node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// The R\*-tree split: axis by minimum margin sum, distribution by
    /// minimum overlap (Beckmann et al.). The paper's choice.
    #[default]
    RStar,
    /// Guttman's quadratic split: seeds = the pair wasting the most area
    /// together; entries assigned by maximal area-preference difference.
    GuttmanQuadratic,
    /// Guttman's linear split: seeds = the pair with the greatest
    /// normalized separation along any axis; remaining entries assigned
    /// by least enlargement.
    GuttmanLinear,
}

impl SplitPolicy {
    /// Splits `mbrs` into two groups of at least `m` entries each.
    ///
    /// # Panics
    ///
    /// Panics if `mbrs.len() < 2 * m` or `m == 0`.
    pub fn split(self, mbrs: &[Rect], m: usize) -> SplitResult {
        match self {
            SplitPolicy::RStar => crate::split::rstar_split(mbrs, m),
            SplitPolicy::GuttmanQuadratic => quadratic_split(mbrs, m),
            SplitPolicy::GuttmanLinear => linear_split(mbrs, m),
        }
    }

    /// Short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            SplitPolicy::RStar => "rstar",
            SplitPolicy::GuttmanQuadratic => "quadratic",
            SplitPolicy::GuttmanLinear => "linear",
        }
    }
}

fn validate(mbrs: &[Rect], m: usize) {
    assert!(m >= 1, "minimum fill must be at least 1");
    assert!(
        mbrs.len() >= 2 * m,
        "cannot split {} entries with minimum fill {m}",
        mbrs.len()
    );
}

/// Guttman's PickSeeds (quadratic): the pair whose covering rectangle
/// wastes the most area.
fn quadratic_seeds(mbrs: &[Rect]) -> (usize, usize) {
    let mut worst = (0usize, 1usize);
    let mut worst_waste = f64::NEG_INFINITY;
    for i in 0..mbrs.len() {
        for j in (i + 1)..mbrs.len() {
            let waste = mbrs[i].union(&mbrs[j]).area() - mbrs[i].area() - mbrs[j].area();
            if waste > worst_waste {
                worst_waste = waste;
                worst = (i, j);
            }
        }
    }
    worst
}

/// Guttman's quadratic split.
fn quadratic_split(mbrs: &[Rect], m: usize) -> SplitResult {
    validate(mbrs, m);
    let n = mbrs.len();
    let (s1, s2) = quadratic_seeds(mbrs);
    let mut g1 = vec![s1];
    let mut g2 = vec![s2];
    let mut bb1 = mbrs[s1].clone();
    let mut bb2 = mbrs[s2].clone();
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != s1 && i != s2).collect();

    while !remaining.is_empty() {
        // Force-assign when one group must take everything left to make
        // its minimum.
        if g1.len() + remaining.len() == m {
            for i in remaining.drain(..) {
                bb1.union_in_place(&mbrs[i]);
                g1.push(i);
            }
            break;
        }
        if g2.len() + remaining.len() == m {
            for i in remaining.drain(..) {
                bb2.union_in_place(&mbrs[i]);
                g2.push(i);
            }
            break;
        }
        // PickNext: the entry with the greatest preference difference.
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let d1 = bb1.enlargement(&mbrs[i]);
                let d2 = bb2.enlargement(&mbrs[i]);
                (pos, (d1 - d2).abs())
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("remaining non-empty");
        let i = remaining.swap_remove(pos);
        let d1 = bb1.enlargement(&mbrs[i]);
        let d2 = bb2.enlargement(&mbrs[i]);
        // Ties: smaller area, then fewer entries.
        let to_g1 = match d1.partial_cmp(&d2).expect("finite") {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => (bb1.area(), g1.len()) <= (bb2.area(), g2.len()),
        };
        if to_g1 {
            bb1.union_in_place(&mbrs[i]);
            g1.push(i);
        } else {
            bb2.union_in_place(&mbrs[i]);
            g2.push(i);
        }
    }
    SplitResult {
        group1: g1,
        group2: g2,
    }
}

/// Guttman's linear PickSeeds: greatest normalized separation.
fn linear_seeds(mbrs: &[Rect]) -> (usize, usize) {
    let dim = mbrs[0].dim();
    let mut best = (0usize, 1usize);
    let mut best_sep = f64::NEG_INFINITY;
    for d in 0..dim {
        // Entry with the highest low side and entry with the lowest high
        // side.
        let (mut hi_lo_idx, mut lo_hi_idx) = (0usize, 0usize);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (i, r) in mbrs.iter().enumerate() {
            if r.lo()[d] > mbrs[hi_lo_idx].lo()[d] {
                hi_lo_idx = i;
            }
            if r.hi()[d] < mbrs[lo_hi_idx].hi()[d] {
                lo_hi_idx = i;
            }
            lo = lo.min(r.lo()[d]);
            hi = hi.max(r.hi()[d]);
        }
        let width = (hi - lo).max(f64::MIN_POSITIVE);
        let sep = (mbrs[hi_lo_idx].lo()[d] - mbrs[lo_hi_idx].hi()[d]) / width;
        if sep > best_sep && hi_lo_idx != lo_hi_idx {
            best_sep = sep;
            best = (lo_hi_idx, hi_lo_idx);
        }
    }
    best
}

/// Guttman's linear split.
fn linear_split(mbrs: &[Rect], m: usize) -> SplitResult {
    validate(mbrs, m);
    let n = mbrs.len();
    let (s1, s2) = linear_seeds(mbrs);
    let mut g1 = vec![s1];
    let mut g2 = vec![s2];
    let mut bb1 = mbrs[s1].clone();
    let mut bb2 = mbrs[s2].clone();
    #[allow(clippy::needless_range_loop)] // index arithmetic below needs `i`
    for i in 0..n {
        if i == s1 || i == s2 {
            continue;
        }
        let left = n - 1 - g1.len() - g2.len() + 1; // including i
        if g1.len() + left == m {
            bb1.union_in_place(&mbrs[i]);
            g1.push(i);
            continue;
        }
        if g2.len() + left == m {
            bb2.union_in_place(&mbrs[i]);
            g2.push(i);
            continue;
        }
        let d1 = bb1.enlargement(&mbrs[i]);
        let d2 = bb2.enlargement(&mbrs[i]);
        if (d1, bb1.area(), g1.len()) <= (d2, bb2.area(), g2.len()) {
            bb1.union_in_place(&mbrs[i]);
            g1.push(i);
        } else {
            bb2.union_in_place(&mbrs[i]);
            g2.push(i);
        }
    }
    SplitResult {
        group1: g1,
        group2: g2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Rect {
        Rect::new(vec![x, y], vec![x, y]).unwrap()
    }

    fn check_split(policy: SplitPolicy, mbrs: &[Rect], m: usize) {
        let r = policy.split(mbrs, m);
        assert!(
            r.group1.len() >= m,
            "{policy:?}: g1 {} < {m}",
            r.group1.len()
        );
        assert!(
            r.group2.len() >= m,
            "{policy:?}: g2 {} < {m}",
            r.group2.len()
        );
        let mut all: Vec<usize> = r.group1.iter().chain(&r.group2).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..mbrs.len()).collect::<Vec<_>>(), "{policy:?}");
    }

    #[test]
    fn all_policies_satisfy_fill_invariants() {
        let mbrs: Vec<Rect> = (0..13)
            .map(|i| pt((i * 7 % 13) as f64, (i * 5 % 11) as f64))
            .collect();
        for policy in [
            SplitPolicy::RStar,
            SplitPolicy::GuttmanQuadratic,
            SplitPolicy::GuttmanLinear,
        ] {
            for m in [1usize, 3, 5, 6] {
                check_split(policy, &mbrs, m);
            }
        }
    }

    #[test]
    fn quadratic_separates_clusters() {
        // Two 2-d clusters with real spread (degenerate collinear layouts
        // give the area heuristic no signal, by design).
        let mut mbrs = Vec::new();
        for i in 0..5 {
            mbrs.push(pt(i as f64 * 0.3, (i % 2) as f64));
            mbrs.push(pt(100.0 + i as f64 * 0.3, (i % 3) as f64));
        }
        let r = quadratic_split(&mbrs, 3);
        let g1_near = r.group1.iter().filter(|&&i| mbrs[i].lo()[0] < 50.0).count();
        // One group must be entirely one cluster.
        assert!(
            g1_near == 0 || g1_near == r.group1.len(),
            "group1 mixes clusters: {r:?}"
        );
    }

    #[test]
    fn linear_separates_clusters() {
        // Distinct coordinates everywhere: Guttman's area-based
        // assignment is blind to growth along a zero-width dimension, so
        // shared coordinates would let it mix clusters "for free".
        let mut mbrs = Vec::new();
        for i in 0..6 {
            mbrs.push(pt(0.37 * i as f64 + 0.1, i as f64 + 0.5));
            mbrs.push(pt(0.41 * i as f64 + 0.2, 1000.0 + 1.3 * i as f64));
        }
        let r = linear_split(&mbrs, 4);
        let g1_low = r
            .group1
            .iter()
            .filter(|&&i| mbrs[i].lo()[1] < 500.0)
            .count();
        assert!(
            g1_low == 0 || g1_low == r.group1.len(),
            "group1 mixes clusters: {r:?}"
        );
    }

    #[test]
    fn identical_rects_still_split_legally() {
        let mbrs: Vec<Rect> = (0..10).map(|_| pt(1.0, 1.0)).collect();
        for policy in [SplitPolicy::GuttmanQuadratic, SplitPolicy::GuttmanLinear] {
            check_split(policy, &mbrs, 4);
        }
    }

    #[test]
    fn names() {
        assert_eq!(SplitPolicy::RStar.name(), "rstar");
        assert_eq!(SplitPolicy::GuttmanQuadratic.name(), "quadratic");
        assert_eq!(SplitPolicy::GuttmanLinear.name(), "linear");
        assert_eq!(SplitPolicy::default(), SplitPolicy::RStar);
    }
}
