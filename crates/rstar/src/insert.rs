//! R\*-tree insertion: ChooseSubtree, OverflowTreatment (forced
//! reinsertion), split propagation and count maintenance.
//!
//! Structure modification thaws the flat [`Node`] into its entry-vector
//! form [`NodeMut`], edits, and freezes back before writing — insertion
//! is cold next to the query paths, which stay zero-copy.

use crate::entry::{InternalEntry, LeafEntry};
use crate::node::{Node, NodeMut};
use crate::split::reinsert_victims;
use crate::tree::{RStarTree, Result};
use sqda_geom::Rect;
use sqda_storage::{PageId, PageStore};

/// An entry to (re)insert, at leaf or internal level.
pub(crate) enum EntryToInsert {
    Leaf(LeafEntry),
    Internal(InternalEntry),
}

impl EntryToInsert {
    pub(crate) fn mbr(&self) -> Rect {
        match self {
            EntryToInsert::Leaf(e) => e.mbr(),
            EntryToInsert::Internal(e) => e.mbr.clone(),
        }
    }
}

/// One step of a root-to-node path.
#[derive(Debug, Clone, Copy)]
struct PathStep {
    page: PageId,
    /// This node's entry index within its parent (`None` for the root).
    index_in_parent: Option<usize>,
}

/// Inserts one data object (public entry point, called from
/// [`RStarTree::insert`]).
pub(crate) fn insert_object<S: PageStore>(tree: &mut RStarTree<S>, entry: LeafEntry) -> Result<()> {
    let mut overflow_done = vec![false; tree.height as usize];
    insert_at_level(tree, EntryToInsert::Leaf(entry), 0, &mut overflow_done)?;
    tree.num_objects += 1;
    Ok(())
}

/// Inserts an entry into a node at `target_level`, handling overflow by
/// forced reinsertion (once per level per logical insertion) or splitting.
pub(crate) fn insert_at_level<S: PageStore>(
    tree: &mut RStarTree<S>,
    entry: EntryToInsert,
    target_level: u32,
    overflow_done: &mut Vec<bool>,
) -> Result<()> {
    if overflow_done.len() < tree.height as usize {
        overflow_done.resize(tree.height as usize, false);
    }
    let path = choose_path(tree, &entry.mbr(), target_level)?;
    let mut path_idx = path.len() - 1;
    let mut page = path[path_idx].page;
    let mut node = tree.read_node(page)?.to_mut();
    add_entry(&mut node, entry);
    let mut level = target_level;

    loop {
        let max = node_capacity(tree, &node);
        if node.len() <= max {
            tree.write_node(page, &node.freeze())?;
            propagate_up(tree, &path[..=path_idx])?;
            return Ok(());
        }

        let is_root = page == tree.root;
        if !is_root && !overflow_done[level as usize] {
            // OverflowTreatment: forced reinsertion, once per level.
            overflow_done[level as usize] = true;
            let p = if node.is_leaf() {
                tree.config.leaf_reinsert_count()
            } else {
                tree.config.internal_reinsert_count()
            };
            let removed = evict_entries(&mut node, p);
            tree.write_node(page, &node.freeze())?;
            propagate_up(tree, &path[..=path_idx])?;
            // Close reinsert: victims come in decreasing distance order;
            // reinsert starting from the closest.
            for e in removed.into_iter().rev() {
                insert_at_level(tree, e, level, overflow_done)?;
            }
            return Ok(());
        }

        // Split.
        let (keep, moved) = split_node(tree, &node);
        let parent_siblings = if is_root {
            Vec::new()
        } else {
            sibling_disks(tree, path[path_idx - 1].page)?
        };
        let new_mbr = moved.mbr().expect("split group is non-empty");
        let new_page = tree.allocate_declustered(&new_mbr, &parent_siblings)?;
        tree.write_node(page, &keep)?;
        tree.write_node(new_page, &moved)?;

        let keep_entry = InternalEntry::new(
            keep.mbr().expect("split group is non-empty"),
            page,
            keep.object_count(),
        );
        let moved_entry = InternalEntry::new(new_mbr, new_page, moved.object_count());

        if is_root {
            // Grow the tree: a new root above the two halves.
            let new_level = level + 1;
            let root_node = Node::from_internal_entries(new_level, &[keep_entry, moved_entry]);
            let root_mbr = root_node.mbr().expect("root has entries");
            let root_page = tree.allocate_declustered(&root_mbr, &[])?;
            tree.write_node(root_page, &root_node)?;
            tree.root = root_page;
            tree.height += 1;
            overflow_done.resize(tree.height as usize, false);
            return Ok(());
        }

        // Update the parent: refresh this node's entry, add the new one.
        path_idx -= 1;
        page = path[path_idx].page;
        let child_idx = path[path_idx + 1]
            .index_in_parent
            .expect("non-root path step has a parent index");
        node = tree.read_node(page)?.to_mut();
        match &mut node {
            NodeMut::Internal { entries, .. } => {
                entries[child_idx] = keep_entry;
                entries.push(moved_entry);
            }
            NodeMut::Leaf { .. } => unreachable!("parent of a split node is internal"),
        }
        level += 1;
    }
}

/// Descends from the root to a node at `target_level`, applying the R\*
/// ChooseSubtree rule at every step.
fn choose_path<S: PageStore>(
    tree: &RStarTree<S>,
    mbr: &Rect,
    target_level: u32,
) -> Result<Vec<PathStep>> {
    let mut path = vec![PathStep {
        page: tree.root,
        index_in_parent: None,
    }];
    let mut page = tree.root;
    let mut node = tree.read_node(page)?;
    debug_assert!(
        target_level <= node.level(),
        "target level {target_level} above root level {}",
        node.level()
    );
    while node.level() > target_level {
        let rects = node.internal_rects();
        let idx = choose_subtree(&rects, mbr, node.level());
        page = node.internal_child(idx);
        path.push(PathStep {
            page,
            index_in_parent: Some(idx),
        });
        node = tree.read_node(page)?;
    }
    Ok(path)
}

/// The R\* ChooseSubtree rule over the candidate children's MBRs.
/// `node_level` is the level of the node whose entries we are choosing
/// among (children live at `node_level - 1`).
///
/// * Children are leaves → minimize overlap enlargement, ties by area
///   enlargement then area. Following the R\* paper, when the node is
///   large the overlap test only considers the 32 entries with the least
///   area enlargement.
/// * Otherwise → minimize area enlargement, ties by area.
fn choose_subtree(rects: &[Rect], mbr: &Rect, node_level: u32) -> usize {
    debug_assert!(!rects.is_empty());
    if node_level == 1 {
        // Children are leaves: overlap-enlargement rule.
        const CANDIDATES: usize = 32;
        let mut by_area_enlargement: Vec<usize> = (0..rects.len()).collect();
        if rects.len() > CANDIDATES {
            by_area_enlargement.sort_by(|&a, &b| {
                let ea = rects[a].enlargement(mbr);
                let eb = rects[b].enlargement(mbr);
                ea.partial_cmp(&eb).expect("finite").then(a.cmp(&b))
            });
            by_area_enlargement.truncate(CANDIDATES);
        }
        let mut best = by_area_enlargement[0];
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for &i in &by_area_enlargement {
            let enlarged = rects[i].union(mbr);
            let mut overlap_delta = 0.0;
            for (j, other) in rects.iter().enumerate() {
                if j == i {
                    continue;
                }
                overlap_delta +=
                    enlarged.intersection_area(other) - rects[i].intersection_area(other);
            }
            let key = (overlap_delta, rects[i].enlargement(mbr), rects[i].area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    } else {
        let mut best = 0;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for (i, r) in rects.iter().enumerate() {
            let key = (r.enlargement(mbr), r.area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }
}

/// Adds an entry to a node.
///
/// # Panics
///
/// Panics if the entry kind does not match the node kind.
fn add_entry(node: &mut NodeMut, entry: EntryToInsert) {
    match (node, entry) {
        (NodeMut::Leaf { entries }, EntryToInsert::Leaf(e)) => entries.push(e),
        (NodeMut::Internal { entries, .. }, EntryToInsert::Internal(e)) => entries.push(e),
        _ => panic!("entry kind does not match node kind"),
    }
}

fn node_capacity<S: PageStore>(tree: &RStarTree<S>, node: &NodeMut) -> usize {
    if node.is_leaf() {
        tree.config.max_leaf_entries
    } else {
        tree.config.max_internal_entries
    }
}

/// Removes the `p` reinsertion victims from the node, returning them in
/// decreasing center-distance order.
fn evict_entries(node: &mut NodeMut, p: usize) -> Vec<EntryToInsert> {
    let mbrs: Vec<Rect> = match node {
        NodeMut::Leaf { entries } => entries.iter().map(|e| e.mbr()).collect(),
        NodeMut::Internal { entries, .. } => entries.iter().map(|e| e.mbr.clone()).collect(),
    };
    let victims = reinsert_victims(&mbrs, p);
    // Remove by descending index so earlier removals don't shift later ones.
    let mut sorted = victims.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut removed_by_index: Vec<(usize, EntryToInsert)> = Vec::with_capacity(p);
    for idx in sorted {
        let e = match node {
            NodeMut::Leaf { entries } => EntryToInsert::Leaf(entries.swap_remove(idx)),
            NodeMut::Internal { entries, .. } => EntryToInsert::Internal(entries.swap_remove(idx)),
        };
        removed_by_index.push((idx, e));
    }
    // Restore the original (decreasing-distance) victim order.
    let mut out: Vec<Option<EntryToInsert>> = Vec::new();
    out.resize_with(victims.len(), || None);
    for (idx, e) in removed_by_index {
        let pos = victims
            .iter()
            .position(|&v| v == idx)
            .expect("victim index");
        out[pos] = Some(e);
    }
    out.into_iter()
        .map(|e| e.expect("all victims placed"))
        .collect()
}

/// Splits an overflowing node, returning `(keep, moved)` nodes in frozen
/// (flat) form, ready to write.
fn split_node<S: PageStore>(tree: &RStarTree<S>, node: &NodeMut) -> (Node, Node) {
    let m = if node.is_leaf() {
        tree.config.min_leaf_entries()
    } else {
        tree.config.min_internal_entries()
    };
    let policy = tree.config.split_policy;
    match node {
        NodeMut::Leaf { entries } => {
            let mbrs: Vec<Rect> = entries.iter().map(|e| e.mbr()).collect();
            let split = policy.split(&mbrs, m);
            let pick = |idx: &[usize]| {
                Node::from_leaf_entries(
                    &idx.iter().map(|&i| entries[i].clone()).collect::<Vec<_>>(),
                )
            };
            (pick(&split.group1), pick(&split.group2))
        }
        NodeMut::Internal { level, entries } => {
            let mbrs: Vec<Rect> = entries.iter().map(|e| e.mbr.clone()).collect();
            let split = policy.split(&mbrs, m);
            let pick = |idx: &[usize]| {
                Node::from_internal_entries(
                    *level,
                    &idx.iter().map(|&i| entries[i].clone()).collect::<Vec<_>>(),
                )
            };
            (pick(&split.group1), pick(&split.group2))
        }
    }
}

/// The MBRs and hosting disks of a node's entries (context for the
/// declustering heuristic).
fn sibling_disks<S: PageStore>(
    tree: &RStarTree<S>,
    parent_page: PageId,
) -> Result<Vec<(Rect, sqda_storage::DiskId)>> {
    let parent = tree.read_node(parent_page)?;
    let mut out = Vec::with_capacity(parent.len());
    for e in parent.internal_iter() {
        let placement = tree.store.placement(e.child)?;
        out.push((e.mbr.to_rect(), placement.disk));
    }
    Ok(out)
}

/// Recomputes MBRs and subtree counts along a root-to-node path, bottom
/// up, after the node at the end of the path has been written.
pub(crate) fn propagate_up<S: PageStore, P: PathStepLike>(
    tree: &RStarTree<S>,
    path: &[P],
) -> Result<()> {
    for i in (1..path.len()).rev() {
        let child = tree.read_node(path[i].page())?;
        let parent_page = path[i - 1].page();
        let mut parent = tree.read_node(parent_page)?.to_mut();
        let idx = path[i].index_in_parent().expect("non-root step");
        match &mut parent {
            NodeMut::Internal { entries, .. } => {
                let e = &mut entries[idx];
                debug_assert_eq!(e.child, path[i].page());
                e.mbr = child
                    .mbr()
                    .expect("tree nodes below the root are non-empty");
                e.count = child.object_count();
            }
            NodeMut::Leaf { .. } => unreachable!("path interior nodes are internal"),
        }
        tree.write_node(parent_page, &parent.freeze())?;
    }
    Ok(())
}

/// Minimal view of a path step, so `propagate_up` is reusable by the
/// deletion code which builds its own path representation.
pub(crate) trait PathStepLike {
    fn page(&self) -> PageId;
    fn index_in_parent(&self) -> Option<usize>;
}

impl PathStepLike for PathStep {
    fn page(&self) -> PageId {
        self.page
    }
    fn index_in_parent(&self) -> Option<usize> {
        self.index_in_parent
    }
}

impl PathStepLike for (PageId, Option<usize>) {
    fn page(&self) -> PageId {
        self.0
    }
    fn index_in_parent(&self) -> Option<usize> {
        self.1
    }
}
