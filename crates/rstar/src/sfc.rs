//! Space-filling-curve orderings: Z-order (Morton) in any dimension and
//! the Hilbert curve in 2-d.
//!
//! The paper cites the Hilbert R-tree (Kamel & Faloutsos, VLDB'94) among
//! the split-policy refinements of the R-tree family. Its essential
//! ingredient — a total order on points that preserves spatial locality —
//! is also the basis of curve-ordered tree packing, provided here as an
//! alternative to STR bulk loading ([`crate::RStarTree::bulk_load_ordered`]).

use sqda_geom::Point;

/// Bits of precision per dimension used when quantizing coordinates.
const BITS: u32 = 16;

/// Quantizes a coordinate into `[0, 2^BITS)` given the data bounds.
fn quantize(value: f64, lo: f64, hi: f64) -> u64 {
    if hi <= lo {
        return 0;
    }
    let t = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
    let max = (1u64 << BITS) - 1;
    (t * max as f64).round() as u64
}

/// The Morton (Z-order) key of a point, interleaving `BITS` bits of each
/// quantized coordinate. Works in any dimension (up to 8 dimensions fit
/// a `u128`).
///
/// # Panics
///
/// Panics if `dim > 8` (the key would overflow 128 bits).
pub fn morton_key(point: &Point, lo: &[f64], hi: &[f64]) -> u128 {
    morton_key_slice(point.coords(), lo, hi)
}

/// [`morton_key`] over a raw coordinate slice (the external builder's
/// spill records carry bare coordinates, not [`Point`]s).
pub(crate) fn morton_key_slice(coords: &[f64], lo: &[f64], hi: &[f64]) -> u128 {
    let dim = coords.len();
    assert!(dim <= 8, "Morton keys support up to 8 dimensions");
    let quantized: Vec<u64> = (0..dim)
        .map(|d| quantize(coords[d], lo[d], hi[d]))
        .collect();
    let mut key: u128 = 0;
    for bit in (0..BITS).rev() {
        for q in &quantized {
            key = (key << 1) | (((q >> bit) & 1) as u128);
        }
    }
    key
}

/// The Hilbert-curve key of a 2-d point (order-`BITS` curve), using the
/// classic rotate-and-reflect construction.
///
/// # Panics
///
/// Panics unless the point is 2-dimensional.
pub fn hilbert_key_2d(point: &Point, lo: &[f64], hi: &[f64]) -> u64 {
    hilbert_key_2d_slice(point.coords(), lo, hi)
}

/// [`hilbert_key_2d`] over a raw coordinate slice.
pub(crate) fn hilbert_key_2d_slice(coords: &[f64], lo: &[f64], hi: &[f64]) -> u64 {
    assert_eq!(coords.len(), 2, "Hilbert keys are 2-d only");
    let n: u64 = 1 << BITS;
    let mut x = quantize(coords[0], lo[0], hi[0]);
    let mut y = quantize(coords[1], lo[1], hi[1]);
    let mut d: u64 = 0;
    let mut s = n / 2;
    while s > 0 {
        let rx = u64::from((x & s) > 0);
        let ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate/reflect the quadrant (canonical xy2d step).
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p2(x: f64, y: f64) -> Point {
        Point::new(vec![x, y])
    }

    #[test]
    fn quantize_bounds() {
        assert_eq!(quantize(0.0, 0.0, 1.0), 0);
        assert_eq!(quantize(1.0, 0.0, 1.0), (1 << BITS) - 1);
        assert_eq!(quantize(-5.0, 0.0, 1.0), 0); // clamped
        assert_eq!(quantize(0.5, 0.5, 0.5), 0); // degenerate range
    }

    #[test]
    fn morton_orders_quadrants() {
        let lo = [0.0, 0.0];
        let hi = [1.0, 1.0];
        // The four quadrant corners follow Z order: (0,0) < (1,0)-ish
        // interleaving: x bit is more significant in our interleave
        // (first dimension first).
        let k00 = morton_key(&p2(0.1, 0.1), &lo, &hi);
        let k01 = morton_key(&p2(0.1, 0.9), &lo, &hi);
        let k10 = morton_key(&p2(0.9, 0.1), &lo, &hi);
        let k11 = morton_key(&p2(0.9, 0.9), &lo, &hi);
        assert!(k00 < k01 && k01 < k10 && k10 < k11);
    }

    #[test]
    fn morton_locality() {
        let lo = [0.0, 0.0];
        let hi = [1.0, 1.0];
        let a = morton_key(&p2(0.30, 0.30), &lo, &hi);
        let near = morton_key(&p2(0.30001, 0.30001), &lo, &hi);
        let far = morton_key(&p2(0.95, 0.95), &lo, &hi);
        assert!(a.abs_diff(near) < a.abs_diff(far));
    }

    #[test]
    fn morton_high_dim() {
        let dim = 8;
        let lo = vec![0.0; dim];
        let hi = vec![1.0; dim];
        let a = morton_key(&Point::splat(dim, 0.1), &lo, &hi);
        let b = morton_key(&Point::splat(dim, 0.9), &lo, &hi);
        assert!(a < b);
    }

    #[test]
    #[should_panic(expected = "up to 8 dimensions")]
    fn morton_too_many_dims() {
        let dim = 9;
        morton_key(&Point::splat(dim, 0.5), &vec![0.0; dim], &vec![1.0; dim]);
    }

    #[test]
    fn hilbert_keys_are_distinct_and_local() {
        let lo = [0.0, 0.0];
        let hi = [1.0, 1.0];
        // Distinctness over a grid.
        let mut keys = std::collections::HashSet::new();
        for gx in 0..32 {
            for gy in 0..32 {
                let k = hilbert_key_2d(&p2(gx as f64 / 32.0, gy as f64 / 32.0), &lo, &hi);
                assert!(keys.insert(k), "duplicate key at ({gx},{gy})");
            }
        }
        // Locality: walking the curve, consecutive grid cells along the
        // curve are spatial neighbours. Check the converse cheaply: the
        // average key distance of spatial neighbours is far below that of
        // random pairs.
        let key = |x: f64, y: f64| hilbert_key_2d(&p2(x, y), &lo, &hi) as f64;
        let mut neighbour = 0.0;
        let mut random = 0.0;
        let mut count = 0.0;
        for i in 0..31 {
            let x = i as f64 / 32.0;
            neighbour += (key(x, 0.5) - key(x + 1.0 / 32.0, 0.5)).abs();
            random += (key(x, 0.5) - key(1.0 - x, 1.0 - x)).abs();
            count += 1.0;
        }
        assert!(neighbour / count < random / count);
    }

    #[test]
    fn hilbert_first_quadrant_is_smallest() {
        let lo = [0.0, 0.0];
        let hi = [1.0, 1.0];
        let k_origin = hilbert_key_2d(&p2(0.01, 0.01), &lo, &hi);
        for (x, y) in [(0.9, 0.1), (0.9, 0.9), (0.1, 0.9)] {
            assert!(k_origin < hilbert_key_2d(&p2(x, y), &lo, &hi));
        }
    }
}
