//! Tree configuration and node-capacity computation.

use crate::codec;
use crate::split_policy::SplitPolicy;

/// Configuration of an R\*-tree.
///
/// Node capacities are derived from the page size and dimensionality so
/// that every node fits in exactly one disk page, but they can be
/// overridden (smaller) to force deep trees in tests.
#[derive(Debug, Clone, PartialEq)]
pub struct RStarConfig {
    /// Dimensionality of the indexed points.
    pub dim: usize,
    /// Page size the nodes must fit in, bytes.
    pub page_size: usize,
    /// Maximum entries in an internal node.
    pub max_internal_entries: usize,
    /// Maximum entries in a leaf node.
    pub max_leaf_entries: usize,
    /// Minimum fill fraction (R\*: 40%).
    pub min_fill_fraction: f64,
    /// Fraction of entries removed on forced reinsertion (R\*: 30%).
    pub reinsert_fraction: f64,
    /// Which algorithm splits overflowing nodes (default: the R\* split).
    pub split_policy: SplitPolicy,
}

impl RStarConfig {
    /// Creates a configuration for `dim`-dimensional points with the
    /// default 4 KiB page size.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is 0 or the page is too small to hold even a
    /// handful of entries.
    pub fn new(dim: usize) -> Self {
        Self::with_page_size(dim, sqda_storage::DEFAULT_PAGE_SIZE)
    }

    /// Creates a configuration with an explicit page size.
    pub fn with_page_size(dim: usize, page_size: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        let max_internal = (page_size - codec::HEADER_SIZE) / codec::internal_entry_size(dim);
        let max_leaf = (page_size - codec::HEADER_SIZE) / codec::leaf_entry_size(dim);
        assert!(
            max_internal >= 4 && max_leaf >= 4,
            "page size {page_size} too small for {dim}-d nodes"
        );
        Self {
            dim,
            page_size,
            max_internal_entries: max_internal,
            max_leaf_entries: max_leaf,
            min_fill_fraction: 0.4,
            reinsert_fraction: 0.3,
            split_policy: SplitPolicy::default(),
        }
    }

    /// Selects the node-split policy (default: [`SplitPolicy::RStar`]).
    pub fn with_split_policy(mut self, policy: SplitPolicy) -> Self {
        self.split_policy = policy;
        self
    }

    /// Caps both node capacities at `max` (for tests that need deep trees
    /// from few points). The capacities stay within what the page can
    /// hold.
    ///
    /// # Panics
    ///
    /// Panics if `max < 4`: R\*-tree splits need at least 4 entries.
    pub fn with_max_entries(mut self, max: usize) -> Self {
        assert!(max >= 4, "nodes need at least 4 entries to split");
        self.max_internal_entries = self.max_internal_entries.min(max);
        self.max_leaf_entries = self.max_leaf_entries.min(max);
        self
    }

    /// Minimum entries in an internal node.
    pub fn min_internal_entries(&self) -> usize {
        min_fill(self.max_internal_entries, self.min_fill_fraction)
    }

    /// Minimum entries in a leaf node.
    pub fn min_leaf_entries(&self) -> usize {
        min_fill(self.max_leaf_entries, self.min_fill_fraction)
    }

    /// Number of entries evicted by forced reinsertion of an internal
    /// node.
    pub fn internal_reinsert_count(&self) -> usize {
        reinsert_count(self.max_internal_entries, self.reinsert_fraction)
    }

    /// Number of entries evicted by forced reinsertion of a leaf node.
    pub fn leaf_reinsert_count(&self) -> usize {
        reinsert_count(self.max_leaf_entries, self.reinsert_fraction)
    }
}

fn min_fill(max: usize, fraction: f64) -> usize {
    // At least 2 so splits produce non-degenerate nodes; at most max/2 so
    // a split of max+1 entries can satisfy both halves.
    (((max as f64) * fraction).round() as usize).clamp(2, max / 2)
}

fn reinsert_count(max: usize, fraction: f64) -> usize {
    // At least 1, and leave at least min_fill entries in the node.
    (((max as f64) * fraction).round() as usize).clamp(1, max.saturating_sub(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_for_2d_default_page() {
        let c = RStarConfig::new(2);
        // internal entry: 2*2*8 + 8 + 8 = 48; (4096-16)/48 = 85
        assert_eq!(c.max_internal_entries, 85);
        // leaf entry: 2*8 + 8 = 24; (4096-16)/24 = 170
        assert_eq!(c.max_leaf_entries, 170);
        assert_eq!(c.min_internal_entries(), 34);
        assert_eq!(c.min_leaf_entries(), 68);
    }

    #[test]
    fn capacities_for_10d() {
        let c = RStarConfig::new(10);
        // internal entry: 2*10*8 + 16 = 176; (4096-16)/176 = 23
        assert_eq!(c.max_internal_entries, 23);
        // leaf entry: 80 + 8 = 88; (4096-16)/88 = 46
        assert_eq!(c.max_leaf_entries, 46);
    }

    #[test]
    fn override_caps_for_tests() {
        let c = RStarConfig::new(2).with_max_entries(4);
        assert_eq!(c.max_internal_entries, 4);
        assert_eq!(c.max_leaf_entries, 4);
        assert_eq!(c.min_internal_entries(), 2);
        assert_eq!(c.leaf_reinsert_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_override_panics() {
        let _ = RStarConfig::new(2).with_max_entries(3);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_page_panics() {
        let _ = RStarConfig::with_page_size(10, 64);
    }

    #[test]
    fn min_fill_leaves_room_for_split() {
        for max in [4usize, 5, 10, 23, 85, 170] {
            let m = min_fill(max, 0.4);
            // A node with max+1 entries must split into two nodes of ≥ m.
            assert!(2 * m <= max + 1, "max={max} m={m}");
            assert!(m >= 2);
        }
    }

    #[test]
    fn reinsert_count_reasonable() {
        let c = RStarConfig::new(2);
        let p = c.leaf_reinsert_count();
        assert_eq!(p, (170.0f64 * 0.3).round() as usize);
        assert!(p < c.max_leaf_entries);
    }
}
