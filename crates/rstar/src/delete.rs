//! Deletion: FindLeaf + CondenseTree with orphan reinsertion.

use crate::entry::{LeafEntry, ObjectId};
use crate::insert::{insert_at_level, propagate_up, EntryToInsert};
use crate::node::{Node, NodeMut};
use crate::tree::{RStarTree, Result};
use sqda_geom::Point;
use sqda_storage::{PageId, PageStore};

/// Deletes one `(point, object)` pair. Returns `false` if not present.
pub(crate) fn delete_object<S: PageStore>(
    tree: &mut RStarTree<S>,
    point: &Point,
    object: ObjectId,
) -> Result<bool> {
    // FindLeaf: DFS into every subtree whose MBR contains the point.
    let Some(path) = find_leaf(tree, tree.root, point, object)? else {
        return Ok(false);
    };

    // Remove the entry from the leaf.
    let leaf_page = path.last().expect("path reaches a leaf").0;
    let mut leaf = tree.read_node(leaf_page)?.to_mut();
    match &mut leaf {
        NodeMut::Leaf { entries } => {
            let idx = entries
                .iter()
                .position(|e| e.object == object && e.point == *point)
                .expect("find_leaf located the entry");
            entries.remove(idx);
        }
        NodeMut::Internal { .. } => unreachable!("path ends at a leaf"),
    }
    tree.write_node(leaf_page, &leaf.freeze())?;

    // CondenseTree: walk upward; underfull non-root nodes are dissolved
    // and their entries reinserted.
    let mut orphans: Vec<(u32, EntryToInsert)> = Vec::new();
    let mut path = path;
    loop {
        let (page, _) = *path.last().expect("path non-empty");
        let node = tree.read_node(page)?;
        let is_root = page == tree.root;
        let min = if node.is_leaf() {
            tree.config.min_leaf_entries()
        } else {
            tree.config.min_internal_entries()
        };
        if !is_root && node.len() < min {
            // Dissolve: remove from parent, orphan the entries.
            let level = node.level();
            if node.is_leaf() {
                orphans.extend(
                    node.leaf_entries_vec()
                        .into_iter()
                        .map(|e| (level, EntryToInsert::Leaf(e))),
                );
            } else {
                orphans.extend(
                    node.internal_entries_vec()
                        .into_iter()
                        .map(|e| (level, EntryToInsert::Internal(e))),
                );
            }
            let (_, idx_opt) = path.pop().expect("non-root has a parent step");
            let idx = idx_opt.expect("non-root step has parent index");
            let parent_page = path.last().expect("parent exists").0;
            let mut parent = tree.read_node(parent_page)?.to_mut();
            match &mut parent {
                NodeMut::Internal { entries, .. } => {
                    entries.remove(idx);
                }
                NodeMut::Leaf { .. } => unreachable!("parents are internal"),
            }
            tree.write_node(parent_page, &parent.freeze())?;
            tree.free_node(page)?;
            // Parent indices of deeper path steps are now stale, but the
            // loop only ever looks at the tail of the path, which we just
            // rebuilt. Continue condensing at the parent.
            continue;
        }
        // Node is healthy (or root): refresh ancestors' MBRs/counts.
        if !is_root {
            propagate_up(tree, &path)?;
        }
        break;
    }

    // Shrink the root while it is an internal node with a single child.
    loop {
        let root = tree.read_node(tree.root)?;
        if !root.is_leaf() && root.len() == 1 && tree.height > 1 {
            let old_root = tree.root;
            tree.root = root.internal_child(0);
            tree.height -= 1;
            tree.free_node(old_root)?;
        } else if !root.is_leaf() && root.is_empty() {
            // All objects deleted through condense: reset to empty leaf.
            let old_root = tree.root;
            let leaf = Node::empty_leaf();
            let page = tree.store.allocate(sqda_storage::DiskId(0))?;
            tree.write_node(page, &leaf)?;
            tree.root = page;
            tree.height = 1;
            tree.free_node(old_root)?;
        } else {
            break;
        }
    }

    // Reinsert orphans at their original levels. Entries from a dissolved
    // node at level L must land in a node at level L again. Forced
    // reinsertion stays enabled per reinsert (fresh overflow budget), as
    // each orphan is an independent logical insertion.
    // Reinsert shallow (leaf) entries last so the tree has regained
    // height before internal orphans need deep targets.
    orphans.sort_by_key(|(level, _)| std::cmp::Reverse(*level));
    for (level, entry) in orphans {
        if level > tree.root_level() {
            // The tree shrank below the orphan's level; its subtree cannot
            // be grafted back as a single entry. Flatten it to leaf
            // entries and reinsert those.
            if let EntryToInsert::Internal(e) = entry {
                let leaves = collect_and_free_subtree(tree, e.child)?;
                for le in leaves {
                    let mut overflow_done = vec![false; tree.height as usize];
                    insert_at_level(tree, EntryToInsert::Leaf(le), 0, &mut overflow_done)?;
                }
            } else {
                unreachable!("leaf orphans always fit (level 0)");
            }
        } else {
            let mut overflow_done = vec![false; tree.height as usize];
            insert_at_level(tree, entry, level, &mut overflow_done)?;
        }
    }

    tree.num_objects -= 1;
    Ok(true)
}

/// Collects all leaf entries under `page`, freeing the subtree's pages.
fn collect_and_free_subtree<S: PageStore>(
    tree: &RStarTree<S>,
    page: PageId,
) -> Result<Vec<LeafEntry>> {
    let mut out = Vec::new();
    let mut stack = vec![page];
    while let Some(p) = stack.pop() {
        let node = tree.read_node(p)?;
        if node.is_leaf() {
            out.extend(node.leaf_iter().map(|(c, o)| LeafEntry::new(c.into(), o)));
        } else {
            stack.extend(node.internal_iter().map(|e| e.child));
        }
        tree.free_node(p)?;
    }
    Ok(out)
}

/// A root-to-leaf path as `(page, index_in_parent)` steps.
type LeafPath = Vec<(PageId, Option<usize>)>;

/// DFS for the leaf containing `(point, object)`. Returns the path from
/// root to leaf.
fn find_leaf<S: PageStore>(
    tree: &RStarTree<S>,
    page: PageId,
    point: &Point,
    object: ObjectId,
) -> Result<Option<LeafPath>> {
    fn rec<S: PageStore>(
        tree: &RStarTree<S>,
        page: PageId,
        point: &Point,
        object: ObjectId,
        path: &mut Vec<(PageId, Option<usize>)>,
    ) -> Result<bool> {
        let node = tree.read_node(page)?;
        if node.is_leaf() {
            Ok(node
                .leaf_iter()
                .any(|(c, o)| o == object && c == point.coords()))
        } else {
            for (i, e) in node.internal_iter().enumerate() {
                if e.mbr.contains_coords(point.coords()) {
                    path.push((e.child, Some(i)));
                    if rec(tree, e.child, point, object, path)? {
                        return Ok(true);
                    }
                    path.pop();
                }
            }
            Ok(false)
        }
    }

    let mut path = vec![(page, None)];
    if rec(tree, page, point, object, &mut path)? {
        Ok(Some(path))
    } else {
        Ok(None)
    }
}
