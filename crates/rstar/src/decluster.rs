//! Declustering heuristics: which disk should a newly created node go to?
//!
//! When an insertion splits a node, the new page must be placed on one of
//! the array's disks. A good placement stores nodes that are likely to be
//! fetched by the *same* query on *different* disks, so the fetches can
//! proceed in parallel. The paper (Section 2.2) compares the known
//! heuristics and adopts the **Proximity Index** of Kamel & Faloutsos
//! (*Parallel R-trees*, SIGMOD'92): assign the new node to the disk whose
//! resident sibling nodes are least proximal to the new node's MBR.
//!
//! All heuristics receive the same [`DeclusterContext`] so they can be
//! swapped freely; the ablation experiment `ablation_declustering`
//! compares them empirically.

use sqda_geom::Rect;
use sqda_storage::DiskId;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Information available when placing a newly split node.
pub struct DeclusterContext<'a> {
    /// MBR of the newly created node.
    pub new_mbr: &'a Rect,
    /// The sibling nodes under the same parent: their MBRs and disks.
    /// This includes the split partner that kept the old page.
    pub siblings: &'a [(Rect, DiskId)],
    /// Total pages currently allocated per disk (index = disk).
    pub pages_per_disk: &'a [usize],
    /// Number of disks in the array.
    pub num_disks: u32,
}

/// A strategy assigning newly created tree nodes to disks.
pub trait Declusterer: Send + Sync {
    /// Chooses the disk for the new node.
    fn assign_disk(&self, ctx: &DeclusterContext<'_>) -> DiskId;

    /// Human-readable name (used by the ablation harness).
    fn name(&self) -> &'static str;
}

/// Cyclic assignment: disk `i+1` follows disk `i` regardless of geometry.
pub struct RoundRobin {
    next: AtomicU64,
}

impl RoundRobin {
    /// Creates a round-robin assigner starting at disk 0.
    pub fn new() -> Self {
        Self {
            next: AtomicU64::new(0),
        }
    }
}

impl Default for RoundRobin {
    fn default() -> Self {
        Self::new()
    }
}

impl Declusterer for RoundRobin {
    fn assign_disk(&self, ctx: &DeclusterContext<'_>) -> DiskId {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        DiskId((n % ctx.num_disks as u64) as u32)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Uniform random assignment.
pub struct RandomAssign {
    rng: Mutex<StdRng>,
}

impl RandomAssign {
    /// Creates a random assigner with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }
}

impl Declusterer for RandomAssign {
    fn assign_disk(&self, ctx: &DeclusterContext<'_>) -> DiskId {
        DiskId(self.rng.lock().gen_range(0..ctx.num_disks))
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Data balance: the disk currently holding the fewest pages.
pub struct DataBalance;

impl Declusterer for DataBalance {
    fn assign_disk(&self, ctx: &DeclusterContext<'_>) -> DiskId {
        let disk = ctx
            .pages_per_disk
            .iter()
            .enumerate()
            .take(ctx.num_disks as usize)
            .min_by_key(|(_, &pages)| pages)
            .map(|(i, _)| i as u32)
            .unwrap_or(0);
        DiskId(disk)
    }

    fn name(&self) -> &'static str {
        "data-balance"
    }
}

/// Area balance: the disk whose resident *sibling* nodes cover the least
/// total area, spreading large (frequently hit) nodes across disks.
pub struct AreaBalance;

impl Declusterer for AreaBalance {
    fn assign_disk(&self, ctx: &DeclusterContext<'_>) -> DiskId {
        let mut area = vec![0.0f64; ctx.num_disks as usize];
        for (mbr, disk) in ctx.siblings {
            if disk.index() < area.len() {
                area[disk.index()] += mbr.area();
            }
        }
        let disk = area
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("areas are finite"))
            .map(|(i, _)| i as u32)
            .unwrap_or(0);
        DiskId(disk)
    }

    fn name(&self) -> &'static str {
        "area-balance"
    }
}

/// Proximity-Index declustering (Kamel & Faloutsos).
///
/// For every candidate disk, sums the proximity between the new node's MBR
/// and each sibling MBR already resident on that disk, then picks the disk
/// with the smallest sum (ties broken by fewest sibling pages, then lowest
/// disk id, for determinism).
///
/// Proximity between two MBRs is measured as the volume of overlap after
/// extending both rectangles by `ε` in every dimension (a Minkowski sum),
/// normalized per dimension. Two rectangles that overlap or nearly touch —
/// exactly the pairs a similarity query tends to fetch together — score
/// high; distant rectangles score zero. `ε` is chosen per decision as the
/// average sibling extent, which adapts the notion of "near" to the local
/// granularity of the tree level, mirroring the intent of the original
/// probabilistic proximity index.
pub struct ProximityIndex;

impl ProximityIndex {
    /// Proximity of two rectangles given the extension radius `eps`.
    fn proximity(a: &Rect, b: &Rect, eps: f64) -> f64 {
        debug_assert_eq!(a.dim(), b.dim());
        let mut prox = 1.0;
        for d in 0..a.dim() {
            let lo = (a.lo()[d] - eps).max(b.lo()[d] - eps);
            let hi = (a.hi()[d] + eps).min(b.hi()[d] + eps);
            let overlap = hi - lo;
            if overlap <= 0.0 {
                return 0.0;
            }
            // Normalize by the extended extents so thin dimensions do not
            // dominate.
            let norm = (a.extent(d) + b.extent(d)) / 2.0 + 2.0 * eps;
            prox *= overlap / norm;
        }
        prox
    }

    /// The adaptive extension radius: mean sibling extent per dimension.
    fn epsilon(new_mbr: &Rect, siblings: &[(Rect, DiskId)]) -> f64 {
        let dim = new_mbr.dim();
        let mut total = 0.0;
        let mut n = 0usize;
        for (mbr, _) in siblings {
            for d in 0..dim {
                total += mbr.extent(d);
            }
            n += dim;
        }
        for d in 0..dim {
            total += new_mbr.extent(d);
        }
        n += dim;
        let mean = total / n as f64;
        // Half the mean extent: "near" means within about half a node.
        (mean / 2.0).max(f64::MIN_POSITIVE)
    }
}

impl Declusterer for ProximityIndex {
    fn assign_disk(&self, ctx: &DeclusterContext<'_>) -> DiskId {
        let num = ctx.num_disks as usize;
        let eps = Self::epsilon(ctx.new_mbr, ctx.siblings);
        let mut prox_sum = vec![0.0f64; num];
        let mut sib_count = vec![0usize; num];
        for (mbr, disk) in ctx.siblings {
            if disk.index() < num {
                prox_sum[disk.index()] += Self::proximity(ctx.new_mbr, mbr, eps);
                sib_count[disk.index()] += 1;
            }
        }
        let best = (0..num)
            .min_by(|&a, &b| {
                prox_sum[a]
                    .partial_cmp(&prox_sum[b])
                    .expect("proximities are finite")
                    .then(sib_count[a].cmp(&sib_count[b]))
                    // Secondary criterion per Kamel & Faloutsos: when the
                    // geometric scores tie, keep the array data-balanced.
                    .then_with(|| {
                        let pa = ctx.pages_per_disk.get(a).copied().unwrap_or(0);
                        let pb = ctx.pages_per_disk.get(b).copied().unwrap_or(0);
                        pa.cmp(&pb)
                    })
                    .then(a.cmp(&b))
            })
            .unwrap_or(0);
        DiskId(best as u32)
    }

    fn name(&self) -> &'static str {
        "proximity-index"
    }
}

/// Returns every built-in heuristic (for the ablation experiment).
pub fn all_heuristics(seed: u64) -> Vec<Box<dyn Declusterer>> {
    vec![
        Box::new(ProximityIndex),
        Box::new(RoundRobin::new()),
        Box::new(RandomAssign::new(seed)),
        Box::new(DataBalance),
        Box::new(AreaBalance),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(lo: &[f64], hi: &[f64]) -> Rect {
        Rect::new(lo.to_vec(), hi.to_vec()).unwrap()
    }

    fn ctx<'a>(
        new_mbr: &'a Rect,
        siblings: &'a [(Rect, DiskId)],
        pages: &'a [usize],
    ) -> DeclusterContext<'a> {
        DeclusterContext {
            new_mbr,
            siblings,
            pages_per_disk: pages,
            num_disks: pages.len() as u32,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let rr = RoundRobin::new();
        let m = rect(&[0.0], &[1.0]);
        let pages = [0usize; 3];
        let c = ctx(&m, &[], &pages);
        assert_eq!(rr.assign_disk(&c), DiskId(0));
        assert_eq!(rr.assign_disk(&c), DiskId(1));
        assert_eq!(rr.assign_disk(&c), DiskId(2));
        assert_eq!(rr.assign_disk(&c), DiskId(0));
    }

    #[test]
    fn random_stays_in_range_and_is_seeded() {
        let m = rect(&[0.0], &[1.0]);
        let pages = [0usize; 5];
        let c = ctx(&m, &[], &pages);
        let draw = |seed| {
            let r = RandomAssign::new(seed);
            (0..20).map(|_| r.assign_disk(&c).0).collect::<Vec<_>>()
        };
        let a = draw(1);
        assert!(a.iter().all(|&d| d < 5));
        assert_eq!(a, draw(1));
    }

    #[test]
    fn data_balance_picks_emptiest() {
        let m = rect(&[0.0], &[1.0]);
        let pages = [5usize, 2, 7];
        let c = ctx(&m, &[], &pages);
        assert_eq!(DataBalance.assign_disk(&c), DiskId(1));
    }

    #[test]
    fn area_balance_picks_least_covered() {
        let m = rect(&[0.0, 0.0], &[1.0, 1.0]);
        let siblings = vec![
            (rect(&[0.0, 0.0], &[10.0, 10.0]), DiskId(0)), // area 100
            (rect(&[0.0, 0.0], &[1.0, 1.0]), DiskId(1)),   // area 1
        ];
        let pages = [1usize, 1, 0];
        let c = ctx(&m, &siblings, &pages);
        // Disk 2 has no area at all.
        assert_eq!(AreaBalance.assign_disk(&c), DiskId(2));
    }

    #[test]
    fn proximity_overlapping_beats_distant() {
        let eps = 0.5;
        let a = rect(&[0.0, 0.0], &[2.0, 2.0]);
        let near = rect(&[1.0, 1.0], &[3.0, 3.0]);
        let far = rect(&[50.0, 50.0], &[52.0, 52.0]);
        assert!(ProximityIndex::proximity(&a, &near, eps) > 0.0);
        assert_eq!(ProximityIndex::proximity(&a, &far, eps), 0.0);
    }

    #[test]
    fn proximity_decreases_with_distance() {
        let eps = 2.0;
        let a = rect(&[0.0], &[1.0]);
        let close = rect(&[1.5], &[2.5]);
        let farther = rect(&[3.0], &[4.0]);
        let p_close = ProximityIndex::proximity(&a, &close, eps);
        let p_far = ProximityIndex::proximity(&a, &farther, eps);
        assert!(p_close > p_far, "{p_close} <= {p_far}");
    }

    #[test]
    fn proximity_index_avoids_disk_with_near_sibling() {
        let new = rect(&[0.0, 0.0], &[1.0, 1.0]);
        let siblings = vec![
            (rect(&[0.5, 0.5], &[1.5, 1.5]), DiskId(0)), // overlaps new
            (rect(&[90.0, 90.0], &[91.0, 91.0]), DiskId(1)), // far away
        ];
        let pages = [1usize, 1];
        let c = ctx(&new, &siblings, &pages);
        assert_eq!(ProximityIndex.assign_disk(&c), DiskId(1));
    }

    #[test]
    fn proximity_index_spreads_to_empty_disk() {
        let new = rect(&[0.0, 0.0], &[1.0, 1.0]);
        let siblings = vec![
            (rect(&[0.2, 0.2], &[0.8, 0.8]), DiskId(0)),
            (rect(&[0.1, 0.1], &[0.9, 0.9]), DiskId(1)),
        ];
        let pages = [1usize, 1, 0];
        let c = ctx(&new, &siblings, &pages);
        assert_eq!(ProximityIndex.assign_disk(&c), DiskId(2));
    }

    #[test]
    fn proximity_index_no_siblings_deterministic() {
        let new = rect(&[0.0], &[1.0]);
        let pages = [0usize; 4];
        let c = ctx(&new, &[], &pages);
        assert_eq!(ProximityIndex.assign_disk(&c), DiskId(0));
    }

    #[test]
    fn all_heuristics_listed() {
        let hs = all_heuristics(0);
        let names: Vec<_> = hs.iter().map(|h| h.name()).collect();
        assert_eq!(
            names,
            vec![
                "proximity-index",
                "round-robin",
                "random",
                "data-balance",
                "area-balance"
            ]
        );
    }
}
