//! Binary on-page node format.
//!
//! Every node is serialized into one fixed-size page:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "RSTN"
//! 4       1     format version (1)
//! 5       1     node type (0 = leaf, 1 = internal)
//! 6       2     dimensionality
//! 8       4     level
//! 12      4     number of entries
//! 16      ...   entries
//! ```
//!
//! Internal entry: `2·dim` little-endian `f64` MBR corners (lo then hi),
//! `u64` child page id, `u64` subtree object count.
//! Leaf entry: `dim` `f64` coordinates, `u64` object id.
//!
//! The in-memory [`Node`] mirrors this layout (one flat coordinate
//! buffer, one payload buffer), so decoding a page is two allocations
//! regardless of how many entries it holds. The bytes themselves are
//! unchanged from the entry-vector era — pages written by either code
//! path are interchangeable.

use crate::node::Node;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sqda_geom::GeomError;
use sqda_storage::{PageId, StorageError};

/// Size of the fixed node header in bytes.
pub const HEADER_SIZE: usize = 16;

const MAGIC: &[u8; 4] = b"RSTN";
const VERSION: u8 = 1;
const TYPE_LEAF: u8 = 0;
const TYPE_INTERNAL: u8 = 1;

/// Bytes one internal entry occupies for dimensionality `dim`.
pub const fn internal_entry_size(dim: usize) -> usize {
    2 * dim * 8 + 8 + 8
}

/// Bytes one leaf entry occupies for dimensionality `dim`.
pub const fn leaf_entry_size(dim: usize) -> usize {
    dim * 8 + 8
}

/// Serializes a node into page bytes.
///
/// # Panics
///
/// Panics if the node's dimensionality disagrees with `dim` — that is a
/// programming error upstream, not a recoverable condition.
pub fn encode_node(node: &Node, dim: usize) -> Bytes {
    let n = node.len();
    assert!(
        node.is_empty() || node.dim() == dim,
        "node dimension mismatch: node has {}, tree expects {dim}",
        node.dim()
    );
    let (ty, body) = if node.is_leaf() {
        (TYPE_LEAF, n * leaf_entry_size(dim))
    } else {
        (TYPE_INTERNAL, n * internal_entry_size(dim))
    };
    let mut buf = BytesMut::with_capacity(HEADER_SIZE + body);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(ty);
    buf.put_u16_le(dim as u16);
    buf.put_u32_le(node.level());
    buf.put_u32_le(n as u32);
    if node.is_leaf() {
        for (coords, object) in node.leaf_iter() {
            for c in coords {
                buf.put_f64_le(*c);
            }
            buf.put_u64_le(object.0);
        }
    } else {
        for e in node.internal_iter() {
            for c in e.mbr.lo() {
                buf.put_f64_le(*c);
            }
            for c in e.mbr.hi() {
                buf.put_f64_le(*c);
            }
            buf.put_u64_le(e.child.as_raw());
            buf.put_u64_le(e.count);
        }
    }
    buf.freeze()
}

fn corrupt(page: PageId, detail: impl Into<String>) -> StorageError {
    StorageError::CorruptPage {
        page,
        detail: detail.into(),
    }
}

/// Validates one decoded MBR (corner pair) with the same rules — and the
/// same error values — as `Rect::new`, without building a `Rect`.
fn validate_mbr(lo: &[f64], hi: &[f64]) -> Result<(), GeomError> {
    if lo.iter().chain(hi.iter()).any(|c| !c.is_finite()) {
        return Err(GeomError::NonFiniteCoordinate);
    }
    for (dim, (l, h)) in lo.iter().zip(hi.iter()).enumerate() {
        if l > h {
            return Err(GeomError::InvertedCorners { dim });
        }
    }
    Ok(())
}

/// Deserializes page bytes into a node.
///
/// `page` is used only for error reporting. Validates magic, version,
/// dimensionality and length; internal MBRs are additionally checked for
/// finiteness and corner ordering, exactly as before the flat layout.
pub fn decode_node(mut data: Bytes, dim: usize, page: PageId) -> Result<Node, StorageError> {
    if data.len() < HEADER_SIZE {
        return Err(corrupt(page, format!("short page: {} bytes", data.len())));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt(page, "bad magic"));
    }
    let version = data.get_u8();
    if version != VERSION {
        return Err(corrupt(page, format!("unsupported version {version}")));
    }
    let ty = data.get_u8();
    let file_dim = data.get_u16_le() as usize;
    if file_dim != dim {
        return Err(corrupt(
            page,
            format!("dimension mismatch: page has {file_dim}, tree expects {dim}"),
        ));
    }
    let level = data.get_u32_le();
    let n = data.get_u32_le() as usize;
    match ty {
        TYPE_LEAF => {
            if level != 0 {
                return Err(corrupt(page, format!("leaf with level {level}")));
            }
            if data.remaining() < n * leaf_entry_size(dim) {
                return Err(corrupt(page, "truncated leaf entries"));
            }
            let mut coords = Vec::with_capacity(n * dim);
            let mut payload = Vec::with_capacity(n);
            for _ in 0..n {
                for _ in 0..dim {
                    coords.push(data.get_f64_le());
                }
                payload.push(data.get_u64_le());
            }
            Ok(Node::from_raw_parts(0, dim as u32, coords, payload))
        }
        TYPE_INTERNAL => {
            if level == 0 {
                return Err(corrupt(page, "internal node with level 0"));
            }
            if data.remaining() < n * internal_entry_size(dim) {
                return Err(corrupt(page, "truncated internal entries"));
            }
            let mut coords = Vec::with_capacity(n * 2 * dim);
            let mut payload = Vec::with_capacity(n * 2);
            for _ in 0..n {
                let base = coords.len();
                for _ in 0..2 * dim {
                    coords.push(data.get_f64_le());
                }
                payload.push(data.get_u64_le());
                payload.push(data.get_u64_le());
                let (lo, hi) = coords[base..].split_at(dim);
                validate_mbr(lo, hi).map_err(|e| corrupt(page, format!("bad MBR: {e}")))?;
            }
            Ok(Node::from_raw_parts(level, dim as u32, coords, payload))
        }
        other => Err(corrupt(page, format!("unknown node type {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{InternalEntry, LeafEntry, ObjectId};
    use sqda_geom::{Point, Rect};

    fn page() -> PageId {
        PageId::from_raw(9)
    }

    fn sample_leaf(dim: usize, n: usize) -> Node {
        Node::from_leaf_entries(
            &(0..n)
                .map(|i| {
                    LeafEntry::new(
                        Point::new((0..dim).map(|d| (i * dim + d) as f64 * 0.5).collect()),
                        ObjectId(i as u64 * 3),
                    )
                })
                .collect::<Vec<_>>(),
        )
    }

    fn sample_internal(dim: usize, n: usize) -> Node {
        Node::from_internal_entries(
            2,
            &(0..n)
                .map(|i| {
                    let lo: Vec<f64> = (0..dim).map(|d| (i + d) as f64).collect();
                    let hi: Vec<f64> = lo.iter().map(|c| c + 1.5).collect();
                    InternalEntry::new(
                        Rect::new(lo, hi).unwrap(),
                        PageId::from_raw(100 + i as u64),
                        (i as u64 + 1) * 7,
                    )
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn leaf_roundtrip() {
        for dim in [1, 2, 5, 10] {
            let node = sample_leaf(dim, 13);
            let bytes = encode_node(&node, dim);
            let back = decode_node(bytes, dim, page()).unwrap();
            assert_eq!(node, back);
        }
    }

    #[test]
    fn internal_roundtrip() {
        for dim in [1, 2, 5, 10] {
            let node = sample_internal(dim, 7);
            let bytes = encode_node(&node, dim);
            let back = decode_node(bytes, dim, page()).unwrap();
            assert_eq!(node, back);
        }
    }

    #[test]
    fn empty_leaf_roundtrip() {
        let node = Node::empty_leaf();
        let back = decode_node(encode_node(&node, 3), 3, page()).unwrap();
        assert_eq!(node, back);
    }

    #[test]
    fn encoded_size_matches_formula() {
        let dim = 4;
        let node = sample_leaf(dim, 10);
        assert_eq!(
            encode_node(&node, dim).len(),
            HEADER_SIZE + 10 * leaf_entry_size(dim)
        );
        let node = sample_internal(dim, 10);
        assert_eq!(
            encode_node(&node, dim).len(),
            HEADER_SIZE + 10 * internal_entry_size(dim)
        );
    }

    #[test]
    fn full_2d_page_fits() {
        // A node at exactly max capacity must fit in the page.
        let cfg = crate::RStarConfig::new(2);
        let node = sample_leaf(2, cfg.max_leaf_entries);
        assert!(encode_node(&node, 2).len() <= cfg.page_size);
        let node = sample_internal(2, cfg.max_internal_entries);
        assert!(encode_node(&node, 2).len() <= cfg.page_size);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut b = encode_node(&sample_leaf(2, 1), 2).to_vec();
        b[0] = b'X';
        let err = decode_node(Bytes::from(b), 2, page()).unwrap_err();
        assert!(matches!(err, StorageError::CorruptPage { .. }));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut b = encode_node(&sample_leaf(2, 1), 2).to_vec();
        b[4] = 99;
        assert!(decode_node(Bytes::from(b), 2, page()).is_err());
    }

    #[test]
    fn rejects_dim_mismatch() {
        let b = encode_node(&sample_leaf(3, 2), 3);
        assert!(decode_node(b, 2, page()).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let b = encode_node(&sample_internal(2, 5), 2);
        let truncated = b.slice(0..b.len() - 10);
        assert!(decode_node(truncated, 2, page()).is_err());
        let short = b.slice(0..8);
        assert!(decode_node(short, 2, page()).is_err());
    }

    #[test]
    fn rejects_unknown_type() {
        let mut b = encode_node(&sample_leaf(2, 0), 2).to_vec();
        b[5] = 7;
        assert!(decode_node(Bytes::from(b), 2, page()).is_err());
    }

    #[test]
    fn rejects_leaf_with_nonzero_level() {
        let mut b = encode_node(&sample_leaf(2, 0), 2).to_vec();
        b[8] = 1; // level byte
        assert!(decode_node(Bytes::from(b), 2, page()).is_err());
    }

    #[test]
    fn rejects_inverted_internal_mbr() {
        // Corrupt the first f64 of the first internal entry (its lo[0])
        // so lo > hi; the decoder must report a bad MBR.
        let mut b = encode_node(&sample_internal(2, 3), 2).to_vec();
        b[HEADER_SIZE..HEADER_SIZE + 8].copy_from_slice(&1e9f64.to_le_bytes());
        let err = decode_node(Bytes::from(b), 2, page()).unwrap_err();
        assert!(err.to_string().contains("bad MBR"), "{err}");
    }

    #[test]
    fn rejects_non_finite_internal_mbr() {
        let mut b = encode_node(&sample_internal(2, 3), 2).to_vec();
        b[HEADER_SIZE..HEADER_SIZE + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        let err = decode_node(Bytes::from(b), 2, page()).unwrap_err();
        assert!(err.to_string().contains("bad MBR"), "{err}");
    }
}
