//! Tree nodes, stored in a flat cache-friendly layout.
//!
//! A node used to be an enum of entry vectors, where every entry owned
//! two heap-allocated corner slices — decoding a 170-entry leaf cost
//! hundreds of small allocations. The flat layout keeps all coordinates
//! of a node in **one** contiguous `f64` buffer and all integer payload
//! (object ids, or child/count pairs) in one `u64` buffer, so decoding a
//! page is exactly two allocations and a traversal walks a single cache
//! stream. Entries are exposed through borrowed views
//! ([`sqda_geom::RectRef`], coordinate slices, [`InternalRef`]).
//!
//! Mutation paths (insert/delete/split) are cold compared to queries, so
//! they convert to the entry-vector form [`NodeMut`], edit, and
//! [`NodeMut::freeze`] back.

use crate::entry::{InternalEntry, LeafEntry, ObjectId};
use sqda_geom::{Point, Rect, RectRef};
use sqda_storage::PageId;

/// One R\*-tree node. Each node occupies exactly one disk page.
///
/// `level` is 0 for leaves and increases towards the root; the paper's
/// CRSS algorithm switches between its ADAPTIVE/NORMAL/UPDATE modes based
/// on whether the nodes just fetched are leaves.
///
/// Layout: leaves store `dim` coordinates and one payload word (the
/// object id) per entry; internal nodes store `2 * dim` coordinates (low
/// corner then high corner) and two payload words (child page, subtree
/// count) per entry.
#[derive(Debug, Clone)]
pub struct Node {
    level: u32,
    /// Coordinate stride basis. 0 only for an empty node (no entry to
    /// take the dimensionality from).
    dim: u32,
    coords: Box<[f64]>,
    payload: Box<[u64]>,
}

/// A borrowed view of one internal-node entry.
#[derive(Debug, Clone, Copy)]
pub struct InternalRef<'a> {
    /// The child subtree's MBR.
    pub mbr: RectRef<'a>,
    /// The child page.
    pub child: PageId,
    /// Number of data objects in the child's subtree.
    pub count: u64,
}

impl Node {
    /// Creates an empty leaf.
    pub fn empty_leaf() -> Self {
        Node {
            level: 0,
            dim: 0,
            coords: Box::new([]),
            payload: Box::new([]),
        }
    }

    /// Builds a leaf from entry structs.
    pub fn from_leaf_entries(entries: &[LeafEntry]) -> Self {
        let dim = entries.first().map_or(0, |e| e.point.dim());
        let mut coords = Vec::with_capacity(entries.len() * dim);
        let mut payload = Vec::with_capacity(entries.len());
        for e in entries {
            debug_assert_eq!(e.point.dim(), dim, "mixed dimensionality in leaf");
            coords.extend_from_slice(e.point.coords());
            payload.push(e.object.0);
        }
        Node {
            level: 0,
            dim: dim as u32,
            coords: coords.into_boxed_slice(),
            payload: payload.into_boxed_slice(),
        }
    }

    /// Builds an internal node at `level` (≥ 1) from entry structs.
    pub fn from_internal_entries(level: u32, entries: &[InternalEntry]) -> Self {
        debug_assert!(level >= 1, "internal nodes live at level >= 1");
        let dim = entries.first().map_or(0, |e| e.mbr.dim());
        let mut coords = Vec::with_capacity(entries.len() * 2 * dim);
        let mut payload = Vec::with_capacity(entries.len() * 2);
        for e in entries {
            debug_assert_eq!(e.mbr.dim(), dim, "mixed dimensionality in node");
            coords.extend_from_slice(e.mbr.lo());
            coords.extend_from_slice(e.mbr.hi());
            payload.push(e.child.as_raw());
            payload.push(e.count);
        }
        Node {
            level,
            dim: dim as u32,
            coords: coords.into_boxed_slice(),
            payload: payload.into_boxed_slice(),
        }
    }

    /// Assembles a node directly from its flat buffers (the codec's
    /// decode path — two allocations, no per-entry work).
    ///
    /// For a leaf (`level == 0`): `coords.len() == n * dim`,
    /// `payload.len() == n`. For an internal node: `coords.len() ==
    /// n * 2 * dim`, `payload.len() == 2 * n`.
    pub(crate) fn from_raw_parts(
        level: u32,
        dim: u32,
        coords: Vec<f64>,
        payload: Vec<u64>,
    ) -> Self {
        let node = Node {
            level,
            dim,
            coords: coords.into_boxed_slice(),
            payload: payload.into_boxed_slice(),
        };
        debug_assert_eq!(node.coords.len(), node.len() * node.entry_stride());
        node
    }

    #[inline]
    fn entry_stride(&self) -> usize {
        let d = self.dim as usize;
        if self.is_leaf() {
            d
        } else {
            2 * d
        }
    }

    /// The node's level (0 = leaf).
    #[inline]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Resident size in bytes: the struct itself plus its two flat heap
    /// buffers. This is the entry weight a byte-budgeted node cache
    /// ([`sqda_storage::NodeCache::new_bytes`]) evicts on.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + std::mem::size_of_val::<[f64]>(&self.coords)
            + std::mem::size_of_val::<[u64]>(&self.payload)
    }

    /// `true` for leaf nodes.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// The dimensionality of the entries (0 only when the node is empty).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// Number of entries in the node.
    #[inline]
    pub fn len(&self) -> usize {
        if self.is_leaf() {
            self.payload.len()
        } else {
            self.payload.len() / 2
        }
    }

    /// `true` when the node has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// The whole flat coordinate block: entry stride [`Node::dim`] for
    /// leaves, `2 * dim` (low corner then high corner) for internal
    /// nodes. Consumers that keep their own flat views (e.g.
    /// `sqda_core::IndexNode`) copy this buffer wholesale instead of
    /// materialising per-entry geometry.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// The whole flat integer payload: one object id per leaf entry, or
    /// interleaved `[child page, subtree count]` pairs per internal
    /// entry.
    #[inline]
    pub fn payload(&self) -> &[u64] {
        &self.payload
    }

    /// The coordinates of the `i`-th leaf entry.
    ///
    /// # Panics
    ///
    /// Panics if out of range (or, in debug builds, on an internal node).
    #[inline]
    pub fn leaf_point(&self, i: usize) -> &[f64] {
        debug_assert!(self.is_leaf());
        let d = self.dim as usize;
        &self.coords[i * d..(i + 1) * d]
    }

    /// The object id of the `i`-th leaf entry.
    #[inline]
    pub fn leaf_object(&self, i: usize) -> ObjectId {
        debug_assert!(self.is_leaf());
        ObjectId(self.payload[i])
    }

    /// A borrowed MBR view of the `i`-th internal entry.
    #[inline]
    pub fn internal_rect(&self, i: usize) -> RectRef<'_> {
        debug_assert!(!self.is_leaf());
        let d = self.dim as usize;
        let base = i * 2 * d;
        RectRef::new(
            &self.coords[base..base + d],
            &self.coords[base + d..base + 2 * d],
        )
    }

    /// The child page of the `i`-th internal entry.
    #[inline]
    pub fn internal_child(&self, i: usize) -> PageId {
        debug_assert!(!self.is_leaf());
        PageId::from_raw(self.payload[2 * i])
    }

    /// The subtree object count of the `i`-th internal entry.
    #[inline]
    pub fn internal_count(&self, i: usize) -> u64 {
        debug_assert!(!self.is_leaf());
        self.payload[2 * i + 1]
    }

    /// Iterates the leaf entries as `(coords, object)` pairs.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on an internal node.
    #[inline]
    pub fn leaf_iter(&self) -> impl Iterator<Item = (&[f64], ObjectId)> + '_ {
        debug_assert!(self.is_leaf());
        // `max(1)` keeps chunks_exact well-defined for the empty node
        // (dim 0); payload is empty there so the zip yields nothing.
        self.coords
            .chunks_exact((self.dim as usize).max(1))
            .zip(self.payload.iter())
            .map(|(c, &o)| (c, ObjectId(o)))
    }

    /// Iterates the internal entries as borrowed views.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on a leaf node.
    #[inline]
    pub fn internal_iter(&self) -> impl Iterator<Item = InternalRef<'_>> + '_ {
        debug_assert!(!self.is_leaf());
        let d = self.dim as usize;
        self.coords
            .chunks_exact((2 * d).max(1))
            .zip(self.payload.chunks_exact(2))
            .map(move |(c, p)| InternalRef {
                mbr: RectRef::new(&c[..d], &c[d..]),
                child: PageId::from_raw(p[0]),
                count: p[1],
            })
    }

    /// The MBR enclosing all entries; `None` for an empty node.
    pub fn mbr(&self) -> Option<Rect> {
        if self.is_empty() {
            return None;
        }
        let d = self.dim as usize;
        let stride = self.entry_stride();
        // Fold with the same comparison-based min/max as
        // `Rect::union_in_place`, so the result is bit-identical to the
        // old per-entry union chain.
        let mut lo = self.coords[..d].to_vec();
        let mut hi = self.coords[stride - d..stride].to_vec();
        for chunk in self.coords.chunks_exact(stride).skip(1) {
            for k in 0..d {
                if chunk[k] < lo[k] {
                    lo[k] = chunk[k];
                }
                if chunk[stride - d + k] > hi[k] {
                    hi[k] = chunk[stride - d + k];
                }
            }
        }
        // Coordinates were validated when the node was built/decoded; the
        // old leaf path likewise never re-validated.
        Some(Rect::new_unchecked(lo, hi))
    }

    /// Total number of data objects under this node (the subtree count
    /// the parent entry must carry).
    pub fn object_count(&self) -> u64 {
        if self.is_leaf() {
            self.payload.len() as u64
        } else {
            self.payload.iter().skip(1).step_by(2).sum()
        }
    }

    /// The internal entries' MBRs as owned rects (the insert path's
    /// subtree-choice arithmetic works over owned rects).
    ///
    /// # Panics
    ///
    /// Panics in debug builds on a leaf node.
    pub fn internal_rects(&self) -> Vec<Rect> {
        self.internal_iter().map(|e| e.mbr.to_rect()).collect()
    }

    /// The leaf entries as owned structs.
    pub fn leaf_entries_vec(&self) -> Vec<LeafEntry> {
        self.leaf_iter()
            .map(|(c, o)| LeafEntry::new(Point::from(c), o))
            .collect()
    }

    /// The internal entries as owned structs.
    pub fn internal_entries_vec(&self) -> Vec<InternalEntry> {
        self.internal_iter()
            .map(|e| InternalEntry::new(e.mbr.to_rect(), e.child, e.count))
            .collect()
    }

    /// Thaws the node into its editable entry-vector form.
    pub fn to_mut(&self) -> NodeMut {
        if self.is_leaf() {
            NodeMut::Leaf {
                entries: self.leaf_entries_vec(),
            }
        } else {
            NodeMut::Internal {
                level: self.level,
                entries: self.internal_entries_vec(),
            }
        }
    }
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        // `dim` is deliberately ignored: an empty node decoded from a
        // page carries the page's dim while a freshly built empty leaf
        // has dim 0 — they hold the same (zero) entries.
        self.level == other.level && self.payload == other.payload && self.coords == other.coords
    }
}

/// The editable (entry-vector) form of a [`Node`], used by the cold
/// structure-modification paths. [`NodeMut::freeze`] converts back to the
/// flat query layout.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeMut {
    /// An internal (directory) node at level ≥ 1.
    Internal {
        /// Height of this node above the leaf level (≥ 1).
        level: u32,
        /// Child entries.
        entries: Vec<InternalEntry>,
    },
    /// A leaf node (level 0) holding data points.
    Leaf {
        /// Data entries.
        entries: Vec<LeafEntry>,
    },
}

impl NodeMut {
    /// The node's level (0 = leaf).
    pub fn level(&self) -> u32 {
        match self {
            NodeMut::Internal { level, .. } => *level,
            NodeMut::Leaf { .. } => 0,
        }
    }

    /// `true` for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, NodeMut::Leaf { .. })
    }

    /// Number of entries in the node.
    pub fn len(&self) -> usize {
        match self {
            NodeMut::Internal { entries, .. } => entries.len(),
            NodeMut::Leaf { entries } => entries.len(),
        }
    }

    /// `true` when the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The MBR enclosing all entries; `None` for an empty node.
    pub fn mbr(&self) -> Option<Rect> {
        match self {
            NodeMut::Internal { entries, .. } => Rect::union_all(entries.iter().map(|e| &e.mbr)),
            NodeMut::Leaf { entries } => {
                let mut it = entries.iter();
                let first = Rect::from_point(&it.next()?.point);
                Some(it.fold(first, |mut acc, e| {
                    acc.union_in_place(&Rect::from_point(&e.point));
                    acc
                }))
            }
        }
    }

    /// Total number of data objects under this node.
    pub fn object_count(&self) -> u64 {
        match self {
            NodeMut::Internal { entries, .. } => entries.iter().map(|e| e.count).sum(),
            NodeMut::Leaf { entries } => entries.len() as u64,
        }
    }

    /// Converts back into the flat query layout.
    pub fn freeze(self) -> Node {
        match self {
            NodeMut::Internal { level, entries } => Node::from_internal_entries(level, &entries),
            NodeMut::Leaf { entries } => Node::from_leaf_entries(&entries),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::ObjectId;
    use sqda_geom::Point;
    use sqda_storage::PageId;

    fn leaf_with(points: &[(f64, f64)]) -> Node {
        Node::from_leaf_entries(
            &points
                .iter()
                .enumerate()
                .map(|(i, (x, y))| LeafEntry::new(Point::new(vec![*x, *y]), ObjectId(i as u64)))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn empty_leaf_properties() {
        let n = Node::empty_leaf();
        assert!(n.is_leaf());
        assert!(n.is_empty());
        assert_eq!(n.level(), 0);
        assert_eq!(n.mbr(), None);
        assert_eq!(n.object_count(), 0);
        assert_eq!(n.leaf_iter().count(), 0);
    }

    #[test]
    fn leaf_mbr_and_count() {
        let n = leaf_with(&[(0.0, 0.0), (2.0, 3.0), (-1.0, 1.0)]);
        let mbr = n.mbr().unwrap();
        assert_eq!(mbr.lo(), &[-1.0, 0.0]);
        assert_eq!(mbr.hi(), &[2.0, 3.0]);
        assert_eq!(n.object_count(), 3);
        assert_eq!(n.len(), 3);
        assert_eq!(n.leaf_point(1), &[2.0, 3.0]);
        assert_eq!(n.leaf_object(2), ObjectId(2));
        let collected: Vec<_> = n.leaf_iter().collect();
        assert_eq!(collected[0], (&[0.0, 0.0][..], ObjectId(0)));
        assert_eq!(collected[2], (&[-1.0, 1.0][..], ObjectId(2)));
    }

    #[test]
    fn internal_count_sums_children() {
        let r = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        let s = Rect::new(vec![2.0, 0.5], vec![4.0, 3.0]).unwrap();
        let n = Node::from_internal_entries(
            1,
            &[
                InternalEntry::new(r.clone(), PageId::from_raw(1), 10),
                InternalEntry::new(s.clone(), PageId::from_raw(2), 32),
            ],
        );
        assert_eq!(n.object_count(), 42);
        assert_eq!(n.level(), 1);
        assert!(!n.is_leaf());
        assert_eq!(n.len(), 2);
        assert_eq!(n.internal_child(0), PageId::from_raw(1));
        assert_eq!(n.internal_count(1), 32);
        assert_eq!(n.internal_rect(1).to_rect(), s);
        let views: Vec<_> = n.internal_iter().collect();
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].mbr.to_rect(), r);
        assert_eq!(views[1].child, PageId::from_raw(2));
        let mbr = n.mbr().unwrap();
        assert_eq!(mbr.lo(), &[0.0, 0.0]);
        assert_eq!(mbr.hi(), &[4.0, 3.0]);
    }

    #[test]
    fn thaw_edit_freeze_roundtrip() {
        let n = leaf_with(&[(0.0, 0.0), (2.0, 3.0)]);
        let mut m = n.to_mut();
        match &mut m {
            NodeMut::Leaf { entries } => {
                entries.push(LeafEntry::new(Point::new(vec![5.0, 5.0]), ObjectId(9)))
            }
            NodeMut::Internal { .. } => unreachable!(),
        }
        let frozen = m.freeze();
        assert_eq!(frozen.len(), 3);
        assert_eq!(frozen.leaf_object(2), ObjectId(9));
        assert_eq!(frozen.leaf_point(2), &[5.0, 5.0]);
        // An untouched thaw/freeze cycle is the identity.
        assert_eq!(n.to_mut().freeze(), n);
    }

    #[test]
    fn node_equality_ignores_dim_of_empty() {
        let built = Node::empty_leaf();
        let decoded = Node::from_raw_parts(0, 2, Vec::new(), Vec::new());
        assert_eq!(built, decoded);
    }

    #[test]
    fn mbr_matches_union_in_place_fold() {
        // The flat fold must produce exactly what the old per-entry
        // union chain produced (the validate pass compares corners).
        let pts = [(1.0, 7.0), (-3.0, 2.0), (4.0, -1.5), (0.0, 0.0)];
        let n = leaf_with(&pts);
        let mut expect = Rect::from_point(&Point::new(vec![1.0, 7.0]));
        for (x, y) in &pts[1..] {
            expect.union_in_place(&Rect::from_point(&Point::new(vec![*x, *y])));
        }
        let got = n.mbr().unwrap();
        assert_eq!(got.lo(), expect.lo());
        assert_eq!(got.hi(), expect.hi());
    }
}
