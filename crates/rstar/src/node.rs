//! Tree nodes.

use crate::entry::{InternalEntry, LeafEntry};
use sqda_geom::Rect;

/// One R\*-tree node. Each node occupies exactly one disk page.
///
/// `level` is 0 for leaves and increases towards the root; the paper's
/// CRSS algorithm switches between its ADAPTIVE/NORMAL/UPDATE modes based
/// on whether the nodes just fetched are leaves.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// An internal (directory) node at level ≥ 1.
    Internal {
        /// Height of this node above the leaf level (≥ 1).
        level: u32,
        /// Child entries.
        entries: Vec<InternalEntry>,
    },
    /// A leaf node (level 0) holding data points.
    Leaf {
        /// Data entries.
        entries: Vec<LeafEntry>,
    },
}

impl Node {
    /// Creates an empty leaf.
    pub fn empty_leaf() -> Self {
        Node::Leaf {
            entries: Vec::new(),
        }
    }

    /// The node's level (0 = leaf).
    pub fn level(&self) -> u32 {
        match self {
            Node::Internal { level, .. } => *level,
            Node::Leaf { .. } => 0,
        }
    }

    /// `true` for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Number of entries in the node.
    pub fn len(&self) -> usize {
        match self {
            Node::Internal { entries, .. } => entries.len(),
            Node::Leaf { entries } => entries.len(),
        }
    }

    /// `true` when the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The MBR enclosing all entries; `None` for an empty node.
    pub fn mbr(&self) -> Option<Rect> {
        match self {
            Node::Internal { entries, .. } => Rect::union_all(entries.iter().map(|e| &e.mbr)),
            Node::Leaf { entries } => {
                let mut it = entries.iter();
                let first = Rect::from_point(&it.next()?.point);
                Some(it.fold(first, |mut acc, e| {
                    acc.union_in_place(&Rect::from_point(&e.point));
                    acc
                }))
            }
        }
    }

    /// Total number of data objects under this node (the subtree count
    /// the parent entry must carry).
    pub fn object_count(&self) -> u64 {
        match self {
            Node::Internal { entries, .. } => entries.iter().map(|e| e.count).sum(),
            Node::Leaf { entries } => entries.len() as u64,
        }
    }

    /// The internal entries.
    ///
    /// # Panics
    ///
    /// Panics on a leaf node.
    pub fn internal_entries(&self) -> &[InternalEntry] {
        match self {
            Node::Internal { entries, .. } => entries,
            Node::Leaf { .. } => panic!("internal_entries() on a leaf node"),
        }
    }

    /// The leaf entries.
    ///
    /// # Panics
    ///
    /// Panics on an internal node.
    pub fn leaf_entries(&self) -> &[LeafEntry] {
        match self {
            Node::Leaf { entries } => entries,
            Node::Internal { .. } => panic!("leaf_entries() on an internal node"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::ObjectId;
    use sqda_geom::Point;
    use sqda_storage::PageId;

    fn leaf_with(points: &[(f64, f64)]) -> Node {
        Node::Leaf {
            entries: points
                .iter()
                .enumerate()
                .map(|(i, (x, y))| LeafEntry::new(Point::new(vec![*x, *y]), ObjectId(i as u64)))
                .collect(),
        }
    }

    #[test]
    fn empty_leaf_properties() {
        let n = Node::empty_leaf();
        assert!(n.is_leaf());
        assert!(n.is_empty());
        assert_eq!(n.level(), 0);
        assert_eq!(n.mbr(), None);
        assert_eq!(n.object_count(), 0);
    }

    #[test]
    fn leaf_mbr_and_count() {
        let n = leaf_with(&[(0.0, 0.0), (2.0, 3.0), (-1.0, 1.0)]);
        let mbr = n.mbr().unwrap();
        assert_eq!(mbr.lo(), &[-1.0, 0.0]);
        assert_eq!(mbr.hi(), &[2.0, 3.0]);
        assert_eq!(n.object_count(), 3);
        assert_eq!(n.len(), 3);
    }

    #[test]
    fn internal_count_sums_children() {
        let r = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        let n = Node::Internal {
            level: 1,
            entries: vec![
                InternalEntry::new(r.clone(), PageId::from_raw(1), 10),
                InternalEntry::new(r.clone(), PageId::from_raw(2), 32),
            ],
        };
        assert_eq!(n.object_count(), 42);
        assert_eq!(n.level(), 1);
        assert!(!n.is_leaf());
        assert_eq!(n.internal_entries().len(), 2);
    }

    #[test]
    #[should_panic(expected = "on a leaf node")]
    fn wrong_accessor_panics() {
        let _ = Node::empty_leaf().internal_entries();
    }
}
