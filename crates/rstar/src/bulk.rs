//! STR (Sort-Tile-Recursive) bulk loading.
//!
//! The paper explicitly targets *dynamic* environments and rejects
//! complete reorganization of the database — but the reorganized tree is
//! the natural baseline: bulk loading produces near-100% fill and
//! minimal overlap, showing how much query I/O the incremental R\*-tree
//! gives up in exchange for dynamism. The `ablation_bulk_vs_incremental`
//! experiment quantifies exactly that.
//!
//! Algorithm (Leutenegger et al., STR): sort the points by the first
//! coordinate, cut them into vertical slabs, sort each slab by the next
//! coordinate, recurse; each final tile fills one leaf. Upper levels tile
//! the child MBR centers the same way.

use crate::entry::{InternalEntry, LeafEntry, ObjectId};
use crate::node::Node;
use crate::tree::{RStarError, RStarTree, Result};
use crate::{Declusterer, RStarConfig};
use sqda_geom::{Point, Rect};
use sqda_storage::{DiskId, PageId, PageStore};
use std::sync::Arc;

/// How a bulk load linearizes the input before packing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackingOrder {
    /// Sort-Tile-Recursive (Leutenegger et al.) — the default.
    #[default]
    Str,
    /// Z-order (Morton) curve; any dimensionality up to 8.
    Morton,
    /// Hilbert curve (2-d data only), as in the Hilbert-packed R-tree.
    Hilbert,
}

/// How bulk-written pages pick their sibling window for declustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementMode {
    /// Each page is declustered against a trailing window of the most
    /// recently written pages at its level (packing order is spatial
    /// order, so recent = nearby) — the classic bulk-load placement.
    #[default]
    Trailing,
    /// Pages are grouped by prospective parent (consecutive groups of
    /// the directory fan-out) and each page is declustered only against
    /// the members of its own group placed so far: the tiles of one
    /// parent land on distinct disks — one stripe — so a traversal that
    /// expands a parent reads its children in parallel.
    SiblingStripe,
}

/// Rejects packing orders the space-filling-curve keys cannot encode.
pub(crate) fn validate_packing(order: PackingOrder, dim: usize) -> Result<()> {
    match order {
        PackingOrder::Hilbert if dim != 2 => Err(RStarError::UnsupportedPacking {
            order: "Hilbert",
            dim,
        }),
        PackingOrder::Morton if dim > 8 => Err(RStarError::UnsupportedPacking {
            order: "Morton",
            dim,
        }),
        _ => Ok(()),
    }
}

/// Smallest `s ≥ 1` with `s.pow(k) ≥ n`, in exact integer arithmetic.
///
/// The float route — `(n as f64).powf(1.0 / k as f64).ceil()` — misses
/// at perfect powers (`27f64.powf(1.0 / 3.0)` is `3.000…0004`, which
/// ceils to 4) and drifts further as `n` grows past 2^53; the exact root
/// keeps slab counts (and therefore tile fill) right at any scale.
pub(crate) fn ceil_root(n: usize, k: u32) -> usize {
    if n <= 1 {
        return n;
    }
    if k <= 1 {
        return n;
    }
    // `s^k ≥ n`, saturating on overflow (an overflowing power certainly
    // exceeds any usize-sized `n`).
    let at_least =
        |s: usize| -> bool { (s as u128).checked_pow(k).map_or(true, |p| p >= n as u128) };
    // Start from the float guess and correct it exactly.
    let mut s = ((n as f64).powf(1.0 / f64::from(k)).round() as usize).max(1);
    while s > 1 && at_least(s - 1) {
        s -= 1;
    }
    while !at_least(s) {
        s += 1;
    }
    s
}

/// Writes one level's nodes incrementally, placing each page with the
/// declusterer against a sibling window chosen by [`PlacementMode`].
///
/// Shared by the in-memory and external builders so both produce the
/// same placement for the same node sequence.
pub(crate) struct LevelWriter<'a, S: PageStore> {
    tree: &'a RStarTree<S>,
    mode: PlacementMode,
    group: usize,
    placed: Vec<(Rect, DiskId)>,
    pages: Vec<PageId>,
}

impl<'a, S: PageStore> LevelWriter<'a, S> {
    pub(crate) fn new(tree: &'a RStarTree<S>, mode: PlacementMode) -> Self {
        Self {
            tree,
            mode,
            group: tree.config.max_internal_entries.max(1),
            placed: Vec::new(),
            pages: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, node: &Node) -> Result<PageId> {
        let mbr = node
            .mbr()
            .ok_or_else(|| RStarError::InvalidBuild("empty node in bulk build".into()))?;
        let idx = self.placed.len();
        let start = match self.mode {
            PlacementMode::Trailing => idx.saturating_sub(16),
            // Only the already-placed members of this page's own parent
            // group (still capped at the trailing-16 window size).
            PlacementMode::SiblingStripe => {
                ((idx / self.group) * self.group).max(idx.saturating_sub(16))
            }
        };
        let window = &self.placed[start..];
        let page = self.tree.allocate_declustered(&mbr, window)?;
        self.tree.write_node(page, node)?;
        let disk = self.tree.store.placement(page)?.disk;
        self.placed.push((mbr, disk));
        self.pages.push(page);
        Ok(page)
    }

    pub(crate) fn into_pages(self) -> Vec<PageId> {
        self.pages
    }
}

/// Derives the next level's entries from a written level.
fn parent_entries(nodes: &[Node], pages: &[PageId]) -> Result<Vec<InternalEntry>> {
    nodes
        .iter()
        .zip(pages.iter())
        .map(|(node, page)| {
            let mbr = node
                .mbr()
                .ok_or_else(|| RStarError::InvalidBuild("empty node in bulk build".into()))?;
            Ok(InternalEntry::new(mbr, *page, node.object_count()))
        })
        .collect()
}

impl<S: PageStore> RStarTree<S> {
    /// Builds a tree from scratch by STR bulk loading.
    ///
    /// Pages are placed on disks by the declustering heuristic, with the
    /// tiles of one parent treated as siblings — spatially adjacent tiles
    /// therefore land on different disks, just like incrementally split
    /// nodes.
    ///
    /// Returns an empty tree when `points` is empty.
    pub fn bulk_load(
        store: Arc<S>,
        config: RStarConfig,
        declusterer: Box<dyn Declusterer>,
        points: Vec<(Point, u64)>,
    ) -> Result<Self> {
        Self::bulk_load_ordered(store, config, declusterer, points, PackingOrder::Str)
    }

    /// Bulk loads with an explicit packing order: STR tiling, or a
    /// space-filling curve (Morton in any dimension ≤ 8, Hilbert for
    /// 2-d). Curve packing sorts the input once along the curve and cuts
    /// it into consecutive full leaves — the Hilbert-packed R-tree
    /// construction.
    ///
    /// # Errors
    ///
    /// Returns [`RStarError::UnsupportedPacking`] when
    /// [`PackingOrder::Hilbert`] is requested for non-2-d data or
    /// [`PackingOrder::Morton`] beyond 8 dimensions,
    /// [`RStarError::DimensionMismatch`] for points of the wrong
    /// dimensionality, and [`RStarError::InvalidBuild`] for non-finite
    /// coordinates — all before any page is written.
    pub fn bulk_load_ordered(
        store: Arc<S>,
        config: RStarConfig,
        declusterer: Box<dyn Declusterer>,
        points: Vec<(Point, u64)>,
        order: PackingOrder,
    ) -> Result<Self> {
        validate_packing(order, config.dim)?;
        for (p, _) in &points {
            validate_point(p, config.dim)?;
        }
        let mut tree = Self::create(store, config, declusterer)?;
        if points.is_empty() {
            return Ok(tree);
        }
        let entries: Vec<LeafEntry> = points
            .into_iter()
            .map(|(p, id)| LeafEntry::new(p, ObjectId(id)))
            .collect();
        tree.bulk_build_from_entries(entries, order, PlacementMode::Trailing)?;
        Ok(tree)
    }

    /// Packs validated leaf entries into this (freshly created) tree:
    /// tiles the leaf level, then builds the directory bottom-up.
    pub(crate) fn bulk_build_from_entries(
        &mut self,
        mut entries: Vec<LeafEntry>,
        order: PackingOrder,
        mode: PlacementMode,
    ) -> Result<()> {
        let num_objects = entries.len() as u64;
        let dim = self.config.dim;
        let leaf_cap = self.config.max_leaf_entries;
        let min_leaf = self.config.min_leaf_entries();
        let tiles = match order {
            PackingOrder::Str => str_tile(
                &mut entries,
                leaf_cap,
                min_leaf,
                dim,
                0,
                &|e: &LeafEntry| e.point.clone(),
            ),
            PackingOrder::Morton | PackingOrder::Hilbert => {
                let (lo, hi) = point_bounds(&entries);
                match order {
                    PackingOrder::Morton => {
                        entries.sort_by_key(|e| crate::sfc::morton_key(&e.point, &lo, &hi))
                    }
                    PackingOrder::Hilbert => {
                        entries.sort_by_key(|e| crate::sfc::hilbert_key_2d(&e.point, &lo, &hi))
                    }
                    PackingOrder::Str => unreachable!(),
                }
                if entries.len() <= leaf_cap {
                    vec![entries.clone()]
                } else {
                    chunk_balanced(&entries, leaf_cap, min_leaf)
                }
            }
        };
        let level_nodes: Vec<Node> = tiles
            .into_iter()
            .map(|tile| Node::from_leaf_entries(&tile))
            .collect();
        let pages = self.write_level_with(&level_nodes, mode)?;
        if level_nodes.len() == 1 {
            return self.install_bulk_root(pages[0], 1, num_objects);
        }
        let parents = parent_entries(&level_nodes, &pages)?;
        self.finish_bulk_from_entries(parents, 1, order, num_objects, mode)
    }

    /// Builds the directory levels from the entries of an already
    /// written level (`level` = the level the first batch of directory
    /// nodes will live at; leaves are level 0). Shared by the in-memory
    /// and external builders.
    pub(crate) fn finish_bulk_from_entries(
        &mut self,
        mut entries: Vec<InternalEntry>,
        mut level: u32,
        order: PackingOrder,
        num_objects: u64,
        mode: PlacementMode,
    ) -> Result<()> {
        let dim = self.config.dim;
        loop {
            let cap = self.config.max_internal_entries;
            let min = self.config.min_internal_entries();
            // STR re-tiles each directory level; curve packing keeps the
            // children's curve order and cuts it into consecutive runs.
            let tiles = match order {
                PackingOrder::Str => {
                    str_tile(&mut entries, cap, min, dim, 0, &|e: &InternalEntry| {
                        e.mbr.center()
                    })
                }
                PackingOrder::Morton | PackingOrder::Hilbert => {
                    if entries.len() <= cap {
                        vec![entries.clone()]
                    } else {
                        chunk_balanced(&entries, cap, min)
                    }
                }
            };
            let level_nodes: Vec<Node> = tiles
                .into_iter()
                .map(|tile| Node::from_internal_entries(level, &tile))
                .collect();
            let pages = self.write_level_with(&level_nodes, mode)?;
            if level_nodes.len() == 1 {
                return self.install_bulk_root(pages[0], level + 1, num_objects);
            }
            entries = parent_entries(&level_nodes, &pages)?;
            level += 1;
        }
    }

    /// Swaps the bulk-loaded root in for the `create` root leaf.
    pub(crate) fn install_bulk_root(
        &mut self,
        root: PageId,
        height: u32,
        num_objects: u64,
    ) -> Result<()> {
        let old_root = self.root;
        self.free_node(old_root)?;
        self.root = root;
        self.height = height;
        self.num_objects = num_objects;
        Ok(())
    }

    /// Writes one level of nodes through a [`LevelWriter`].
    fn write_level_with(&self, nodes: &[Node], mode: PlacementMode) -> Result<Vec<PageId>> {
        let mut writer = LevelWriter::new(self, mode);
        for node in nodes {
            writer.push(node)?;
        }
        Ok(writer.into_pages())
    }
}

/// Rejects points the build cannot represent: wrong dimensionality or
/// non-finite coordinates (which would poison sort keys and MBRs).
pub(crate) fn validate_point(p: &Point, dim: usize) -> Result<()> {
    if p.dim() != dim {
        return Err(RStarError::DimensionMismatch {
            expected: dim,
            got: p.dim(),
        });
    }
    for c in p.coords() {
        if !c.is_finite() {
            return Err(RStarError::InvalidBuild(format!(
                "non-finite coordinate {c} in bulk input"
            )));
        }
    }
    Ok(())
}

/// The coordinate bounds of a set of leaf entries.
fn point_bounds(entries: &[LeafEntry]) -> (Vec<f64>, Vec<f64>) {
    let dim = entries[0].point.dim();
    let mut lo = entries[0].point.coords().to_vec();
    let mut hi = lo.clone();
    for e in &entries[1..] {
        for d in 0..dim {
            let c = e.point.coord(d);
            if c < lo[d] {
                lo[d] = c;
            }
            if c > hi[d] {
                hi[d] = c;
            }
        }
    }
    (lo, hi)
}

/// Recursively tiles `items` (STR): sorts by the coordinate of
/// `axis`, splits into slabs, recurses into the next axis, and emits
/// groups of at most `cap` (and at least `min`, except when fewer items
/// exist in total).
pub(crate) fn str_tile<T: Clone>(
    items: &mut [T],
    cap: usize,
    min: usize,
    dim: usize,
    axis: usize,
    key: &impl Fn(&T) -> Point,
) -> Vec<Vec<T>> {
    let n = items.len();
    if n <= cap {
        return vec![items.to_vec()];
    }
    if axis + 1 >= dim {
        // Last axis: chunk the sorted run directly.
        sort_by_axis(items, axis, key);
        return chunk_balanced(items, cap, min);
    }
    let (slab_size, _) = str_slab_size(n, cap, dim, axis);
    sort_by_axis(items, axis, key);
    let mut out = Vec::new();
    let mut start = 0;
    while start < n {
        let mut end = (start + slab_size).min(n);
        // Never strand a tail smaller than the minimum fill: shrink this
        // slab so the next one stays viable. Safe because
        // `slab_size ≥ cap ≥ 2·min`.
        let tail = n - end;
        if tail > 0 && tail < min {
            end = n - min;
        }
        out.extend(str_tile(
            &mut items[start..end],
            cap,
            min,
            dim,
            axis + 1,
            key,
        ));
        start = end;
    }
    out
}

/// The STR slab width at `axis`: `n` items form `ceil(n/cap)` pages,
/// spread over the exact integer ceil-`(dim-axis)`-th root of that many
/// slabs. Returns `(slab_size, slabs)`; the external builder cuts at
/// the same boundaries so both tilings agree.
pub(crate) fn str_slab_size(n: usize, cap: usize, dim: usize, axis: usize) -> (usize, usize) {
    let pages = n.div_ceil(cap);
    let slabs = ceil_root(pages, (dim - axis) as u32);
    (n.div_ceil(slabs).max(cap), slabs)
}

fn sort_by_axis<T>(items: &mut [T], axis: usize, key: &impl Fn(&T) -> Point) {
    // Coordinates are validated finite on entry; `total_cmp` keeps the
    // sort panic-free even if a caller sneaks a NaN past validation.
    items.sort_by(|a, b| key(a).coord(axis).total_cmp(&key(b).coord(axis)));
}

/// Chunks a sorted run into groups of `cap`, rebalancing the final two
/// groups so no group falls below `min` (the R\*-tree fill invariant).
pub(crate) fn chunk_balanced<T: Clone>(items: &[T], cap: usize, min: usize) -> Vec<Vec<T>> {
    let n = items.len();
    debug_assert!(n > cap);
    let mut groups: Vec<Vec<T>> = items.chunks(cap).map(|c| c.to_vec()).collect();
    let last = groups.len() - 1;
    if groups[last].len() < min {
        let deficit = min - groups[last].len();
        let prev = &mut groups[last - 1];
        let moved: Vec<T> = prev.drain(prev.len() - deficit..).collect();
        // Prepend to keep spatial ordering.
        let old_last = std::mem::take(&mut groups[last]);
        groups[last] = moved.into_iter().chain(old_last).collect();
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decluster::ProximityIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sqda_storage::ArrayStore;

    fn points(n: usize, dim: usize, seed: u64) -> Vec<(Point, u64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    Point::new((0..dim).map(|_| rng.gen_range(0.0..100.0)).collect()),
                    i as u64,
                )
            })
            .collect()
    }

    fn bulk(n: usize, dim: usize, fanout: usize, seed: u64) -> RStarTree<ArrayStore> {
        let store = Arc::new(ArrayStore::new(6, 1449, seed));
        RStarTree::bulk_load(
            store,
            RStarConfig::new(dim).with_max_entries(fanout),
            Box::new(ProximityIndex),
            points(n, dim, seed),
        )
        .unwrap()
    }

    #[test]
    fn bulk_load_is_valid_and_complete() {
        for n in [1usize, 7, 8, 9, 63, 64, 65, 500, 4097] {
            let tree = bulk(n, 2, 8, n as u64);
            tree.validate().unwrap().unwrap();
            assert_eq!(tree.num_objects(), n as u64, "n={n}");
        }
    }

    #[test]
    fn bulk_load_empty() {
        let store = Arc::new(ArrayStore::new(2, 1449, 1));
        let tree =
            RStarTree::bulk_load(store, RStarConfig::new(3), Box::new(ProximityIndex), vec![])
                .unwrap();
        assert_eq!(tree.num_objects(), 0);
        assert_eq!(tree.height(), 1);
        assert!(tree.knn(&Point::splat(3, 0.0), 5).unwrap().is_empty());
    }

    #[test]
    fn bulk_load_knn_matches_brute_force() {
        let pts = points(2000, 3, 9);
        let tree = bulk(2000, 3, 10, 9);
        let q = Point::splat(3, 50.0);
        let got = tree.knn(&q, 20).unwrap();
        let mut want: Vec<f64> = pts.iter().map(|(p, _)| q.dist_sq(p)).collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist_sq - w).abs() < 1e-9);
        }
    }

    #[test]
    fn bulk_load_fill_is_high() {
        let tree = bulk(10_000, 2, 32, 10);
        let stats = tree.stats().unwrap();
        assert!(
            stats.avg_fill > 0.85,
            "bulk-loaded fill only {}",
            stats.avg_fill
        );
        // And it still supports dynamic inserts afterwards.
        let mut tree = tree;
        for (p, id) in points(500, 2, 11) {
            tree.insert(p, 100_000 + id).unwrap();
        }
        tree.validate().unwrap().unwrap();
        assert_eq!(tree.num_objects(), 10_500);
    }

    #[test]
    fn bulk_load_fewer_nodes_than_incremental() {
        let pts = points(8000, 2, 12);
        let bulk_tree = bulk(8000, 2, 16, 12);
        let store = Arc::new(ArrayStore::new(6, 1449, 12));
        let mut inc_tree = RStarTree::create(
            store,
            RStarConfig::new(2).with_max_entries(16),
            Box::new(ProximityIndex),
        )
        .unwrap();
        for (p, id) in pts {
            inc_tree.insert(p, id).unwrap();
        }
        let bulk_nodes = bulk_tree.stats().unwrap().total_nodes();
        let inc_nodes = inc_tree.stats().unwrap().total_nodes();
        assert!(
            bulk_nodes < inc_nodes,
            "bulk {bulk_nodes} >= incremental {inc_nodes}"
        );
    }

    #[test]
    fn curve_packed_loads_are_valid_and_exact() {
        for order in [PackingOrder::Morton, PackingOrder::Hilbert] {
            let pts = points(3000, 2, 21);
            let store = Arc::new(ArrayStore::new(6, 1449, 21));
            let tree = RStarTree::bulk_load_ordered(
                store,
                RStarConfig::new(2).with_max_entries(16),
                Box::new(ProximityIndex),
                pts.clone(),
                order,
            )
            .unwrap();
            tree.validate().unwrap().unwrap();
            assert_eq!(tree.num_objects(), 3000);
            let q = Point::new(vec![50.0, 50.0]);
            let got = tree.knn(&q, 10).unwrap();
            let mut want: Vec<f64> = pts.iter().map(|(p, _)| q.dist_sq(p)).collect();
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g.dist_sq - w).abs() < 1e-9, "{order:?}");
            }
        }
    }

    #[test]
    fn morton_packs_high_dimensional_data() {
        let pts = points(1500, 5, 22);
        let store = Arc::new(ArrayStore::new(4, 1449, 22));
        let tree = RStarTree::bulk_load_ordered(
            store,
            RStarConfig::new(5).with_max_entries(12),
            Box::new(ProximityIndex),
            pts,
            PackingOrder::Morton,
        )
        .unwrap();
        tree.validate().unwrap().unwrap();
        assert!(tree.stats().unwrap().avg_fill > 0.8);
    }

    #[test]
    fn hilbert_rejects_high_dimensions() {
        let pts = points(100, 3, 23);
        let store = Arc::new(ArrayStore::new(2, 1449, 23));
        let err = RStarTree::bulk_load_ordered(
            store,
            RStarConfig::new(3).with_max_entries(8),
            Box::new(ProximityIndex),
            pts,
            PackingOrder::Hilbert,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                RStarError::UnsupportedPacking {
                    order: "Hilbert",
                    dim: 3
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn morton_rejects_too_many_dimensions() {
        let pts = points(100, 9, 24);
        let store = Arc::new(ArrayStore::new(2, 1449, 24));
        let err = RStarTree::bulk_load_ordered(
            store,
            RStarConfig::new(9).with_max_entries(8),
            Box::new(ProximityIndex),
            pts,
            PackingOrder::Morton,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                RStarError::UnsupportedPacking {
                    order: "Morton",
                    dim: 9
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn bulk_load_rejects_non_finite_coordinates() {
        let store = Arc::new(ArrayStore::new(2, 1449, 25));
        let err = RStarTree::bulk_load(
            store,
            RStarConfig::new(2),
            Box::new(ProximityIndex),
            vec![
                (Point::new(vec![1.0, 2.0]), 0),
                (Point::new(vec![f64::NAN, 2.0]), 1),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, RStarError::InvalidBuild(_)), "{err}");
    }

    #[test]
    fn ceil_root_is_exact_at_boundaries() {
        // Perfect powers: the float route ceils 27^(1/3) = 3.000…0004 up
        // to 4; the exact root must return 3.
        assert_eq!(ceil_root(27, 3), 3);
        assert_eq!(ceil_root(28, 3), 4);
        assert_eq!(ceil_root(26, 3), 3);
        assert_eq!(ceil_root(1_000_000, 2), 1000);
        assert_eq!(ceil_root(1_000_001, 2), 1001);
        assert_eq!(ceil_root(999_999, 2), 1000);
        assert_eq!(ceil_root(1, 5), 1);
        assert_eq!(ceil_root(0, 3), 0);
        assert_eq!(ceil_root(7, 1), 7);
        // Large counts near 2^53 where f64 loses integer precision.
        let n = (1usize << 53) + 1;
        let s = ceil_root(n, 2);
        assert!(s * s >= n && (s - 1) * (s - 1) < n, "s={s}");
        // Exhaustive property sweep at small scales.
        for k in 2u32..=6 {
            for n in 1usize..2000 {
                let s = ceil_root(n, k);
                let p = (s as u128).pow(k);
                assert!(p >= n as u128, "n={n} k={k} s={s}");
                if s > 1 {
                    assert!(((s - 1) as u128).pow(k) < n as u128, "n={n} k={k} s={s}");
                }
            }
        }
    }

    #[test]
    fn bulk_load_rejects_dimension_mismatch() {
        let store = Arc::new(ArrayStore::new(2, 1449, 1));
        let err = RStarTree::bulk_load(
            store,
            RStarConfig::new(2),
            Box::new(ProximityIndex),
            vec![(Point::splat(3, 1.0), 0)],
        );
        assert!(err.is_err());
    }
}
