//! STR (Sort-Tile-Recursive) bulk loading.
//!
//! The paper explicitly targets *dynamic* environments and rejects
//! complete reorganization of the database — but the reorganized tree is
//! the natural baseline: bulk loading produces near-100% fill and
//! minimal overlap, showing how much query I/O the incremental R\*-tree
//! gives up in exchange for dynamism. The `ablation_bulk_vs_incremental`
//! experiment quantifies exactly that.
//!
//! Algorithm (Leutenegger et al., STR): sort the points by the first
//! coordinate, cut them into vertical slabs, sort each slab by the next
//! coordinate, recurse; each final tile fills one leaf. Upper levels tile
//! the child MBR centers the same way.

use crate::entry::{InternalEntry, LeafEntry, ObjectId};
use crate::node::Node;
use crate::tree::{RStarError, RStarTree, Result};
use crate::{Declusterer, RStarConfig};
use sqda_geom::{Point, Rect};
use sqda_storage::{PageId, PageStore};
use std::sync::Arc;

/// How a bulk load linearizes the input before packing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackingOrder {
    /// Sort-Tile-Recursive (Leutenegger et al.) — the default.
    #[default]
    Str,
    /// Z-order (Morton) curve; any dimensionality up to 8.
    Morton,
    /// Hilbert curve (2-d data only), as in the Hilbert-packed R-tree.
    Hilbert,
}

impl<S: PageStore> RStarTree<S> {
    /// Builds a tree from scratch by STR bulk loading.
    ///
    /// Pages are placed on disks by the declustering heuristic, with the
    /// tiles of one parent treated as siblings — spatially adjacent tiles
    /// therefore land on different disks, just like incrementally split
    /// nodes.
    ///
    /// Returns an empty tree when `points` is empty.
    pub fn bulk_load(
        store: Arc<S>,
        config: RStarConfig,
        declusterer: Box<dyn Declusterer>,
        points: Vec<(Point, u64)>,
    ) -> Result<Self> {
        Self::bulk_load_ordered(store, config, declusterer, points, PackingOrder::Str)
    }

    /// Bulk loads with an explicit packing order: STR tiling, or a
    /// space-filling curve (Morton in any dimension ≤ 8, Hilbert for
    /// 2-d). Curve packing sorts the input once along the curve and cuts
    /// it into consecutive full leaves — the Hilbert-packed R-tree
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics if [`PackingOrder::Hilbert`] is requested for non-2-d data
    /// or [`PackingOrder::Morton`] beyond 8 dimensions.
    pub fn bulk_load_ordered(
        store: Arc<S>,
        config: RStarConfig,
        declusterer: Box<dyn Declusterer>,
        points: Vec<(Point, u64)>,
        order: PackingOrder,
    ) -> Result<Self> {
        for (p, _) in &points {
            if p.dim() != config.dim {
                return Err(RStarError::DimensionMismatch {
                    expected: config.dim,
                    got: p.dim(),
                });
            }
        }
        let mut tree = Self::create(store, config, declusterer)?;
        if points.is_empty() {
            return Ok(tree);
        }
        let num_objects = points.len() as u64;

        // ---- Leaf level ----
        let dim = tree.config.dim;
        let leaf_cap = tree.config.max_leaf_entries;
        let min_leaf = tree.config.min_leaf_entries();
        let mut entries: Vec<LeafEntry> = points
            .into_iter()
            .map(|(p, id)| LeafEntry::new(p, ObjectId(id)))
            .collect();
        let tiles = match order {
            PackingOrder::Str => str_tile(
                &mut entries,
                leaf_cap,
                min_leaf,
                dim,
                0,
                &|e: &LeafEntry| e.point.clone(),
            ),
            PackingOrder::Morton | PackingOrder::Hilbert => {
                let (lo, hi) = point_bounds(&entries);
                match order {
                    PackingOrder::Morton => {
                        entries.sort_by_key(|e| crate::sfc::morton_key(&e.point, &lo, &hi))
                    }
                    PackingOrder::Hilbert => {
                        entries.sort_by_key(|e| crate::sfc::hilbert_key_2d(&e.point, &lo, &hi))
                    }
                    PackingOrder::Str => unreachable!(),
                }
                if entries.len() <= leaf_cap {
                    vec![entries.clone()]
                } else {
                    chunk_balanced(&entries, leaf_cap, min_leaf)
                }
            }
        };
        let mut level_nodes: Vec<Node> = tiles
            .into_iter()
            .map(|tile| Node::from_leaf_entries(&tile))
            .collect();
        let mut level = 0u32;

        // ---- Upper levels ----
        // Write each level's nodes and produce the entries of the next.
        let (root_page, height) = loop {
            let pages = tree.write_level(&level_nodes)?;
            if level_nodes.len() == 1 {
                break (pages[0], level + 1);
            }
            let mut parent_entries: Vec<InternalEntry> = level_nodes
                .iter()
                .zip(pages.iter())
                .map(|(node, page)| {
                    InternalEntry::new(
                        node.mbr().expect("bulk-loaded nodes are non-empty"),
                        *page,
                        node.object_count(),
                    )
                })
                .collect();
            level += 1;
            let cap = tree.config.max_internal_entries;
            let min = tree.config.min_internal_entries();
            // STR re-tiles each directory level; curve packing keeps the
            // children's curve order and cuts it into consecutive runs.
            let tiles = match order {
                PackingOrder::Str => str_tile(
                    &mut parent_entries,
                    cap,
                    min,
                    dim,
                    0,
                    &|e: &InternalEntry| e.mbr.center(),
                ),
                PackingOrder::Morton | PackingOrder::Hilbert => {
                    if parent_entries.len() <= cap {
                        vec![parent_entries.clone()]
                    } else {
                        chunk_balanced(&parent_entries, cap, min)
                    }
                }
            };
            level_nodes = tiles
                .into_iter()
                .map(|tile| Node::from_internal_entries(level, &tile))
                .collect();
        };

        // Swap in the bulk-loaded root (the `create` root leaf is freed).
        let old_root = tree.root;
        tree.free_node(old_root)?;
        tree.root = root_page;
        tree.height = height;
        tree.num_objects = num_objects;
        Ok(tree)
    }

    /// Writes one level of nodes, placing each page with the declusterer
    /// against the siblings written so far at this level.
    fn write_level(&self, nodes: &[Node]) -> Result<Vec<PageId>> {
        let mut pages = Vec::with_capacity(nodes.len());
        let mut placed: Vec<(Rect, sqda_storage::DiskId)> = Vec::with_capacity(nodes.len());
        for node in nodes {
            let mbr = node.mbr().expect("bulk-loaded nodes are non-empty");
            // Sibling context: the most recent neighbours at this level
            // (STR order is spatial order, so recent = nearby).
            let window = &placed[placed.len().saturating_sub(16)..];
            let page = self.allocate_declustered(&mbr, window)?;
            self.write_node(page, node)?;
            let disk = self.store.placement(page)?.disk;
            placed.push((mbr, disk));
            pages.push(page);
        }
        Ok(pages)
    }
}

/// The coordinate bounds of a set of leaf entries.
fn point_bounds(entries: &[LeafEntry]) -> (Vec<f64>, Vec<f64>) {
    let dim = entries[0].point.dim();
    let mut lo = entries[0].point.coords().to_vec();
    let mut hi = lo.clone();
    for e in &entries[1..] {
        for d in 0..dim {
            let c = e.point.coord(d);
            if c < lo[d] {
                lo[d] = c;
            }
            if c > hi[d] {
                hi[d] = c;
            }
        }
    }
    (lo, hi)
}

/// Recursively tiles `items` (STR): sorts by the coordinate of
/// `axis`, splits into slabs, recurses into the next axis, and emits
/// groups of at most `cap` (and at least `min`, except when fewer items
/// exist in total).
fn str_tile<T: Clone>(
    items: &mut [T],
    cap: usize,
    min: usize,
    dim: usize,
    axis: usize,
    key: &impl Fn(&T) -> Point,
) -> Vec<Vec<T>> {
    let n = items.len();
    if n <= cap {
        return vec![items.to_vec()];
    }
    if axis + 1 >= dim {
        // Last axis: chunk the sorted run directly.
        sort_by_axis(items, axis, key);
        return chunk_balanced(items, cap, min);
    }
    let pages = n.div_ceil(cap);
    let remaining_dims = (dim - axis) as f64;
    let slabs = (pages as f64).powf(1.0 / remaining_dims).ceil() as usize;
    let slab_size = n.div_ceil(slabs).max(cap);
    sort_by_axis(items, axis, key);
    let mut out = Vec::new();
    let mut start = 0;
    while start < n {
        let mut end = (start + slab_size).min(n);
        // Never strand a tail smaller than the minimum fill: shrink this
        // slab so the next one stays viable. Safe because
        // `slab_size ≥ cap ≥ 2·min`.
        let tail = n - end;
        if tail > 0 && tail < min {
            end = n - min;
        }
        out.extend(str_tile(
            &mut items[start..end],
            cap,
            min,
            dim,
            axis + 1,
            key,
        ));
        start = end;
    }
    out
}

fn sort_by_axis<T>(items: &mut [T], axis: usize, key: &impl Fn(&T) -> Point) {
    items.sort_by(|a, b| {
        key(a)
            .coord(axis)
            .partial_cmp(&key(b).coord(axis))
            .expect("finite coordinates")
    });
}

/// Chunks a sorted run into groups of `cap`, rebalancing the final two
/// groups so no group falls below `min` (the R\*-tree fill invariant).
fn chunk_balanced<T: Clone>(items: &[T], cap: usize, min: usize) -> Vec<Vec<T>> {
    let n = items.len();
    debug_assert!(n > cap);
    let mut groups: Vec<Vec<T>> = items.chunks(cap).map(|c| c.to_vec()).collect();
    let last = groups.len() - 1;
    if groups[last].len() < min {
        let deficit = min - groups[last].len();
        let prev = &mut groups[last - 1];
        let moved: Vec<T> = prev.drain(prev.len() - deficit..).collect();
        // Prepend to keep spatial ordering.
        let old_last = std::mem::take(&mut groups[last]);
        groups[last] = moved.into_iter().chain(old_last).collect();
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decluster::ProximityIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sqda_storage::ArrayStore;

    fn points(n: usize, dim: usize, seed: u64) -> Vec<(Point, u64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    Point::new((0..dim).map(|_| rng.gen_range(0.0..100.0)).collect()),
                    i as u64,
                )
            })
            .collect()
    }

    fn bulk(n: usize, dim: usize, fanout: usize, seed: u64) -> RStarTree<ArrayStore> {
        let store = Arc::new(ArrayStore::new(6, 1449, seed));
        RStarTree::bulk_load(
            store,
            RStarConfig::new(dim).with_max_entries(fanout),
            Box::new(ProximityIndex),
            points(n, dim, seed),
        )
        .unwrap()
    }

    #[test]
    fn bulk_load_is_valid_and_complete() {
        for n in [1usize, 7, 8, 9, 63, 64, 65, 500, 4097] {
            let tree = bulk(n, 2, 8, n as u64);
            tree.validate().unwrap().unwrap();
            assert_eq!(tree.num_objects(), n as u64, "n={n}");
        }
    }

    #[test]
    fn bulk_load_empty() {
        let store = Arc::new(ArrayStore::new(2, 1449, 1));
        let tree =
            RStarTree::bulk_load(store, RStarConfig::new(3), Box::new(ProximityIndex), vec![])
                .unwrap();
        assert_eq!(tree.num_objects(), 0);
        assert_eq!(tree.height(), 1);
        assert!(tree.knn(&Point::splat(3, 0.0), 5).unwrap().is_empty());
    }

    #[test]
    fn bulk_load_knn_matches_brute_force() {
        let pts = points(2000, 3, 9);
        let tree = bulk(2000, 3, 10, 9);
        let q = Point::splat(3, 50.0);
        let got = tree.knn(&q, 20).unwrap();
        let mut want: Vec<f64> = pts.iter().map(|(p, _)| q.dist_sq(p)).collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist_sq - w).abs() < 1e-9);
        }
    }

    #[test]
    fn bulk_load_fill_is_high() {
        let tree = bulk(10_000, 2, 32, 10);
        let stats = tree.stats().unwrap();
        assert!(
            stats.avg_fill > 0.85,
            "bulk-loaded fill only {}",
            stats.avg_fill
        );
        // And it still supports dynamic inserts afterwards.
        let mut tree = tree;
        for (p, id) in points(500, 2, 11) {
            tree.insert(p, 100_000 + id).unwrap();
        }
        tree.validate().unwrap().unwrap();
        assert_eq!(tree.num_objects(), 10_500);
    }

    #[test]
    fn bulk_load_fewer_nodes_than_incremental() {
        let pts = points(8000, 2, 12);
        let bulk_tree = bulk(8000, 2, 16, 12);
        let store = Arc::new(ArrayStore::new(6, 1449, 12));
        let mut inc_tree = RStarTree::create(
            store,
            RStarConfig::new(2).with_max_entries(16),
            Box::new(ProximityIndex),
        )
        .unwrap();
        for (p, id) in pts {
            inc_tree.insert(p, id).unwrap();
        }
        let bulk_nodes = bulk_tree.stats().unwrap().total_nodes();
        let inc_nodes = inc_tree.stats().unwrap().total_nodes();
        assert!(
            bulk_nodes < inc_nodes,
            "bulk {bulk_nodes} >= incremental {inc_nodes}"
        );
    }

    #[test]
    fn curve_packed_loads_are_valid_and_exact() {
        for order in [PackingOrder::Morton, PackingOrder::Hilbert] {
            let pts = points(3000, 2, 21);
            let store = Arc::new(ArrayStore::new(6, 1449, 21));
            let tree = RStarTree::bulk_load_ordered(
                store,
                RStarConfig::new(2).with_max_entries(16),
                Box::new(ProximityIndex),
                pts.clone(),
                order,
            )
            .unwrap();
            tree.validate().unwrap().unwrap();
            assert_eq!(tree.num_objects(), 3000);
            let q = Point::new(vec![50.0, 50.0]);
            let got = tree.knn(&q, 10).unwrap();
            let mut want: Vec<f64> = pts.iter().map(|(p, _)| q.dist_sq(p)).collect();
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g.dist_sq - w).abs() < 1e-9, "{order:?}");
            }
        }
    }

    #[test]
    fn morton_packs_high_dimensional_data() {
        let pts = points(1500, 5, 22);
        let store = Arc::new(ArrayStore::new(4, 1449, 22));
        let tree = RStarTree::bulk_load_ordered(
            store,
            RStarConfig::new(5).with_max_entries(12),
            Box::new(ProximityIndex),
            pts,
            PackingOrder::Morton,
        )
        .unwrap();
        tree.validate().unwrap().unwrap();
        assert!(tree.stats().unwrap().avg_fill > 0.8);
    }

    #[test]
    #[should_panic(expected = "2-d only")]
    fn hilbert_rejects_high_dimensions() {
        let pts = points(100, 3, 23);
        let store = Arc::new(ArrayStore::new(2, 1449, 23));
        let _ = RStarTree::bulk_load_ordered(
            store,
            RStarConfig::new(3).with_max_entries(8),
            Box::new(ProximityIndex),
            pts,
            PackingOrder::Hilbert,
        );
    }

    #[test]
    fn bulk_load_rejects_dimension_mismatch() {
        let store = Arc::new(ArrayStore::new(2, 1449, 1));
        let err = RStarTree::bulk_load(
            store,
            RStarConfig::new(2),
            Box::new(ProximityIndex),
            vec![(Point::splat(3, 1.0), 0)],
        );
        assert!(err.is_err());
    }
}
